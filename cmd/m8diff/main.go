// Command m8diff compares two BLAST -m 8 result files with the paper's
// §3.4 sensitivity method: alignments are equivalent when they overlap
// by more than 80% on both sequences, and each side's missed alignments
// are counted and expressed relative to the other side's total.
//
//	m8diff scoris.m8 blastn.m8
//	m8diff -overlap 0.9 -list-missed a.m8 b.m8
//
// Exit status 0; use the printed table for analysis. This is the tool
// the paper's authors would have used to produce tables 4-7 from the
// two programs' output files.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sensemetric"
	"repro/internal/tabular"
)

func main() {
	var (
		overlap    = flag.Float64("overlap", sensemetric.DefaultMinOverlap, "overlap fraction for equivalence")
		listMissed = flag.Bool("list-missed", false, "print each missed alignment")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: m8diff [flags] scoris.m8 blastn.m8")
		flag.PrintDefaults()
		os.Exit(2)
	}
	aPath, bPath := flag.Arg(0), flag.Arg(1)
	aRecs, err := tabular.ReadFile(aPath)
	fatal(err)
	bRecs, err := tabular.ReadFile(bPath)
	fatal(err)

	rep := sensemetric.Compare(aRecs, bRecs, *overlap)
	fmt.Printf("A = %s (%d alignments)\n", aPath, rep.SCTotal)
	fmt.Printf("B = %s (%d alignments)\n\n", bPath, rep.BLTotal)
	fmt.Printf("%-34s %8d  (%.2f%% of B)\n", "B alignments missing from A:", rep.SCMiss, rep.SCORISMissPct())
	fmt.Printf("%-34s %8d  (%.2f%% of A)\n", "A alignments missing from B:", rep.BLMiss, rep.BLASTMissPct())

	if *listMissed {
		aIx := sensemetric.NewIndex(aRecs)
		bIx := sensemetric.NewIndex(bRecs)
		fmt.Println("\n# B-only alignments (missing from A):")
		for i := range bRecs {
			if !aIx.Has(&bRecs[i], *overlap) {
				fmt.Println(bRecs[i].String())
			}
		}
		fmt.Println("\n# A-only alignments (missing from B):")
		for i := range aRecs {
			if !bIx.Has(&aRecs[i], *overlap) {
				fmt.Println(aRecs[i].String())
			}
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "m8diff:", err)
		os.Exit(1)
	}
}
