// Command goblastn is the BLASTN-style baseline of the reproduction: a
// per-query scan of the subject bank in the style of 2007-era blastall,
// with -m 8 tabular output. It exists so the paper's speed-up and
// sensitivity tables can be regenerated against a comparator written in
// the same language and sharing the same extension/statistics
// substrates (DESIGN.md §3).
//
//	goblastn -d bankA.fasta -i bankB.fasta -o result.m8 -e 0.001 -S 1
//
// -i repeats: the database bank is loaded once and one search session
// (lookup/diagonal arrays sized to the db) serves every query bank.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	scoris "repro"
	"repro/internal/cliflag"
)

func main() {
	var qPaths cliflag.Multi
	var (
		dbPath   = flag.String("d", "", "subject/database bank FASTA (required)")
		outPath  = flag.String("o", "", "output file (default stdout)")
		w        = flag.Int("W", 11, "word size")
		evalue   = flag.Float64("e", 1e-3, "E-value cutoff")
		strand   = flag.Int("S", 1, "strand: 1 = single, 3 = both")
		dust     = flag.Bool("F", true, "low-complexity filter (dust)")
		match    = flag.Int("r", 1, "match reward")
		mismatch = flag.Int("q", 3, "mismatch penalty")
		gapOpen  = flag.Int("G", 5, "gap open penalty")
		gapExt   = flag.Int("E", 2, "gap extend penalty")
		scanWord = flag.Int("scanword", 8, "probe word size for the db scan (classic BLASTN: 8)")
		stride   = flag.Int("stride", 4, "db scan stride (classic BLASTN: 4, the packed-byte boundary)")
		indexDir = flag.String("index-dir", "", "persistent index directory, accepted for flag parity with scoris so benchmark scripts can pass one flag set to both tools; the BLASTN baseline keeps no on-disk bank index (its db-side cost is the scan itself), so the directory is only created")
		verbose  = flag.Bool("v", false, "print scan metrics to stderr")
	)
	flag.Var(&qPaths, "i", "query bank FASTA (repeatable — one db session serves every query bank)")
	flag.Parse()
	if *dbPath == "" || len(qPaths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: goblastn -d bankA.fasta -i bankB.fasta [-i bankC.fasta ...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// Parity with scoris -index-dir: validate/create the directory so
	// shared invocation scripts work, but persist nothing — BLASTN has
	// no bank index to store (DESIGN.md §7). Warn unconditionally:
	// silently accepting the flag would let users believe BLASTN runs
	// were warm-started when nothing of the sort happens.
	if *indexDir != "" {
		fatal(os.MkdirAll(*indexDir, 0o755))
		fmt.Fprintln(os.Stderr, "goblastn: warning: -index-dir has no effect (the BLASTN baseline keeps no persistent bank index); the flag is accepted for script parity with scoris only")
	}

	db, err := scoris.LoadBank("db", *dbPath)
	fatal(err)

	opt := scoris.DefaultBlastnOptions()
	opt.W = *w
	opt.MaxEValue = *evalue
	opt.Dust = *dust
	opt.BothStrands = *strand == 3
	opt.Scoring.Match = *match
	opt.Scoring.Mismatch = *mismatch
	opt.Scoring.GapOpen = *gapOpen
	opt.Scoring.GapExtend = *gapExt
	opt.ScanWord = *scanWord
	opt.ScanStride = *stride

	// One session: the db bank and its engine arrays persist across -i.
	session, err := scoris.NewBlastnSession(db, opt)
	fatal(err)

	// Buffered, checked output (see cliflag.Output): the flush and
	// close are verified before the zero exit, so a failed write can
	// never leave a silently truncated m8 file behind an exit 0.
	out, err := cliflag.OpenOutput(*outPath)
	fatal(err)

	for i, qp := range qPaths {
		queries, err := scoris.LoadBank(fmt.Sprintf("queries.%d", i+1), qp)
		fatal(err)
		t0 := time.Now()
		res, err := session.Compare(queries)
		fatal(err)
		elapsed := time.Since(t0)
		fatal(scoris.WriteBlastnM8(out.W, res, db, queries))

		if *verbose {
			m := res.Metrics
			fmt.Fprintf(os.Stderr, "goblastn: %s: %d queries, %d alignments in %.2fs\n",
				qp, m.Queries, len(res.Alignments), elapsed.Seconds())
			fmt.Fprintf(os.Stderr, "  scanned %d positions, %d word hits, %d skipped by diagonal\n",
				m.ScannedPositions, m.WordHits, m.SkippedByDiag)
			fmt.Fprintf(os.Stderr, "  %d ungapped extensions, %d HSPs, %d gapped extensions\n",
				m.Extensions, m.HSPs, m.GappedExtensions)
		}
	}
	fatal(out.Finish())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "goblastn:", err)
		os.Exit(1)
	}
}
