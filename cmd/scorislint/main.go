// Command scorislint runs the repo-invariant analyzer suite of
// internal/lint over the tree. It is the machine check behind the
// contracts DESIGN.md states in prose (see DESIGN.md §11 for the
// analyzer ↔ contract map).
//
// Usage:
//
//	go run ./cmd/scorislint ./...                # human-readable file:line findings
//	go run ./cmd/scorislint -json ./...          # machine-readable findings
//	go run ./cmd/scorislint -github ./...        # additionally emit GitHub Actions error annotations
//	go run ./cmd/scorislint -tests=false ./...   # production sources only
//	go run ./cmd/scorislint -list                # list analyzers and the invariants they encode
//	go run ./cmd/scorislint -explain untrustedix # an analyzer's contract + fixture examples
//
// Test files are analyzed by default: in-package _test.go files are
// layered onto their package and external _test packages checked on
// top, the way the go tool builds them. -tests=false restricts the
// run to production sources.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Findings
// print as file:line:col so terminals and CI logs link straight to the
// violation; -github adds ::error workflow commands so the Actions UI
// annotates the diff.
//
// Suppress a finding only with an inline justification:
//
//	//scorislint:ignore <analyzer> <reason>
//
// on the flagged line or the line above, or for a whole file:
//
//	//scorislint:file-ignore <analyzer> <reason>
//
// anywhere in the file's leading comments. Reason-less directives are
// themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array instead of text")
		github  = flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
		list    = flag.Bool("list", false, "list the analyzers and exit")
		tests   = flag.Bool("tests", true, "analyze _test.go files too (consumed by the analyzers that opt in: checkedflush, goexit)")
		explain = flag.String("explain", "", "print an analyzer's contract, annotation syntax, and fixture examples, then exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scorislint [-json] [-github] [-list] [-tests] [-explain analyzer] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *explain != "" {
		for _, a := range analyzers {
			if a.Name != *explain {
				continue
			}
			text, err := lint.Explain(a)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scorislint: %v\n", err)
				os.Exit(2)
			}
			fmt.Print(text)
			return
		}
		fmt.Fprintf(os.Stderr, "scorislint: unknown analyzer %q (see -list)\n", *explain)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(".")
	loader.Tests = *tests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scorislint: %v\n", err)
		os.Exit(2)
	}
	diags := lint.Run(loader.Fset(), pkgs, analyzers)

	cwd, _ := os.Getwd()
	rel := func(path string) string {
		if cwd == "" {
			return path
		}
		if r, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return path
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "scorislint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *github {
		for _, d := range diags {
			msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(d.Analyzer + ": " + d.Message)
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, msg)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scorislint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
