// Command scoris-router fronts a fleet of scorisd workers with a
// bank-affinity coordinator: compares route to the workers that own the
// bank (rendezvous hashing over its content key, so every owner keeps a
// hot prepared index), health probes track which workers are up,
// draining, or down, and failures on the data path retry across
// replicas with capped jittered backoff.
//
//	scoris-router -addr :7400 \
//	  -worker w1=http://127.0.0.1:7333 \
//	  -worker w2=http://127.0.0.1:7334 \
//	  -worker w3=http://127.0.0.1:7335
//
// Clients speak the same protocol as a single scorisd, versioned under
// /v1/ with the bare paths as deprecated aliases:
//
//	curl -s localhost:7400/v1/banks -d '{"name":"db","path":"est_db.fasta","db":true}'
//	curl -s localhost:7400/v1/compare -d '{"db":"db","query":"q1"}' > run1.m8
//	curl -s localhost:7400/v1/stats | jq .router
//
// With -index-dir naming the fleet's shared store, GET /v1/banks
// annotates each bank with the stored index files and blocks covering
// it, read via metadata-only probes.
//
// Registrations fan out to the bank's owners; compares are idempotent
// and byte-identical across workers, so a dead or hung worker costs a
// retry, never a wrong answer. When no live replica remains the router
// sheds with 503 + Retry-After immediately — degradation is explicit,
// not a growing queue. Workers can also join at runtime (scorisd
// -register, or POST /workers).
//
// Streamed compares (Accept: text/x-m8-stream) and batches
// (POST /compare/batch) relay through the same affinity routing.
// A streamed relay commits to its worker at the first body byte:
// before that byte every failure is retryable on the ladder, after it
// the bytes are with the client and a dying worker can only be sealed
// honestly — the X-Scoris-Status trailer says anything but "complete",
// the tear is counted in /stats (torn_relays), and the worker is
// marked down. See DESIGN.md §10.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/fleet"
)

func main() {
	var workerSpecs cliflag.Multi
	var (
		addr           = flag.String("addr", ":7400", "listen address")
		replication    = flag.Int("replication", 0, "owners per bank on the rendezvous ring (0 = default 2)")
		probeInterval  = flag.Duration("probe-interval", 0, "health probe period (0 = default 2s)")
		probeTimeout   = flag.Duration("probe-timeout", 0, "per-probe deadline (0 = default 1s)")
		failThreshold  = flag.Int("fail-threshold", 0, "consecutive probe failures before a worker is down (0 = default 3)")
		compareTimeout = flag.Duration("compare-timeout", 0, "end-to-end deadline for one routed compare, 504 past it (0 = no router-side deadline)")
		attemptTimeout = flag.Duration("attempt-timeout", 0, "deadline for one attempt against one worker (0 = compare-timeout/max-attempts)")
		maxAttempts    = flag.Int("max-attempts", 0, "attempt budget per compare across replicas (0 = default 6)")
		retryBase      = flag.Duration("retry-base", 0, "first retry backoff, doubled per attempt with jitter (0 = default 50ms)")
		retryMax       = flag.Duration("retry-max", 0, "backoff cap (0 = default 2s)")
		indexDir       = flag.String("index-dir", "", "index store directory the workers share; the router probes its file metadata to annotate GET /banks with stored-index coverage")
	)
	flag.Var(&workerSpecs, "worker", "worker to front, as name=url (repeatable); more can join later via POST /workers or scorisd -register")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: scoris-router [-addr :7400] -worker name=url [-worker name=url ...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	rt := fleet.New(fleet.Config{
		Replication:    *replication,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		CompareTimeout: *compareTimeout,
		AttemptTimeout: *attemptTimeout,
		MaxAttempts:    *maxAttempts,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		IndexDir:       *indexDir,
	})
	for _, spec := range workerSpecs {
		name, url, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -worker %q (want name=url)", spec))
		}
		fatal(rt.AddWorker(name, url))
		fmt.Fprintf(os.Stderr, "scoris-router: worker %q at %s\n", name, url)
	}
	rt.Start()
	defer rt.Stop()

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "scoris-router: listening on %s (%d workers)\n", *addr, len(workerSpecs))
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "scoris-router: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "scoris-router: drain incomplete:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st := rt.StatsSnapshot(context.Background())
	fmt.Fprintf(os.Stderr, "scoris-router: drained; routed %d compares (%d retries, %d failovers, %d backfills, %d shed, %d torn relays)\n",
		st.Router.Compares, st.Router.Retries, st.Router.Failovers, st.Router.Backfills, st.Router.Shed, st.Router.TornRelays)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoris-router:", err)
		os.Exit(1)
	}
}
