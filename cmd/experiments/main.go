// Command experiments regenerates the paper's tables and figures
// (DESIGN.md §4 maps each experiment id to its paper artefact) and
// prints them as markdown, ready to paste into EXPERIMENTS.md.
//
//	experiments -exp all -scale 16 > results.md
//	experiments -exp fig3,speedup-est -scale 32
//	experiments -exp speedup-est -check   # also verify the claim shapes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/ixdisk"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: datasets,fig3,speedup-est,speedup-large,sens-est,sens-large,asymmetric,parallel,ordered-rule,wsweep,dust,seed-order,threeway,all")
		scale    = flag.Int("scale", 16, "bank size divisor relative to the paper")
		workers  = flag.Int("workers", 1, "ORIS worker goroutines (1 = paper-faithful single thread)")
		check    = flag.Bool("check", false, "verify the paper's qualitative claims on the measured rows")
		indexDir = flag.String("index-dir", "", "persistent on-disk index store; repeated runs at the same -scale reuse saved indexes instead of rebuilding")
		ixDBOnly = flag.Bool("index-db-only", false, "persist only subject-bank indexes (per-run query indexes never hit disk)")
		ixMaxMB  = flag.Int64("index-max-mb", 0, "garbage-collect the index store down to this many megabytes, oldest files first (0 = unbounded)")
		ixMaxAge = flag.Duration("index-max-age", 0, "garbage-collect index files unused for longer than this duration (0 = no age bound)")
		verbose  = flag.Bool("v", false, "emit per-run metric comments")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale: *scale, Workers: *workers, Out: os.Stdout, Verbose: *verbose,
		IndexDir:    *indexDir,
		IndexPolicy: ixdisk.SavePolicy{DBOnly: *ixDBOnly},
		IndexGC:     ixdisk.GCConfig{MaxBytes: *ixMaxMB << 20, MaxAge: *ixMaxAge},
	}
	fmt.Printf("## Experiment run — scale 1/%d, %d worker(s), %s\n\n",
		*scale, *workers, time.Now().Format("2006-01-02 15:04:05"))
	h, err := experiments.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	runners := map[string]func(){
		"datasets":      h.Datasets,
		"fig3":          h.Fig3,
		"fig3-plot":     h.Fig3Plot,
		"speedup-est":   h.SpeedupEST,
		"speedup-large": h.SpeedupLarge,
		"sens-est":      h.SensitivityEST,
		"sens-large":    h.SensitivityLarge,
		"asymmetric":    h.Asymmetric,
		"parallel":      h.Parallel,
		"ordered-rule":  h.OrderedRule,
		"wsweep":        h.WSweep,
		"dust":          h.Dust,
		"seed-order":    h.SeedOrder,
		"threeway":      h.ThreeWay,
		"all":           h.All,
	}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		run()
	}

	if store := h.Store(); store != nil {
		ix := h.IndexCache()
		fmt.Fprintf(os.Stderr,
			"experiments: index store: %d builds, %d disk hits (%d suffix extensions), %d declined saves, %d store errors (%s)\n",
			ix.Builds(), ix.DiskHits(), store.Extends(), store.SavesDeclined(),
			ix.DiskErrors()+store.WriteBackErrors(), *indexDir)
		if *ixMaxMB > 0 || *ixMaxAge > 0 {
			st, _, err := h.StoreGC()
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "experiments: index store gc: %s\n", st)
		}
	}

	if *check {
		fmt.Println("### Shape checks")
		fmt.Println()
		failed := false
		for _, f := range h.CheckShapes() {
			fmt.Println("-", f)
			if strings.HasPrefix(f, "[FAIL]") {
				failed = true
			}
		}
		fmt.Println()
		if failed {
			os.Exit(1)
		}
	}
}
