// Command scorisd is the long-lived comparison service: the intensive
// bank-vs-bank workload of the paper served over HTTP from prepared
// indexes instead of re-run as one-shot CLI invocations.
//
//	scorisd -addr :7333 -index-dir .ixstore -bank db=est_db.fasta
//
// Banks registered at startup (-bank, repeatable) or at runtime
// (POST /banks) are indexed on first touch and never again: the shared
// in-process cache single-flights concurrent builds, and with
// -index-dir the on-disk store tier makes even process restarts warm
// (zero builds, proven live by GET /stats).
//
//	curl -s localhost:7333/v1/banks -d '{"name":"q1","path":"run1.fasta"}'
//	curl -s localhost:7333/v1/compare -d '{"db":"db","query":"q1"}' > run1.m8
//	curl -s localhost:7333/v1/stats | jq .cache.builds
//
// The API is versioned under /v1/; the bare legacy paths remain as
// deprecated aliases that answer identically while setting a
// Deprecation header (DESIGN.md §8).
//
// Results also flow instead of accumulating: ask for a streamed compare
// (Accept: text/x-m8-stream, backpressure bounded by -stream-buffer),
// batch many query banks under one admission slot (POST /compare/batch),
// or decouple a long compare from its request entirely (POST /jobs,
// bounded by -max-jobs). See DESIGN.md §10 for the lifecycle and the
// X-Scoris-Status trailer contract.
//
// Concurrency is bounded: at most -max-concurrent compares run at once,
// at most -queue more wait, and anything beyond that is rejected with
// 429 (fast backpressure instead of unbounded queueing). Each request's
// Workers option is clamped to -request-workers so one compare cannot
// monopolize the machine. On SIGINT/SIGTERM the server stops accepting
// and drains in-flight compares before exiting (bounded by
// -drain-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/bank"
	"repro/internal/cliflag"
	"repro/internal/ixdisk"
	"repro/internal/server"
)

func main() {
	var bankSpecs cliflag.Multi
	var (
		addr         = flag.String("addr", ":7333", "listen address")
		maxConc      = flag.Int("max-concurrent", 0, "comparison worker pool size (0 = all cores)")
		queue        = flag.Int("queue", 0, "admitted requests allowed to wait beyond the running ones before 429 (0 = 2×max-concurrent, negative = none)")
		reqWorkers   = flag.Int("request-workers", 0, "per-request Workers cap (0 = cores/max-concurrent, floor 1)")
		cacheEntries = flag.Int("cache", 0, "in-memory index cache bound in entries (0 = default)")
		maxBanks     = flag.Int("max-banks", 0, "registry bound: registrations past this many banks are refused — each bank pins its sequence data in memory; DELETE /banks releases spent ones (0 = default 1024)")
		indexDir     = flag.String("index-dir", "", "persistent on-disk index store directory (same store the scoris CLI uses): restarts then serve with zero index builds")
		ixSave       = flag.String("index-save", "all", "store save policy: 'all' persists every built index, 'db' persists only banks registered as db banks")
		ixMinSave    = flag.Int("index-min-save", 0, "decline persisting banks smaller than this many bases (0 = no floor; db banks are always persisted)")
		ixMaxMB      = flag.Int64("index-max-mb", 0, "garbage-collect the index store down to this many megabytes, oldest files first (0 = unbounded)")
		ixMaxAge     = flag.Duration("index-max-age", 0, "garbage-collect index files unused for longer than this duration (0 = no age bound)")
		streamBuf    = flag.Int("stream-buffer", 0, "streamed-compare backpressure bound: how many finished query-sequence groups the engine may run ahead of a slow client before it blocks (0 = default 4)")
		maxJobs      = flag.Int("max-jobs", 0, "async job registry bound: queued, running, and finished-but-unretrieved jobs all count; POST /jobs past this answers 429 (0 = default 32)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight compares to finish")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-compare deadline: a compare still running past this answers 504 and its slot frees when the engine finishes (0 = no deadline)")
		registerWith = flag.String("register", "", "scoris-router base URL to self-register with at startup (e.g. http://router:7400); retried in the background until it succeeds")
		advertise    = flag.String("advertise", "", "URL this worker is reachable at, as told to the router (required with -register)")
		workerName   = flag.String("worker-name", "", "name to register under with -register (default: the -advertise URL)")
	)
	flag.Var(&bankSpecs, "bank", "bank to register at startup, as [name=]path.fasta (repeatable); startup banks are registered as long-lived db banks")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: scorisd [-addr :7333] [-bank [name=]db.fasta ...] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if *registerWith != "" && *advertise == "" {
		fatal(errors.New("-register needs -advertise (the URL the router should reach this worker at)"))
	}

	cfg := server.Config{
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queue,
		RequestWorkers: *reqWorkers,
		CacheEntries:   *cacheEntries,
		MaxBanks:       *maxBanks,
		RequestTimeout: *reqTimeout,
		StreamBuffer:   *streamBuf,
		MaxJobs:        *maxJobs,
	}
	if *indexDir != "" {
		store, err := ixdisk.NewDirStore(*indexDir)
		fatal(err)
		switch *ixSave {
		case "all":
			store.SetSavePolicy(ixdisk.SavePolicy{MinBases: *ixMinSave})
		case "db":
			store.SetSavePolicy(ixdisk.SavePolicy{DBOnly: true, MinBases: *ixMinSave})
		default:
			fatal(fmt.Errorf("invalid -index-save %q (use all or db)", *ixSave))
		}
		store.SetGC(ixdisk.GCConfig{MaxBytes: *ixMaxMB << 20, MaxAge: *ixMaxAge})
		cfg.Store = store
	}
	srv := server.New(cfg)

	// Startup banks are by definition the long-lived side of the
	// workload, so they register as db banks (MarkDB'd into the store
	// when one is configured).
	for _, spec := range bankSpecs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			name, path = filepath.Base(spec), spec
		}
		b, err := bank.FromFile(name, path)
		fatal(err)
		fatal(srv.RegisterBank(name, b, true))
		fmt.Fprintf(os.Stderr, "scorisd: registered db bank %q: %d sequences, %.3f Mbp\n",
			name, b.NumSeqs(), b.Mbp())
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Graceful shutdown: the first SIGINT/SIGTERM stops the listener
	// and drains in-flight compares; the process exits 0 only once the
	// drain completes (a second signal kills it the usual way, since
	// the context restores default signal handling after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop() // no-op after the explicit post-signal stop below

	errc := make(chan error, 1)
	go func() {
		ecfg := srv.Config()
		fmt.Fprintf(os.Stderr, "scorisd: listening on %s (pool %d, queue %d, %d workers per request)\n",
			*addr, ecfg.MaxConcurrent, ecfg.QueueDepth, ecfg.RequestWorkers)
		errc <- hs.ListenAndServe()
	}()

	// Fleet self-registration: announce this worker to the router in
	// the background, retrying until it answers (the router may start
	// after its workers). Registration is idempotent, so re-announcing
	// after a router restart is equally safe.
	if *registerWith != "" {
		name := *workerName
		if name == "" {
			name = *advertise
		}
		go func() {
			body := fmt.Sprintf(`{"name":%q,"url":%q}`, name, *advertise)
			for {
				resp, err := http.Post(strings.TrimRight(*registerWith, "/")+"/workers",
					"application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						fmt.Fprintf(os.Stderr, "scorisd: registered with router %s as %q (%s)\n",
							*registerWith, name, *advertise)
						return
					}
					err = fmt.Errorf("router answered HTTP %d", resp.StatusCode)
				}
				fmt.Fprintf(os.Stderr, "scorisd: router registration: %v (retrying)\n", err)
				select {
				case <-ctx.Done():
					return
				case <-time.After(2 * time.Second):
				}
			}
		}()
	}

	select {
	case err := <-errc:
		// Listener failed before any signal (port in use, etc.).
		fatal(err)
	case <-ctx.Done():
	}
	// Restore default signal handling NOW, not at main exit: a second
	// SIGINT/SIGTERM during a slow drain must kill the process the
	// usual way instead of being swallowed by the still-registered
	// Notify channel.
	stop()
	// Flip readiness BEFORE the listener stops: a router probing
	// /readyz sees "draining" on its next sweep and routes new compares
	// to the other replicas while this process finishes its in-flight
	// work.
	srv.SetDraining(true)
	fmt.Fprintln(os.Stderr, "scorisd: shutting down: draining in-flight compares")
	sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "scorisd: drain incomplete:", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	st := srv.StatsSnapshot()
	fmt.Fprintf(os.Stderr, "scorisd: drained; served %d compares (%d rejected), %d index builds, %d disk hits\n",
		st.Server.Compares, st.Server.Rejected, st.Cache.Builds, st.Cache.DiskHits)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scorisd:", err)
		os.Exit(1)
	}
}
