// Command bankgen materializes the synthetic GenBank-substitute data
// set (DESIGN.md §3) as FASTA files, so the scoris and goblastn
// binaries can be run on the paper's bank pairs from the shell.
//
//	bankgen -out testdata/banks -scale 16            # all 11 banks
//	bankgen -out /tmp -scale 16 -bank EST1 -bank H10 # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bank"
	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/simulate"
)

type bankList []string

func (b *bankList) String() string     { return strings.Join(*b, ",") }
func (b *bankList) Set(v string) error { *b = append(*b, v); return nil }

func main() {
	var banks bankList
	var (
		outDir = flag.String("out", "testdata/banks", "output directory")
		scale  = flag.Int("scale", 16, "bank size divisor relative to the paper (§3.2 table)")
		quiet  = flag.Bool("q", false, "suppress the summary table")
	)
	flag.Var(&banks, "bank", "bank to generate (repeatable; default all)")
	flag.Parse()

	want := map[simulate.PaperBank]bool{}
	if len(banks) == 0 {
		for _, pb := range simulate.AllPaperBanks {
			want[pb] = true
		}
	} else {
		valid := map[string]bool{}
		for _, pb := range simulate.AllPaperBanks {
			valid[string(pb)] = true
		}
		for _, name := range banks {
			if !valid[name] {
				fmt.Fprintf(os.Stderr, "bankgen: unknown bank %q (valid: %v)\n",
					name, simulate.AllPaperBanks)
				os.Exit(2)
			}
			want[simulate.PaperBank(name)] = true
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	ds := simulate.NewDataSet(*scale)
	if !*quiet {
		fmt.Printf("%-6s %10s %12s  %s\n", "bank", "#seq", "Mbp", "file")
	}
	for _, pb := range simulate.AllPaperBanks {
		if !want[pb] {
			continue
		}
		b := ds.Get(pb)
		path := filepath.Join(*outDir, string(pb)+".fasta")
		if err := writeBank(b, path); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("%-6s %10d %12.3f  %s\n", pb, b.NumSeqs(), b.Mbp(), path)
		}
	}
}

func writeBank(b *bank.Bank, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := fasta.NewWriter(f)
	for i := 0; i < b.NumSeqs(); i++ {
		rec := &fasta.Record{ID: b.SeqID(i), Desc: b.SeqDesc(i), Seq: dna.Decode(b.SeqCodes(i))}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bankgen:", err)
	os.Exit(1)
}
