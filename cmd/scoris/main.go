// Command scoris is the SCORIS-N program of the paper: intensive
// DNA-bank comparison with the ORIS algorithm, producing BLAST -m 8
// tabular output.
//
// Flags loosely mirror the blastall invocation of paper §3.3:
//
//	scoris -d bankA.fasta -i bankB.fasta -o result.m8 -e 0.001 -S 1
//
// Bank A (-d) is the subject/database bank, bank B (-i) the query bank.
// -i repeats: the database bank is loaded and indexed exactly once and
// the prepared index is reused for every query bank, so
//
//	scoris -d est_db.fasta -i run1.fasta -i run2.fasta -i run3.fasta
//
// costs one index build plus three comparisons, not three of each.
// -index-dir extends the amortization across processes: indexes are
// persisted to (and mmap-loaded from) the given directory, so a repeat
// invocation against the same banks performs zero index builds:
//
//	scoris -d est_db.fasta -i run1.fasta -index-dir .ixstore   # builds, saves
//	scoris -d est_db.fasta -i run2.fasta -index-dir .ixstore   # loads, 0 builds for the db
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	scoris "repro"
	"repro/internal/cliflag"
)

func main() {
	var qPaths cliflag.Multi
	var (
		dbPath    = flag.String("d", "", "subject bank FASTA (bank 1, required)")
		outPath   = flag.String("o", "", "output file (default stdout)")
		w         = flag.Int("W", 11, "seed length")
		evalue    = flag.Float64("e", 1e-3, "E-value cutoff")
		strand    = flag.Int("S", 1, "strand: 1 = single (paper mode), 3 = both")
		dust      = flag.Bool("F", true, "low-complexity filter")
		workers   = flag.Int("a", 0, "worker goroutines (0 = all cores)")
		asym      = flag.Bool("asymmetric", false, "10-nt half-word indexing of bank 1 (paper §3.4; forces W=10)")
		self      = flag.Bool("self", false, "self-comparison mode: -d and -i are the same bank; report the upper triangle only")
		parallel3 = flag.Bool("p3", false, "parallelize step 3 over diagonal bands")
		match     = flag.Int("r", 1, "match reward")
		mismatch  = flag.Int("q", 3, "mismatch penalty")
		gapOpen   = flag.Int("G", 5, "gap open penalty")
		gapExt    = flag.Int("E", 2, "gap extend penalty")
		format    = flag.Int("m", 8, "output format: 8 = tabular (paper mode), 0 = full pairwise alignments")
		indexDir  = flag.String("index-dir", "", "directory for persistent on-disk bank indexes: indexes found there are loaded (mmap) instead of rebuilt — or suffix-extended when the bank has only been appended to — and fresh builds are written back, so repeated invocations against the same banks start warm")
		ixSave    = flag.String("index-save", "all", "store save policy: 'all' persists every built index, 'db' persists only the -d bank's (single-use query indexes never hit disk)")
		ixMinSave = flag.Int("index-min-save", 0, "decline persisting banks smaller than this many bases (0 = no floor; the -d bank is always persisted)")
		ixMaxMB   = flag.Int64("index-max-mb", 0, "garbage-collect the index store down to this many megabytes, oldest files first (0 = unbounded)")
		ixMaxAge  = flag.Duration("index-max-age", 0, "garbage-collect index files unused for longer than this duration, e.g. 720h (0 = no age bound)")
		ixProbe   = flag.String("index-probe", "", "print the named .orix index file's metadata (format version, bank identity, block directory) as key: value lines and exit; no comparison is run")
		verbose   = flag.Bool("v", false, "print per-step metrics to stderr")
	)
	flag.Var(&qPaths, "i", "query bank FASTA (bank 2; repeatable — the -d index is built once and reused)")
	flag.Parse()
	if *ixProbe != "" {
		fatal(probeIndexFile(os.Stdout, *ixProbe))
		return
	}
	if *dbPath == "" || (len(qPaths) == 0 && !*self) {
		fmt.Fprintln(os.Stderr, "usage: scoris -d bankA.fasta -i bankB.fasta [-i bankC.fasta ...] [flags]")
		fmt.Fprintln(os.Stderr, "       scoris -d genome.fasta -self [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	// -self compares -d against itself; combining it with -i would
	// silently ignore the query banks, so a typo'd -self could pass for
	// the intended query run. Refuse the combination loudly instead.
	if *self && len(qPaths) > 0 {
		fmt.Fprintf(os.Stderr, "scoris: -self compares the -d bank against itself and takes no -i query banks (%d given); drop -self or the -i flags\n", len(qPaths))
		os.Exit(2)
	}

	// The display name doubles as the store's filename prefix (the
	// probe for append-aware reuse filters on it), so derive it from
	// the FASTA basename: distinct db banks sharing one -index-dir then
	// keep distinct file lineages instead of all piling up under one
	// generic name.
	bank1, err := scoris.LoadBank(filepath.Base(*dbPath), *dbPath)
	fatal(err)

	opt := scoris.DefaultOptions()
	opt.W = *w
	opt.MaxEValue = *evalue
	opt.Dust = *dust
	opt.Workers = *workers
	opt.ParallelStep3 = *parallel3
	opt.Scoring.Match = *match
	opt.Scoring.Mismatch = *mismatch
	opt.Scoring.GapOpen = *gapOpen
	opt.Scoring.GapExtend = *gapExt
	if *asym {
		opt.W = 10
		opt.Asymmetric = true
	}
	if *strand == 3 {
		opt.Strand = scoris.BothStrands
	}
	opt.SkipSelfPairs = *self

	// Buffered, checked output: Finish (flush + close, both checked)
	// runs before the zero exit so a failed or short write — ENOSPC,
	// quota, a flush-at-close filesystem — exits non-zero instead of
	// leaving a silently truncated m8 file behind.
	out, err := cliflag.OpenOutput(*outPath)
	fatal(err)

	// The cache makes the persistent-db behavior explicit: bank 1's
	// index is built on the first pair and every later -i reuses it.
	// Bound 2 keeps exactly {db, current query} resident — each job's
	// Get order is db first, so the db entry is always most-recent of
	// the two and the previous query's single-use index is what evicts.
	cache := scoris.NewIndexCache(2)

	// -index-dir adds the cross-process tier: cache misses consult the
	// directory before building (exact match first, then append-aware
	// suffix extension of a stored prefix), and builds are written back,
	// so a second invocation against the same banks performs zero
	// builds. The policy/GC flags keep the store operable under
	// sustained traffic instead of growing without bound.
	var store *scoris.DirIndexStore
	if *indexDir != "" {
		var err error
		store, err = scoris.NewDirIndexStore(*indexDir)
		fatal(err)
		switch *ixSave {
		case "all":
			store.SetSavePolicy(scoris.IndexSavePolicy{MinBases: *ixMinSave})
		case "db":
			store.SetSavePolicy(scoris.IndexSavePolicy{DBOnly: true, MinBases: *ixMinSave})
		default:
			fatal(fmt.Errorf("invalid -index-save %q (use all or db)", *ixSave))
		}
		store.MarkDB(bank1) // the -d bank is the long-lived side
		store.SetGC(scoris.IndexGCConfig{MaxBytes: *ixMaxMB << 20, MaxAge: *ixMaxAge})
		cache.SetStore(store)
	}

	// Self mode compares the db bank against itself; -i is ignored
	// (SkipSelfPairs is only defined on one shared coordinate space).
	jobs := qPaths
	if *self {
		jobs = cliflag.Multi{*dbPath}
	}

	for _, qp := range jobs {
		bank2 := bank1
		if !*self {
			// Query banks load lazily, one job at a time, so peak memory
			// is O(db + one query bank) however many -i are given.
			bank2, err = scoris.LoadBank(filepath.Base(qp), qp)
			fatal(err)
		}
		t0 := time.Now()
		p1, p2, err := scoris.Prepare(cache, bank1, bank2, opt)
		fatal(err)
		prepTime := time.Since(t0)
		res, err := scoris.CompareWithIndex(p1, p2, opt)
		fatal(err)
		elapsed := time.Since(t0)
		writeResult(out.W, res, bank1, bank2, opt, *format)

		if *verbose {
			m := res.Metrics
			fmt.Fprintf(os.Stderr, "scoris: %s vs %s: %d alignments in %.2fs (db index cached: %d builds for %d lookups)\n",
				*dbPath, qp, len(res.Alignments), elapsed.Seconds(),
				cache.Builds(), cache.Lookups())
			// prepTime is this job's actual build cost (zero on a cache
			// hit); m.IndexTime adds any in-comparison build such as the
			// BothStrands reverse-complement index.
			fmt.Fprintf(os.Stderr, "  step1 index   %8.3fs (%d + %d positions)\n",
				(prepTime + m.IndexTime).Seconds(), m.IndexedBank1, m.IndexedBank2)
			fmt.Fprintf(os.Stderr, "  step2 ungapped%8.3fs (%d hit pairs, %d aborted, %d HSPs)\n",
				m.Step2Time.Seconds(), m.HitPairs, m.Aborted, m.HSPs)
			fmt.Fprintf(os.Stderr, "  step3 gapped  %8.3fs (%d extensions, %d covered)\n",
				m.Step3Time.Seconds(), m.GappedExtensions, m.SkippedCovered)
			fmt.Fprintf(os.Stderr, "  step4 output  %8.3fs\n", m.Step4Time.Seconds())
		}
	}

	// All jobs wrote; the results are complete only once they are
	// flushed and the file is closed, both checked — exit non-zero
	// otherwise.
	fatal(out.Finish())

	// The store summary is the cross-process contract line CI asserts
	// on: a warm invocation must report 0 builds, and an invocation
	// against an appended-to bank must report a suffix extension
	// instead of a rebuild.
	if store != nil {
		// Declined saves and write-back errors come from the store's
		// counters, not only the cache's: extension write-backs never
		// pass through the cache's save path.
		fmt.Fprintf(os.Stderr,
			"scoris: index store: %d builds, %d disk hits (%d suffix extensions), %d block loads, %d block appends, %d lookups, %d declined saves, %d store errors (%s)\n",
			cache.Builds(), cache.DiskHits(), store.Extends(), store.BlockLoads(), store.BlockAppends(),
			cache.Lookups(), store.SavesDeclined(), cache.DiskErrors()+store.WriteBackErrors(), *indexDir)
		// A final explicit collection so age caps apply even on runs
		// that saved nothing (the save-triggered GC only runs on
		// writes); the stats line is what CI's shrink assertion reads.
		if *ixMaxMB > 0 || *ixMaxAge > 0 {
			st, err := store.GC()
			fatal(err)
			fmt.Fprintf(os.Stderr, "scoris: index store gc: %s\n", st)
		}
	}
}

// probeIndexFile serves -index-probe: the stored file's metadata as
// stable key: value lines (CI's persistence job parses blocks and
// prefix_bytes to assert O(suffix) appends byte-for-byte).
func probeIndexFile(out io.Writer, path string) error {
	info, err := scoris.ProbeIndexFile(path)
	if err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "file: %s\n", path)
	fmt.Fprintf(out, "version: %d\n", info.Version)
	fmt.Fprintf(out, "sequences: %d\n", info.NumSeqs)
	fmt.Fprintf(out, "data_bytes: %d\n", info.DataLen)
	fmt.Fprintf(out, "bank_crc: %016x\n", info.BankCRC)
	fmt.Fprintf(out, "blocks: %d\n", len(info.Blocks))
	// prefix_bytes is the append-invariant boundary: every byte before
	// it survives an in-place append unchanged (v3; the whole file for
	// v2, which appends never reuse in place).
	fmt.Fprintf(out, "prefix_bytes: %d\n", info.PayloadEnd)
	fmt.Fprintf(out, "file_bytes: %d\n", fi.Size())
	for i, bl := range info.Blocks {
		fmt.Fprintf(out, "block[%d]: seqs [%d,%d) data [%d,%d) at %d len %d\n",
			i, bl.SeqLo, bl.SeqHi, bl.DataLo, bl.DataHi, bl.Offset, bl.Length)
	}
	return nil
}

func writeResult(out io.Writer, res *scoris.Result, bank1, bank2 *scoris.Bank, opt scoris.Options, format int) {
	switch format {
	case 8:
		fatal(scoris.WriteM8(out, res, bank1, bank2))
	case 0:
		fatal(scoris.WritePairwise(out, res, bank1, bank2, opt))
	default:
		fatal(fmt.Errorf("unsupported output format -m %d (use 8 or 0)", format))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoris:", err)
		os.Exit(1)
	}
}
