package scoris

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/tabular"
)

// runTool builds nothing: `go run` compiles and executes the command,
// exercising the real CLI surface end to end.
func runTool(t *testing.T, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go run %v: %v\nstderr:\n%s", args, err, stderr.String())
	}
	return stdout.String(), stderr.String()
}

// runToolExpectError is runTool's failure twin: the command must exit
// non-zero, and its stderr is returned for message assertions.
func runToolExpectError(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go run %v: expected a non-zero exit, got success\nstderr:\n%s", args, stderr.String())
	}
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("go run %v: did not run: %v", args, err)
	}
	return stderr.String()
}

func TestCLIPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()

	// 1. Generate two small banks.
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")
	for _, p := range []string{est1, est2} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("bankgen did not write %s: %v", p, err)
		}
	}

	// 2. Run both engines.
	scorisOut := filepath.Join(dir, "scoris.m8")
	blastOut := filepath.Join(dir, "blastn.m8")
	_, serr := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", scorisOut, "-v")
	if !strings.Contains(serr, "step2") {
		t.Errorf("scoris -v did not print step metrics: %q", serr)
	}
	runTool(t, "./cmd/goblastn", "-d", est1, "-i", est2, "-o", blastOut)

	sRecs, err := tabular.ReadFile(scorisOut)
	if err != nil {
		t.Fatal(err)
	}
	bRecs, err := tabular.ReadFile(blastOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(sRecs) == 0 || len(bRecs) == 0 {
		t.Fatalf("engines found nothing: scoris %d, blastn %d", len(sRecs), len(bRecs))
	}

	// 3. Diff the outputs with the paper's method.
	diff, _ := runTool(t, "./cmd/m8diff", scorisOut, blastOut)
	if !strings.Contains(diff, "missing from A") || !strings.Contains(diff, "missing from B") {
		t.Errorf("m8diff output malformed:\n%s", diff)
	}
}

// TestCLIIndexStoreWarmStart is the in-repo twin of the CI persistence
// job: two scoris invocations sharing an -index-dir, where the second
// must perform zero index builds (both indexes come off disk) and
// still produce byte-identical output.
func TestCLIIndexStoreWarmStart(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")
	ixDir := filepath.Join(dir, "ixstore")
	coldOut := filepath.Join(dir, "cold.m8")
	warmOut := filepath.Join(dir, "warm.m8")

	_, cold := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", coldOut, "-index-dir", ixDir)
	if !strings.Contains(cold, "index store: 2 builds") || !strings.Contains(cold, "0 disk hits") {
		t.Errorf("cold run should build db+query indexes and hit nothing:\n%s", cold)
	}

	_, warm := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", warmOut, "-index-dir", ixDir)
	if !strings.Contains(warm, "index store: 0 builds") || !strings.Contains(warm, "2 disk hits") ||
		!strings.Contains(warm, "(0 suffix extensions)") {
		t.Errorf("warm run must perform zero builds with 2 exact disk hits:\n%s", warm)
	}

	coldBytes, err := os.ReadFile(coldOut)
	if err != nil {
		t.Fatal(err)
	}
	warmBytes, err := os.ReadFile(warmOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldBytes) == 0 || !bytes.Equal(coldBytes, warmBytes) {
		t.Errorf("warm output differs from cold (cold %d bytes, warm %d bytes)",
			len(coldBytes), len(warmBytes))
	}
}

// TestCLIIndexStoreAppendExtend is the in-repo twin of the CI
// append-extension step: after a warm store exists, appending one
// sequence to the db bank must be satisfied by a suffix extension
// (zero builds), and the output must be byte-identical to a cold run
// against the appended bank.
func TestCLIIndexStoreAppendExtend(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")
	ixDir := filepath.Join(dir, "ixstore")

	// Cold run populates the store.
	runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", filepath.Join(dir, "pre.m8"), "-index-dir", ixDir)

	// Append one sequence to the db bank.
	f, err := os.OpenFile(est1, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(">appended synthetic read\nACGTTGCAACGTTGCAACGTTGCATTACGGATCCAT\n"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	extOut := filepath.Join(dir, "ext.m8")
	_, ext := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", extOut, "-index-dir", ixDir)
	if !strings.Contains(ext, "index store: 0 builds") ||
		!strings.Contains(ext, "2 disk hits (1 suffix extensions)") {
		t.Errorf("appended db bank should extend, not rebuild:\n%s", ext)
	}

	// Byte-identical to a cold full build of the appended bank.
	coldOut := filepath.Join(dir, "cold-appended.m8")
	runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", coldOut)
	extBytes, err := os.ReadFile(extOut)
	if err != nil {
		t.Fatal(err)
	}
	coldBytes, err := os.ReadFile(coldOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(extBytes) == 0 || !bytes.Equal(extBytes, coldBytes) {
		t.Errorf("extended-index output differs from cold build (%d vs %d bytes)",
			len(extBytes), len(coldBytes))
	}

	// One more warm run exact-hits the extended index saved above.
	_, warm := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", filepath.Join(dir, "warm.m8"), "-index-dir", ixDir)
	if !strings.Contains(warm, "index store: 0 builds") || !strings.Contains(warm, "(0 suffix extensions)") {
		t.Errorf("extension was not written back under the exact key:\n%s", warm)
	}
}

// TestCLIIndexStoreGC: a size cap shrinks the store and reports it.
func TestCLIIndexStoreGC(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")
	ixDir := filepath.Join(dir, "ixstore")

	runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", filepath.Join(dir, "a.m8"), "-index-dir", ixDir)
	entries, err := os.ReadDir(ixDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("store not populated: %v (%d entries)", err, len(entries))
	}

	// The smallest expressible size cap is 1 MB — far above these tiny
	// indexes — so drive the shrink with the age cap instead: age
	// everything out and assert the store empties.
	_, gc := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", filepath.Join(dir, "b.m8"),
		"-index-dir", ixDir, "-index-max-age", "1ns")
	if !strings.Contains(gc, "index store gc:") {
		t.Errorf("no gc summary line:\n%s", gc)
	}
	entries, err = os.ReadDir(ixDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".orix") {
			t.Errorf("store still holds %s after an age-everything-out GC", e.Name())
		}
	}
}

// TestCLIGoblastnIndexDirWarns: the satellite contract — goblastn
// accepts -index-dir for script parity but must say, unconditionally,
// that it does nothing, so users don't believe BLASTN runs warm-start.
func TestCLIGoblastnIndexDirWarns(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	_, stderr := runTool(t, "./cmd/goblastn",
		"-d", filepath.Join(dir, "EST1.fasta"),
		"-i", filepath.Join(dir, "EST2.fasta"),
		"-o", filepath.Join(dir, "out.m8"),
		"-index-dir", filepath.Join(dir, "ixstore"))
	if !strings.Contains(stderr, "goblastn: warning: -index-dir has no effect") {
		t.Errorf("no unconditional -index-dir warning on stderr:\n%s", stderr)
	}
	// Without the flag there is no warning noise.
	_, clean := runTool(t, "./cmd/goblastn",
		"-d", filepath.Join(dir, "EST1.fasta"),
		"-i", filepath.Join(dir, "EST2.fasta"),
		"-o", filepath.Join(dir, "out2.m8"))
	if strings.Contains(clean, "warning") {
		t.Errorf("spurious warning without -index-dir:\n%s", clean)
	}
}

// TestCLIOutputWriteFailureExitsNonZero is the -o truncation
// regression: a failing output sink (/dev/full returns ENOSPC on
// flush) must exit non-zero with a write error on stderr — never exit
// 0 over a silently truncated m8 file. Covers both CLIs.
func TestCLIOutputWriteFailureExitsNonZero(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available on this platform")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")

	// Sanity: the pair produces output, so the sink really gets bytes.
	out, _ := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2)
	if len(out) == 0 {
		t.Fatal("degenerate test: scoris produced no output")
	}

	stderr := runToolExpectError(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", "/dev/full")
	if !strings.Contains(stderr, "/dev/full") {
		t.Errorf("scoris write-failure stderr does not name the output file:\n%s", stderr)
	}
	stderr = runToolExpectError(t, "./cmd/goblastn", "-d", est1, "-i", est2, "-o", "/dev/full")
	if !strings.Contains(stderr, "/dev/full") {
		t.Errorf("goblastn write-failure stderr does not name the output file:\n%s", stderr)
	}
}

// TestCLISelfWithQueriesIsUsageError: -self silently ignored -i banks
// before; now the contradiction is refused up front so a typo'd -self
// cannot masquerade as the intended query run.
func TestCLISelfWithQueriesIsUsageError(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")

	stderr := runToolExpectError(t, "./cmd/scoris", "-d", est1, "-i", est2, "-self")
	if !strings.Contains(stderr, "-self") || !strings.Contains(stderr, "-i") {
		t.Errorf("usage error does not explain the -self/-i conflict:\n%s", stderr)
	}

	// Each mode alone still works and produces output. The self leg
	// needs a larger bank: at -scale 256 EST1's self-comparison is
	// legitimately empty, so it would assert nothing.
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "64", "-q", "-bank", "EST1")
	out, _ := runTool(t, "./cmd/scoris", "-d", est1, "-self")
	if len(out) == 0 {
		t.Error("-self alone broken: no output")
	}
	out2, _ := runTool(t, "./cmd/scoris", "-d", est1, "-i", est2)
	if len(out2) == 0 {
		t.Error("plain query run broken")
	}
}

func TestCLIPairwiseOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	out, _ := runTool(t, "./cmd/scoris",
		"-d", filepath.Join(dir, "EST1.fasta"),
		"-i", filepath.Join(dir, "EST2.fasta"),
		"-m", "0")
	if !strings.Contains(out, "Query=") || !strings.Contains(out, "Sbjct") {
		t.Errorf("-m 0 did not produce pairwise blocks:\n%.400s", out)
	}
}

// TestCLIScorisdServe drives the real scorisd binary end to end: start
// it on fixture banks, register a query bank over HTTP, compare, check
// the streamed m8 is byte-identical to the scoris CLI's, read /stats,
// then SIGTERM it and require a clean drained exit.
func TestCLIScorisdServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256", "-q",
		"-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")

	// Build the daemon (signals must reach the server binary itself,
	// which `go run`'s wrapper does not guarantee).
	bin := filepath.Join(dir, "scorisd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/scorisd").CombinedOutput(); err != nil {
		t.Fatalf("building scorisd: %v\n%s", err, out)
	}

	// A port of our own choosing that was just free.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var stderr strings.Builder
	daemon := exec.Command(bin, "-addr", addr, "-bank", est1)
	daemon.Stderr = &stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	defer daemon.Process.Kill()
	base := "http://" + addr

	// Wait for the listener.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scorisd never came up: %v\nstderr:\n%s", err, stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Register the query bank, then compare.
	resp, err := http.Post(base+"/banks", "application/json",
		strings.NewReader(`{"name":"est2","path":"`+est2+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bank registration: status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/compare", "application/json",
		strings.NewReader(`{"db":"EST1.fasta","query":"est2"}`))
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("compare: status %d, %v", resp.StatusCode, err)
	}

	// Byte-identical to the CLI for the same pair.
	cliOut := filepath.Join(dir, "cli.m8")
	runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", cliOut)
	cliBytes, err := os.ReadFile(cliOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(served) == 0 || !bytes.Equal(served, cliBytes) {
		t.Errorf("served m8 differs from CLI output (%d vs %d bytes)", len(served), len(cliBytes))
	}

	// /stats reflects the two builds (db + query index).
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"builds":2`) {
		t.Errorf("stats does not report 2 builds:\n%s", stats)
	}

	// Graceful shutdown: SIGTERM → drained, exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err != nil {
		t.Fatalf("scorisd did not exit cleanly on SIGTERM: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "drained") {
		t.Errorf("no drain confirmation on stderr:\n%s", stderr.String())
	}
}

func TestCLIExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	out, _ := runTool(t, "./cmd/experiments", "-exp", "datasets", "-scale", "256")
	if !strings.Contains(out, "T1 — data sets") || !strings.Contains(out, "| H10 |") {
		t.Errorf("experiments datasets output malformed:\n%.400s", out)
	}
}

// TestCLIFleetServe is the fleet story end to end with real processes:
// three scorisd workers sharing one -index-dir (two fronted by
// scoris-router's -worker flags, one joining itself via -register),
// banks registered through the router, the db bank's primary owner
// SIGKILLed, and a wave of compares that must nevertheless come back
// byte-identical to the single-process CLI — with the retries visible
// in the router's ledger and a clean router drain at the end.
func TestCLIFleetServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test skipped in -short mode")
	}
	dir := t.TempDir()
	runTool(t, "./cmd/bankgen", "-out", dir, "-scale", "256",
		"-q", "-bank", "EST1", "-bank", "EST2")
	est1 := filepath.Join(dir, "EST1.fasta")
	est2 := filepath.Join(dir, "EST2.fasta")
	ixdir := filepath.Join(dir, "ixstore")

	workerBin := filepath.Join(dir, "scorisd")
	if out, err := exec.Command("go", "build", "-o", workerBin, "./cmd/scorisd").CombinedOutput(); err != nil {
		t.Fatalf("building scorisd: %v\n%s", err, out)
	}
	routerBin := filepath.Join(dir, "scoris-router")
	if out, err := exec.Command("go", "build", "-o", routerBin, "./cmd/scoris-router").CombinedOutput(); err != nil {
		t.Fatalf("building scoris-router: %v\n%s", err, out)
	}

	freeAddr := func() string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		return ln.Addr().String()
	}
	waddrs := []string{freeAddr(), freeAddr(), freeAddr()}
	raddr := freeAddr()
	base := "http://" + raddr

	// w1 and w2 are static -worker entries; w3 announces itself.
	procs := map[string]*exec.Cmd{}
	for i, wa := range waddrs {
		name := fmt.Sprintf("w%d", i+1)
		args := []string{"-addr", wa, "-index-dir", ixdir}
		if i == 2 {
			args = append(args, "-register", base, "-advertise", "http://"+wa, "-worker-name", name)
		}
		cmd := exec.Command(workerBin, args...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		defer cmd.Process.Kill()
		procs[name] = cmd
	}

	var routerErr strings.Builder
	router := exec.Command(routerBin, "-addr", raddr,
		"-worker", "w1=http://"+waddrs[0],
		"-worker", "w2=http://"+waddrs[1],
		"-probe-interval", "200ms", "-retry-base", "10ms")
	router.Stderr = &routerErr
	if err := router.Start(); err != nil {
		t.Fatal(err)
	}
	defer router.Process.Kill()

	// Wait until the router is up AND all three workers (w3 via its own
	// -register announcement) show as up.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/workers")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Count(string(body), `"state":"up"`) == 3 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged to 3 up workers\nrouter stderr:\n%s", routerErr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Register both banks through the router (path specs: the workers
	// load the FASTA themselves).
	for _, reg := range []string{
		`{"name":"db","path":"` + est1 + `","db":true}`,
		`{"name":"q","path":"` + est2 + `"}`,
	} {
		resp, err := http.Post(base+"/banks", "application/json", strings.NewReader(reg))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet bank registration: status %d: %s", resp.StatusCode, body)
		}
	}

	// The serial oracle for the same pair.
	cliOut := filepath.Join(dir, "cli.m8")
	runTool(t, "./cmd/scoris", "-d", est1, "-i", est2, "-o", cliOut)
	want, err := os.ReadFile(cliOut)
	if err != nil {
		t.Fatal(err)
	}

	compare := func() (int, []byte) {
		resp, err := http.Post(base+"/compare", "application/json",
			strings.NewReader(`{"db":"db","query":"q"}`))
		if err != nil {
			return -1, []byte(err.Error())
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Warm-up: the owner builds and persists both indexes to the shared
	// store.
	if status, body := compare(); status != http.StatusOK {
		t.Fatalf("warm-up fleet compare: status %d: %s\nrouter stderr:\n%s", status, body, routerErr.String())
	}

	// Find the db bank's primary owner and SIGKILL it, then run a
	// concurrent wave: zero client-visible failures, every body
	// byte-identical to the CLI.
	resp, err := http.Get(base + "/banks")
	if err != nil {
		t.Fatal(err)
	}
	var banks []struct {
		Name   string   `json:"name"`
		Owners []string `json:"owners"`
	}
	err = json.NewDecoder(resp.Body).Decode(&banks)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var owner string
	for _, b := range banks {
		if b.Name == "db" && len(b.Owners) > 0 {
			owner = b.Owners[0]
		}
	}
	if owner == "" {
		t.Fatalf("router reports no owner for the db bank: %+v", banks)
	}
	if err := procs[owner].Process.Kill(); err != nil {
		t.Fatal(err)
	}

	const waveN = 6
	statuses := make([]int, waveN)
	bodies := make([][]byte, waveN)
	var wg sync.WaitGroup
	for i := 0; i < waveN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], bodies[i] = compare()
		}(i)
	}
	wg.Wait()
	for i := range statuses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("wave compare %d after owner kill: status %d: %s\nrouter stderr:\n%s",
				i, statuses[i], bodies[i], routerErr.String())
		}
		if !bytes.Equal(bodies[i], want) {
			t.Errorf("wave compare %d differs from CLI output (%d vs %d bytes)", i, len(bodies[i]), len(want))
		}
	}

	// The ledger shows the failover happened.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Router struct {
			Retries   int64 `json:"retries"`
			Failovers int64 `json:"failovers"`
			Shed      int64 `json:"shed"`
		} `json:"router"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Router.Failovers < 1 || stats.Router.Retries < 1 {
		t.Errorf("owner kill left no ledger trace: %+v", stats.Router)
	}
	if stats.Router.Shed != 0 {
		t.Errorf("router shed %d compares with live replicas present", stats.Router.Shed)
	}

	// Router drains clean on SIGTERM.
	if err := router.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := router.Wait(); err != nil {
		t.Fatalf("scoris-router did not exit cleanly on SIGTERM: %v\nstderr:\n%s", err, routerErr.String())
	}
	if !strings.Contains(routerErr.String(), "drained; routed") {
		t.Errorf("no drain summary on router stderr:\n%s", routerErr.String())
	}
}
