// estpipeline reproduces the paper's motivating workload: intensive
// EST-bank-vs-EST-bank comparison (the first stage of, e.g., EST
// clustering workflows). It generates two EST-division-style banks that
// share a gene pool, runs SCORIS-N and the BLASTN baseline on the same
// pair, and reports the speed-up and the §3.4 sensitivity metrics —
// a miniature of the paper's tables 2/4/5.
//
//	go run ./examples/estpipeline [-reads 1500] [-workers 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	scoris "repro"
	"repro/internal/simulate"
)

func main() {
	reads := flag.Int("reads", 1500, "reads per EST bank")
	workers := flag.Int("workers", 1, "ORIS worker goroutines")
	flag.Parse()

	// Two EST banks sampling the same 300-gene pool: the classic
	// "compare two sequencing runs" job of the paper's introduction.
	pool := simulate.NewPool(42, 300, 900)
	mut := simulate.Mutation{Sub: 0.035, Indel: 0.004}
	bankA := simulate.EST(simulate.ESTSpec{
		Name: "run1", Seed: 1, NumSeqs: *reads, MeanLen: 500,
		GeneFraction: 0.5, Mut: mut, PolyATailFraction: 0.15,
	}, pool)
	bankB := simulate.EST(simulate.ESTSpec{
		Name: "run2", Seed: 2, NumSeqs: *reads, MeanLen: 500,
		GeneFraction: 0.5, Mut: mut, PolyATailFraction: 0.15,
	}, pool)
	fmt.Printf("bank %s: %d reads, %.2f Mbp\n", bankA.Name, bankA.NumSeqs(), bankA.Mbp())
	fmt.Printf("bank %s: %d reads, %.2f Mbp\n", bankB.Name, bankB.NumSeqs(), bankB.Mbp())
	fmt.Printf("search space: %.2f Mbp²\n\n", bankA.Mbp()*bankB.Mbp())

	// SCORIS-N, through the prepared-bank session API: each bank is
	// indexed exactly once, up front, and the comparison runs against
	// the prepared indexes — the pattern that amortizes the ORIS build
	// over every pair a real clustering run would compare.
	oOpt := scoris.DefaultOptions()
	oOpt.Workers = *workers
	t0 := time.Now()
	p1, p2, err := scoris.Prepare(nil, bankA, bankB, oOpt)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(t0)
	t0 = time.Now()
	ores, err := scoris.CompareWithIndex(p1, p2, oOpt)
	if err != nil {
		log.Fatal(err)
	}
	oTime := buildTime + time.Since(t0)
	fmt.Printf("SCORIS-N: %5d alignments in %6.2fs (index build %.2fs — paid once per bank, step2 %.2fs, step3 %.2fs)\n",
		len(ores.Alignments), oTime.Seconds(),
		buildTime.Seconds(), ores.Metrics.Step2Time.Seconds(),
		ores.Metrics.Step3Time.Seconds())

	// BLASTN baseline.
	t0 = time.Now()
	bres, err := scoris.CompareBlastn(bankA, bankB, scoris.DefaultBlastnOptions())
	if err != nil {
		log.Fatal(err)
	}
	bTime := time.Since(t0)
	fmt.Printf("BLASTN:   %5d alignments in %6.2fs (%d queries × %.2f Mbp scans)\n",
		len(bres.Alignments), bTime.Seconds(), bres.Metrics.Queries, bankA.Mbp())

	fmt.Printf("\nspeed-up: %.1f×\n", float64(bTime)/float64(oTime))

	// Paper §3.4 sensitivity metrics.
	rep := scoris.CompareSensitivity(
		scoris.ToM8(ores.Alignments, bankA, bankB),
		scoris.ToM8(bres.Alignments, bankA, bankB))
	fmt.Printf("\nsensitivity (80%% overlap equivalence):\n")
	fmt.Printf("  SCtotal %d   BLtotal %d\n", rep.SCTotal, rep.BLTotal)
	fmt.Printf("  SCmiss  %d   SCORISmiss %.2f%%\n", rep.SCMiss, rep.SCORISMissPct())
	fmt.Printf("  BLmiss  %d   BLASTmiss  %.2f%%\n", rep.BLMiss, rep.BLASTMissPct())
}
