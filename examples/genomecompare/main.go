// genomecompare exercises the paper's "large DNA sequences" scenario
// (§3, H10/H19-style banks): a few long chromosome-like sequences with
// repeat families, compared against a virus-division-style bank, on
// both strands — the feature the paper lists as future work for
// SCORIS-N ("Currently, the SCORIS-N prototype doesn't perform search
// on the complementary strand").
//
//	go run ./examples/genomecompare [-chrlen 400000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	scoris "repro"
	"repro/internal/simulate"
)

func main() {
	chrLen := flag.Int("chrlen", 400000, "chromosome length (bases)")
	flag.Parse()

	pool := simulate.NewPool(7, 200, 1000)
	chrom := simulate.Genomic(simulate.GenomicSpec{
		Name: "chr", Seed: 1, NumSeqs: 2, SeqLen: *chrLen,
		RepeatFamilies: 8, RepeatUnitLen: 400, RepeatCopies: 25,
		GeneDensity: 3, Mut: simulate.Mutation{Sub: 0.04, Indel: 0.004},
		LowComplexityDensity: 3,
	}, pool)
	viruses := simulate.EST(simulate.ESTSpec{
		Name: "vrl", Seed: 2, NumSeqs: 300, MeanLen: 900,
		GeneFraction: 0.3, Mut: simulate.Mutation{Sub: 0.06, Indel: 0.006},
	}, pool)
	fmt.Printf("bank %s: %d sequences, %.2f Mbp (repeats + low-complexity tracts)\n",
		chrom.Name, chrom.NumSeqs(), chrom.Mbp())
	fmt.Printf("bank %s: %d sequences, %.2f Mbp\n\n", viruses.Name, viruses.NumSeqs(), viruses.Mbp())

	for _, mode := range []struct {
		name   string
		strand scoris.Options
	}{
		{"single strand (paper mode, -S 1)", withStrand(false)},
		{"both strands (future-work feature)", withStrand(true)},
	} {
		t0 := time.Now()
		res, err := scoris.Compare(chrom, viruses, mode.strand)
		if err != nil {
			log.Fatal(err)
		}
		minus := 0
		for _, a := range res.Alignments {
			if a.Minus {
				minus++
			}
		}
		fmt.Printf("%-36s %5d alignments (%d on minus strand) in %.2fs, dust masked %d seeds\n",
			mode.name, len(res.Alignments), minus, time.Since(t0).Seconds(),
			res.Metrics.MaskedSeeds)
	}

	// Repeat behaviour (§4: "algorithm performances are not so good when
	// dealing with these specific sequences"): show the hit-pair blowup
	// without the dust filter.
	fmt.Println()
	for _, dustOn := range []bool{true, false} {
		opt := withStrand(false)
		opt.Dust = dustOn
		t0 := time.Now()
		res, err := scoris.Compare(chrom, viruses, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("dust=%-5v hit pairs %10d, HSPs %6d, time %.2fs\n",
			dustOn, res.Metrics.HitPairs, res.Metrics.HSPs, time.Since(t0).Seconds())
	}
}

func withStrand(both bool) scoris.Options {
	opt := scoris.DefaultOptions()
	if both {
		opt.Strand = scoris.BothStrands
	}
	return opt
}
