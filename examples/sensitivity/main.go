// sensitivity reproduces the paper's §3.4 evaluation method end to end
// on files: it runs both engines on a generated bank pair, writes the
// two m8 outputs to disk (exactly what the paper did with blastall -m 8
// and SCORIS-N's output), reads them back, and computes the
// missed-alignment tables with the 80%-overlap equivalence.
//
//	go run ./examples/sensitivity [-dir /tmp/sens]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	scoris "repro"
	"repro/internal/sensemetric"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

func main() {
	dir := flag.String("dir", "", "output directory (default: temp dir)")
	flag.Parse()
	outDir := *dir
	if outDir == "" {
		d, err := os.MkdirTemp("", "sens")
		if err != nil {
			log.Fatal(err)
		}
		outDir = d
	}

	pool := simulate.NewPool(99, 250, 850)
	mut := simulate.Mutation{Sub: 0.04, Indel: 0.005}
	bankA := simulate.EST(simulate.ESTSpec{Name: "A", Seed: 5, NumSeqs: 900,
		MeanLen: 500, GeneFraction: 0.5, Mut: mut}, pool)
	bankB := simulate.EST(simulate.ESTSpec{Name: "B", Seed: 6, NumSeqs: 900,
		MeanLen: 500, GeneFraction: 0.5, Mut: mut}, pool)

	// Run both engines and write their m8 files.
	ores, err := scoris.Compare(bankA, bankB, scoris.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	bres, err := scoris.CompareBlastn(bankA, bankB, scoris.DefaultBlastnOptions())
	if err != nil {
		log.Fatal(err)
	}
	scorisPath := filepath.Join(outDir, "scoris.m8")
	blastPath := filepath.Join(outDir, "blastn.m8")
	if err := tabular.WriteFile(scorisPath, scoris.ToM8(ores.Alignments, bankA, bankB)); err != nil {
		log.Fatal(err)
	}
	if err := tabular.WriteFile(blastPath, scoris.ToM8(bres.Alignments, bankA, bankB)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d alignments)\n", scorisPath, len(ores.Alignments))
	fmt.Printf("wrote %s (%d alignments)\n\n", blastPath, len(bres.Alignments))

	// Read the files back — the comparison works on plain m8, so either
	// side could equally come from an external tool.
	scorisOut, err := tabular.ReadFile(scorisPath)
	if err != nil {
		log.Fatal(err)
	}
	blastOut, err := tabular.ReadFile(blastPath)
	if err != nil {
		log.Fatal(err)
	}

	rep := sensemetric.Compare(scorisOut, blastOut, sensemetric.DefaultMinOverlap)
	fmt.Println("paper §3.4 tables for this pair:")
	fmt.Printf("  %-8s %8s %8s %14s\n", "banks", "BLtotal", "SCmiss", "SCORISmiss")
	fmt.Printf("  %-8s %8d %8d %13.2f%%\n", "A vs B", rep.BLTotal, rep.SCMiss, rep.SCORISMissPct())
	fmt.Printf("  %-8s %8s %8s %14s\n", "banks", "SCtotal", "BLmiss", "BLASTmiss")
	fmt.Printf("  %-8s %8d %8d %13.2f%%\n", "A vs B", rep.SCTotal, rep.BLMiss, rep.BLASTMissPct())

	// Sweep the equivalence threshold to show the metric's robustness.
	fmt.Println("\noverlap-threshold sweep:")
	for _, th := range []float64{0.5, 0.8, 0.95} {
		r := sensemetric.Compare(scorisOut, blastOut, th)
		fmt.Printf("  ≥%3.0f%% overlap: SCORISmiss %.2f%%  BLASTmiss %.2f%%\n",
			th*100, r.SCORISMissPct(), r.BLASTMissPct())
	}
}
