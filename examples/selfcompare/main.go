// selfcompare demonstrates full-genome self-comparison, the §4
// perspective of the paper ("Considering bigger treatments involving
// pairwise comparisons on larger sequences (full genomes)"): a
// chromosome-like sequence is compared against itself with
// SkipSelfPairs, which restricts step 2 to the strict upper triangle —
// the trivial identity diagonal and all mirror alignments vanish, and
// what remains are the genome's internal repeats.
//
//	go run ./examples/selfcompare [-len 300000]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	scoris "repro"
	"repro/internal/simulate"
)

func main() {
	seqLen := flag.Int("len", 300000, "genome length (bases)")
	flag.Parse()

	// A genome rich in repeat families: what self-comparison is for.
	pool := simulate.NewPool(3, 50, 800)
	genome := simulate.Genomic(simulate.GenomicSpec{
		Name: "genome", Seed: 9, NumSeqs: 1, SeqLen: *seqLen,
		RepeatFamilies: 5, RepeatUnitLen: 700, RepeatCopies: 40,
		Mut:                  simulate.Mutation{Sub: 0.03, Indel: 0.003},
		LowComplexityDensity: 2,
	}, pool)
	fmt.Printf("genome: %.2f Mbp with 5 repeat families × ~8 copies each\n\n", genome.Mbp())

	opt := scoris.DefaultOptions()
	opt.SkipSelfPairs = true
	t0 := time.Now()
	res, err := scoris.Compare(genome, genome, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("self-comparison: %d repeat alignments in %.2fs (%d hit pairs, %d HSPs)\n\n",
		len(res.Alignments), time.Since(t0).Seconds(),
		res.Metrics.HitPairs, res.Metrics.HSPs)

	// Summarize repeat families by alignment length.
	lens := make([]int, 0, len(res.Alignments))
	for _, a := range res.Alignments {
		lens = append(lens, int(a.Length))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lens)))
	fmt.Println("longest internal repeats found:")
	for i, l := range lens {
		if i == 10 {
			break
		}
		a := res.Alignments[0]
		_ = a
		fmt.Printf("  #%2d  %6d columns\n", i+1, l)
	}

	// Sanity: the trivial identity must be absent.
	for _, a := range res.Alignments {
		if a.S1 == a.S2 && a.E1 == a.E2 {
			log.Fatalf("BUG: trivial self-identity alignment reported: %+v", a)
		}
	}
	fmt.Println("\nno trivial identity alignment reported (upper-triangle search)")
}
