// Quickstart: compare two small in-memory DNA banks with the ORIS
// engine (SCORIS-N) and print the alignments in BLAST -m 8 format,
// using the prepared-bank session API — each bank is indexed once and
// the prepared indexes are what the engine consumes, so a second
// comparison against either bank would skip its build entirely.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	scoris "repro"
)

// Bank A plays the subject/database role: two "genes".
const bankA = `>tubulin partial CDS
ATGAGAGAAATCGTTCACATCCAGGCTGGTCAATGCGGTAACCAGATCGGTGCTAAGTTC
TGGGAAGTTATCTCTGACGAACACGGTATCGACCCAACCGGTACTTACCACGGTGACTCC
GACTTGCAGTTGGAACGTATCAACGTTTACTACAACGAAGCTTCCGGTGGTAAGTACGTT
>actin partial CDS
ATGTGTGACGACGACGTTGCTGCTTTGGTTGTTGACAACGGTTCCGGTATGTGTAAGGCT
GGTTTCGCTGGTGACGACGCTCCAAGAGCTGTTTTCCCATCCATCGTTGGTAGACCAAGA
`

// Bank B holds "reads": a diverged copy of part of the tubulin gene
// (a few substitutions), plus an unrelated random read.
const bankB = `>read_tub diverged tubulin fragment
ATGAGAGAAATCGTTCACATTCAGGCTGGTCAATGCGGTAACCAGATAGGTGCTAAGTTC
TGGGAAGTTATCTCTGACGAACACGGTATCGATCCAACCGGTACTTACCACGGTGACTCC
>read_rand unrelated
GCTTAACGTTCGGATGCCATAAGCTTGCATGCCTGCAGGTCGACTCTAGAGGATCCCCGG
GTACCGAGCTCGAATTCACTGGCCGTCGTTTTACAACGTCGTGACTGGGAAAACCCTGGC
`

func main() {
	bank1, err := scoris.ParseBank("genes", []byte(bankA))
	if err != nil {
		log.Fatal(err)
	}
	bank2, err := scoris.ParseBank("reads", []byte(bankB))
	if err != nil {
		log.Fatal(err)
	}

	// Prepare builds each bank's seed index exactly once (a cache could
	// be passed instead of nil to share builds across many pairs);
	// CompareWithIndex then runs steps 2–4 against the prepared banks.
	opt := scoris.DefaultOptions()
	p1, p2, err := scoris.Prepare(nil, bank1, bank2, opt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := scoris.CompareWithIndex(p1, p2, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# %d alignment(s) between %q and %q\n",
		len(res.Alignments), bank1.Name, bank2.Name)
	if err := scoris.WriteM8(os.Stdout, res, bank1, bank2); err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Printf("# step2: %d hit pairs, %d aborted by the ordered rule, %d HSPs\n",
		m.HitPairs, m.Aborted, m.HSPs)
	fmt.Printf("# step3: %d gapped extensions, %d HSPs already covered\n",
		m.GappedExtensions, m.SkippedCovered)
}
