// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per artefact; DESIGN.md §4 maps ids to
// paper artefacts). Each iteration rebuilds the scaled data set and
// recomputes the table from scratch into io.Discard, so ns/op is the
// honest cost of regenerating that artefact. BenchScale divides the
// paper's bank sizes; the full-table runs in EXPERIMENTS.md use
// cmd/experiments at scale 16, while these benches default to a
// lighter 1/64 so `go test -bench=.` completes in minutes.
package scoris

import (
	"io"
	"testing"

	"repro/internal/blastn"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/simulate"
)

// BenchScale is the data-set divisor used by the table benchmarks.
const BenchScale = 64

func benchConfig() experiments.Config {
	return experiments.Config{Scale: BenchScale, Workers: 1, Out: io.Discard}
}

// mustHarness builds the benchmark harness, panicking on the only
// fallible input (an index store directory, unused here).
func mustHarness() *experiments.Harness {
	h, err := experiments.New(benchConfig())
	if err != nil {
		panic(err)
	}
	return h
}

// BenchmarkTable1_BankGeneration regenerates the §3.2 data-set table:
// all 11 synthetic banks plus the summary rows.
func BenchmarkTable1_BankGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.Datasets()
	}
}

// BenchmarkFig3_ScorisESTCurve regenerates the SCORIS-N series of
// figure 3: the ORIS engine over all eight EST pairs.
func BenchmarkFig3_ScorisESTCurve(b *testing.B) {
	ds := simulate.NewDataSet(BenchScale)
	opt := core.DefaultOptions()
	opt.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.ESTPairs {
			if _, err := core.Compare(ds.Get(p.A), ds.Get(p.B), opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig3_BlastnESTCurve regenerates the BLASTN series of
// figure 3: the baseline over all eight EST pairs.
func BenchmarkFig3_BlastnESTCurve(b *testing.B) {
	ds := simulate.NewDataSet(BenchScale)
	opt := blastn.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.ESTPairs {
			if _, err := blastn.Compare(ds.Get(p.A), ds.Get(p.B), opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2_SpeedupEST regenerates the EST speed-up table (both
// engines on all eight pairs, timed rows).
func BenchmarkTable2_SpeedupEST(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SpeedupEST()
	}
}

// BenchmarkTable3_SpeedupLarge regenerates the large-bank speed-up
// table (six pairs, both engines).
func BenchmarkTable3_SpeedupLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SpeedupLarge()
	}
}

// BenchmarkTable4_SensitivityESTScorisMiss and the three benchmarks
// after it regenerate the four sensitivity tables. T4/T5 come from the
// same runs (two directions of one comparison), as in the paper, so the
// harness method emits both; the benchmarks keep separate names so each
// paper artefact has its regeneration entry point.
func BenchmarkTable4_SensitivityESTScorisMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SensitivityEST()
	}
}

// BenchmarkTable5_SensitivityESTBlastMiss regenerates T5 (the BLASTmiss
// direction of the EST sensitivity comparison).
func BenchmarkTable5_SensitivityESTBlastMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SensitivityEST()
	}
}

// BenchmarkTable6_SensitivityLargeScorisMiss regenerates T6.
func BenchmarkTable6_SensitivityLargeScorisMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SensitivityLarge()
	}
}

// BenchmarkTable7_SensitivityLargeBlastMiss regenerates T7.
func BenchmarkTable7_SensitivityLargeBlastMiss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SensitivityLarge()
	}
}

// BenchmarkAblation_Asymmetric10 regenerates X1 (§3.4 half-word
// indexing).
func BenchmarkAblation_Asymmetric10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.Asymmetric()
	}
}

// BenchmarkAblation_ParallelStep2 regenerates X2 (§4 parallelism).
func BenchmarkAblation_ParallelStep2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.Parallel()
	}
}

// BenchmarkAblation_OrderedRule regenerates A1 (the ordered-seed rule
// against naive enumeration + dedup).
func BenchmarkAblation_OrderedRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.OrderedRule()
	}
}

// BenchmarkAblation_WSweep regenerates A2 (seed length 9–13).
func BenchmarkAblation_WSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.WSweep()
	}
}

// BenchmarkAblation_DustFilter regenerates A3 (low-complexity filter
// on/off).
func BenchmarkAblation_DustFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.Dust()
	}
}

// BenchmarkAblation_SeedOrder regenerates A4 (ascending vs shuffled
// seed enumeration).
func BenchmarkAblation_SeedOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.SeedOrder()
	}
}

// BenchmarkExp_ThreeWayEngines regenerates E1 (ORIS vs classic BLASTN
// vs BLAT-style tile index).
func BenchmarkExp_ThreeWayEngines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := mustHarness()
		h.ThreeWay()
	}
}

// BenchmarkEngine_ScorisOnePair measures the ORIS engine alone on one
// mid-size EST pair — the per-run cost underlying every table row.
func BenchmarkEngine_ScorisOnePair(b *testing.B) {
	ds := simulate.NewDataSet(BenchScale)
	a, q := ds.Get(simulate.EST3), ds.Get(simulate.EST4)
	opt := core.DefaultOptions()
	opt.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compare(a, q, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine_BlastnOnePair is the baseline counterpart.
func BenchmarkEngine_BlastnOnePair(b *testing.B) {
	ds := simulate.NewDataSet(BenchScale)
	a, q := ds.Get(simulate.EST3), ds.Get(simulate.EST4)
	opt := blastn.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blastn.Compare(a, q, opt); err != nil {
			b.Fatal(err)
		}
	}
}
