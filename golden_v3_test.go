package scoris

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ixcache"
	"repro/internal/ixdisk"
	"repro/internal/server"
	"repro/internal/simulate"
)

// TestGoldenM8ThroughHealAndV1 pins the corpus bytes through the two
// surfaces PR 8 added: a server whose store holds a legacy v2 index
// file (served once while healing it to v3, then again from the healed
// v3 file), reached through the versioned /v1/ routes. Every leg must
// reproduce testdata/golden/oris-default.m8 exactly — the disk format
// generation and the API prefix are both invisible in the result
// bytes.
func TestGoldenM8ThroughHealAndV1(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "oris-default.m8"))
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}

	ds := simulate.NewDataSet(256)
	est1, est2 := ds.Get(simulate.EST1), ds.Get(simulate.EST2)

	dir := t.TempDir()
	store, err := ixdisk.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	// Manufacture legacy state: both banks' indexes on disk as v2, the
	// format a pre-upgrade deployment would have left behind. The
	// server's options derivation must match what its compare will ask
	// for, so prepare through the same core path.
	opt := DefaultOptions()
	cache := NewIndexCache(0)
	p1, p2, err := Prepare(cache, est1, est2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*ixcache.Prepared{p1, p2} {
		if err := ixdisk.SaveLegacyV2(store.Path(p.Bank, p.Ix.Options()), p); err != nil {
			t.Fatal(err)
		}
	}
	v2Files := probeVersions(t, dir)
	if v2Files[2] != 2 || v2Files[3] != 0 {
		t.Fatalf("fixture store holds %v, want two v2 files", v2Files)
	}

	srv := server.New(server.Config{Store: store})
	if err := srv.RegisterBank("db", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("q", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := `{"db":"db","query":"q"}`

	// Leg 1: served from the v2 files via /v1/, healing them in place.
	status, healed := postBytes(t, ts.URL+"/v1/compare", req, "")
	if status != http.StatusOK {
		t.Fatalf("/v1/compare over v2 store: status %d: %s", status, healed)
	}
	if !bytes.Equal(healed, want) {
		t.Errorf("output through the v2 heal path differs from golden (%d vs %d bytes)",
			len(healed), len(want))
	}
	afterHeal := probeVersions(t, dir)
	if afterHeal[3] != 2 || afterHeal[2] != 0 {
		t.Fatalf("store holds %v after serving, want both files healed to v3", afterHeal)
	}

	// Leg 2: a cold server over the healed v3 files, again via /v1/ —
	// zero builds, same bytes.
	srv2 := server.New(server.Config{Store: store})
	if err := srv2.RegisterBank("db", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv2.RegisterBank("q", est2, false); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	status, fromV3 := postBytes(t, ts2.URL+"/v1/compare", req, "")
	if status != http.StatusOK || !bytes.Equal(fromV3, want) {
		t.Errorf("output from the healed v3 store differs from golden (status %d, %d vs %d bytes)",
			status, len(fromV3), len(want))
	}

	// Leg 3: the deprecated bare alias answers the same bytes.
	status, legacy := postBytes(t, ts2.URL+"/compare", req, "")
	if status != http.StatusOK || !bytes.Equal(legacy, want) {
		t.Errorf("legacy-alias output differs from golden (status %d, %d vs %d bytes)",
			status, len(legacy), len(want))
	}
}

// probeVersions counts the store's files by probed format version.
func probeVersions(t *testing.T, dir string) map[int]int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int]int{}
	for _, e := range ents {
		info, err := ProbeIndexFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("probing %s: %v", e.Name(), err)
		}
		out[info.Version]++
	}
	return out
}
