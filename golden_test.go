package scoris

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/server"
	"repro/internal/simulate"
)

// The golden-m8 corpus pins the result bytes of every delivery path to
// committed files: testdata/golden/<case>.m8 is the reference output
// for one (engine, strand, dust, sampling) point, and the CLI, the
// buffered server, the streamed server, the batch endpoint, and the
// async-job path must each reproduce it byte for byte. A diff in any
// path — or between paths — fails loudly against a file a human can
// read, instead of silently shifting with the engines.
//
// Regenerate after an intentional result change with:
//
//	go test -run TestGoldenM8 -update-golden .
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden/*.m8 from the current engines")

// goldenCase is one corpus point: the /compare request that produces
// it, and the scoris CLI flags that ask for the same thing (nil for
// engines the CLI does not drive).
type goldenCase struct {
	name string
	req  string
	cli  []string
}

var goldenCases = []goldenCase{
	{"oris-default", `{"db":"db","query":"q"}`, []string{}},
	{"oris-both-strands", `{"db":"db","query":"q","both_strands":true}`, []string{"-S", "3"}},
	{"oris-nodust", `{"db":"db","query":"q","dust":false}`, []string{"-F=false"}},
	{"oris-sampled", `{"db":"db","query":"q","asymmetric":true}`, []string{"-asymmetric"}},
	{"oris-both-nodust-sampled",
		`{"db":"db","query":"q","both_strands":true,"dust":false,"asymmetric":true}`,
		[]string{"-S", "3", "-F=false", "-asymmetric"}},
	{"blat-default", `{"db":"db","query":"q","engine":"blat"}`, nil},
	{"blat-nodust", `{"db":"db","query":"q","engine":"blat","dust":false}`, nil},
	{"blastn-default", `{"db":"db","query":"q","engine":"blastn"}`, nil},
	{"blastn-both-strands", `{"db":"db","query":"q","engine":"blastn","both_strands":true}`, nil},
}

// writeFastaFile renders a bank to a FASTA file, so the CLI loads the
// exact sequences the in-process server was registered with.
func writeFastaFile(t *testing.T, path string, b *bank.Bank) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := fasta.NewWriter(f)
	for i := 0; i < b.NumSeqs(); i++ {
		rec := &fasta.Record{ID: b.SeqID(i), Desc: b.SeqDesc(i), Seq: dna.Decode(b.SeqCodes(i))}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// postBytes POSTs a body and returns status plus the full response.
func postBytes(t *testing.T, url, body, accept string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// batchBody rewrites a /compare request body into its /compare/batch
// single-query form: the query field becomes a one-element queries list.
func batchBody(t *testing.T, compareReq string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(compareReq), &m); err != nil {
		t.Fatal(err)
	}
	q, _ := m["query"].(string)
	delete(m, "query")
	m["queries"] = []string{q}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// jobResult runs a compare through the async-job path: enqueue, poll to
// a terminal state, fetch the result bytes.
func jobResult(t *testing.T, base, compareReq string) []byte {
	t.Helper()
	status, body := postBytes(t, base+"/jobs", compareReq, "")
	if status != http.StatusAccepted {
		t.Fatalf("job create: status %d: %s", status, body)
	}
	var created struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + created.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" || st.State == "cancelled" {
			t.Fatalf("job %s ended %s: %s", created.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", created.ID, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(base + "/jobs/" + created.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tr := resp.Trailer.Get("X-Scoris-Status"); tr != "complete" {
		t.Fatalf("job result trailer = %q, want complete", tr)
	}
	return b
}

// TestGoldenM8 checks every delivery path against the committed corpus.
func TestGoldenM8(t *testing.T) {
	ds := simulate.NewDataSet(256)
	est1, est2 := ds.Get(simulate.EST1), ds.Get(simulate.EST2)

	srv := server.New(server.Config{})
	if err := srv.RegisterBank("db", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("q", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One FASTA pair for every CLI leg.
	dir := t.TempDir()
	dbFasta := filepath.Join(dir, "db.fasta")
	qFasta := filepath.Join(dir, "q.fasta")
	writeFastaFile(t, dbFasta, est1)
	writeFastaFile(t, qFasta, est2)

	for _, c := range goldenCases {
		t.Run(c.name, func(t *testing.T) {
			golden := filepath.Join("testdata", "golden", c.name+".m8")

			status, buffered := postBytes(t, ts.URL+"/compare", c.req, "")
			if status != http.StatusOK {
				t.Fatalf("buffered compare: status %d: %s", status, buffered)
			}
			if len(buffered) == 0 {
				t.Fatal("degenerate corpus point: the buffered compare found nothing")
			}

			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, buffered, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(buffered, want) {
				t.Errorf("buffered server output differs from %s (%d vs %d bytes)", golden, len(buffered), len(want))
			}

			status, streamed := postBytes(t, ts.URL+"/compare", c.req, "text/x-m8-stream")
			if status != http.StatusOK || !bytes.Equal(streamed, want) {
				t.Errorf("streamed server output differs from %s (status %d, %d vs %d bytes)",
					golden, status, len(streamed), len(want))
			}

			status, batched := postBytes(t, ts.URL+"/compare/batch", batchBody(t, c.req), "")
			if status != http.StatusOK || !bytes.Equal(batched, want) {
				t.Errorf("batch output differs from %s (status %d, %d vs %d bytes)",
					golden, status, len(batched), len(want))
			}

			if job := jobResult(t, ts.URL, c.req); !bytes.Equal(job, want) {
				t.Errorf("job result differs from %s (%d vs %d bytes)", golden, len(job), len(want))
			}

			if c.cli == nil {
				return
			}
			if testing.Short() {
				t.Skip("CLI leg skipped in -short mode")
			}
			out := filepath.Join(dir, c.name+".m8")
			args := append([]string{"./cmd/scoris", "-d", dbFasta, "-i", qFasta, "-o", out}, c.cli...)
			runTool(t, args...)
			cliBytes, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cliBytes, want) {
				t.Errorf("CLI output differs from %s (%d vs %d bytes)", golden, len(cliBytes), len(want))
			}
		})
	}

	// The corpus is one suite: stale files for dropped cases would pin
	// nothing, so the directory must hold exactly the cases above.
	if !*updateGolden {
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != len(goldenCases) {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Errorf("testdata/golden holds %d files for %d cases: %v", len(entries), len(goldenCases), names)
		}
	}
}
