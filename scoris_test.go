package scoris

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fasta"
)

const bankAText = `>geneA shared segment
ACGTTGCAGGTACCTTACGATTGCACGGTACGTTAACGGTACCATGGATCCAAGCTTGCA
TCGATGCATGCTAGCTAGCTAGGATCCTCTAGAGTCGACCTGCAGGCATGCAAGCTTGGC
ACTGGCCGTCGTTTTACAACGTCGTGACTGGGAAAACCCTGGCGTTACCCAACTTAATCG
>geneB another segment
CCTTGCGCAGCTGTGCTCGACGTTGTCACTGAAGCGGGAAGGGACTGGCTGCTATTGGGC
GAAGTGCCGGGGCAGGATCTCCTGTCATCTCACCTTGCTCCTGCCGAGAAAGTATCCATC
`

// mutated copy of geneA's first two lines (a few substitutions).
const bankBText = `>readA1 mutated copy of geneA
ACGTTGCAGGTACCTTACGATTGCACGGTACGTAAACGGTACCATGGATCCAAGCTTGCA
TCGATGCATGCTAGCTAGCTAGGATCGTCTAGAGTCGACCTGCAGGCATGCAAGCTTGGC
>readX random unrelated
TGCAGTCCTCGCTCACTGACTCGCTGCGCTCGGTCGTTCGGCTGCGGCGAGCGGTATCAG
CTCACTCAAAGGCGGTAATACGGTTATCCACAGAATCAGGGGATAACGCAGGAAAGAACA
`

func mustParse(t *testing.T, name, text string) *Bank {
	t.Helper()
	b, err := ParseBank(name, []byte(text))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEndToEndCompare(t *testing.T) {
	b1 := mustParse(t, "A", bankAText)
	b2 := mustParse(t, "B", bankBText)
	res, err := Compare(b1, b2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments found for a planted homology")
	}
	a := res.Alignments[0]
	if b1.SeqID(int(a.Seq1)) != "geneA" {
		t.Errorf("subject = %s, want geneA", b1.SeqID(int(a.Seq1)))
	}
	if b2.SeqID(int(a.Seq2)) != "readA1" {
		t.Errorf("query = %s, want readA1", b2.SeqID(int(a.Seq2)))
	}
	if a.Identity() < 0.95 {
		t.Errorf("identity %v too low", a.Identity())
	}
}

// TestPreparedSessionEndToEnd exercises the public prepared-bank API:
// one cached db index serving two query banks, with output identical to
// the one-shot Compare path.
func TestPreparedSessionEndToEnd(t *testing.T) {
	db := mustParse(t, "A", bankAText)
	q1 := mustParse(t, "B", bankBText)
	q2 := mustParse(t, "B2", bankBText)
	opt := DefaultOptions()

	cache := NewIndexCache(0)
	for _, q := range []*Bank{q1, q2, q1} {
		p1, p2, err := Prepare(cache, db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CompareWithIndex(p1, p2, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compare(db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got, want bytes.Buffer
		if err := WriteM8(&got, res, db, q); err != nil {
			t.Fatal(err)
		}
		if err := WriteM8(&want, ref, db, q); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("prepared output differs from Compare:\n%s\nvs\n%s", got.String(), want.String())
		}
		if got.Len() == 0 {
			t.Fatal("no m8 output for a planted homology")
		}
	}
	// db, q1, q2 each built once; q1's second round was a cache hit.
	if cache.Builds() != 3 {
		t.Errorf("builds = %d, want 3", cache.Builds())
	}
}

func TestEndToEndM8Output(t *testing.T) {
	b1 := mustParse(t, "A", bankAText)
	b2 := mustParse(t, "B", bankBText)
	res, err := Compare(b1, b2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteM8(&buf, res, b1, b2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Alignments) {
		t.Fatalf("%d m8 lines for %d alignments", len(lines), len(res.Alignments))
	}
	for _, l := range lines {
		if n := len(strings.Split(l, "\t")); n != 12 {
			t.Errorf("line has %d fields: %q", n, l)
		}
	}
}

func TestEnginesAgreeOnM8Footprints(t *testing.T) {
	b1 := mustParse(t, "A", bankAText)
	b2 := mustParse(t, "B", bankBText)
	ores, err := Compare(b1, b2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bres, err := CompareBlastn(b1, b2, DefaultBlastnOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := CompareSensitivity(ToM8(ores.Alignments, b1, b2), ToM8(bres.Alignments, b1, b2))
	if rep.SCMiss != 0 || rep.BLMiss != 0 {
		t.Errorf("engines disagree on a clean homology: %+v", rep)
	}
}

func TestLoadBankFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.fa")
	if err := fasta.WriteFile(path, []*fasta.Record{{ID: "s", Seq: []byte("ACGTACGTACGT")}}); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBank("A", path)
	if err != nil {
		t.Fatal(err)
	}
	if b.NumSeqs() != 1 || b.TotalBases() != 12 {
		t.Errorf("loaded bank: %d seqs, %d bases", b.NumSeqs(), b.TotalBases())
	}
}

func TestParseBankRejectsEmpty(t *testing.T) {
	if _, err := ParseBank("x", nil); err == nil {
		t.Error("empty bank accepted")
	}
}
