// Package align defines gapped alignment records and the T_ALIGN
// structure of paper §2.3: alignments are accumulated in diagonal order
// while step 3 walks the diagonal-sorted HSP list, and an HSP that
// already belongs to a previously computed alignment is skipped without
// a new gapped extension. Because both lists advance along the same
// diagonal axis, the containment test only ever touches a small active
// window ("testing this condition does not involve time consuming
// search … due to the locality of the data").
package align

import (
	"sort"

	"repro/internal/hsp"
)

// Alignment is one gapped alignment between a bank-1 and a bank-2
// sequence. Coordinates are bank Data positions, half open.
type Alignment struct {
	// Seq1, Seq2 are record indexes in bank 1 and bank 2.
	Seq1, Seq2 int32
	// S1, E1 and S2, E2 are the aligned spans.
	S1, E1 int32
	S2, E2 int32

	Score      int32
	Matches    int32
	Mismatches int32
	GapOpens   int32
	GapBases   int32
	// Length is the number of alignment columns including gaps.
	Length int32

	EValue   float64
	BitScore float64

	// Anchor1, Anchor2 record the HSP midpoint the gapped extension
	// started from (paper §2.3). Re-running the extension from the
	// anchor reproduces the exact alignment path, which is how package
	// render recovers the column-level alignment for display.
	Anchor1, Anchor2 int32

	// Minus marks alignments found on the reverse complement of the
	// bank-2 (query) sequence; coordinates are already mapped back to
	// the forward orientation.
	Minus bool
}

// Identity is the fraction of columns that are identical bases.
func (a *Alignment) Identity() float64 {
	if a.Length == 0 {
		return 0
	}
	return float64(a.Matches) / float64(a.Length)
}

// MinDiag and MaxDiag bound the diagonals of cells inside the
// alignment's bounding box: diag(i,j) = i−j for i∈[S1,E1), j∈[S2,E2).
func (a *Alignment) MinDiag() int32 { return a.S1 - (a.E2 - 1) }

// MaxDiag is the largest diagonal of any cell in the bounding box.
func (a *Alignment) MaxDiag() int32 { return (a.E1 - 1) - a.S2 }

// ContainsHSP reports whether h's box lies entirely inside a's box —
// the paper's "hsp ∈ T_ALIGN" test (fig. 1, line 14).
func (a *Alignment) ContainsHSP(h hsp.HSP) bool {
	return h.S1 >= a.S1 && h.E1 <= a.E1 && h.S2 >= a.S2 && h.E2 <= a.E2
}

// Contains reports whether o's box lies within a's box.
func (a *Alignment) Contains(o *Alignment) bool {
	return o.S1 >= a.S1 && o.E1 <= a.E1 && o.S2 >= a.S2 && o.E2 <= a.E2
}

// TAlign accumulates alignments produced from diagonal-ascending HSPs
// and answers "is this HSP already covered?" in amortized O(active set)
// time. It is not safe for concurrent use.
type TAlign struct {
	all []Alignment
	// active holds indexes into all whose MaxDiag may still reach
	// future (higher-diagonal) HSPs; pruned as the query diagonal
	// advances.
	active []int
}

// Add records a new alignment.
func (t *TAlign) Add(a Alignment) {
	t.all = append(t.all, a)
	t.active = append(t.active, len(t.all)-1)
}

// Covered reports whether h is contained in any recorded alignment.
// Callers must present HSPs in non-decreasing diagonal order for the
// pruning to be valid.
func (t *TAlign) Covered(h hsp.HSP) bool {
	d := h.Diag()
	// Prune actives that can never contain this or any future HSP.
	keep := t.active[:0]
	covered := false
	for _, i := range t.active {
		a := &t.all[i]
		if a.MaxDiag() < d {
			continue // stale: future HSPs have diag ≥ d
		}
		keep = append(keep, i)
		if !covered && a.MinDiag() <= d && a.ContainsHSP(h) {
			covered = true
		}
	}
	t.active = keep
	return covered
}

// Len returns the number of recorded alignments.
func (t *TAlign) Len() int { return len(t.all) }

// All returns the recorded alignments (shared backing array).
func (t *TAlign) All() []Alignment { return t.all }

// Dedup removes exact duplicates and alignments fully contained in a
// higher-or-equal-scoring alignment. It returns a fresh sorted slice.
// The parallel step-3 mode needs this to restore the uniqueness the
// sequential mode gets from the T_ALIGN walk.
func Dedup(as []Alignment) []Alignment {
	if len(as) <= 1 {
		return append([]Alignment(nil), as...)
	}
	sorted := append([]Alignment(nil), as...)
	// Sort so that potential containers come first: by sequence pair,
	// then larger boxes (smaller S1, larger E1) first.
	sort.Slice(sorted, func(i, j int) bool {
		a, b := &sorted[i], &sorted[j]
		if a.Seq1 != b.Seq1 {
			return a.Seq1 < b.Seq1
		}
		if a.Seq2 != b.Seq2 {
			return a.Seq2 < b.Seq2
		}
		if a.S1 != b.S1 {
			return a.S1 < b.S1
		}
		if a.E1 != b.E1 {
			return a.E1 > b.E1
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.S2 != b.S2 {
			return a.S2 < b.S2
		}
		if a.E2 != b.E2 {
			return a.E2 > b.E2
		}
		// Full determinism for records identical up to anchor metadata.
		if a.Anchor1 != b.Anchor1 {
			return a.Anchor1 < b.Anchor1
		}
		return a.Anchor2 < b.Anchor2
	})
	var out []Alignment
	for _, a := range sorted {
		dup := false
		// Only alignments in the same (Seq1, Seq2) group can contain a;
		// scan back through recent survivors of the group.
		for k := len(out) - 1; k >= 0; k-- {
			o := &out[k]
			if o.Seq1 != a.Seq1 || o.Seq2 != a.Seq2 {
				break
			}
			if o.Contains(&a) && o.Score >= a.Score {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a)
		}
	}
	return out
}

// SortForDisplay orders alignments the way step 4 displays them:
// query-major — all of one bank-2 sequence's alignments before the
// next, in bank order, the way BLAST groups its -m 8 report per query —
// then ascending E-value, descending score, and coordinates for
// determinism within each query. Query-major grouping is also what
// makes the result path streamable: a query sequence's block of output
// is final the moment its own alignments are, so it can be emitted
// while later queries are still being extended, and the concatenated
// stream is byte-identical to the buffered report.
func SortForDisplay(as []Alignment) {
	sort.Slice(as, func(i, j int) bool {
		a, b := &as[i], &as[j]
		if a.Seq2 != b.Seq2 {
			return a.Seq2 < b.Seq2
		}
		if a.EValue != b.EValue {
			return a.EValue < b.EValue
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Seq1 != b.Seq1 {
			return a.Seq1 < b.Seq1
		}
		if a.S1 != b.S1 {
			return a.S1 < b.S1
		}
		return a.S2 < b.S2
	})
}
