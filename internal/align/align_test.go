package align

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hsp"
)

func TestIdentity(t *testing.T) {
	a := Alignment{Matches: 90, Length: 100}
	if a.Identity() != 0.9 {
		t.Errorf("Identity = %v", a.Identity())
	}
	var zero Alignment
	if zero.Identity() != 0 {
		t.Errorf("zero alignment identity = %v", zero.Identity())
	}
}

func TestDiagBounds(t *testing.T) {
	a := Alignment{S1: 10, E1: 20, S2: 100, E2: 115}
	if a.MinDiag() != 10-114 {
		t.Errorf("MinDiag = %d", a.MinDiag())
	}
	if a.MaxDiag() != 19-100 {
		t.Errorf("MaxDiag = %d", a.MaxDiag())
	}
	// Every cell diagonal inside the box is within [MinDiag, MaxDiag].
	for i := a.S1; i < a.E1; i++ {
		for j := a.S2; j < a.E2; j++ {
			d := i - j
			if d < a.MinDiag() || d > a.MaxDiag() {
				t.Fatalf("cell diag %d outside [%d,%d]", d, a.MinDiag(), a.MaxDiag())
			}
		}
	}
}

func TestContainsHSP(t *testing.T) {
	a := Alignment{S1: 10, E1: 50, S2: 100, E2: 140}
	in := hsp.HSP{S1: 15, E1: 30, S2: 105, E2: 120}
	out := hsp.HSP{S1: 5, E1: 30, S2: 105, E2: 130}
	if !a.ContainsHSP(in) {
		t.Error("inner HSP not contained")
	}
	if a.ContainsHSP(out) {
		t.Error("outer HSP reported contained")
	}
}

func TestTAlignCoversAscendingDiagonals(t *testing.T) {
	var ta TAlign
	ta.Add(Alignment{S1: 100, E1: 200, S2: 100, E2: 200}) // diag ~0
	ta.Add(Alignment{S1: 500, E1: 600, S2: 100, E2: 200}) // diag ~400

	// HSP inside the first alignment.
	if !ta.Covered(hsp.HSP{S1: 120, E1: 150, S2: 120, E2: 150}) {
		t.Error("HSP inside first alignment not covered")
	}
	// HSP on a far diagonal not covered.
	if ta.Covered(hsp.HSP{S1: 300, E1: 330, S2: 100, E2: 130}) {
		t.Error("uncovered HSP reported covered")
	}
	// HSP inside the second alignment, after the diagonal advanced.
	if !ta.Covered(hsp.HSP{S1: 520, E1: 560, S2: 120, E2: 160}) {
		t.Error("HSP inside second alignment not covered")
	}
	if ta.Len() != 2 {
		t.Errorf("Len = %d", ta.Len())
	}
}

func TestTAlignPruningIsSafe(t *testing.T) {
	// After pruning (query at high diagonal), alignments with smaller
	// MaxDiag must no longer be consulted — but equal-diag queries must
	// still see live ones. Pruning must never cause a false negative
	// for ascending queries.
	var ta TAlign
	ta.Add(Alignment{S1: 0, E1: 100, S2: 0, E2: 100})     // diags [-99,99]
	ta.Add(Alignment{S1: 1000, E1: 1100, S2: 0, E2: 100}) // diags [901,1099]

	if !ta.Covered(hsp.HSP{S1: 10, E1: 20, S2: 10, E2: 20}) { // diag 0
		t.Fatal("first query should be covered")
	}
	if !ta.Covered(hsp.HSP{S1: 1010, E1: 1020, S2: 10, E2: 20}) { // diag 1000
		t.Fatal("second query should be covered")
	}
	// The first alignment is now pruned; a repeat of the low query would
	// be a protocol violation (descending diag), so we don't test it.
	if len(ta.active) != 1 {
		t.Errorf("active set = %d entries, want 1 after pruning", len(ta.active))
	}
}

func TestTAlignRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var ta TAlign
		var all []Alignment
		// Generate random alignments in ascending diagonal order, and
		// interleave queries also ascending.
		type query struct {
			h    hsp.HSP
			want bool
		}
		var queries []query
		diag := int32(-200)
		for step := 0; step < 40; step++ {
			diag += int32(rng.Intn(30))
			if rng.Intn(2) == 0 {
				s1 := diag + 300
				s2 := int32(300 - rng.Intn(20))
				a := Alignment{S1: s1, E1: s1 + int32(20+rng.Intn(80)), S2: s2, E2: s2 + int32(20+rng.Intn(80))}
				ta.Add(a)
				all = append(all, a)
			} else {
				s1 := diag + 300
				s2 := int32(300)
				h := hsp.HSP{S1: s1, E1: s1 + int32(5+rng.Intn(30)), S2: s2, E2: s2 + int32(5+rng.Intn(30))}
				h.E2 = h.S2 + (h.E1 - h.S1)
				want := false
				for i := range all {
					if all[i].ContainsHSP(h) {
						want = true
						break
					}
				}
				got := ta.Covered(h)
				queries = append(queries, query{h, want})
				if got != want {
					t.Fatalf("trial %d step %d: Covered(%+v) = %v, brute force %v",
						trial, step, h, got, want)
				}
			}
		}
		_ = queries
	}
}

func TestDedupRemovesExactAndContained(t *testing.T) {
	big := Alignment{Seq1: 0, Seq2: 0, S1: 0, E1: 100, S2: 0, E2: 100, Score: 80}
	small := Alignment{Seq1: 0, Seq2: 0, S1: 10, E1: 50, S2: 10, E2: 50, Score: 30}
	otherPair := Alignment{Seq1: 1, Seq2: 0, S1: 10, E1: 50, S2: 10, E2: 50, Score: 30}
	out := Dedup([]Alignment{big, small, big, otherPair})
	if len(out) != 2 {
		t.Fatalf("Dedup kept %d alignments: %+v", len(out), out)
	}
	foundBig, foundOther := false, false
	for _, a := range out {
		if a == big {
			foundBig = true
		}
		if a == otherPair {
			foundOther = true
		}
	}
	if !foundBig || !foundOther {
		t.Errorf("Dedup kept wrong set: %+v", out)
	}
}

func TestDedupKeepsHigherScoreWhenContainedScoresBetter(t *testing.T) {
	// A contained alignment with a HIGHER score must survive.
	outer := Alignment{S1: 0, E1: 100, S2: 0, E2: 100, Score: 10}
	inner := Alignment{S1: 10, E1: 50, S2: 10, E2: 50, Score: 40}
	out := Dedup([]Alignment{outer, inner})
	if len(out) != 2 {
		t.Fatalf("Dedup dropped a higher-scoring contained alignment: %+v", out)
	}
}

func TestDedupEmptyAndSingle(t *testing.T) {
	if got := Dedup(nil); len(got) != 0 {
		t.Errorf("Dedup(nil) = %v", got)
	}
	one := []Alignment{{Score: 5}}
	if got := Dedup(one); len(got) != 1 {
		t.Errorf("Dedup single = %v", got)
	}
}

func TestSortForDisplay(t *testing.T) {
	// Query-major: all of query 0 before any of query 1, regardless of
	// e-value; within a query, ascending e-value then descending score.
	as := []Alignment{
		{Seq2: 1, EValue: 1e-12, Score: 99},
		{Seq2: 0, EValue: 1e-3, Score: 50},
		{Seq2: 0, EValue: 1e-9, Score: 40},
		{Seq2: 0, EValue: 1e-3, Score: 80},
	}
	SortForDisplay(as)
	if as[3].Seq2 != 1 {
		t.Errorf("query grouping broken (better e-value must not jump the query order): %+v", as)
	}
	if as[0].EValue != 1e-9 {
		t.Errorf("best e-value of query 0 not first: %+v", as)
	}
	if as[1].Score != 80 || as[2].Score != 50 {
		t.Errorf("equal e-values not ordered by score: %+v", as)
	}
	if !sort.SliceIsSorted(as, func(i, j int) bool {
		if as[i].Seq2 != as[j].Seq2 {
			return as[i].Seq2 < as[j].Seq2
		}
		return as[i].EValue < as[j].EValue || (as[i].EValue == as[j].EValue && as[i].Score > as[j].Score)
	}) {
		t.Error("not sorted")
	}
}
