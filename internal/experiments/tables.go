package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/seed"
	"repro/internal/simulate"
)

// Datasets prints T1, the §3.2 data-set characteristics table, with the
// paper's shapes alongside the generated (scaled) banks.
func (h *Harness) Datasets() {
	h.printf("### T1 — data sets (scale 1/%d)\n\n", h.cfg.Scale)
	h.printf("| Bank | paper #seq | paper Mbp | generated #seq | generated Mbp |\n")
	h.printf("|------|-----------:|----------:|---------------:|--------------:|\n")
	for _, pb := range simulate.AllPaperBanks {
		n, mbp := simulate.PaperShape(pb)
		b := h.ds.Get(pb)
		h.printf("| %s | %d | %.2f | %d | %.3f |\n", pb, n, mbp, b.NumSeqs(), b.Mbp())
	}
	h.printf("\n")
}

// Fig3 prints the execution-time-vs-search-space series of figure 3,
// one row per EST pair, both engines.
func (h *Harness) Fig3() {
	h.printf("### F3 — execution time vs search space (EST banks)\n\n")
	h.printf("| banks | search space (Mbp²) | SCORIS-N (s) | BLASTN (s) |\n")
	h.printf("|-------|--------------------:|-------------:|-----------:|\n")
	for _, p := range ESTPairs {
		r := h.RunPair(p)
		h.printf("| %s | %.2f | %.2f | %.2f |\n",
			p, r.SearchSpace, r.ScorisTime.Seconds(), r.BlastTime.Seconds())
	}
	h.printf("\n")
}

// SpeedupEST prints T2.
func (h *Harness) SpeedupEST() {
	h.speedupTable("T2 — speed-up, EST banks", ESTPairs)
}

// SpeedupLarge prints T3.
func (h *Harness) SpeedupLarge() {
	h.speedupTable("T3 — speed-up, large banks", LargePairs)
}

func (h *Harness) speedupTable(title string, pairs []Pair) {
	h.printf("### %s\n\n", title)
	h.printf("| banks | search space (Mbp²) | SCORIS-N (s) | BLASTN (s) | speed-up |\n")
	h.printf("|-------|--------------------:|-------------:|-----------:|---------:|\n")
	for _, p := range pairs {
		r := h.RunPair(p)
		h.printf("| %s | %.2f | %.2f | %.2f | %.1f |\n",
			p, r.SearchSpace, r.ScorisTime.Seconds(), r.BlastTime.Seconds(), r.Speedup)
	}
	h.printf("\n")
}

// SensitivityEST prints T4 and T5 (the two directions of the EST
// sensitivity comparison).
func (h *Harness) SensitivityEST() {
	h.sensTables("T4/T5 — sensitivity, EST banks", ESTPairs[:7])
}

// SensitivityLarge prints T6 and T7.
func (h *Harness) SensitivityLarge() {
	h.sensTables("T6/T7 — sensitivity, large banks", SensLargePairs)
}

func (h *Harness) sensTables(title string, pairs []Pair) {
	h.printf("### %s\n\n", title)
	h.printf("| banks | BLtotal | SCmiss | SCORISmiss %% |\n")
	h.printf("|-------|--------:|-------:|-------------:|\n")
	for _, p := range pairs {
		r := h.RunPair(p)
		if r.Sens.BLTotal == 0 {
			h.printf("| %s | 0 | 0 | - |\n", p)
			continue
		}
		h.printf("| %s | %d | %d | %.2f %% |\n",
			p, r.Sens.BLTotal, r.Sens.SCMiss, r.Sens.SCORISMissPct())
	}
	h.printf("\n")
	h.printf("| banks | SCtotal | BLmiss | BLASTmiss %% |\n")
	h.printf("|-------|--------:|-------:|------------:|\n")
	for _, p := range pairs {
		r := h.RunPair(p)
		if r.Sens.SCTotal == 0 {
			h.printf("| %s | 0 | 0 | - |\n", p)
			continue
		}
		h.printf("| %s | %d | %d | %.2f %% |\n",
			p, r.Sens.SCTotal, r.Sens.BLMiss, r.Sens.BLASTMissPct())
	}
	h.printf("\n")
}

// Asymmetric runs X1: symmetric W=11 vs asymmetric W=10 half-word
// indexing on an EST pair, reporting index size, seed-anchor coverage
// (§3.4: all 11-nt matches plus ~50% of 10-nt ones), time and the
// alignment-count effect.
func (h *Harness) Asymmetric() {
	p := Pair{simulate.EST1, simulate.EST2}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)

	h.printf("### X1 — asymmetric 10-nt indexing (%s)\n\n", p)

	// Index-level size and coverage measurement. The CSR occurrence
	// array (plus sidecar) shrinks with sampling; the Starts dictionary
	// is the fixed 4^W+1 cost either way. Both indexes come from the
	// shared prepared-bank cache under the engine's default dust filter
	// so full and half are measured like with like; the half-word key is
	// exactly what the "W=10 asymmetric" row below derives, so that
	// index is built once for the whole table instead of separately for
	// the size row and the engine row (the full W=10 index serves the
	// size comparison only — no engine row runs W=10 symmetric).
	sym10 := core.DefaultOptions()
	sym10.W = 10
	asym10 := core.DefaultOptions()
	asym10.W = 10
	asym10.Asymmetric = true
	fullOpts, _ := sym10.IndexOptions()
	halfOpts, _ := asym10.IndexOptions()
	full10 := h.ix.Get(a, fullOpts).Ix
	half10 := h.ix.Get(a, halfOpts).Ix
	covered, total := 0, 0
	seed.ForEach(a.Data, 11, func(pos int32, _ seed.Code) {
		total++
		for _, q := range []int32{pos, pos + 1} {
			if q%2 == 0 {
				covered++
				return
			}
		}
	})
	h.printf("\n| bank1 10-mer index | entries | CSR bytes |\n")
	h.printf("|--------------------|--------:|----------:|\n")
	h.printf("| full | %d | %d |\n", full10.Indexed, full10.MemoryBytes())
	h.printf("| half | %d | %d |\n", half10.Indexed, half10.MemoryBytes())
	h.printf("\n- half/full entries: %.1f %%\n",
		100*float64(half10.Indexed)/float64(full10.Indexed))
	h.printf("- 11-mer anchors covered by half-word index: %d / %d (%.2f %%)\n",
		covered, total, 100*float64(covered)/float64(total))

	type mode struct {
		name string
		opt  core.Options
	}
	modes := []mode{
		{"W=11 symmetric", core.DefaultOptions()},
		{"W=10 asymmetric", asym10},
	}

	h.printf("\n| mode | time (s) | hit pairs | HSPs | alignments |\n")
	h.printf("|------|---------:|----------:|-----:|-----------:|\n")
	for _, m := range modes {
		m.opt.Workers = h.cfg.Workers
		res, elapsed := h.compareORIS(a, b, m.opt)
		h.printf("| %s | %.2f | %d | %d | %d |\n",
			m.name, elapsed.Seconds(),
			res.Metrics.HitPairs, res.Metrics.HSPs, len(res.Alignments))
	}
	h.printf("\n")
}

// Parallel runs X2: the §4 parallelism claim, sweeping worker counts on
// one EST pair. On a single-core host the wall-clock gain is bounded,
// but step-2 partitioning correctness (identical outputs) is asserted
// and per-step times are reported.
func (h *Harness) Parallel() {
	p := Pair{simulate.EST3, simulate.EST4}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### X2 — parallel step 2/3 scaling (%s)\n\n", p)
	h.printf("| workers | total (s) | step2 (s) | step3 (s) | alignments |\n")
	h.printf("|--------:|----------:|----------:|----------:|-----------:|\n")
	var refCount = -1
	for _, w := range []int{1, 2, 4, 8} {
		opt := core.DefaultOptions()
		opt.Workers = w
		opt.ParallelStep3 = w > 1
		// The cache key excludes Workers (the build is canonical for any
		// worker count), so all four rows share one index build.
		res, tot := h.compareORIS(a, b, opt)
		if refCount < 0 {
			refCount = len(res.Alignments)
		} else if len(res.Alignments) != refCount {
			h.printf("**WARNING: worker count changed result (%d vs %d)**\n",
				len(res.Alignments), refCount)
		}
		h.printf("| %d | %.2f | %.2f | %.2f | %d |\n",
			w, tot.Seconds(), res.Metrics.Step2Time.Seconds(),
			res.Metrics.Step3Time.Seconds(), len(res.Alignments))
	}
	h.printf("\n")
}

// OrderedRule runs A1: the ordered-seed rule against the naive
// enumerate-then-dedup strategy it replaces.
func (h *Harness) OrderedRule() {
	p := Pair{simulate.EST1, simulate.EST2}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### A1 — ordered-seed rule vs naive + dedup (%s)\n\n", p)
	h.printf("| mode | time (s) | extensions | aborted | HSPs | duplicates removed | alignments |\n")
	h.printf("|------|---------:|-----------:|--------:|-----:|-------------------:|-----------:|\n")
	for _, ordered := range []bool{true, false} {
		opt := core.DefaultOptions()
		opt.Workers = h.cfg.Workers
		opt.OrderedRule = ordered
		res, elapsed := h.compareORIS(a, b, opt)
		name := "ordered (ORIS)"
		if !ordered {
			name = "naive + dedup"
		}
		h.printf("| %s | %.2f | %d | %d | %d | %d | %d |\n",
			name, elapsed.Seconds(), res.Metrics.Extensions,
			res.Metrics.Aborted, res.Metrics.HSPs,
			res.Metrics.DuplicateHSPs, len(res.Alignments))
	}
	h.printf("\n")
}

// WSweep runs A2: seed length 9–13 on one EST pair.
func (h *Harness) WSweep() {
	p := Pair{simulate.EST1, simulate.EST2}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### A2 — seed length sweep (%s)\n\n", p)
	h.printf("| W | time (s) | hit pairs | HSPs | alignments |\n")
	h.printf("|--:|---------:|----------:|-----:|-----------:|\n")
	for _, w := range []int{9, 10, 11, 12, 13} {
		opt := core.DefaultOptions()
		opt.W = w
		opt.Workers = h.cfg.Workers
		res, elapsed := h.compareORIS(a, b, opt)
		h.printf("| %d | %.2f | %d | %d | %d |\n",
			w, elapsed.Seconds(), res.Metrics.HitPairs,
			res.Metrics.HSPs, len(res.Alignments))
	}
	h.printf("\n")
}

// Dust runs A3: low-complexity filter on/off.
func (h *Harness) Dust() {
	p := Pair{simulate.H10, simulate.VRL}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### A3 — dust filter (%s)\n\n", p)
	h.printf("| dust | time (s) | masked seeds | hit pairs | alignments |\n")
	h.printf("|------|---------:|-------------:|----------:|-----------:|\n")
	for _, on := range []bool{true, false} {
		opt := core.DefaultOptions()
		opt.Dust = on
		opt.Workers = h.cfg.Workers
		res, elapsed := h.compareORIS(a, b, opt)
		state := "on"
		if !on {
			state = "off"
		}
		h.printf("| %s | %.2f | %d | %d | %d |\n",
			state, elapsed.Seconds(), res.Metrics.MaskedSeeds,
			res.Metrics.HitPairs, len(res.Alignments))
	}
	h.printf("\n")
}

// SeedOrder runs A4: ascending vs shuffled seed-code enumeration in
// step 2. The output is identical (the abort rule is anchor-local); the
// time difference isolates the enumeration-locality contribution the
// paper credits to ordered processing (§2.2).
func (h *Harness) SeedOrder() {
	p := Pair{simulate.EST3, simulate.EST4}
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### A4 — seed enumeration order (%s)\n\n", p)
	h.printf("| order | step2 (s) | HSPs | alignments |\n")
	h.printf("|-------|----------:|-----:|-----------:|\n")
	refAligns := -1
	for _, shuffled := range []bool{false, true} {
		opt := core.DefaultOptions()
		opt.Workers = h.cfg.Workers
		opt.ShuffledSeedOrder = shuffled
		res, _ := h.compareORIS(a, b, opt)
		name := "ascending (ORIS)"
		if shuffled {
			name = "shuffled"
		}
		if refAligns < 0 {
			refAligns = len(res.Alignments)
		} else if len(res.Alignments) != refAligns {
			h.printf("**WARNING: enumeration order changed the result**\n")
		}
		h.printf("| %s | %.2f | %d | %d |\n",
			name, res.Metrics.Step2Time.Seconds(), res.Metrics.HSPs, len(res.Alignments))
	}
	h.printf("\n")
}

// All runs every experiment in DESIGN.md order.
func (h *Harness) All() {
	h.Datasets()
	h.Fig3()
	h.Fig3Plot()
	h.SpeedupEST()
	h.SpeedupLarge()
	h.SensitivityEST()
	h.SensitivityLarge()
	h.Asymmetric()
	h.Parallel()
	h.OrderedRule()
	h.WSweep()
	h.Dust()
	h.SeedOrder()
	h.ThreeWay()
}

// CheckShapes validates the paper's qualitative claims on the cached
// results and returns human-readable findings (used by tests and the
// CLI's -check mode).
func (h *Harness) CheckShapes() []string {
	var finds []string
	add := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		finds = append(finds, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
	}
	// Claim 1: SCORIS-N faster on every measured pair.
	allFaster := true
	for _, r := range h.cache {
		if r.Speedup <= 1 {
			allFaster = false
		}
	}
	add(allFaster, "SCORIS-N faster than BLASTN on every pair")
	// Claim 2: EST speed-up grows with search space (first vs last row).
	if r1, ok := h.cache[ESTPairs[0]]; ok {
		if r2, ok2 := h.cache[ESTPairs[len(ESTPairs)-1]]; ok2 {
			add(r2.Speedup > r1.Speedup,
				"EST speed-up grows with search space (%.1f → %.1f)", r1.Speedup, r2.Speedup)
		}
	}
	// Claim 3: sensitivity differences small (paper: ~3-4% on ESTs).
	for _, p := range ESTPairs {
		if r, ok := h.cache[p]; ok && r.Sens.BLTotal > 0 {
			add(r.Sens.SCORISMissPct() < 10, "%s SCORISmiss %.2f%% < 10%%", p, r.Sens.SCORISMissPct())
			add(r.Sens.BLASTMissPct() < 10, "%s BLASTmiss %.2f%% < 10%%", p, r.Sens.BLASTMissPct())
		}
	}
	// Claim 4: H10 vs BCT is (nearly) empty.
	if r, ok := h.cache[Pair{simulate.H10, simulate.BCT}]; ok {
		add(r.Sens.SCTotal <= 3 && r.Sens.BLTotal <= 3,
			"H10 vs BCT nearly empty (SC %d, BL %d)", r.Sens.SCTotal, r.Sens.BLTotal)
	}
	return finds
}
