package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simulate"
)

// A heavily scaled-down harness keeps these tests fast while still
// exercising every code path end to end.
func tinyHarness(out *bytes.Buffer) *Harness {
	h, err := New(Config{Scale: 128, Workers: 1, Out: out})
	if err != nil {
		panic(err)
	}
	return h
}

func TestRunPairProducesSaneRow(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	r := h.RunPair(Pair{simulate.EST1, simulate.EST2})
	if r.SearchSpace <= 0 {
		t.Errorf("search space %v", r.SearchSpace)
	}
	if r.ScorisTime <= 0 || r.BlastTime <= 0 {
		t.Errorf("times not measured: %v %v", r.ScorisTime, r.BlastTime)
	}
	if r.Sens.SCTotal == 0 || r.Sens.BLTotal == 0 {
		t.Errorf("no alignments found: %+v", r.Sens)
	}
	// The paper's central sensitivity claim, at any scale: both engines
	// agree on the vast majority of alignments.
	if r.Sens.SCORISMissPct() > 15 || r.Sens.BLASTMissPct() > 15 {
		t.Errorf("excessive cross-engine misses: %+v", r.Sens)
	}
}

func TestRunPairCached(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	p := Pair{simulate.EST1, simulate.EST2}
	r1 := h.RunPair(p)
	r2 := h.RunPair(p)
	if r1 != r2 {
		t.Error("RunPair did not cache")
	}
}

// TestIndexBuiltOncePerBankAcrossPairs is the acceptance assertion of
// the prepared-bank subsystem: a multi-pair workload sharing a subject
// bank builds each (bank, options) index exactly once for the life of
// the harness, however many rows reference it.
func TestIndexBuiltOncePerBankAcrossPairs(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.RunPair(Pair{simulate.EST1, simulate.EST2})
	h.RunPair(Pair{simulate.EST1, simulate.EST3})
	h.RunPair(Pair{simulate.EST1, simulate.EST5})
	c := h.IndexCache()
	if got := c.Builds(); got != 4 {
		t.Errorf("builds = %d, want 4 (EST1, EST2, EST3, EST5 once each)", got)
	}
	if got := c.Lookups(); got != 6 {
		t.Errorf("lookups = %d, want 6 (two per pair)", got)
	}
	// The ablations on an already-seen pair add only the option
	// variants they introduce, never a rebuild of an existing key:
	// A1 (ordered on/off) uses the default options twice — zero new
	// builds; A4 likewise runs EST3/EST4 with default options.
	h.OrderedRule() // EST1 vs EST2, default options again
	if got := c.Builds(); got != 4 {
		t.Errorf("A1 rebuilt a cached index: builds = %d, want 4", got)
	}
}

func TestDatasetsTable(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.Datasets()
	out := buf.String()
	for _, pb := range simulate.AllPaperBanks {
		if !strings.Contains(out, "| "+string(pb)+" |") {
			t.Errorf("bank %s missing from T1:\n%s", pb, out)
		}
	}
}

func TestSpeedupTableFormat(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	// Run only the first pair through the table helper to stay fast.
	h.speedupTable("T2 test", []Pair{{simulate.EST1, simulate.EST2}})
	out := buf.String()
	if !strings.Contains(out, "EST1 vs EST2") || !strings.Contains(out, "speed-up") {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestSensitivityTableFormat(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.sensTables("T4 test", []Pair{{simulate.EST1, simulate.EST2}})
	out := buf.String()
	if !strings.Contains(out, "SCORISmiss") || !strings.Contains(out, "BLASTmiss") {
		t.Errorf("sensitivity tables malformed:\n%s", out)
	}
}

func TestAsymmetricExperiment(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.Asymmetric()
	out := buf.String()
	if !strings.Contains(out, "W=10 asymmetric") {
		t.Errorf("X1 output malformed:\n%s", out)
	}
	// §3.4's claim: 100% of 11-mer anchors covered.
	if !strings.Contains(out, "(100.00 %)") {
		t.Errorf("11-mer coverage should be 100%%:\n%s", out)
	}
}

func TestOrderedRuleExperiment(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.OrderedRule()
	out := buf.String()
	if !strings.Contains(out, "ordered (ORIS)") || !strings.Contains(out, "naive + dedup") {
		t.Errorf("A1 output malformed:\n%s", out)
	}
}

func TestCheckShapesOnTinyRun(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.RunPair(Pair{simulate.EST1, simulate.EST2})
	finds := h.CheckShapes()
	if len(finds) == 0 {
		t.Fatal("no shape checks ran")
	}
	for _, f := range finds {
		if strings.HasPrefix(f, "[FAIL]") {
			// At scale 128 the speed-up claim can be noisy; log rather
			// than fail for the speed claims, but sensitivity claims
			// must hold.
			if strings.Contains(f, "miss") {
				t.Errorf("sensitivity shape failed: %s", f)
			} else {
				t.Logf("non-fatal at tiny scale: %s", f)
			}
		}
	}
}

func TestSeedOrderExperiment(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.SeedOrder()
	out := buf.String()
	if !strings.Contains(out, "ascending (ORIS)") || !strings.Contains(out, "shuffled") {
		t.Errorf("A4 output malformed:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("enumeration order changed the result:\n%s", out)
	}
}

func TestThreeWayExperiment(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	h.threeWayPair(Pair{simulate.EST1, simulate.EST2})
	out := buf.String()
	for _, want := range []string{"BLASTN (classic scan)", "SCORIS-N (ORIS)", "BLAT-style (tile index)"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 missing row %q:\n%s", want, out)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(nil)
	if c.Scale != 16 || c.Workers != 1 {
		t.Errorf("defaults: %+v", c)
	}
	h, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.cfg.Scale != 16 || h.cfg.Workers != 1 || h.cfg.Out == nil {
		t.Errorf("New normalization: %+v", h.cfg)
	}
}
