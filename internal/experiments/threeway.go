package experiments

import (
	"time"

	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/sensemetric"
	"repro/internal/simulate"
)

// ThreeWay runs E1, the comparison the paper lists as future work (§4):
// SCORIS-N against two memory-indexed contemporaries — the classic
// BLASTN scan and a BLAT-style tile index — on one EST pair and one
// large pair. For each engine it reports time, alignments, and the
// sensitivity relative to the BLASTN output (the paper's reference
// program).
func (h *Harness) ThreeWay() {
	for _, p := range []Pair{
		{simulate.EST3, simulate.EST4},
		{simulate.H19, simulate.VRL},
	} {
		h.threeWayPair(p)
	}
}

func (h *Harness) threeWayPair(p Pair) {
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### E1 — three-way engine comparison (%s)\n\n", p)

	// ORIS, through the shared prepared-bank cache: timed end to end,
	// with index builds paid only by the first row in the harness run
	// that touches each (bank, options) key.
	oOpt := core.DefaultOptions()
	oOpt.Workers = h.cfg.Workers
	ores, oTime := h.compareORIS(a, b, oOpt)
	oSecs := oTime.Seconds()
	oTab := toTab(ores.Alignments, a, b)

	// BLASTN baseline (the reference program of the paper), through the
	// shared per-db-bank session like every other harness row.
	bres, bTime := h.compareBlastn(a, b)
	bSecs := bTime.Seconds()
	bTab := toTab(bres.Alignments, a, b)

	// BLAT-style tile engine: its non-overlapping tile index likewise
	// comes through the cache, inside the timed section (built on first
	// touch, reused by later rows sharing the bank).
	tOpt := blat.DefaultOptions()
	t0 := time.Now()
	pdb := h.ix.Get(a, tOpt.IndexOptions())
	tres, err := blat.CompareWithIndex(pdb, b, tOpt)
	if err != nil {
		panic(err)
	}
	tSecs := time.Since(t0).Seconds()
	tTab := toTab(tres.Alignments, a, b)

	oSens := sensemetric.Compare(oTab, bTab, sensemetric.DefaultMinOverlap)
	tSens := sensemetric.Compare(tTab, bTab, sensemetric.DefaultMinOverlap)

	h.printf("| engine | time (s) | speed-up vs BLASTN | alignments | missed vs BLASTN |\n")
	h.printf("|--------|---------:|-------------------:|-----------:|-----------------:|\n")
	h.printf("| BLASTN (classic scan) | %.2f | 1.0 | %d | — |\n", bSecs, len(bres.Alignments))
	h.printf("| SCORIS-N (ORIS) | %.2f | %.1f | %d | %.2f %% |\n",
		oSecs, bSecs/oSecs, len(ores.Alignments), oSens.SCORISMissPct())
	h.printf("| BLAT-style (tile index) | %.2f | %.1f | %d | %.2f %% |\n",
		tSecs, bSecs/tSecs, len(tres.Alignments), tSens.SCORISMissPct())
	h.printf("\n")
}
