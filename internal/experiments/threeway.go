package experiments

import (
	"time"

	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/sensemetric"
	"repro/internal/simulate"
)

// ThreeWay runs E1, the comparison the paper lists as future work (§4):
// SCORIS-N against two memory-indexed contemporaries — the classic
// BLASTN scan and a BLAT-style tile index — on one EST pair and one
// large pair. For each engine it reports time, alignments, and the
// sensitivity relative to the BLASTN output (the paper's reference
// program).
func (h *Harness) ThreeWay() {
	for _, p := range []Pair{
		{simulate.EST3, simulate.EST4},
		{simulate.H19, simulate.VRL},
	} {
		h.threeWayPair(p)
	}
}

func (h *Harness) threeWayPair(p Pair) {
	a, b := h.ds.Get(p.A), h.ds.Get(p.B)
	h.printf("### E1 — three-way engine comparison (%s)\n\n", p)

	// ORIS.
	oOpt := core.DefaultOptions()
	oOpt.Workers = h.cfg.Workers
	t0 := time.Now()
	ores, err := core.Compare(a, b, oOpt)
	if err != nil {
		panic(err)
	}
	oSecs := time.Since(t0).Seconds()
	oTab := toTab(ores.Alignments, a, b)

	// BLASTN baseline (the reference program of the paper).
	t0 = time.Now()
	bres, err := blastn.Compare(a, b, blastn.DefaultOptions())
	if err != nil {
		panic(err)
	}
	bSecs := time.Since(t0).Seconds()
	bTab := toTab(bres.Alignments, a, b)

	// BLAT-style tile engine.
	t0 = time.Now()
	tres, err := blat.Compare(a, b, blat.DefaultOptions())
	if err != nil {
		panic(err)
	}
	tSecs := time.Since(t0).Seconds()
	tTab := toTab(tres.Alignments, a, b)

	oSens := sensemetric.Compare(oTab, bTab, sensemetric.DefaultMinOverlap)
	tSens := sensemetric.Compare(tTab, bTab, sensemetric.DefaultMinOverlap)

	h.printf("| engine | time (s) | speed-up vs BLASTN | alignments | missed vs BLASTN |\n")
	h.printf("|--------|---------:|-------------------:|-----------:|-----------------:|\n")
	h.printf("| BLASTN (classic scan) | %.2f | 1.0 | %d | — |\n", bSecs, len(bres.Alignments))
	h.printf("| SCORIS-N (ORIS) | %.2f | %.1f | %d | %.2f %% |\n",
		oSecs, bSecs/oSecs, len(ores.Alignments), oSens.SCORISMissPct())
	h.printf("| BLAT-style (tile index) | %.2f | %.1f | %d | %.2f %% |\n",
		tSecs, bSecs/tSecs, len(tres.Alignments), tSens.SCORISMissPct())
	h.printf("\n")
}
