package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAsciiPlotBasics(t *testing.T) {
	p := AsciiPlot{
		XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Marker: 'o', X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
			{Name: "b", Marker: '*', X: []float64{1, 2, 3}, Y: []float64{3, 6, 9}},
		},
	}
	out := p.Render()
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "o = a") || !strings.Contains(out, "* = b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "y") || !strings.Contains(out, "x") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestAsciiPlotMonotoneSeriesRisesLeftToRight(t *testing.T) {
	p := AsciiPlot{
		Width: 40, Height: 10,
		Series: []Series{{Name: "up", Marker: 'x',
			X: []float64{1, 10}, Y: []float64{1, 10}}},
	}
	out := p.Render()
	lines := strings.Split(out, "\n")
	// Find rows containing markers; the first marker (max y) must be on
	// an earlier line (higher on screen) at a later column.
	type pt struct{ row, col int }
	var pts []pt
	for i, l := range lines {
		// Only grid rows (label + '|' + cells); skip axis and legend.
		bar := strings.IndexByte(l, '|')
		if bar < 0 {
			continue
		}
		for j := bar + 1; j < len(l); j++ {
			if l[j] == 'x' {
				pts = append(pts, pt{i, j})
			}
		}
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 plotted points, got %d:\n%s", len(pts), out)
	}
	if !(pts[0].row < pts[1].row && pts[0].col > pts[1].col) {
		t.Errorf("rising series not rendered rising: %+v\n%s", pts, out)
	}
}

func TestAsciiPlotEmptySeries(t *testing.T) {
	p := AsciiPlot{Series: []Series{{Name: "empty", Marker: 'o'}}}
	out := p.Render()
	if out == "" {
		t.Error("empty plot rendered nothing")
	}
}

func TestFig3PlotEmitsFencedBlock(t *testing.T) {
	var buf bytes.Buffer
	h := tinyHarness(&buf)
	// Only run two pairs to keep the test fast: monkey-patch by running
	// the full plot on the tiny scale (acceptable: scale 128 is quick).
	h.Fig3Plot()
	out := buf.String()
	if !strings.Contains(out, "```") || !strings.Contains(out, "SCORIS-N") || !strings.Contains(out, "BLASTN") {
		t.Errorf("Fig3 plot malformed:\n%s", out)
	}
}
