package experiments

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve of a scatter plot.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// AsciiPlot renders series as a fixed-size ASCII scatter plot, used to
// reproduce figure 3 ("Execution time of SCORIS-N and BLASTN on the EST
// banks") in a terminal- and markdown-friendly form.
type AsciiPlot struct {
	Width, Height  int
	XLabel, YLabel string
	Series         []Series
}

// Render draws the plot.
func (p *AsciiPlot) Render() string {
	w, h := p.Width, p.Height
	if w < 20 {
		w = 72
	}
	if h < 8 {
		h = 20
	}
	var xMax, yMax float64
	for _, s := range p.Series {
		for i := range s.X {
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if xMax == 0 {
		xMax = 1
	}
	if yMax == 0 {
		yMax = 1
	}
	// Head-room so the topmost point is visible.
	xMax *= 1.05
	yMax *= 1.05

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range p.Series {
		for i := range s.X {
			col := int(s.X[i] / xMax * float64(w-1))
			row := h - 1 - int(s.Y[i]/yMax*float64(h-1))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = s.Marker
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", p.YLabel)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", yMax)
		case h / 2:
			label = fmt.Sprintf("%7.1f ", yMax/2)
		case h - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("        +" + strings.Repeat("-", w) + "\n")
	fmt.Fprintf(&sb, "        0%*s\n", w, fmt.Sprintf("%.2f", xMax))
	fmt.Fprintf(&sb, "        %s\n", p.XLabel)
	for _, s := range p.Series {
		fmt.Fprintf(&sb, "        %c = %s\n", s.Marker, s.Name)
	}
	return sb.String()
}

// Fig3Plot renders figure 3 itself: both engines' execution times
// against the search-space product, from the cached pair runs.
func (h *Harness) Fig3Plot() {
	var scoris, blast Series
	scoris = Series{Name: "SCORIS-N", Marker: 'o'}
	blast = Series{Name: "BLASTN", Marker: '*'}
	for _, p := range ESTPairs {
		r := h.RunPair(p)
		scoris.X = append(scoris.X, r.SearchSpace)
		scoris.Y = append(scoris.Y, r.ScorisTime.Seconds())
		blast.X = append(blast.X, r.SearchSpace)
		blast.Y = append(blast.Y, r.BlastTime.Seconds())
	}
	plot := AsciiPlot{
		XLabel: "Search Space (Mbp x Mbp)",
		YLabel: "time (sec)",
		Series: []Series{scoris, blast},
	}
	h.printf("### F3 (plot) — execution time vs search space\n\n")
	h.printf("```\n%s```\n\n", plot.Render())
}
