// Package experiments regenerates every table and figure of the
// paper's evaluation (§3) plus the ablations listed in DESIGN.md §4:
//
//	T1       data-set table (bank name, #seq, Mbp)
//	F3       execution time vs search space, SCORIS-N and BLASTN
//	T2, T3   speed-up tables (EST pairs; large-bank pairs)
//	T4–T7    sensitivity tables (SCORISmiss / BLASTmiss)
//	X1       asymmetric 10-nt indexing (§3.4)
//	X2       step-2/3 parallel scaling (§4)
//	A1       ordered-seed rule vs naive + dedup
//	A2       seed-length sweep
//	A3       dust filter on/off
//
// Results are printed as markdown tables so the output can be pasted
// into EXPERIMENTS.md verbatim. Absolute times depend on the host; the
// claims under reproduction are the *shapes*: SCORIS-N faster
// everywhere, speed-up growing with EST search space, and
// low-single-digit cross-engine miss rates.
package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/core"
	"repro/internal/ixcache"
	"repro/internal/ixdisk"
	"repro/internal/sensemetric"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

// Pair names one bank-vs-bank comparison, in the paper's "A vs B"
// order: A is the subject/database bank, B supplies the queries.
type Pair struct {
	A, B simulate.PaperBank
}

func (p Pair) String() string { return fmt.Sprintf("%s vs %s", p.A, p.B) }

// ESTPairs reproduces the rows of the paper's EST speed-up table and
// figure 3, in increasing search-space order.
var ESTPairs = []Pair{
	{simulate.EST1, simulate.EST2},
	{simulate.EST1, simulate.EST3},
	{simulate.EST1, simulate.EST5},
	{simulate.EST3, simulate.EST4},
	{simulate.EST1, simulate.EST7},
	{simulate.EST4, simulate.EST5},
	{simulate.EST5, simulate.EST6},
	{simulate.EST5, simulate.EST7},
}

// LargePairs reproduces the large-bank speed-up and sensitivity rows.
var LargePairs = []Pair{
	{simulate.H19, simulate.VRL},
	{simulate.BCT, simulate.EST7},
	{simulate.H19, simulate.BCT},
	{simulate.BCT, simulate.VRL},
	{simulate.H10, simulate.VRL},
	{simulate.H10, simulate.BCT},
}

// SensLargePairs is the paper's sensitivity-table row order for large
// banks (BCT vs EST7 first, H10 vs BCT last).
var SensLargePairs = []Pair{
	{simulate.BCT, simulate.EST7},
	{simulate.BCT, simulate.VRL},
	{simulate.H10, simulate.VRL},
	{simulate.H19, simulate.VRL},
	{simulate.H10, simulate.BCT},
	{simulate.H19, simulate.BCT},
}

// Config tunes a harness run.
type Config struct {
	// Scale divides the paper's bank sizes (16 ⇒ ~25× smaller search
	// spaces; see DESIGN.md §3 on the substitution).
	Scale int
	// Workers for the ORIS engine. The paper's prototype is
	// single-threaded; 1 keeps the engine comparison fair.
	Workers int
	// Out receives markdown tables.
	Out io.Writer
	// Verbose adds per-run metric lines.
	Verbose bool
	// IndexDir, when non-empty, attaches a persistent on-disk index
	// store (package ixdisk) below the harness's in-memory cache, so
	// repeated harness runs against the same generated banks skip
	// every index build after the first run's.
	IndexDir string
	// IndexPolicy bounds what the store persists (zero = everything).
	// Subject banks of each pair are marked as database banks, so a
	// DBOnly policy keeps per-run query indexes out of the store.
	IndexPolicy ixdisk.SavePolicy
	// IndexGC bounds the store directory (zero = unbounded); applied
	// automatically on saves, and on demand via Harness.StoreGC.
	IndexGC ixdisk.GCConfig
}

// DefaultConfig returns the standard configuration (scale 16,
// single-worker engines).
func DefaultConfig(out io.Writer) Config {
	return Config{Scale: 16, Workers: 1, Out: out}
}

// RowResult is the outcome of one pair comparison with both engines.
type RowResult struct {
	Pair        Pair
	SearchSpace float64 // Mbp(A) × Mbp(B), the paper's x-axis
	ScorisTime  time.Duration
	BlastTime   time.Duration
	Speedup     float64
	Sens        sensemetric.Report
	Scoris      core.Metrics
	Blast       blastn.Metrics
}

// indexCacheSize bounds the harness's shared prepared-bank cache. A
// full All() run touches ~30 distinct (bank, options) keys (11 banks at
// the default options plus the ablation variants); 64 keeps every key
// resident so each index is built exactly once per run.
const indexCacheSize = 64

// Harness generates banks once, shares one prepared-bank index cache
// across every experiment, and caches pair results so that the speed-up
// and sensitivity tables reuse the same runs, exactly as the paper
// derives both tables from one set of executions.
//
// ORIS rows are timed end to end (cache fetch + comparison): a row
// that first touches a (bank, options) key pays its build, and every
// later row reusing it doesn't — the harness is exactly the intensive
// multi-pair workload the paper says amortizes the front-loaded build
// (PAPER.md), so the build cost appears once per key per run instead
// of once per row, while staying comparable with the BLASTN column.
type Harness struct {
	cfg   Config
	ds    *simulate.DataSet
	ix    *ixcache.Cache
	store *ixdisk.DirStore
	bns   map[*bank.Bank]*blastn.Session
	cache map[Pair]*RowResult
}

// New creates a harness (generating the data set eagerly). The only
// fallible input is Config.IndexDir — an unusable store directory is
// reported as an error, not a panic, since it comes straight from a
// CLI flag.
func New(cfg Config) (*Harness, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 16
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	ix := ixcache.New(indexCacheSize)
	ds := simulate.NewDataSet(cfg.Scale)
	var store *ixdisk.DirStore
	if cfg.IndexDir != "" {
		var err error
		store, err = ixdisk.NewDirStore(cfg.IndexDir)
		if err != nil {
			return nil, fmt.Errorf("experiments: index store %s: %w", cfg.IndexDir, err)
		}
		store.SetSavePolicy(cfg.IndexPolicy)
		store.SetGC(cfg.IndexGC)
		// Mark every subject bank of the static pair tables up front:
		// the save decision is made when a bank's index is first built,
		// and several subjects (EST3, EST4, ...) are first built as the
		// query side of an earlier row — marking at RunPair time would
		// be too late for those under a DBOnly policy.
		for _, pairs := range [][]Pair{ESTPairs, LargePairs, SensLargePairs} {
			for _, p := range pairs {
				store.MarkDB(ds.Get(p.A))
			}
		}
		ix.SetStore(store)
	}
	return &Harness{
		cfg:   cfg,
		ds:    ds,
		ix:    ix,
		store: store,
		bns:   map[*bank.Bank]*blastn.Session{},
		cache: map[Pair]*RowResult{},
	}, nil
}

// DataSet exposes the generated banks.
func (h *Harness) DataSet() *simulate.DataSet { return h.ds }

// IndexCache exposes the shared prepared-bank cache (its Builds counter
// is the build-once-per-key assertion hook used by tests).
func (h *Harness) IndexCache() *ixcache.Cache { return h.ix }

// Store exposes the on-disk index store, nil when Config.IndexDir was
// empty — for the CLI's counter lines and explicit StoreGC calls.
func (h *Harness) Store() *ixdisk.DirStore { return h.store }

// StoreGC runs an explicit collection under Config.IndexGC. ok is
// false when no store is attached.
func (h *Harness) StoreGC() (st ixdisk.GCStats, ok bool, err error) {
	if h.store == nil {
		return ixdisk.GCStats{}, false, nil
	}
	st, err = h.store.GC()
	return st, true, err
}

// compareORIS runs the ORIS engine on a pair through the shared index
// cache. The timer wraps the cache fetch AND the comparison, so a row
// that touches a (bank, options) key for the first time pays that
// build inside its reported duration — keeping ORIS and BLASTN rows
// end-to-end-comparable — while every later row reusing the key skips
// it, which is the honest amortized cost of the intensive workload.
func (h *Harness) compareORIS(a, b *bank.Bank, opt core.Options) (*core.Result, time.Duration) {
	if h.store != nil {
		h.store.MarkDB(a) // ad-hoc ablation subjects not in the pair tables
	}
	t0 := time.Now()
	p1, p2, err := core.Prepare(h.ix, a, b, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: prepare %s/%s: %v", a.Name, b.Name, err))
	}
	res, err := core.CompareWithIndex(p1, p2, opt)
	if err != nil {
		panic(fmt.Sprintf("experiments: ORIS %s/%s: %v", a.Name, b.Name, err))
	}
	return res, time.Since(t0)
}

// blastnSession returns the shared baseline session for db bank a,
// allocating it on first touch. The ORIS and BLAT sides already share
// their per-bank artifacts through the index cache; this closes the
// ROADMAP gap where the baseline re-allocated its db-sized engine
// arrays (diagonal tables, word lookup) for every pair sharing a db
// bank. Safe because the harness runs pairs sequentially and every
// row uses blastn.DefaultOptions — a Session is single-threaded and
// valid only for the (db, Options) it was created with.
func (h *Harness) blastnSession(a *bank.Bank) *blastn.Session {
	if s, ok := h.bns[a]; ok {
		return s
	}
	s, err := blastn.NewSession(a, blastn.DefaultOptions())
	if err != nil {
		panic(fmt.Sprintf("experiments: blastn session %s: %v", a.Name, err))
	}
	h.bns[a] = s
	return s
}

// compareBlastn runs the baseline through the shared per-db-bank
// session. Like compareORIS, the timer wraps the session fetch AND the
// comparison: the first row touching a db bank pays the engine
// allocation inside its reported duration, later rows reuse it — the
// same honest amortized accounting as the ORIS column.
func (h *Harness) compareBlastn(a, b *bank.Bank) (*blastn.Result, time.Duration) {
	t0 := time.Now()
	res, err := h.blastnSession(a).Compare(b)
	if err != nil {
		panic(fmt.Sprintf("experiments: BLASTN %s/%s: %v", a.Name, b.Name, err))
	}
	return res, time.Since(t0)
}

func (h *Harness) printf(format string, args ...any) {
	fmt.Fprintf(h.cfg.Out, format, args...)
}

// RunPair executes both engines on a pair (cached).
func (h *Harness) RunPair(p Pair) *RowResult {
	if r, ok := h.cache[p]; ok {
		return r
	}
	a := h.ds.Get(p.A)
	b := h.ds.Get(p.B)

	oOpt := core.DefaultOptions()
	oOpt.Workers = h.cfg.Workers
	ores, oTime := h.compareORIS(a, b, oOpt)

	bres, bTime := h.compareBlastn(a, b)

	oTab := toTab(ores.Alignments, a, b)
	bTab := toTab(bres.Alignments, a, b)

	r := &RowResult{
		Pair:        p,
		SearchSpace: a.Mbp() * b.Mbp(),
		ScorisTime:  oTime,
		BlastTime:   bTime,
		Speedup:     safeRatio(bTime, oTime),
		Sens:        sensemetric.Compare(oTab, bTab, sensemetric.DefaultMinOverlap),
		Scoris:      ores.Metrics,
		Blast:       bres.Metrics,
	}
	h.cache[p] = r
	if h.cfg.Verbose {
		h.printf("<!-- %s: oris %.2fs (hsps %d, aligns %d) | blastn %.2fs (hsps %d, aligns %d) -->\n",
			p, oTime.Seconds(), ores.Metrics.HSPs, len(ores.Alignments),
			bTime.Seconds(), bres.Metrics.HSPs, len(bres.Alignments))
	}
	return r
}

func toTab(as []align.Alignment, b1, b2 *bank.Bank) []tabular.Record {
	out := make([]tabular.Record, len(as))
	for i := range as {
		out[i] = tabular.FromAlignment(&as[i], b1, b2)
	}
	return out
}

func safeRatio(num, den time.Duration) float64 {
	if den <= 0 {
		return 0
	}
	return float64(num) / float64(den)
}
