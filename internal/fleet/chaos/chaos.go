// Package chaos is the fault-injection harness of the fleet layer: a
// transparent TCP proxy wrapped around one worker's HTTP handler that
// can be switched, per worker and at any moment, into the failure modes
// a real fleet sees — death (connections refused), hangs (accepted,
// never answered), pathological slowness, truncated responses, and
// load-shedding 429s. The fleet tests and the chaos criterion of the
// router ("kill 1 of 3 workers mid-wave, complete the wave with zero
// client-visible failures") drive workers exclusively through these
// proxies, so every degradation path is exercised against real sockets,
// not mocks.
//
// Modes that fault the data plane only (Slow, Corrupt, Reject) apply to
// POST /compare and leave the health endpoints honest, so a test can
// target the router's retry machinery without the health loop pulling
// the worker out first. Kill and Hang are physical: they take the
// probes down with the worker, which is exactly what the health state
// machine exists to notice.
package chaos

import (
	"bytes"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the proxy's current behavior.
type Mode int32

const (
	// Healthy passes every request through untouched.
	Healthy Mode = iota
	// Hang accepts requests (all paths, probes included) and never
	// answers until the mode changes or the client gives up — the
	// stuck-worker shape a deadline exists for.
	Hang
	// Slow delays each /compare response by the configured duration.
	Slow
	// Corrupt serves /compare with the full Content-Length declared
	// but the body truncated halfway, then severs the connection — the
	// torn-response shape a router must detect and retry elsewhere.
	Corrupt
	// Reject answers every /compare with 429 + Retry-After, the
	// admission-control backpressure shape.
	Reject
	// Torn serves /compare's headers and half its body — flushed, so
	// the bytes reach the wire — then severs the connection without the
	// stream's sealing trailer ever arriving. Where Corrupt promises a
	// Content-Length it cannot keep (the buffered-response tear), Torn
	// is the chunked-stream tear: a relay that has already committed to
	// this worker must seal the client's stream with a non-"complete"
	// trailer, never pass the truncation off as a full result.
	Torn
)

func (m Mode) String() string {
	switch m {
	case Healthy:
		return "healthy"
	case Hang:
		return "hang"
	case Slow:
		return "slow"
	case Corrupt:
		return "corrupt"
	case Reject:
		return "reject"
	case Torn:
		return "torn"
	}
	return "unknown"
}

// Proxy fronts one worker handler on a real localhost listener.
type Proxy struct {
	inner http.Handler
	addr  string

	mode  atomic.Int32
	delay atomic.Int64 // Slow's per-response delay, ns

	mu      sync.Mutex
	srv     *http.Server
	release chan struct{} // closed on every Set: unparks Hang'd requests
}

// New starts a proxy for inner on an ephemeral localhost port.
func New(inner http.Handler) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		inner:   inner,
		addr:    ln.Addr().String(),
		release: make(chan struct{}),
	}
	p.serveOn(ln)
	return p, nil
}

func (p *Proxy) serveOn(ln net.Listener) {
	srv := &http.Server{Handler: http.HandlerFunc(p.serve)}
	p.mu.Lock()
	p.srv = srv
	p.mu.Unlock()
	// background: accept loop; terminated by Kill/Close, which
	// srv.Close()s this server and its listener.
	go srv.Serve(ln)
}

// URL is the base URL a router registers this worker under.
func (p *Proxy) URL() string { return "http://" + p.addr }

// Addr is the proxy's host:port (stable across Kill/Restart).
func (p *Proxy) Addr() string { return p.addr }

// Set switches the failure mode and unparks any requests held by Hang
// (they answer 503, so a late un-hang never counterfeits a success).
func (p *Proxy) Set(m Mode) {
	p.mode.Store(int32(m))
	p.mu.Lock()
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// SetSlow enters Slow mode with the given per-response delay.
func (p *Proxy) SetSlow(d time.Duration) {
	p.delay.Store(int64(d))
	p.Set(Slow)
}

// Kill is worker death: the listener closes and every open connection
// is dropped; new connections are refused. The process-level equivalent
// of SIGKILL, as seen from the router.
func (p *Proxy) Kill() {
	p.mu.Lock()
	srv := p.srv
	p.srv = nil
	p.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
}

// Restart revives a killed worker on its original address, so recovery
// (death → probe failure → Down → probe success → Up) is testable.
func (p *Proxy) Restart() error {
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		return err
	}
	p.serveOn(ln)
	return nil
}

// Close shuts the proxy down for good.
func (p *Proxy) Close() { p.Kill() }

func (p *Proxy) releaseCh() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.release
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	mode := Mode(p.mode.Load())
	if mode == Hang {
		select {
		case <-r.Context().Done():
		case <-p.releaseCh():
		}
		http.Error(w, "chaos: request was hung", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Path != "/compare" {
		// Data-plane-only faults leave probes and registration honest.
		p.inner.ServeHTTP(w, r)
		return
	}
	switch mode {
	case Slow:
		select {
		case <-time.After(time.Duration(p.delay.Load())):
		case <-r.Context().Done():
			return
		}
		p.inner.ServeHTTP(w, r)
	case Corrupt:
		rec := newRecorder()
		p.inner.ServeHTTP(rec, r)
		body := rec.buf.Bytes()
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		// Promise the whole body, deliver half, cut the line: the
		// client's read must fail with an unexpected EOF, never parse
		// a truncated m8 stream as a complete result. (An empty body
		// cannot be truncated — sever before the status line instead.)
		if len(body) == 0 {
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.code)
		w.Write(body[:len(body)/2])
		// Push the half-body onto the wire before severing; without the
		// flush net/http discards its buffer on abort and the client
		// sees a refused response instead of a torn one.
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	case Torn:
		rec := newRecorder()
		p.inner.ServeHTTP(rec, r)
		body := rec.buf.Bytes()
		for k, vs := range rec.header {
			if k == "X-Scoris-Status" {
				// The sealing trailer is exactly what a torn stream
				// never delivers.
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		if len(body) == 0 {
			panic(http.ErrAbortHandler)
		}
		// No Content-Length: the response goes out chunked, half the
		// body is flushed onto the wire, and the abort cuts the chunk
		// stream mid-flight — the reader sees an unexpected EOF, not a
		// terminated body.
		w.WriteHeader(rec.code)
		w.Write(body[:len(body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	case Reject:
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"chaos: worker sheds load"}`, http.StatusTooManyRequests)
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// recorder is a minimal in-memory ResponseWriter for Corrupt mode (the
// full response must exist before its truncation can be staged).
type recorder struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }
