package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func newProxy(t *testing.T) *Proxy {
	t.Helper()
	inner := http.NewServeMux()
	inner.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "0123456789") // 10 bytes: truncation is observable
	})
	inner.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	px, err := New(inner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Close)
	return px
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b), err
}

func TestProxyHealthyPassThrough(t *testing.T) {
	px := newProxy(t)
	status, body, err := get(t, px.URL()+"/compare")
	if err != nil || status != 200 || body != "0123456789" {
		t.Fatalf("healthy pass-through: %d %q %v", status, body, err)
	}
}

// Hang parks every request (probes included) until the mode changes.
func TestProxyHangRespectsContext(t *testing.T) {
	px := newProxy(t)
	px.Set(Hang)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, px.URL()+"/readyz", nil)
	start := time.Now()
	_, err := http.DefaultClient.Do(req)
	if err == nil {
		t.Fatal("hung proxy answered")
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("request failed after %v — it did not actually hang", elapsed)
	}
}

// Flipping out of Hang unparks waiters (they answer 503, not a stall).
func TestProxyHangRelease(t *testing.T) {
	px := newProxy(t)
	px.Set(Hang)
	done := make(chan int, 1)
	go func() {
		status, _, _ := get(t, px.URL()+"/compare")
		done <- status
	}()
	time.Sleep(50 * time.Millisecond)
	px.Set(Healthy)
	select {
	case status := <-done:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("released waiter got %d, want 503", status)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still parked after the mode changed")
	}
}

// Slow delays /compare but leaves probes honest.
func TestProxySlowSparesProbes(t *testing.T) {
	px := newProxy(t)
	px.SetSlow(300 * time.Millisecond)

	start := time.Now()
	resp, err := http.Get(px.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("probe took %v under Slow — probes must not be delayed", elapsed)
	}

	start = time.Now()
	status, body, err := get(t, px.URL()+"/compare")
	if err != nil || status != 200 || body != "0123456789" {
		t.Fatalf("slow compare: %d %q %v", status, body, err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("compare took %v under Slow(300ms) — delay not applied", elapsed)
	}
}

// Corrupt declares the full Content-Length but truncates the body, so a
// client that reads to completion sees an unexpected EOF.
func TestProxyCorruptTruncates(t *testing.T) {
	px := newProxy(t)
	px.Set(Corrupt)
	resp, err := http.Post(px.URL()+"/compare", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength != 10 {
		t.Fatalf("corrupt response declares length %d, want the honest 10", resp.ContentLength)
	}
	_, err = io.ReadAll(resp.Body)
	if err == nil {
		t.Fatal("reading a corrupt response succeeded — truncation is not observable")
	}
}

func TestProxyRejectIs429(t *testing.T) {
	px := newProxy(t)
	px.Set(Reject)
	resp, err := http.Post(px.URL()+"/compare", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("reject mode: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Probes still pass: rejection models saturation, not death.
	resp, err = http.Get(px.URL() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("probe under Reject: %d, want 200", resp.StatusCode)
	}
}

// Kill drops the listener (connection refused); Restart resurrects it on
// the same address so registry URLs stay valid.
func TestProxyKillRestart(t *testing.T) {
	px := newProxy(t)
	addr := px.Addr()
	px.Kill()
	if _, _, err := get(t, px.URL()+"/compare"); err == nil {
		t.Fatal("killed proxy still answers")
	}
	if err := px.Restart(); err != nil {
		t.Fatal(err)
	}
	if px.Addr() != addr {
		t.Fatalf("restart moved the proxy: %s -> %s", addr, px.Addr())
	}
	status, body, err := get(t, px.URL()+"/compare")
	if err != nil || status != 200 || body != "0123456789" {
		t.Fatalf("restarted proxy: %d %q %v", status, body, err)
	}
}
