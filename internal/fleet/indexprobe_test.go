package fleet

import (
	"fmt"
	"testing"

	"repro/internal/bank"
	"repro/internal/fasta"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/ixdisk"
)

// probeRecs builds deterministic FASTA records for the store-probe
// tests (an LCG over ACGT, same technique as the ixdisk tests).
func probeRecs(t *testing.T, n, count int, seed uint32) []*fasta.Record {
	t.Helper()
	const alpha = "ACGT"
	state := seed
	recs := make([]*fasta.Record, count)
	for r := range recs {
		buf := make([]byte, n)
		for i := range buf {
			state = state*1664525 + 1013904223
			buf[i] = alpha[state>>30]
		}
		recs[r] = &fasta.Record{ID: fmt.Sprintf("s%d", r), Seq: buf}
	}
	return recs
}

// TestRouterStoredIndexAnnotation: with a shared IndexDir configured,
// the router reports which banks have stored indexes — exact files and
// stored prefixes both — from probed metadata alone, and never
// attributes another bank's files.
func TestRouterStoredIndexAnnotation(t *testing.T) {
	dir := t.TempDir()
	recsA := probeRecs(t, 600, 5, 42)
	recsB := probeRecs(t, 600, 5, 777)
	bankA := bank.New("a", recsA)
	bankB := bank.New("b", recsB)
	opts := index.Options{W: 8}
	store, err := ixdisk.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// bankA: an exact stored index. bankB: nothing stored.
	if err := store.Save(ixcache.Prepare(bankA, opts)); err != nil {
		t.Fatal(err)
	}

	rt := New(Config{IndexDir: dir})
	recA := &bankRecord{Name: "a"}
	recA.fill(bankA)
	recB := &bankRecord{Name: "b"}
	recB.fill(bankB)

	files, blocks := rt.storedIndexes(recA)
	if files != 1 || blocks < 1 {
		t.Errorf("bankA: %d files / %d blocks, want 1 file with blocks", files, blocks)
	}
	if files, _ := rt.storedIndexes(recB); files != 0 {
		t.Errorf("bankB: %d files, want 0 (its index was never stored)", files)
	}

	// A stored prefix of bankB counts: a worker can warm from it with
	// one appended block. It must not be attributed to bankA.
	sub := bank.New("b", recsB[:4])
	if err := store.Save(ixcache.Prepare(sub, opts)); err != nil {
		t.Fatal(err)
	}
	if files, _ := rt.storedIndexes(recB); files != 1 {
		t.Errorf("bankB after storing its prefix: %d files, want 1", files)
	}
	if files, _ := rt.storedIndexes(recA); files != 1 {
		t.Errorf("bankA after storing bankB's prefix: %d files, want still 1", files)
	}

	// No IndexDir configured: the probe is off entirely.
	rtNone := New(Config{})
	if files, blocks := rtNone.storedIndexes(recA); files != 0 || blocks != 0 {
		t.Errorf("no IndexDir: %d/%d, want 0/0", files, blocks)
	}
}
