// Package fleet is the horizontal-scaling layer of the reproduction: a
// coordinator (cmd/scoris-router) that fronts a pool of scorisd workers
// so comparison capacity grows by adding processes, not cores — the
// "millions of users" direction of the ROADMAP, and the
// shard-by-index-identity view the indexed-seed-search literature takes
// (the database index is the unit that replicates).
//
// # Bank affinity
//
// Compares route by bank identity: each registered bank's content key
// (the same CRC-64 + length + sequence-count triple that names its
// .orix file) is rendezvous-hashed against the worker set, and the
// top-Replication workers own the bank. POST /banks fans registration
// to the owners, POST /compare tries them in rendezvous order — so each
// prepared index stays hot on the workers that own it, and adding a
// worker remaps only the banks that worker wins (no global reshuffle,
// the rendezvous property).
//
// # Robustness
//
// The rest of the package is the machinery that keeps the fleet
// serving while its workers misbehave:
//
//   - a health loop probes every worker's /readyz and runs each through
//     an up/draining/down state machine (draining workers stop taking
//     new routes before their listener closes; dead ones return only
//     after a probe succeeds again);
//   - compares are idempotent, so any failed attempt — connection
//     refused, worker death mid-response, truncated body, per-attempt
//     deadline, 429, 5xx — retries on the next live replica in the
//     ring, with capped jittered exponential backoff between attempts;
//   - a worker that wins a bank it never saw (failover past the owner
//     list) is backfilled: the router replays the bank's registration,
//     and with a shared -index-dir store the worker warms the index
//     from disk instead of rebuilding;
//   - when every replica is exhausted or no worker is up, the router
//     sheds with an honest 503 + Retry-After immediately — degraded
//     capacity answers fast, it does not queue-collapse or hang.
//
// Fault injection for all of the above lives in the chaos subpackage;
// GET /stats aggregates the per-worker amortization ledgers fleet-wide.
package fleet

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
)

// Config tunes the router. The zero value is serviceable: every field
// has a default chosen for a small local fleet.
type Config struct {
	// Replication is how many workers own (and get registrations for)
	// each bank. Non-positive means DefaultReplication; ownership never
	// exceeds the worker count.
	Replication int
	// ProbeInterval is the health-loop period (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each /readyz probe and each per-worker /stats
	// fetch (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures turn a
	// worker Down (default 3). Transport failures on the compare path
	// down a worker immediately — the probe loop brings it back.
	FailThreshold int
	// CompareTimeout is the end-to-end deadline the router grants one
	// client compare across all its attempts; expiry answers 504. Zero
	// means no router-side deadline (the client's own applies).
	CompareTimeout time.Duration
	// AttemptTimeout bounds a single forwarded attempt, so one hung
	// worker cannot consume the whole CompareTimeout. Zero derives
	// CompareTimeout/MaxAttempts when CompareTimeout is set, else
	// leaves attempts unbounded.
	AttemptTimeout time.Duration
	// MaxAttempts is the total number of forwarded attempts per compare
	// before the router sheds (default 6).
	MaxAttempts int
	// RetryBase and RetryMax shape the capped jittered exponential
	// backoff between attempts (defaults 50ms and 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Client performs all worker-bound HTTP. Defaults to a dedicated
	// client with no global timeout (contexts bound each call).
	Client *http.Client
	// IndexDir, when set, names the index store directory the workers
	// share (their -index-dir). The router never loads an index from
	// it; it only probes file metadata — header plus v3 footer
	// directory, a few KiB per file — to annotate GET /banks with
	// which banks have a stored index and how many blocks it holds.
	IndexDir string
}

// DefaultReplication is how many workers own each bank by default.
const DefaultReplication = 2

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = DefaultReplication
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 6
	}
	if c.AttemptTimeout <= 0 && c.CompareTimeout > 0 {
		c.AttemptTimeout = c.CompareTimeout / time.Duration(c.MaxAttempts)
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// State is a worker's position in the health state machine.
type State int32

const (
	// StateUp workers take new routes.
	StateUp State = iota
	// StateDraining workers answered /readyz with 503: alive, finishing
	// their in-flight work, not taking new routes. They return to Up
	// when readiness returns (a drain that was a store hiccup) and fall
	// to Down when probes stop answering (the listener closed).
	StateDraining
	// StateDown workers take no routes until a probe succeeds again.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	}
	return "unknown"
}

// worker is one scorisd process as the router sees it.
type worker struct {
	Name string
	URL  string

	mu      sync.Mutex
	state   State  // guardedby: mu
	fails   int    // guardedby: mu ; consecutive probe/compare failures
	lastErr string // guardedby: mu
}

func (w *worker) State() State {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state
}

func (w *worker) snapshot() (State, int, string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state, w.fails, w.lastErr
}

func (w *worker) setUp() {
	w.mu.Lock()
	w.state, w.fails, w.lastErr = StateUp, 0, ""
	w.mu.Unlock()
}

func (w *worker) setDraining(reason string) {
	w.mu.Lock()
	w.state, w.fails, w.lastErr = StateDraining, 0, reason
	w.mu.Unlock()
}

// noteFail records one failed probe; threshold consecutive failures
// turn the worker Down. immediate (compare-path transport failures,
// i.e. observed worker death) skips the threshold: the next replica
// must not wait three probe periods to be tried.
func (w *worker) noteFail(err error, threshold int, immediate bool) {
	w.mu.Lock()
	w.fails++
	w.lastErr = err.Error()
	if immediate || w.fails >= threshold {
		w.state = StateDown
	}
	w.mu.Unlock()
}

// bankRecord is the router's view of one registered bank: enough
// identity to route by content, and a replayable registration spec so
// failover targets can be backfilled on demand.
type bankRecord struct {
	Name  string
	Key   string // content key: CRC-64/ECMA + data length + seq count
	DB    bool
	Seqs  int
	Bases int
	// crc, dataLen, and seqSums are the bank's identity kept
	// unserialized, so the store probe can match index files — exact
	// or stored-prefix — without re-parsing the key string.
	crc     uint64
	dataLen int
	seqSums []uint64

	specJSON []byte // JSON {"name","path","db"} registration to replay
	fasta    []byte // raw FASTA body registration to replay (exclusive)
}

// Router is the fleet coordinator. Create with New, register workers
// (AddWorker or POST /workers), Start the health loop, and mount
// Handler on an http.Server. All methods are safe for concurrent use.
type Router struct {
	cfg    Config
	client *http.Client

	mu      sync.RWMutex
	workers map[string]*worker     // guardedby: mu
	order   []string               // guardedby: mu ; registration order, for stable listings
	banks   map[string]*bankRecord // guardedby: mu

	requests   atomic.Int64 // HTTP requests seen (all endpoints)
	compares   atomic.Int64 // compares answered 2xx
	retries    atomic.Int64 // forwarded attempts beyond each first
	failovers  atomic.Int64 // attempts abandoned for transport/5xx death
	backfills  atomic.Int64 // banks replayed onto failover targets
	shed       atomic.Int64 // compares answered 503 (replicas exhausted)
	timedOut   atomic.Int64 // compares answered 504 (CompareTimeout)
	tornRelays atomic.Int64 // committed stream relays sealed non-complete
	probes     atomic.Int64
	probeFails atomic.Int64

	stopProbes chan struct{}
	probesDone chan struct{}
	started    atomic.Bool
	startOnce  sync.Once
	stopOnce   sync.Once
}

// New returns a router with no workers; Start launches its health loop.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	return &Router{
		cfg:        cfg,
		client:     cfg.Client,
		workers:    make(map[string]*worker),
		banks:      make(map[string]*bankRecord),
		stopProbes: make(chan struct{}),
		probesDone: make(chan struct{}),
	}
}

// Config returns the effective configuration, defaults filled in.
func (rt *Router) Config() Config { return rt.cfg }

// AddWorker registers (or re-registers) a worker under name. A worker
// that comes back on a new address re-registers with the same name; its
// state resets to Up and the next probe settles the truth. The URL must
// be absolute (http://host:port).
func (rt *Router) AddWorker(name, rawURL string) error {
	if name == "" {
		return fmt.Errorf("fleet: worker name must be non-empty")
	}
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return fmt.Errorf("fleet: worker %q needs an absolute URL (http://host:port), got %q", name, rawURL)
	}
	base := u.Scheme + "://" + u.Host
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if prev, ok := rt.workers[name]; ok {
		prev.mu.Lock()
		prev.URL = base
		prev.state, prev.fails, prev.lastErr = StateUp, 0, ""
		prev.mu.Unlock()
		return nil
	}
	rt.workers[name] = &worker{Name: name, URL: base, state: StateUp}
	rt.order = append(rt.order, name)
	return nil
}

// workerList snapshots the worker set in registration order.
func (rt *Router) workerList() []*worker {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	ws := make([]*worker, 0, len(rt.order))
	for _, name := range rt.order {
		ws = append(ws, rt.workers[name])
	}
	return ws
}

// rank orders every worker by rendezvous score for key, highest first:
// position 0..Replication-1 are the bank's owners, and the tail is the
// failover order. The ranking is over the full worker set regardless of
// health — health is a routing-time filter, not an ownership change, so
// a worker blip never migrates every bank.
func (rt *Router) rank(key string) []*worker {
	ws := rt.workerList()
	type scored struct {
		w     *worker
		score uint64
	}
	ss := make([]scored, len(ws))
	for i, w := range ws {
		ss[i] = scored{w, rendezvousScore(key, w.Name)}
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].w.Name < ss[j].w.Name
	})
	out := make([]*worker, len(ss))
	for i, s := range ss {
		out[i] = s.w
	}
	return out
}

// rendezvousScore is FNV-1a over (worker, bank-key): each worker hashes
// every bank independently, so removing one worker reassigns only the
// banks it owned.
func rendezvousScore(key, workerName string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerName))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// owners returns the top-n live-or-not workers for key.
func (rt *Router) owners(key string) []*worker {
	ranked := rt.rank(key)
	n := rt.cfg.Replication
	if n > len(ranked) {
		n = len(ranked)
	}
	return ranked[:n]
}

// Handler returns the router's HTTP mux. Like the worker surface, all
// routes are served under /v1/ with the bare legacy paths kept as
// deprecated aliases (see internal/httpapi), so a router can front
// clients written against either surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compare", rt.count(rt.handleCompare))
	mux.HandleFunc("/compare/batch", rt.count(rt.handleCompareBatch))
	mux.HandleFunc("/banks", rt.count(rt.handleBanks))
	mux.HandleFunc("/workers", rt.count(rt.handleWorkers))
	mux.HandleFunc("/stats", rt.count(rt.handleStats))
	mux.HandleFunc("/healthz", rt.count(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/readyz", rt.count(rt.handleReadyz))
	return httpapi.Versioned(mux)
}

func (rt *Router) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Add(1)
		h(w, r)
	}
}

// handleReadyz: the router is ready when at least one worker is up —
// otherwise every compare would shed, and a load balancer above a
// multi-router deployment should know.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, wk := range rt.workerList() {
		if wk.State() == StateUp {
			up++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "no workers up"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true, "workers_up": up})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// workerInfo is one row of GET /workers.
type workerInfo struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

func (rt *Router) handleWorkers(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		infos := make([]workerInfo, 0)
		for _, wk := range rt.workerList() {
			st, fails, lastErr := wk.snapshot()
			infos = append(infos, workerInfo{
				Name: wk.Name, URL: wk.URL, State: st.String(),
				Failures: fails, LastErr: lastErr,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(infos)
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			URL  string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad worker registration: %v", err)
			return
		}
		if req.Name == "" {
			req.Name = req.URL
		}
		if err := rt.AddWorker(req.Name, req.URL); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Settle the new worker's true state promptly (it registered
		// optimistically Up).
		// background: one-shot probe bounded by ProbeTimeout; the
		// periodic health loop owns steady-state probing.
		go rt.probeWorkerByName(req.Name)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"registered": req.Name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}
