package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fasta"
	"repro/internal/fleet/chaos"
	"repro/internal/ixdisk"
	"repro/internal/server"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

// testWorker is one in-process scorisd behind its chaos proxy.
type testWorker struct {
	name string
	srv  *server.Server
	px   *chaos.Proxy
}

// testCfg is a Config tuned for test speed: tight probes, tiny backoff.
func testCfg() Config {
	return Config{
		Replication:   2,
		ProbeInterval: time.Hour, // probes fire via ProbeAll, deterministically
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		MaxAttempts:   6,
		RetryBase:     2 * time.Millisecond,
		RetryMax:      20 * time.Millisecond,
	}
}

// newTestFleet builds n chaos-wrapped workers and a router over them.
// wcfg(i) shapes each worker (nil: a default 2-slot pool).
func newTestFleet(t *testing.T, n int, cfg Config, wcfg func(i int) server.Config) (*Router, []*testWorker, *httptest.Server) {
	t.Helper()
	if wcfg == nil {
		wcfg = func(int) server.Config { return server.Config{MaxConcurrent: 2, RequestWorkers: 1} }
	}
	rt := New(cfg)
	workers := make([]*testWorker, n)
	for i := range workers {
		srv := server.New(wcfg(i))
		px, err := chaos.New(srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(px.Close)
		name := fmt.Sprintf("w%d", i+1)
		workers[i] = &testWorker{name: name, srv: srv, px: px}
		if err := rt.AddWorker(name, px.URL()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(rt.Stop)
	return rt, workers, ts
}

func workerByName(workers []*testWorker, name string) *testWorker {
	for _, w := range workers {
		if w.name == name {
			return w
		}
	}
	return nil
}

// fastaBytes renders a bank back to FASTA text (registration bodies).
func fastaBytes(t *testing.T, b *bank.Bank) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf)
	for i := 0; i < b.NumSeqs(); i++ {
		rec := &fasta.Record{ID: b.SeqID(i), Desc: b.SeqDesc(i), Seq: dna.Decode(b.SeqCodes(i))}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// registerBank registers b through the router by FASTA body and returns
// the router's bank info (key, owner order).
func registerBank(t *testing.T, routerURL, name string, b *bank.Bank, db bool) bankInfo {
	t.Helper()
	u := routerURL + "/banks?name=" + name
	if db {
		u += "&db=1"
	}
	resp, err := http.Post(u, "text/x-fasta", bytes.NewReader(fastaBytes(t, b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info bankInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registering %q: status %d: %+v", name, resp.StatusCode, info)
	}
	return info
}

func testBanks(t *testing.T) (est1, est2 *bank.Bank) {
	t.Helper()
	ds := simulate.NewDataSet(256)
	return ds.Get(simulate.EST1), ds.Get(simulate.EST2)
}

// oracle computes the reference m8 bytes the fleet must serve
// byte-identically, whichever worker answers.
func oracle(t *testing.T, db, query *bank.Bank) []byte {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Workers = 1
	res, err := core.Compare(db, query, opt)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]tabular.Record, len(res.Alignments))
	for i := range res.Alignments {
		recs[i] = tabular.FromAlignment(&res.Alignments[i], db, query)
	}
	var buf bytes.Buffer
	if err := tabular.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postCompare(t *testing.T, routerURL string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(routerURL+"/compare", "application/json",
		strings.NewReader(`{"db":"db","query":"q"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// wave fires n concurrent compares and returns each status and body.
func wave(t *testing.T, routerURL string, n int) ([]int, [][]byte) {
	t.Helper()
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(routerURL+"/compare", "application/json",
				strings.NewReader(`{"db":"db","query":"q"}`))
			if err != nil {
				statuses[i] = -1
				bodies[i] = []byte(err.Error())
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			statuses[i] = resp.StatusCode
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	return statuses, bodies
}

func assertWaveIdentical(t *testing.T, statuses []int, bodies [][]byte, want []byte) {
	t.Helper()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("wave request %d: status %d: %s", i, s, bodies[i])
		}
		if !bytes.Equal(bodies[i], want) {
			t.Fatalf("wave request %d differs from the oracle (%d vs %d bytes)", i, len(bodies[i]), len(want))
		}
	}
}

// TestFleetAffinityRouting: compares for one bank land on its first
// rendezvous owner — and only there — while the fleet is healthy, so
// the prepared index stays hot on exactly the owning workers.
func TestFleetAffinityRouting(t *testing.T) {
	est1, est2 := testBanks(t)
	_, workers, ts := newTestFleet(t, 3, testCfg(), nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	if len(info.Owners) != 2 {
		t.Fatalf("replication-2 bank has %d owners: %+v", len(info.Owners), info)
	}
	if len(info.RegisteredOn) != 2 {
		t.Fatalf("registration reached %d owners, want 2: %+v", len(info.RegisteredOn), info)
	}

	want := oracle(t, est1, est2)
	for i := 0; i < 4; i++ {
		status, _, body := postCompare(t, ts.URL)
		if status != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("compare %d: status %d, %d bytes (want %d)", i, status, len(body), len(want))
		}
	}

	owner := workerByName(workers, info.Owners[0])
	if got := owner.srv.StatsSnapshot().Server.Compares; got != 4 {
		t.Errorf("first owner served %d compares, want all 4", got)
	}
	for _, w := range workers {
		if w == owner {
			continue
		}
		if got := w.srv.StatsSnapshot().Server.Compares; got != 0 {
			t.Errorf("non-primary worker %s served %d compares, want 0 (affinity broken)", w.name, got)
		}
	}
}

// TestFleetWorkerDeathMidSweep is the first chaos criterion: 1 of 3
// workers dies (the bank's primary owner, the worst case) and a
// concurrent wave of compares completes with zero client-visible
// failures, every response byte-identical to the single-process
// baseline, with the retries visible in the router's ledger.
func TestFleetWorkerDeathMidSweep(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	// One warm-up compare so the wave measures failover, not cold
	// builds stacking on the surviving owner.
	if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatalf("warm-up compare: status %d: %s", status, body)
	}

	// Kill the primary owner. The router has not probed since — it
	// still believes the worker is Up, so the wave's first attempts
	// hit a corpse and must fail over.
	owner := workerByName(workers, info.Owners[0])
	owner.px.Kill()

	statuses, bodies := wave(t, ts.URL, 8)
	assertWaveIdentical(t, statuses, bodies, want)

	st := rt.StatsSnapshot(context.Background())
	if st.Router.Failovers < 1 || st.Router.Retries < 1 {
		t.Errorf("death went unnoticed: failovers=%d retries=%d, want >= 1", st.Router.Failovers, st.Router.Retries)
	}
	if st.Router.Shed != 0 {
		t.Errorf("router shed %d compares with a live replica available", st.Router.Shed)
	}
	// The corpse was marked Down by the data path, without waiting for
	// probe periods.
	rt.mu.RLock()
	deadState := rt.workers[owner.name].State()
	rt.mu.RUnlock()
	if deadState != StateDown {
		t.Errorf("killed worker state = %v, want down", deadState)
	}

	// A genuinely mid-wave kill of the replacement owner: start the
	// wave, then kill while it is in flight. Zero failures either way.
	survivor := workerByName(workers, info.Owners[1])
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(10 * time.Millisecond)
		survivor.px.Kill()
	}()
	statuses, bodies = wave(t, ts.URL, 8)
	<-done
	assertWaveIdentical(t, statuses, bodies, want)
}

// TestFleetHungWorkerDeadline is the second chaos criterion: a worker
// that hangs past its per-attempt deadline is abandoned and the wave
// completes elsewhere — zero failed responses, zero hangs.
func TestFleetHungWorkerDeadline(t *testing.T) {
	est1, est2 := testBanks(t)
	cfg := testCfg()
	cfg.CompareTimeout = 30 * time.Second
	cfg.AttemptTimeout = 300 * time.Millisecond
	rt, workers, ts := newTestFleet(t, 3, cfg, nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)
	if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatalf("warm-up compare: status %d: %s", status, body)
	}

	workerByName(workers, info.Owners[0]).px.Set(chaos.Hang)

	start := time.Now()
	statuses, bodies := wave(t, ts.URL, 4)
	assertWaveIdentical(t, statuses, bodies, want)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("wave took %v against one hung worker — the deadline is not biting", elapsed)
	}

	st := rt.StatsSnapshot(context.Background())
	if st.Router.Failovers < 1 {
		t.Errorf("hung worker produced no failovers (%+v)", st.Router)
	}

	// The health loop notices too: probes hang, time out, and the
	// worker goes Down after FailThreshold consecutive failures.
	rt.ProbeAll()
	rt.ProbeAll()
	rt.mu.RLock()
	hungState := rt.workers[info.Owners[0]].State()
	rt.mu.RUnlock()
	if hungState != StateDown {
		t.Errorf("hung worker state = %v after %d failed probes, want down", hungState, 2)
	}
}

// TestFleetAllDownSheds is the third chaos criterion: with every worker
// dead the router answers promptly with 503 + Retry-After — it never
// hangs and never queues toward collapse.
func TestFleetAllDownSheds(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)
	registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)

	for _, w := range workers {
		w.px.Kill()
	}

	start := time.Now()
	status, header, body := postCompare(t, ts.URL)
	elapsed := time.Since(start)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all-down compare: status %d: %s", status, body)
	}
	if header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if elapsed > 5*time.Second {
		t.Errorf("all-down shed took %v — degradation must answer fast", elapsed)
	}
	if rt.shed.Load() < 1 {
		t.Error("shed counter did not move")
	}

	// The router's own readiness reflects the dead fleet (the workers
	// are marked Down once the data path or probes notice).
	rt.ProbeAll()
	rt.ProbeAll()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("router /readyz over a dead fleet: status %d, want 503", resp.StatusCode)
	}
}

// TestFleetCorruptResponseRetried: a truncated response (full
// Content-Length declared, half the body delivered) must never reach
// the client — the router detects the short read and retries on the
// next replica.
func TestFleetCorruptResponseRetried(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)
	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)
	if len(want) == 0 {
		t.Fatal("oracle produced an empty m8 — corrupt truncation needs a body")
	}
	if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatalf("warm-up compare: status %d: %s", status, body)
	}

	workerByName(workers, info.Owners[0]).px.Set(chaos.Corrupt)

	status, _, body := postCompare(t, ts.URL)
	if status != http.StatusOK {
		t.Fatalf("compare against a corrupting owner: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("client received corrupt bytes (%d vs %d)", len(body), len(want))
	}
	if rt.failovers.Load() < 1 {
		t.Error("corrupt response did not register as a failover")
	}
}

// TestFleet429BackoffRetry: a saturated worker's 429 is retried with
// backoff on the next replica — and a 429 is backpressure, not death,
// so the worker must stay Up.
func TestFleet429BackoffRetry(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)
	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)
	if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatalf("warm-up compare: status %d: %s", status, body)
	}

	workerByName(workers, info.Owners[0]).px.Set(chaos.Reject)

	status, _, body := postCompare(t, ts.URL)
	if status != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("compare against a 429ing owner: status %d", status)
	}
	if rt.retries.Load() < 1 {
		t.Error("429 did not register as a retry")
	}
	rt.mu.RLock()
	state := rt.workers[info.Owners[0]].State()
	rt.mu.RUnlock()
	if state != StateUp {
		t.Errorf("429ing worker state = %v, want up (backpressure is not death)", state)
	}
	if rt.failovers.Load() != 0 {
		t.Errorf("429 counted as %d failovers, want 0", rt.failovers.Load())
	}
}

// TestFleetDrainingRoutesAway: a worker whose /readyz flips to 503
// (graceful drain) stops receiving new routes — without being treated
// as a failure — and returns to Up when readiness returns.
func TestFleetDrainingRoutesAway(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)
	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	primary := workerByName(workers, info.Owners[0])
	primary.srv.SetDraining(true)
	rt.ProbeAll()
	rt.mu.RLock()
	state := rt.workers[primary.name].State()
	rt.mu.RUnlock()
	if state != StateDraining {
		t.Fatalf("draining worker state = %v, want draining", state)
	}

	status, _, body := postCompare(t, ts.URL)
	if status != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("compare during drain: status %d", status)
	}
	if got := primary.srv.StatsSnapshot().Server.Compares; got != 0 {
		t.Errorf("draining worker served %d compares, want 0", got)
	}
	if rt.failovers.Load() != 0 {
		t.Errorf("draining skip counted as %d failovers, want 0", rt.failovers.Load())
	}

	// Drain cancelled (or a store blip resolved): the worker rejoins.
	primary.srv.SetDraining(false)
	rt.ProbeAll()
	rt.mu.RLock()
	state = rt.workers[primary.name].State()
	rt.mu.RUnlock()
	if state != StateUp {
		t.Errorf("un-drained worker state = %v, want up", state)
	}
}

// TestFleetBackfillAndStoreWarmFailover: with replication 1 the bank
// lives on exactly one worker; when that worker dies, failover lands on
// a worker that never saw the bank. The router backfills the
// registration, and — because the workers share one -index-dir store —
// the replacement warms the index from disk with zero builds.
func TestFleetBackfillAndStoreWarmFailover(t *testing.T) {
	est1, est2 := testBanks(t)
	dir := t.TempDir()
	stores := make([]*ixdisk.DirStore, 3)
	cfg := testCfg()
	cfg.Replication = 1
	rt, workers, ts := newTestFleet(t, 3, cfg, func(i int) server.Config {
		st, err := ixdisk.NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
		return server.Config{MaxConcurrent: 2, RequestWorkers: 1, Store: st}
	})

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)
	if len(info.Owners) != 1 {
		t.Fatalf("replication-1 bank has %d owners", len(info.Owners))
	}

	// First compare: the lone owner builds and persists both indexes.
	if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatalf("warm-up compare: status %d: %s", status, body)
	}
	owner := workerByName(workers, info.Owners[0])
	waitFor(t, func() bool { return countOrix(t, dir) >= 2 })

	owner.px.Kill()

	status, _, body := postCompare(t, ts.URL)
	if status != http.StatusOK {
		t.Fatalf("failover compare: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("failover compare differs from the oracle")
	}
	if rt.backfills.Load() < 1 {
		t.Error("failover to an ignorant worker did not backfill")
	}

	// The replacement served from the shared cold tier: disk hits, no
	// fresh builds.
	var replacement *testWorker
	for _, w := range workers {
		if w != owner && w.srv.StatsSnapshot().Server.Compares > 0 {
			replacement = w
		}
	}
	if replacement == nil {
		t.Fatal("no replacement worker served the failover compare")
	}
	cs := replacement.srv.Cache().Counters()
	if cs.Builds != 0 || cs.DiskHits < 2 {
		t.Errorf("replacement worker builds=%d disk_hits=%d, want 0 builds and >= 2 disk hits (cold-tier warm start)", cs.Builds, cs.DiskHits)
	}
}

// TestFleetWorkerRecovery: death is not forever — a killed worker that
// comes back is probed back to Up and takes its routes again.
func TestFleetWorkerRecovery(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 2, testCfg(), nil)
	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	primary := workerByName(workers, info.Owners[0])
	primary.px.Kill()
	if status, _, _ := postCompare(t, ts.URL); status != http.StatusOK {
		t.Fatal("compare during outage failed despite a live replica")
	}
	rt.mu.RLock()
	state := rt.workers[primary.name].State()
	rt.mu.RUnlock()
	if state != StateDown {
		t.Fatalf("killed worker state = %v, want down", state)
	}

	if err := primary.px.Restart(); err != nil {
		t.Fatal(err)
	}
	rt.ProbeAll()
	rt.mu.RLock()
	state = rt.workers[primary.name].State()
	rt.mu.RUnlock()
	if state != StateUp {
		t.Fatalf("restarted worker state = %v, want up", state)
	}
	before := primary.srv.StatsSnapshot().Server.Compares
	status, _, body := postCompare(t, ts.URL)
	if status != http.StatusOK || !bytes.Equal(body, want) {
		t.Fatalf("post-recovery compare: status %d", status)
	}
	if after := primary.srv.StatsSnapshot().Server.Compares; after != before+1 {
		t.Errorf("recovered primary did not take its route back (compares %d -> %d)", before, after)
	}
}

// TestFleetStatsAggregation: /stats rolls the per-worker ledgers into
// fleet totals and reports the router's own robustness counters.
func TestFleetStatsAggregation(t *testing.T) {
	est1, est2 := testBanks(t)
	_, _, ts := newTestFleet(t, 3, testCfg(), nil)
	registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	for i := 0; i < 3; i++ {
		if status, _, body := postCompare(t, ts.URL); status != http.StatusOK {
			t.Fatalf("compare %d: status %d: %s", i, status, body)
		}
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Totals.Compares != 3 {
		t.Errorf("fleet total compares = %d, want 3", st.Totals.Compares)
	}
	if st.Totals.Builds != 2 {
		t.Errorf("fleet total builds = %d, want 2 (db + query, once each)", st.Totals.Builds)
	}
	if len(st.Workers) != 3 || st.Router.WorkersUp != 3 {
		t.Errorf("worker roster off: %+v", st.Router)
	}
	if st.Router.Banks != 2 || st.Router.Compares != 3 {
		t.Errorf("router counters off: %+v", st.Router)
	}
}

// TestFleetAPIEdges: the router's own 4xx surface.
func TestFleetAPIEdges(t *testing.T) {
	est1, _ := testBanks(t)
	_, _, ts := newTestFleet(t, 2, testCfg(), nil)

	// Compare against an unregistered bank: 404 from the router itself.
	resp, err := http.Post(ts.URL+"/compare", "application/json",
		strings.NewReader(`{"db":"ghost","query":"ghost"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown bank: status %d, want 404", resp.StatusCode)
	}

	// A client-shaped 4xx from the worker is relayed, not retried.
	registerBank(t, ts.URL, "db", est1, true)
	resp, err = http.Post(ts.URL+"/compare", "application/json",
		strings.NewReader(`{"db":"db","self":true,"engine":"blat"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("engine misuse: status %d, want 400 relayed from the worker", resp.StatusCode)
	}

	// Conflicting re-registration is refused by the router.
	other := simulate.NewDataSet(256).Get(simulate.EST3)
	u := ts.URL + "/banks?name=db"
	resp, err = http.Post(u, "text/x-fasta", bytes.NewReader(fastaBytes(t, other)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("conflicting bank re-registration: status %d, want 409", resp.StatusCode)
	}

	// GET /workers lists the roster with states.
	resp, err = http.Get(ts.URL + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	var infos []workerInfo
	err = json.NewDecoder(resp.Body).Decode(&infos)
	resp.Body.Close()
	if err != nil || len(infos) != 2 || infos[0].State != "up" {
		t.Errorf("worker listing off: %+v (err %v)", infos, err)
	}
}

func countOrix(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".orix") {
			n++
		}
	}
	return n
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
