package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bank"
	"repro/internal/fasta"
	"repro/internal/ixdisk"
)

// bankKey is the routing identity of a bank: the same content triple
// (CRC-64/ECMA, data length, sequence count) that keys its .orix file,
// so "which workers own this bank" and "which store file holds its
// index" agree on what a bank is.
func bankKey(b *bank.Bank) string {
	return fmt.Sprintf("%016x-%x-%x", ixdisk.BankChecksum(b), len(b.Data), b.NumSeqs())
}

// fill records the bank's routing identity on the record: the rendered
// key plus its raw components and per-sequence checksums (for matching
// store files — exact or prefix — by identity).
func (rec *bankRecord) fill(b *bank.Bank) {
	rec.Key, rec.Seqs, rec.Bases = bankKey(b), b.NumSeqs(), b.TotalBases()
	rec.crc, rec.dataLen = ixdisk.BankChecksum(b), len(b.Data)
	rec.seqSums = b.SeqChecksums()
}

// bankInfo is the router's answer for one bank (GET /banks rows and
// POST /banks responses).
type bankInfo struct {
	Name      string   `json:"name"`
	Key       string   `json:"key"`
	DB        bool     `json:"db"`
	Sequences int      `json:"sequences"`
	Bases     int      `json:"bases"`
	Owners    []string `json:"owners"`
	// RegisteredOn lists the owners that accepted the registration now;
	// owners that were down get backfilled on their first routed
	// compare instead.
	RegisteredOn []string `json:"registered_on,omitempty"`
	// Errors carries per-owner registration failures (the bank is still
	// routable: any live worker can be backfilled on demand).
	Errors []string `json:"errors,omitempty"`
	// IndexFiles and IndexBlocks report what the shared index store
	// (Config.IndexDir) holds for this bank's identity: how many .orix
	// files match it — exact matches and stored prefixes of it both
	// count, since either warms a worker — and the total v3 blocks
	// across them. Learned by probing file metadata only; omitted when
	// the router has no IndexDir configured.
	IndexFiles  int `json:"index_files,omitempty"`
	IndexBlocks int `json:"index_blocks,omitempty"`
}

// handleBanks mirrors the scorisd /banks surface at fleet scope: a POST
// registers the bank with the router (which computes its content key
// for routing) and fans the registration out to the bank's owners; a
// GET lists the fleet's banks with their ownership.
func (rt *Router) handleBanks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.mu.RLock()
		recs := make([]*bankRecord, 0, len(rt.banks))
		for _, rec := range rt.banks {
			recs = append(recs, rec)
		}
		rt.mu.RUnlock()
		infos := make([]bankInfo, 0, len(recs))
		for _, rec := range recs {
			info := rt.infoFor(rec)
			infos = append(infos, info)
		}
		// The records came out of a map: sort so the listing is
		// byte-deterministic (the byte-identity invariant applies to
		// every JSON surface, not just compare output).
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(infos)
	case http.MethodPost:
		rt.registerBank(w, r)
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (rt *Router) infoFor(rec *bankRecord) bankInfo {
	owners := rt.owners(rec.Key)
	names := make([]string, len(owners))
	for i, o := range owners {
		names[i] = o.Name
	}
	info := bankInfo{
		Name: rec.Name, Key: rec.Key, DB: rec.DB,
		Sequences: rec.Seqs, Bases: rec.Bases, Owners: names,
	}
	info.IndexFiles, info.IndexBlocks = rt.storedIndexes(rec)
	return info
}

// storedIndexes scans the shared index store for files matching rec's
// bank — the exact bank, or a stored prefix of it (which a worker can
// complete with one appended block). Identity comes from each file's
// probed metadata alone: the fixed header and, for v3, the footer
// directory. No index payload is ever read, so a /banks listing stays
// cheap no matter how large the stored indexes are.
func (rt *Router) storedIndexes(rec *bankRecord) (files, blocks int) {
	dir := rt.cfg.IndexDir
	if dir == "" {
		return 0, 0
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ixdisk.FileExt) {
			continue
		}
		info, err := ixdisk.Probe(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		exact := info.BankCRC == rec.crc && info.DataLen == int64(rec.dataLen) &&
			info.NumSeqs == rec.Seqs
		if !exact && !rec.isPrefix(info) {
			continue
		}
		files++
		blocks += len(info.Blocks)
	}
	return files, blocks
}

// isPrefix reports whether the probed file records a strict
// sequence-prefix of rec's bank: fewer sequences, each matching the
// bank's per-sequence checksum in order.
func (rec *bankRecord) isPrefix(info *ixdisk.FileInfo) bool {
	if info.NumSeqs <= 0 || info.NumSeqs >= rec.Seqs || len(rec.seqSums) < info.NumSeqs {
		return false
	}
	for i, sum := range info.SeqSums {
		if rec.seqSums[i] != sum {
			return false
		}
	}
	return true
}

// registerBank accepts the same two body shapes scorisd does — a JSON
// {"name","path","db"} spec naming a FASTA file, or raw FASTA text with
// ?name= (and ?db=1) query parameters — loads the bank once to compute
// its content key, records a replayable spec, and fans the registration
// to the owners the key hashes to.
func (rt *Router) registerBank(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading bank request: %v", err)
		return
	}
	rec := &bankRecord{}
	if bytes.HasPrefix(bytes.TrimLeft(body, " \t\r\n"), []byte(">")) {
		rec.Name = r.URL.Query().Get("name")
		rec.DB = r.URL.Query().Get("db") != "" && r.URL.Query().Get("db") != "0"
		if rec.Name == "" {
			httpError(w, http.StatusBadRequest, "FASTA-body registration needs a ?name= parameter")
			return
		}
		recs, err := fasta.ParseAll(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "parsing FASTA body: %v", err)
			return
		}
		if len(recs) == 0 {
			httpError(w, http.StatusBadRequest, "FASTA body holds no sequences")
			return
		}
		b := bank.New(rec.Name, recs)
		rec.fill(b)
		rec.fasta = body
	} else {
		var req struct {
			Name string `json:"name"`
			Path string `json:"path"`
			DB   bool   `json:"db"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "bad bank request: %v", err)
			return
		}
		if req.Path == "" {
			httpError(w, http.StatusBadRequest, "bank request needs a path (or POST FASTA text with a ?name= parameter)")
			return
		}
		if req.Name == "" {
			req.Name = req.Path
		}
		// Load once, router-side, to learn the content key the bank
		// routes by; the bank itself is not retained (workers hold the
		// data, the router holds identity).
		b, err := bank.FromFile(req.Name, req.Path)
		if err != nil {
			httpError(w, http.StatusBadRequest, "loading bank: %v", err)
			return
		}
		rec.Name, rec.DB = req.Name, req.DB
		rec.fill(b)
		rec.specJSON, _ = json.Marshal(req)
	}

	rt.mu.Lock()
	if prev, ok := rt.banks[rec.Name]; ok && prev.Key != rec.Key {
		rt.mu.Unlock()
		httpError(w, http.StatusConflict, "bank %q already registered with different content", rec.Name)
		return
	} else if ok {
		// Idempotent re-registration; like scorisd, db can upgrade but
		// never silently downgrade.
		rec.DB = rec.DB || prev.DB
	}
	rt.banks[rec.Name] = rec
	rt.mu.Unlock()

	// Fan out to the owners that are reachable right now; the others
	// are backfilled on their first routed compare.
	info := rt.infoFor(rec)
	for _, owner := range rt.owners(rec.Key) {
		if owner.State() == StateDown {
			info.Errors = append(info.Errors, owner.Name+": down, deferred to backfill")
			continue
		}
		if err := rt.registerOn(r.Context(), owner, rec); err != nil {
			info.Errors = append(info.Errors, owner.Name+": "+err.Error())
			continue
		}
		info.RegisteredOn = append(info.RegisteredOn, owner.Name)
	}
	if len(info.RegisteredOn) == 0 && len(rt.workerList()) > 0 {
		// Nobody took it — still recorded for backfill, but the client
		// should know the fleet is in trouble.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		json.NewEncoder(w).Encode(info)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// registerOn replays rec's registration onto one worker — the fan-out
// path at registration time, and the backfill path when failover routes
// a compare to a worker that never saw the bank. scorisd registration
// is idempotent for identical content, so replaying is always safe.
func (rt *Router) registerOn(ctx context.Context, wk *worker, rec *bankRecord) error {
	var (
		target      string
		contentType string
		payload     []byte
	)
	if rec.fasta != nil {
		q := url.Values{"name": {rec.Name}}
		if rec.DB {
			q.Set("db", "1")
		}
		target = wk.URL + "/banks?" + q.Encode()
		contentType = "text/x-fasta"
		payload = rec.fasta
	} else {
		target = wk.URL + "/banks"
		contentType = "application/json"
		payload = rec.specJSON
	}
	actx := ctx
	if rt.cfg.ProbeTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, 10*rt.cfg.ProbeTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, target, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("worker %s: bank registration: HTTP %d: %s", wk.Name, resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}
