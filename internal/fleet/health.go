package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Start launches the health loop: every ProbeInterval, each worker's
// /readyz is probed (concurrently, each bounded by ProbeTimeout) and
// run through the up/draining/down state machine. Idempotent.
func (rt *Router) Start() {
	rt.startOnce.Do(func() {
		rt.started.Store(true)
		// background: runs until Stop closes stopProbes; Stop joins it
		// through probesDone.
		go rt.probeLoop()
	})
}

// Stop halts the health loop (idempotent; waits for the loop to exit).
func (rt *Router) Stop() {
	rt.stopOnce.Do(func() { close(rt.stopProbes) })
	if rt.started.Load() {
		<-rt.probesDone
	}
}

func (rt *Router) probeLoop() {
	defer close(rt.probesDone)
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	rt.ProbeAll() // settle initial states without waiting a period
	for {
		select {
		case <-rt.stopProbes:
			return
		case <-ticker.C:
			rt.ProbeAll()
		}
	}
}

// ProbeAll sweeps every worker once, synchronously (the health loop's
// body; also the deterministic lever tests and the CLI use).
func (rt *Router) ProbeAll() {
	var wg sync.WaitGroup
	for _, wk := range rt.workerList() {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			rt.probeWorker(wk)
		}(wk)
	}
	wg.Wait()
}

func (rt *Router) probeWorkerByName(name string) {
	rt.mu.RLock()
	wk := rt.workers[name]
	rt.mu.RUnlock()
	if wk != nil {
		rt.probeWorker(wk)
	}
}

// probeWorker asks one worker for readiness and advances its state:
//
//	200        → Up        (failure streak forgiven)
//	503        → Draining  (alive, not taking new routes; scorisd flips
//	                        /readyz the moment its graceful drain starts,
//	                        and a store outage reads the same way)
//	error/oth. → failure; FailThreshold consecutive failures → Down
func (rt *Router) probeWorker(wk *worker) {
	rt.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.URL+"/readyz", nil)
	if err != nil {
		rt.probeFails.Add(1)
		wk.noteFail(err, rt.cfg.FailThreshold, false)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.probeFails.Add(1)
		wk.noteFail(err, rt.cfg.FailThreshold, false)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		wk.setUp()
	case http.StatusServiceUnavailable:
		reason := strings.TrimSpace(string(body))
		wk.setDraining(reason)
	default:
		rt.probeFails.Add(1)
		wk.noteFail(fmt.Errorf("readyz: HTTP %d", resp.StatusCode), rt.cfg.FailThreshold, false)
	}
}
