package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// handleCompare routes one comparison: rendezvous order over the db
// bank's content key, retrying across replicas until a worker answers
// or the attempt budget / deadline runs out. Compares are idempotent
// and workers answer byte-identically for the same (bank, options), so
// failover can never corrupt a result — only save it.
func (rt *Router) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading compare request: %v", err)
		return
	}
	var req struct {
		DB    string `json:"db"`
		Query string `json:"query"`
		Self  bool   `json:"self"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad compare request: %v", err)
		return
	}
	if req.DB == "" {
		httpError(w, http.StatusBadRequest, "compare request needs a db bank name")
		return
	}
	rt.mu.RLock()
	dbRec := rt.banks[req.DB]
	var qRec *bankRecord
	if req.Query != "" {
		qRec = rt.banks[req.Query]
	}
	rt.mu.RUnlock()
	if dbRec == nil {
		httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks on the router)", req.DB)
		return
	}
	if req.Query != "" && qRec == nil {
		httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks on the router)", req.Query)
		return
	}

	ctx := r.Context()
	if rt.cfg.CompareTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.CompareTimeout)
		defer cancel()
	}
	rt.routeCompare(ctx, w, body, dbRec, qRec)
}

// routeCompare walks the db bank's rendezvous ring until some live
// worker produces a result.
//
// The degradation ladder, in order of preference: answer from the
// owner; answer from the next live replica (retry with backoff);
// backfill a worker that never saw the bank and answer from it; and
// only when no live replica remains — or the attempt budget is spent —
// shed with an honest 503 + Retry-After. A deadline expiry answers 504.
// The one thing the router never does is hang or queue unboundedly: a
// fleet that is down says so immediately.
func (rt *Router) routeCompare(ctx context.Context, w http.ResponseWriter, body []byte, dbRec, qRec *bankRecord) {
	candidates := rt.rank(dbRec.Key)
	if len(candidates) == 0 {
		rt.shedCompare(w, dbRec, "no workers registered")
		return
	}
	var (
		attempts  int
		cursor    int
		lastFail  string
		backfills = make(map[string]bool)
	)
	for attempts < rt.cfg.MaxAttempts {
		wk := nextUp(candidates, &cursor)
		if wk == nil {
			// No live replica at all — shed now, promptly; backoff
			// would just be a disguised hang.
			break
		}
		if attempts > 0 {
			rt.retries.Add(1)
		}
		attempts++
		status, header, respBody, err := rt.forward(ctx, wk, body)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				rt.finishCtx(w, ctx)
				return
			}
			// Transport failure: connection refused, reset mid-body,
			// truncated response, per-attempt deadline. The worker is
			// presumed dead until a probe says otherwise; the compare
			// moves on immediately after backoff.
			rt.noteCompareFailure(wk, err)
			rt.failovers.Add(1)
			lastFail = fmt.Sprintf("%s: %v", wk.Name, err)
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		case status == http.StatusNotFound && bytes.Contains(respBody, []byte("unknown")):
			// Failover landed on a worker that never saw the bank(s).
			// Replay the registrations (idempotent; with a shared store
			// the worker warms the index from disk) and try it again.
			if backfills[wk.Name] {
				lastFail = wk.Name + ": unknown bank even after backfill"
				continue
			}
			backfills[wk.Name] = true
			if err := rt.backfillBanks(ctx, wk, dbRec, qRec); err != nil {
				rt.noteCompareFailure(wk, err)
				lastFail = fmt.Sprintf("%s: backfill: %v", wk.Name, err)
				continue
			}
			rt.backfills.Add(1)
			cursor-- // retry the freshly backfilled worker first
		case status == http.StatusTooManyRequests:
			// The worker is alive but saturated. Back off and try the
			// next replica (with one worker, the same one again).
			lastFail = wk.Name + ": at capacity (429)"
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		case status >= http.StatusInternalServerError:
			rt.noteCompareFailure(wk, fmt.Errorf("HTTP %d", status))
			rt.failovers.Add(1)
			lastFail = fmt.Sprintf("%s: HTTP %d", wk.Name, status)
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		default:
			// Success — or a client-shaped 4xx (bad options, unknown
			// engine) that every replica would answer identically:
			// relay verbatim either way.
			rt.relay(w, status, header, respBody)
			if status < http.StatusMultipleChoices {
				rt.compares.Add(1)
			}
			return
		}
	}
	if lastFail == "" {
		lastFail = "no live replica"
	}
	rt.shedCompare(w, dbRec, lastFail)
}

// nextUp scans the ring from the cursor for the next Up worker, at most
// one full lap per call. Draining and Down workers are routing-time
// holes in the ring, not ownership changes.
func nextUp(candidates []*worker, cursor *int) *worker {
	for scanned := 0; scanned < len(candidates); scanned++ {
		wk := candidates[*cursor%len(candidates)]
		*cursor++
		if wk.State() == StateUp {
			return wk
		}
	}
	return nil
}

// forward sends the compare body to one worker and buffers the full
// response. Buffering is deliberate: the relay to the client starts
// only after a complete, length-consistent body is in hand, so a worker
// dying mid-response (or a chaos-corrupted stream) surfaces here as a
// retryable error instead of a half-written client response.
func (rt *Router) forward(ctx context.Context, wk *worker, body []byte) (int, http.Header, []byte, error) {
	actx := ctx
	if rt.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, wk.URL+"/compare", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, b, nil
}

// relay writes a buffered worker response through to the client.
func (rt *Router) relay(w http.ResponseWriter, status int, header http.Header, body []byte) {
	if ct := header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// noteCompareFailure marks a worker Down immediately: a transport
// failure on the data path is stronger evidence than a missed probe
// (we were talking to it and it died mid-sentence). The health loop
// brings it back when /readyz answers again.
func (rt *Router) noteCompareFailure(wk *worker, err error) {
	wk.noteFail(err, rt.cfg.FailThreshold, true)
}

// backoff sleeps the capped, jittered exponential delay for the given
// attempt number, honoring ctx. Reports false when ctx expired instead.
func (rt *Router) backoff(ctx context.Context, attempt int) bool {
	d := rt.cfg.RetryBase << (attempt - 1)
	if d > rt.cfg.RetryMax || d <= 0 {
		d = rt.cfg.RetryMax
	}
	// Full jitter on the upper half: delay ∈ [d/2, d). Synchronized
	// retry waves against a recovering worker are the failure mode.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// finishCtx answers a compare whose context expired: 504 when the
// router-side deadline ran out, silence when the client itself is gone.
func (rt *Router) finishCtx(w http.ResponseWriter, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		rt.timedOut.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{
			"error":     fmt.Sprintf("compare exceeded the router's deadline (%s)", rt.cfg.CompareTimeout),
			"timed_out": true,
		})
	}
}

// shedCompare is the bottom of the degradation ladder: no replica can
// serve, so the router answers 503 with Retry-After instead of queueing
// toward collapse. Capacity degradation is explicit and fast.
func (rt *Router) shedCompare(w http.ResponseWriter, dbRec *bankRecord, why string) {
	rt.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":       fmt.Sprintf("no live replica for bank %q (%s); retry", dbRec.Name, why),
		"retry_after": 1,
	})
}

// backfillBanks replays the db (and query) bank registrations onto a
// worker that reported them unknown.
func (rt *Router) backfillBanks(ctx context.Context, wk *worker, dbRec, qRec *bankRecord) error {
	if err := rt.registerOn(ctx, wk, dbRec); err != nil {
		return err
	}
	if qRec != nil && qRec != dbRec {
		return rt.registerOn(ctx, wk, qRec)
	}
	return nil
}
