package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// Stream relay vocabulary, mirroring the worker's (internal/server):
// the Accept value that asks for a streamed m8 compare, the response
// header that marks one, and the trailer that seals it.
const (
	streamAccept        = "text/x-m8-stream"
	streamMarkerHeader  = "X-Scoris-Stream"
	streamStatusTrailer = "X-Scoris-Status"
	streamComplete      = "complete"
)

// routeJob is one routable worker request: the worker path, the client
// body forwarded verbatim, the banks involved (identity for rendezvous,
// registration specs for backfill), and the delivery shape.
type routeJob struct {
	path    string
	body    []byte
	db      *bankRecord
	queries []*bankRecord
	stream  bool
}

// handleCompare routes one comparison: rendezvous order over the db
// bank's content key, retrying across replicas until a worker answers
// or the attempt budget / deadline runs out. Compares are idempotent
// and workers answer byte-identically for the same (bank, options), so
// failover can never corrupt a result — only save it.
func (rt *Router) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading compare request: %v", err)
		return
	}
	var req struct {
		DB     string `json:"db"`
		Query  string `json:"query"`
		Self   bool   `json:"self"`
		Stream bool   `json:"stream"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad compare request: %v", err)
		return
	}
	if req.DB == "" {
		httpError(w, http.StatusBadRequest, "compare request needs a db bank name")
		return
	}
	rt.mu.RLock()
	dbRec := rt.banks[req.DB]
	var qRec *bankRecord
	if req.Query != "" {
		qRec = rt.banks[req.Query]
	}
	rt.mu.RUnlock()
	if dbRec == nil {
		httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks on the router)", req.DB)
		return
	}
	if req.Query != "" && qRec == nil {
		httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks on the router)", req.Query)
		return
	}

	ctx := r.Context()
	if rt.cfg.CompareTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.CompareTimeout)
		defer cancel()
	}
	job := routeJob{
		path:   "/compare",
		body:   body,
		db:     dbRec,
		stream: req.Stream || strings.Contains(r.Header.Get("Accept"), streamAccept),
	}
	if qRec != nil {
		job.queries = []*bankRecord{qRec}
	}
	rt.routeCompare(ctx, w, job)
}

// handleCompareBatch routes a batched comparison (one db, many query
// banks) to a single worker, which serves the whole set under one
// admission slot. The batch is buffered end to end — its failure story
// is the plain compare's (full-response failover), routed by the db
// bank like any other compare.
func (rt *Router) handleCompareBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading batch request: %v", err)
		return
	}
	var req struct {
		DB      string   `json:"db"`
		Queries []string `json:"queries"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch request: %v", err)
		return
	}
	if req.DB == "" || len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch request needs a db bank and a non-empty queries list")
		return
	}
	rt.mu.RLock()
	dbRec := rt.banks[req.DB]
	qRecs := make([]*bankRecord, 0, len(req.Queries))
	missing := ""
	for _, name := range req.Queries {
		rec := rt.banks[name]
		if rec == nil {
			missing = name
			break
		}
		qRecs = append(qRecs, rec)
	}
	rt.mu.RUnlock()
	if dbRec == nil {
		httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks on the router)", req.DB)
		return
	}
	if missing != "" {
		httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks on the router)", missing)
		return
	}

	ctx := r.Context()
	if rt.cfg.CompareTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.CompareTimeout)
		defer cancel()
	}
	rt.routeCompare(ctx, w, routeJob{path: "/compare/batch", body: body, db: dbRec, queries: qRecs})
}

// routeCompare walks the db bank's rendezvous ring until some live
// worker produces a result.
//
// The degradation ladder, in order of preference: answer from the
// owner; answer from the next live replica (retry with backoff);
// backfill a worker that never saw the bank and answer from it; and
// only when no live replica remains — or the attempt budget is spent —
// shed with an honest 503 + Retry-After. A deadline expiry answers 504.
// The one thing the router never does is hang or queue unboundedly: a
// fleet that is down says so immediately.
//
// Streamed jobs walk the same ladder with one extra rule: an attempt is
// retryable only until its first relayed body byte. Once bytes have
// reached the client the router is committed to that worker, and an
// upstream death seals the client's stream with a torn trailer instead
// of failing over (a second worker's stream could not be spliced onto a
// half-written one).
func (rt *Router) routeCompare(ctx context.Context, w http.ResponseWriter, job routeJob) {
	candidates := rt.rank(job.db.Key)
	if len(candidates) == 0 {
		rt.shedCompare(w, job.db, "no workers registered")
		return
	}
	var (
		attempts  int
		cursor    int
		lastFail  string
		backfills = make(map[string]bool)
	)
	for attempts < rt.cfg.MaxAttempts {
		wk := nextUp(candidates, &cursor)
		if wk == nil {
			// No live replica at all — shed now, promptly; backoff
			// would just be a disguised hang.
			break
		}
		if attempts > 0 {
			rt.retries.Add(1)
		}
		attempts++
		var (
			status   int
			header   http.Header
			respBody []byte
			err      error
		)
		if job.stream {
			var done bool
			done, status, header, respBody, err = rt.forwardStream(ctx, w, wk, job)
			if done {
				// Bytes were relayed (or the stream completed): the
				// response is already written, trailer included.
				return
			}
		} else {
			status, header, respBody, err = rt.forward(ctx, wk, job.path, job.body)
		}
		switch {
		case err != nil:
			if ctx.Err() != nil {
				rt.finishCtx(w, ctx)
				return
			}
			// Transport failure: connection refused, reset mid-body,
			// truncated response, per-attempt deadline. The worker is
			// presumed dead until a probe says otherwise; the compare
			// moves on immediately after backoff.
			rt.noteCompareFailure(wk, err)
			rt.failovers.Add(1)
			lastFail = fmt.Sprintf("%s: %v", wk.Name, err)
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		case status == http.StatusNotFound && bytes.Contains(respBody, []byte("unknown")):
			// Failover landed on a worker that never saw the bank(s).
			// Replay the registrations (idempotent; with a shared store
			// the worker warms the index from disk) and try it again.
			if backfills[wk.Name] {
				lastFail = wk.Name + ": unknown bank even after backfill"
				continue
			}
			backfills[wk.Name] = true
			if err := rt.backfillBanks(ctx, wk, job.db, job.queries); err != nil {
				rt.noteCompareFailure(wk, err)
				lastFail = fmt.Sprintf("%s: backfill: %v", wk.Name, err)
				continue
			}
			rt.backfills.Add(1)
			cursor-- // retry the freshly backfilled worker first
		case status == http.StatusTooManyRequests:
			// The worker is alive but saturated. Back off and try the
			// next replica (with one worker, the same one again).
			lastFail = wk.Name + ": at capacity (429)"
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		case status >= http.StatusInternalServerError:
			rt.noteCompareFailure(wk, fmt.Errorf("HTTP %d", status))
			rt.failovers.Add(1)
			lastFail = fmt.Sprintf("%s: HTTP %d", wk.Name, status)
			if !rt.backoff(ctx, attempts) {
				rt.finishCtx(w, ctx)
				return
			}
		default:
			// Success — or a client-shaped 4xx (bad options, unknown
			// engine) that every replica would answer identically:
			// relay verbatim either way.
			rt.relay(w, status, header, respBody)
			if status < http.StatusMultipleChoices {
				rt.compares.Add(1)
			}
			return
		}
	}
	if lastFail == "" {
		lastFail = "no live replica"
	}
	rt.shedCompare(w, job.db, lastFail)
}

// nextUp scans the ring from the cursor for the next Up worker, at most
// one full lap per call. Draining and Down workers are routing-time
// holes in the ring, not ownership changes.
func nextUp(candidates []*worker, cursor *int) *worker {
	for scanned := 0; scanned < len(candidates); scanned++ {
		wk := candidates[*cursor%len(candidates)]
		*cursor++
		if wk.State() == StateUp {
			return wk
		}
	}
	return nil
}

// forward sends a buffered request to one worker and buffers the full
// response. Buffering is deliberate: the relay to the client starts
// only after a complete, length-consistent body is in hand, so a worker
// dying mid-response (or a chaos-corrupted stream) surfaces here as a
// retryable error instead of a half-written client response.
func (rt *Router) forward(ctx context.Context, wk *worker, path string, body []byte) (int, http.Header, []byte, error) {
	actx := ctx
	if rt.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, wk.URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, resp.Header, b, nil
}

// forwardStream forwards a streamed compare to one worker and, once the
// worker's stream yields its first body byte, relays it to the client
// chunk by chunk — no full-response buffering, so the client's first
// byte arrives while the worker's engine is still running.
//
// The commitment point is that first body byte. Before it, the attempt
// is abortable like any buffered one: transport failures return to the
// retry ladder (done=false, err set) and non-stream responses — 404s to
// backfill, 429s, 5xxes, client-shaped 4xxes — return buffered for the
// ladder to judge. After it, done=true: the response is written here,
// and an upstream death mid-relay seals the stream with an "error"
// trailer (and marks the worker Down) rather than failing over. A
// stream that reaches a clean upstream EOF relays the worker's own
// X-Scoris-Status trailer; an upstream that ends without one is torn by
// definition and sealed "error" — silence never impersonates success.
//
// The per-attempt deadline bounds only the time to the commitment
// point; a committed relay runs as long as the compare does.
func (rt *Router) forwardStream(ctx context.Context, w http.ResponseWriter, wk *worker, job routeJob) (done bool, status int, header http.Header, respBody []byte, err error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	var attemptTimer *time.Timer
	if rt.cfg.AttemptTimeout > 0 {
		attemptTimer = time.AfterFunc(rt.cfg.AttemptTimeout, cancel)
		defer attemptTimer.Stop()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, wk.URL+job.path, bytes.NewReader(job.body))
	if err != nil {
		return false, 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", streamAccept)
	resp, err := rt.client.Do(req)
	if err != nil {
		return false, 0, nil, nil, err
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get(streamMarkerHeader) != "m8" {
		// Not a stream (error status, or a worker that answered
		// buffered): buffer it and let the retry ladder judge.
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return false, 0, nil, nil, fmt.Errorf("reading response: %w", rerr)
		}
		return false, resp.StatusCode, resp.Header, b, nil
	}
	defer resp.Body.Close()

	// Pull the first body byte before touching the client response:
	// a worker that dies between its headers and its first chunk is
	// still a failover, not a torn stream.
	buf := make([]byte, 32<<10)
	n, rerr := resp.Body.Read(buf)
	if n == 0 && rerr != nil && !errors.Is(rerr, io.EOF) {
		return false, 0, nil, nil, fmt.Errorf("stream died before first byte: %w", rerr)
	}
	if attemptTimer != nil {
		attemptTimer.Stop() // committed: the relay outlives the attempt budget
	}
	h := w.Header()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	h.Set(streamMarkerHeader, "m8")
	h.Set("Trailer", streamStatusTrailer)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	torn := false
	//scorislint:ignore ctxloop bounded by the upstream body: resp was issued with a ctx-derived request context, so cancellation aborts Body.Read and the deferred cancel tears the relay down
	for {
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				// The client is gone; the deferred cancel tears the
				// upstream down. Nothing left to say to anyone.
				return true, http.StatusOK, nil, nil, nil
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			torn = !errors.Is(rerr, io.EOF)
			break
		}
		n, rerr = resp.Body.Read(buf)
	}
	statusTr := resp.Trailer.Get(streamStatusTrailer)
	if torn || statusTr == "" {
		statusTr = "error"
	}
	w.Header().Set(streamStatusTrailer, statusTr)
	if statusTr == streamComplete {
		rt.compares.Add(1)
	} else {
		rt.tornRelays.Add(1)
	}
	if torn {
		// The worker died mid-sentence on the data path — same evidence
		// the buffered path acts on, same consequence.
		rt.noteCompareFailure(wk, fmt.Errorf("stream torn mid-relay: %v", rerr))
	}
	return true, http.StatusOK, nil, nil, nil
}

// relay writes a buffered worker response through to the client.
func (rt *Router) relay(w http.ResponseWriter, status int, header http.Header, body []byte) {
	if ct := header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// noteCompareFailure marks a worker Down immediately: a transport
// failure on the data path is stronger evidence than a missed probe
// (we were talking to it and it died mid-sentence). The health loop
// brings it back when /readyz answers again.
func (rt *Router) noteCompareFailure(wk *worker, err error) {
	wk.noteFail(err, rt.cfg.FailThreshold, true)
}

// backoff sleeps the capped, jittered exponential delay for the given
// attempt number, honoring ctx. Reports false when ctx expired instead.
func (rt *Router) backoff(ctx context.Context, attempt int) bool {
	d := rt.cfg.RetryBase << (attempt - 1)
	if d > rt.cfg.RetryMax || d <= 0 {
		d = rt.cfg.RetryMax
	}
	// Full jitter on the upper half: delay ∈ [d/2, d). Synchronized
	// retry waves against a recovering worker are the failure mode.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// finishCtx answers a compare whose context expired: 504 when the
// router-side deadline ran out, silence when the client itself is gone.
func (rt *Router) finishCtx(w http.ResponseWriter, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		rt.timedOut.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{
			"error":     fmt.Sprintf("compare exceeded the router's deadline (%s)", rt.cfg.CompareTimeout),
			"timed_out": true,
		})
	}
}

// shedCompare is the bottom of the degradation ladder: no replica can
// serve, so the router answers 503 with Retry-After instead of queueing
// toward collapse. Capacity degradation is explicit and fast.
func (rt *Router) shedCompare(w http.ResponseWriter, dbRec *bankRecord, why string) {
	rt.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(map[string]any{
		"error":       fmt.Sprintf("no live replica for bank %q (%s); retry", dbRec.Name, why),
		"retry_after": 1,
	})
}

// backfillBanks replays the db (and query) bank registrations onto a
// worker that reported them unknown.
func (rt *Router) backfillBanks(ctx context.Context, wk *worker, dbRec *bankRecord, qRecs []*bankRecord) error {
	if err := rt.registerOn(ctx, wk, dbRec); err != nil {
		return err
	}
	for _, qRec := range qRecs {
		if qRec == dbRec {
			continue
		}
		if err := rt.registerOn(ctx, wk, qRec); err != nil {
			return err
		}
	}
	return nil
}
