package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"repro/internal/server"
)

// RouterStats are the router's own counters: the robustness ledger
// (retries, failovers, backfills, sheds) the chaos tests assert on.
type RouterStats struct {
	Requests    int64 `json:"requests"`
	Compares    int64 `json:"compares"`
	Retries     int64 `json:"retries"`
	Failovers   int64 `json:"failovers"`
	Backfills   int64 `json:"backfills"`
	Shed        int64 `json:"shed"`
	TimedOut    int64 `json:"timed_out"`
	TornRelays  int64 `json:"torn_relays"`
	Probes      int64 `json:"probes"`
	ProbeFails  int64 `json:"probe_failures"`
	Banks       int   `json:"banks"`
	Replication int   `json:"replication"`
	WorkersUp   int   `json:"workers_up"`
	WorkersDrn  int   `json:"workers_draining"`
	WorkersDown int   `json:"workers_down"`
}

// WorkerStats is one worker's row in the fleet ledger: its registry
// entry plus the live /stats payload (nil, with Error set, for workers
// that could not answer).
type WorkerStats struct {
	Name  string        `json:"name"`
	URL   string        `json:"url"`
	State string        `json:"state"`
	Stats *server.Stats `json:"stats,omitempty"`
	Error string        `json:"error,omitempty"`
}

// Totals sums the key per-worker counters fleet-wide — the same
// amortization ledger scorisd exposes, at fleet scope: compares served,
// rejections and abandonments, index builds, and disk hits (the proof
// that a shared store makes replacement workers warm).
type Totals struct {
	Compares  int64 `json:"compares"`
	Rejected  int64 `json:"rejected"`
	Abandoned int64 `json:"abandoned"`
	TimedOut  int64 `json:"timed_out"`
	Builds    int64 `json:"builds"`
	DiskHits  int64 `json:"disk_hits"`
	Lookups   int64 `json:"lookups"`
}

// Stats is the router's /stats payload.
type Stats struct {
	Router  RouterStats   `json:"router"`
	Workers []WorkerStats `json:"workers"`
	Totals  Totals        `json:"totals"`
}

// StatsSnapshot assembles the fleet ledger, fetching each reachable
// worker's /stats concurrently (bounded by ProbeTimeout each; a worker
// that cannot answer is reported, not waited for).
func (rt *Router) StatsSnapshot(ctx context.Context) Stats {
	workers := rt.workerList()
	rt.mu.RLock()
	nBanks := len(rt.banks)
	rt.mu.RUnlock()

	st := Stats{
		Router: RouterStats{
			Requests:    rt.requests.Load(),
			Compares:    rt.compares.Load(),
			Retries:     rt.retries.Load(),
			Failovers:   rt.failovers.Load(),
			Backfills:   rt.backfills.Load(),
			Shed:        rt.shed.Load(),
			TimedOut:    rt.timedOut.Load(),
			TornRelays:  rt.tornRelays.Load(),
			Probes:      rt.probes.Load(),
			ProbeFails:  rt.probeFails.Load(),
			Banks:       nBanks,
			Replication: rt.cfg.Replication,
		},
		Workers: make([]WorkerStats, len(workers)),
	}

	var wg sync.WaitGroup
	for i, wk := range workers {
		state, _, lastErr := wk.snapshot()
		switch state {
		case StateUp:
			st.Router.WorkersUp++
		case StateDraining:
			st.Router.WorkersDrn++
		case StateDown:
			st.Router.WorkersDown++
		}
		row := &st.Workers[i]
		row.Name, row.URL, row.State = wk.Name, wk.URL, state.String()
		if state == StateDown {
			row.Error = lastErr
			continue
		}
		wg.Add(1)
		go func(wk *worker, row *WorkerStats) {
			defer wg.Done()
			ws, err := rt.fetchWorkerStats(ctx, wk)
			if err != nil {
				row.Error = err.Error()
				return
			}
			row.Stats = ws
		}(wk, row)
	}
	wg.Wait()

	for i := range st.Workers {
		ws := st.Workers[i].Stats
		if ws == nil {
			continue
		}
		st.Totals.Compares += ws.Server.Compares
		st.Totals.Rejected += ws.Server.Rejected
		st.Totals.Abandoned += ws.Server.Abandoned
		st.Totals.TimedOut += ws.Server.TimedOut
		st.Totals.Builds += ws.Cache.Builds
		st.Totals.DiskHits += ws.Cache.DiskHits
		st.Totals.Lookups += ws.Cache.Lookups
	}
	return st
}

func (rt *Router) fetchWorkerStats(ctx context.Context, wk *worker) (*server.Stats, error) {
	actx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, wk.URL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var ws server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&ws); err != nil {
		return nil, err
	}
	return &ws, nil
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.StatsSnapshot(r.Context()))
}
