package fleet

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/fleet/chaos"
	"repro/internal/simulate"
)

// streamCompare issues a streamed compare through the router and reads
// it to the end, returning status, body, and the sealing trailer.
func streamCompare(t *testing.T, routerURL, body string) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, routerURL+"/compare", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/x-m8-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading streamed body: %v", err)
	}
	return resp.StatusCode, b, resp.Trailer.Get(streamStatusTrailer)
}

// TestFleetStreamedCompareRelay: a streamed compare through the router
// relays the worker's chunked m8 without buffering and seals it with
// the worker's "complete" trailer — bytes identical to the buffered
// route and to the single-process oracle.
func TestFleetStreamedCompareRelay(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, _, ts := newTestFleet(t, 2, testCfg(), nil)

	registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	status, body, trailer := streamCompare(t, ts.URL, `{"db":"db","query":"q"}`)
	if status != http.StatusOK {
		t.Fatalf("streamed compare: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("streamed bytes differ from oracle: %d vs %d bytes", len(body), len(want))
	}
	if trailer != streamComplete {
		t.Errorf("trailer = %q, want %q", trailer, streamComplete)
	}
	if got := rt.compares.Load(); got != 1 {
		t.Errorf("router compares = %d, want 1", got)
	}
	if got := rt.tornRelays.Load(); got != 0 {
		t.Errorf("torn relays = %d for a clean stream, want 0", got)
	}

	// The JSON-field form must relay identically.
	resp, err := http.Post(ts.URL+"/compare", "application/json",
		strings.NewReader(`{"db":"db","query":"q","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || !bytes.Equal(b, want) {
		t.Fatalf("field-form stream: err=%v, %d bytes (want %d)", err, len(b), len(want))
	}
	if h := resp.Header.Get(streamMarkerHeader); h != "m8" {
		t.Errorf("%s = %q, want m8", streamMarkerHeader, h)
	}
}

// TestFleetStreamFailoverBeforeFirstByte: a dead primary owner fails a
// streamed compare before any byte is relayed, so the router is still
// free to fail over — the client sees one intact, complete stream from
// the next replica.
func TestFleetStreamFailoverBeforeFirstByte(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 2, testCfg(), nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	workerByName(workers, info.Owners[0]).px.Kill()

	status, body, trailer := streamCompare(t, ts.URL, `{"db":"db","query":"q"}`)
	if status != http.StatusOK {
		t.Fatalf("streamed compare after owner death: status %d: %s", status, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("failover stream differs from oracle: %d vs %d bytes", len(body), len(want))
	}
	if trailer != streamComplete {
		t.Errorf("trailer = %q after pre-byte failover, want %q", trailer, streamComplete)
	}
	if got := rt.failovers.Load(); got < 1 {
		t.Errorf("failovers = %d, want >= 1 (the dead owner was tried first)", got)
	}
	if got := rt.tornRelays.Load(); got != 0 {
		t.Errorf("torn relays = %d — pre-first-byte death must not tear the client stream", got)
	}
}

// TestFleetStreamTornRelay is the torn-stream chaos criterion: a worker
// that dies after its stream has started cannot be failed over (bytes
// are already with the client), and the router must seal the stream
// with a non-"complete" trailer — never present the truncation as a
// full result, never hang.
func TestFleetStreamTornRelay(t *testing.T) {
	est1, est2 := testBanks(t)
	rt, workers, ts := newTestFleet(t, 2, testCfg(), nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q", est2, false)
	want := oracle(t, est1, est2)

	owner := workerByName(workers, info.Owners[0])
	owner.px.Set(chaos.Torn)

	status, body, trailer := streamCompare(t, ts.URL, `{"db":"db","query":"q"}`)
	if status != http.StatusOK {
		t.Fatalf("torn stream: status %d (the tear happens mid-body, after the 200)", status)
	}
	if len(body) == 0 || len(body) >= len(want) {
		t.Fatalf("torn stream relayed %d bytes, want partial (0 < n < %d)", len(body), len(want))
	}
	if trailer == streamComplete {
		t.Fatal("torn stream sealed \"complete\" — silent truncation is the one forbidden outcome")
	}
	if trailer != "error" {
		t.Errorf("torn stream trailer = %q, want \"error\"", trailer)
	}
	if got := rt.tornRelays.Load(); got != 1 {
		t.Errorf("torn relays = %d, want 1", got)
	}
	if st := workerState(rt, info.Owners[0]); st != StateDown {
		t.Errorf("worker that tore a stream is %v, want down", st)
	}

	// The fleet keeps serving: the torn worker is Down, so the next
	// streamed compare fails over before its first byte and completes.
	status, body, trailer = streamCompare(t, ts.URL, `{"db":"db","query":"q"}`)
	if status != http.StatusOK || !bytes.Equal(body, want) || trailer != streamComplete {
		t.Fatalf("stream after tear: status %d, %d bytes (want %d), trailer %q",
			status, len(body), len(want), trailer)
	}
}

func workerState(rt *Router, name string) State {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.workers[name].State()
}

// TestFleetBatchCompare: /compare/batch routes by the db bank like any
// compare and relays the worker's concatenated m8 — one worker, one
// admission slot, every query's block byte-identical to its solo run.
func TestFleetBatchCompare(t *testing.T) {
	est1, est2 := testBanks(t)
	est3 := simulate.NewDataSet(256).Get(simulate.EST3)
	rt, workers, ts := newTestFleet(t, 3, testCfg(), nil)

	info := registerBank(t, ts.URL, "db", est1, true)
	registerBank(t, ts.URL, "q1", est2, false)
	registerBank(t, ts.URL, "q2", est3, false)
	want := append(oracle(t, est1, est2), oracle(t, est1, est3)...)

	resp, err := http.Post(ts.URL+"/compare/batch", "application/json",
		strings.NewReader(`{"db":"db","queries":["q1","q2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want) {
		t.Fatalf("batch bytes differ from concatenated solo compares: %d vs %d bytes", len(body), len(want))
	}
	if got := rt.compares.Load(); got != 1 {
		t.Errorf("router compares = %d, want 1 (a batch is one route)", got)
	}

	// The whole batch landed on the primary owner under one admission.
	owner := workerByName(workers, info.Owners[0])
	st := owner.srv.StatsSnapshot()
	if st.Server.Batches != 1 || st.Server.Admissions != 1 {
		t.Errorf("owner batches=%d admissions=%d, want 1/1", st.Server.Batches, st.Server.Admissions)
	}

	// Unknown query banks are the router's 404, not a forwarded error.
	resp, err = http.Post(ts.URL+"/compare/batch", "application/json",
		strings.NewReader(`{"db":"db","queries":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown batch query: status %d, want 404", resp.StatusCode)
	}
}
