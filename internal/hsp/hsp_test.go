package hsp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bank"
	"repro/internal/fasta"
	"repro/internal/index"
	"repro/internal/seed"
)

func mkBank(name string, seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: name + string(rune('0'+i)), Seq: []byte(s)}
	}
	return bank.New(name, recs)
}

// runStep2 is a miniature step 2: enumerate all seeds in ascending code
// order and extend every hit pair. It returns all HSPs (no score
// threshold) and the extension stats.
func runStep2(b1, b2 *bank.Bank, w int, xdrop int32, ordered bool) ([]HSP, Stats) {
	ix1 := index.Build(b1, index.Options{W: w})
	ix2 := index.Build(b2, index.Options{W: w})
	ext := Extender{W: w, Match: 1, Mismatch: 3, XDrop: xdrop, Ordered: ordered}
	var st Stats
	var out []HSP
	for c := 0; c < ix1.NumCodes(); c++ {
		code := seed.Code(c)
		s1, e1 := ix1.OccRange(code)
		for i1 := s1; i1 < e1; i1++ {
			p1 := ix1.Pos[i1]
			lo1, hi1 := ix1.OccLo[i1], ix1.OccHi[i1]
			s2, e2 := ix2.OccRange(code)
			for i2 := s2; i2 < e2; i2++ {
				if h, ok := ext.Extend(b1.Data, b2.Data, p1, ix2.Pos[i2], lo1, hi1, ix2.OccLo[i2], ix2.OccHi[i2], code, &st); ok {
					out = append(out, h)
				}
			}
		}
	}
	return out, st
}

func randomSeqs(rng *rand.Rand, n, minLen, maxLen int) []string {
	letters := []byte("ACGT")
	out := make([]string, n)
	for i := range out {
		l := minLen + rng.Intn(maxLen-minLen+1)
		b := make([]byte, l)
		for j := range b {
			b[j] = letters[rng.Intn(4)]
		}
		out[i] = string(b)
	}
	return out
}

// mutate returns a copy of s with each base substituted with prob pSub.
func mutate(rng *rand.Rand, s string, pSub float64) string {
	letters := []byte("ACGT")
	b := []byte(s)
	for i := range b {
		if rng.Float64() < pSub {
			b[i] = letters[rng.Intn(4)]
		}
	}
	return string(b)
}

func TestExtendExactDuplicateSequences(t *testing.T) {
	s := "ACGTTGCAGGTACCTTACGA"
	b1 := mkBank("x", s)
	b2 := mkBank("y", s)
	const w = 5
	hs, _ := runStep2(b1, b2, w, 1<<30, true)
	if len(hs) != 1 {
		t.Fatalf("identical sequences must yield exactly 1 HSP, got %d: %v", len(hs), hs)
	}
	h := hs[0]
	if h.Len() != int32(len(s)) {
		t.Errorf("HSP length %d, want %d", h.Len(), len(s))
	}
	if h.Score != int32(len(s)) {
		t.Errorf("HSP score %d, want %d", h.Score, len(s))
	}
	if h.Diag() != hs[0].S1-hs[0].S2 {
		t.Error("Diag inconsistent")
	}
}

// The paper's worked example (§2.2): an alignment containing two seeds
// must be generated once, from the lower seed, and the extension from
// the higher seed must abort.
func TestPaperWorkedExample(t *testing.T) {
	top := "ATATGATGTGCAACTGTAATTGCTCAGATTCTATG"
	bot := "ATATGATGTGCAACTGTAATTGCTCAGGTTCTCTG"
	b1 := mkBank("x", top)
	b2 := mkBank("y", bot)
	const w = 8
	hs, st := runStep2(b1, b2, w, 1<<30, true)
	if len(hs) != 1 {
		t.Fatalf("want exactly 1 HSP, got %d: %+v", len(hs), hs)
	}
	if st.Aborted == 0 {
		t.Error("expected at least one ordered-rule abort (the AATTGCTC anchor)")
	}
	// The sequences share a 27-base prefix, then mismatch at offset 27,
	// match offsets 28-31, mismatch at 32, match 33-34. With +1/-3 the
	// max-score trim is [0,32): 27 - 3 + 4 = 28.
	h := hs[0]
	if h.Len() != 32 || h.Score != 28 {
		t.Errorf("HSP = %+v (len %d score %d), want len 32 score 28", h, h.Len(), h.Score)
	}
}

// diagKey identifies the independent unit of the ordered-rule guarantee:
// a diagonal within one (sequence, sequence) pair.
type diagKey struct {
	diag   int32
	s1, s2 int32
}

func keyOf(b1, b2 *bank.Bank, h HSP) diagKey {
	return diagKey{h.Diag(), b1.SeqAt(h.S1), b2.SeqAt(h.S2)}
}

// The exact guarantees of the ordered-seed rule (provable from the
// leftmost-minimal-anchor argument):
//
//  1. ordered output ⊆ naive output (a surviving extension is identical
//     to the naive extension from the same anchor);
//  2. no duplicates, ever;
//  3. a (diagonal, seq-pair) has an ordered HSP iff it has a naive HSP
//     (the per-diagonal leftmost occurrence of the minimal seed can
//     never abort: every embedded seed it meets is on the same diagonal
//     and therefore has a higher code, or lies to its right);
//  4. with an effectively infinite X-drop every anchor explores the
//     whole diagonal, so exactly ONE ordered HSP survives per
//     (diagonal, seq-pair).
func TestOrderedRuleExactProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		w := 4 + rng.Intn(3)
		seqs1 := randomSeqs(rng, 4, 40, 120)
		seqs2 := randomSeqs(rng, 2, 40, 120)
		for _, s := range seqs1[:2] {
			seqs2 = append(seqs2, mutate(rng, s, 0.08))
		}
		b1 := mkBank("x", seqs1...)
		b2 := mkBank("y", seqs2...)

		ordered, stO := runStep2(b1, b2, w, 1<<30, true)
		naive, _ := runStep2(b1, b2, w, 1<<30, false)

		naiveSet := map[HSP]bool{}
		for _, h := range naive {
			naiveSet[h] = true
		}
		seen := map[HSP]bool{}
		orderedPerDiag := map[diagKey]int{}
		for _, h := range ordered {
			if !naiveSet[h] {
				t.Fatalf("trial %d: ordered HSP %+v not in naive output", trial, h)
			}
			if seen[h] {
				t.Fatalf("trial %d: duplicate HSP %+v", trial, h)
			}
			seen[h] = true
			orderedPerDiag[keyOf(b1, b2, h)]++
		}
		naivePerDiag := map[diagKey]int{}
		for _, h := range naive {
			naivePerDiag[keyOf(b1, b2, h)]++
		}
		for k := range naivePerDiag {
			if orderedPerDiag[k] == 0 {
				t.Fatalf("trial %d: diagonal %+v has naive HSPs but no ordered HSP", trial, k)
			}
		}
		for k, n := range orderedPerDiag {
			if naivePerDiag[k] == 0 {
				t.Fatalf("trial %d: diagonal %+v has ordered HSPs but no naive HSP", trial, k)
			}
			if n != 1 {
				t.Fatalf("trial %d: diagonal %+v has %d ordered HSPs with infinite xdrop, want 1", trial, k, n)
			}
		}
		if stO.Emitted != int64(len(ordered)) {
			t.Fatalf("stats emitted %d != %d", stO.Emitted, len(ordered))
		}
	}
}

func TestOrderedNeverEmitsDuplicatesFiniteXdrop(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		seqs1 := randomSeqs(rng, 3, 60, 150)
		seqs2 := []string{mutate(rng, seqs1[0], 0.15), mutate(rng, seqs1[1], 0.05)}
		b1 := mkBank("x", seqs1...)
		b2 := mkBank("y", seqs2...)
		ordered, _ := runStep2(b1, b2, 5, 12, true)
		seen := map[HSP]bool{}
		for _, h := range ordered {
			if seen[h] {
				t.Fatalf("trial %d: duplicate HSP %+v with finite xdrop", trial, h)
			}
			seen[h] = true
		}
	}
}

// With finite X-drop, exploration can stop before reaching a lower
// seed, so several ordered HSPs per diagonal are legitimate — but the
// subset, uniqueness and per-diagonal-existence properties must still
// hold exactly.
func TestOrderedPropertiesFiniteXdrop(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		seqs1 := randomSeqs(rng, 3, 60, 140)
		seqs2 := []string{mutate(rng, seqs1[0], 0.1), mutate(rng, seqs1[2], 0.06)}
		b1 := mkBank("x", seqs1...)
		b2 := mkBank("y", seqs2...)
		const w, xd = 5, 15
		ordered, _ := runStep2(b1, b2, w, xd, true)
		naive, _ := runStep2(b1, b2, w, xd, false)
		naiveSet := map[HSP]bool{}
		naiveDiags := map[diagKey]bool{}
		for _, h := range naive {
			naiveSet[h] = true
			naiveDiags[keyOf(b1, b2, h)] = true
		}
		orderedDiags := map[diagKey]bool{}
		seen := map[HSP]bool{}
		for _, o := range ordered {
			if !naiveSet[o] {
				t.Fatalf("trial %d: ordered HSP %+v not in naive output", trial, o)
			}
			if seen[o] {
				t.Fatalf("trial %d: duplicate ordered HSP %+v", trial, o)
			}
			seen[o] = true
			orderedDiags[keyOf(b1, b2, o)] = true
		}
		for k := range naiveDiags {
			if !orderedDiags[k] {
				t.Fatalf("trial %d: diagonal %+v lost by ordered rule", trial, k)
			}
		}
	}
}

func TestScoresMatchRescore(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	seqs1 := randomSeqs(rng, 3, 50, 120)
	seqs2 := []string{mutate(rng, seqs1[0], 0.1)}
	b1 := mkBank("x", seqs1...)
	b2 := mkBank("y", seqs2...)
	hs, _ := runStep2(b1, b2, 5, 20, true)
	if len(hs) == 0 {
		t.Fatal("no HSPs produced")
	}
	for _, h := range hs {
		if got := Rescore(b1.Data, b2.Data, h, 1, 3); got != h.Score {
			t.Errorf("HSP %+v: stored score %d, rescore %d", h, h.Score, got)
		}
	}
}

func TestHSPsNeverCrossSequenceBoundaries(t *testing.T) {
	// Two identical sequences in each bank: extensions must stop at the
	// record boundary even though the neighbouring record continues
	// identically.
	b1 := mkBank("x", "ACGTACGTAA", "ACGTACGTAA")
	b2 := mkBank("y", "ACGTACGTAA", "ACGTACGTAA")
	hs, _ := runStep2(b1, b2, 4, 1<<30, true)
	for _, h := range hs {
		if b1.SeqAt(h.S1) != b1.SeqAt(h.E1-1) {
			t.Errorf("HSP %+v crosses a bank1 boundary", h)
		}
		if b2.SeqAt(h.S2) != b2.SeqAt(h.E2-1) {
			t.Errorf("HSP %+v crosses a bank2 boundary", h)
		}
	}
	// 2x2 sequence pairs, each pair one full-length identical HSP (the
	// internal ACGT repeat also yields shifted off-diagonal HSPs, which
	// is correct — only the full-length ones are counted here).
	full := 0
	for _, h := range hs {
		if h.Len() == 10 && h.Score == 10 {
			full++
		}
	}
	if full != 4 {
		t.Errorf("got %d full-length HSPs, want 4 (one per sequence pair); all: %+v", full, hs)
	}
}

func TestAmbiguousBasesNeverMatch(t *testing.T) {
	b1 := mkBank("x", "ACGTACGTNNACGTACGT")
	b2 := mkBank("y", "ACGTACGTNNACGTACGT")
	hs, _ := runStep2(b1, b2, 4, 4, true)
	for _, h := range hs {
		for i := int32(0); i < h.Len(); i++ {
			if b1.Data[h.S1+i] >= 4 && b2.Data[h.S2+i] >= 4 {
				// N-vs-N columns may appear inside an HSP only as
				// mismatches; identity must reflect that.
				if Identity(b1.Data, b2.Data, h) == 1.0 {
					t.Errorf("HSP %+v counts N=N as identity", h)
				}
			}
		}
	}
}

func TestXDropLimitsExtension(t *testing.T) {
	// A perfect 20-base match, then 10 mismatches, then another perfect
	// region. Small X-drop must not bridge the mismatch gulf.
	core := "ACGTTGCAGGTACCTTACGA"
	tail := "GGGGGGGGGG"
	far := "TTCAGGACCATGCAATGCAT"
	s1 := core + tail + far
	s2 := core + "CCCCCCCCCC" + far
	b1 := mkBank("x", s1)
	b2 := mkBank("y", s2)
	hs, _ := runStep2(b1, b2, 5, 6, true)
	// The gulf occupies sequence offsets [20,30). Bridging it costs 10
	// mismatches (-30), far beyond xdrop=6, so no HSP may overlap it.
	lo1, _ := b1.SeqBounds(0)
	gulfStart, gulfEnd := lo1+20, lo1+30
	for _, h := range hs {
		if h.S1 < gulfEnd && gulfStart < h.E1 {
			t.Errorf("HSP %+v overlaps the mismatch gulf with xdrop=6", h)
		}
		if h.Len() > int32(len(core)) {
			t.Errorf("HSP %+v longer than a matching block", h)
		}
	}
	// The two 20-base blocks each produce one full-block HSP.
	full := 0
	for _, h := range hs {
		if h.Len() == 20 && h.Score == 20 {
			full++
		}
	}
	if full != 2 {
		t.Errorf("want 2 full-block HSPs, got %d: %+v", full, hs)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	seqs1 := randomSeqs(rng, 2, 80, 120)
	b1 := mkBank("x", seqs1...)
	b2 := mkBank("y", mutate(rng, seqs1[0], 0.02))
	_, st := runStep2(b1, b2, 4, 1<<30, true)
	if st.Extensions != st.Aborted+st.Emitted {
		t.Errorf("extensions %d != aborted %d + emitted %d", st.Extensions, st.Aborted, st.Emitted)
	}
	if st.Aborted == 0 {
		t.Error("a 2%-mutated copy should trigger ordered aborts")
	}
}

func TestMidpoint(t *testing.T) {
	h := HSP{S1: 10, E1: 20, S2: 100, E2: 110}
	m1, m2 := h.Mid()
	if m1 != 15 || m2 != 105 {
		t.Errorf("Mid = %d,%d", m1, m2)
	}
}

func TestContains(t *testing.T) {
	outer := HSP{S1: 0, E1: 100, S2: 50, E2: 150}
	inner := HSP{S1: 10, E1: 50, S2: 60, E2: 100}
	if !outer.Contains(inner) {
		t.Error("outer should contain inner")
	}
	if inner.Contains(outer) {
		t.Error("inner should not contain outer")
	}
}

func TestSortByDiagOrder(t *testing.T) {
	hs := []HSP{
		{S1: 10, S2: 0, E1: 15, E2: 5}, // diag 10
		{S1: 0, S2: 10, E1: 5, E2: 15}, // diag -10
		{S1: 5, S2: 5, E1: 10, E2: 10}, // diag 0
		{S1: 2, S2: 2, E1: 8, E2: 8},   // diag 0, earlier S1
	}
	SortByDiag(hs)
	if hs[0].Diag() != -10 || hs[1].S1 != 2 || hs[2].S1 != 5 || hs[3].Diag() != 10 {
		t.Errorf("sorted = %+v", hs)
	}
}

func TestDedupRemovesExactCopies(t *testing.T) {
	h := HSP{S1: 1, E1: 5, S2: 2, E2: 6, Score: 4}
	out := Dedup([]HSP{h, h, h})
	if len(out) != 1 {
		t.Errorf("Dedup kept %d", len(out))
	}
	out = Dedup(nil)
	if len(out) != 0 {
		t.Errorf("Dedup(nil) = %v", out)
	}
}

func TestLowSeedInRepeatRegionAborts(t *testing.T) {
	// A poly-A region: the anchor AAAA.. is the lowest code (0), so
	// extensions from any *other* seed overlapping it abort, and the
	// poly-A anchored extension survives. Exactly 1 HSP per diagonal
	// region pair.
	s := strings.Repeat("A", 30)
	b1 := mkBank("x", s)
	b2 := mkBank("y", s)
	hs, _ := runStep2(b1, b2, 6, 1<<30, true)
	// Hit pairs exist on many diagonals (any offset alignment of the two
	// poly-A runs); each diagonal must yield exactly one HSP.
	perDiag := map[int32]int{}
	for _, h := range hs {
		perDiag[h.Diag()]++
	}
	for d, n := range perDiag {
		if n != 1 {
			t.Errorf("diagonal %d has %d HSPs, want 1", d, n)
		}
	}
}

func BenchmarkExtendOrdered(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	seqs := randomSeqs(rng, 1, 10000, 10000)
	b1 := mkBank("x", seqs[0])
	b2 := mkBank("y", mutate(rng, seqs[0], 0.05))
	const w = 11
	ix1 := index.Build(b1, index.Options{W: w})
	code := seed.Code(0)
	for c := 0; c < ix1.NumCodes(); c++ {
		if ix1.Head(seed.Code(c)) >= 0 {
			code = seed.Code(c)
			break
		}
	}
	p1 := ix1.Head(code)
	lo1, hi1 := b1.SeqBounds(0)
	lo2, hi2 := b2.SeqBounds(0)
	ext := Extender{W: w, Match: 1, Mismatch: 3, XDrop: 20, Ordered: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.Extend(b1.Data, b2.Data, p1, lo2+(p1-lo1), lo1, hi1, lo2, hi2, code, nil)
	}
}
