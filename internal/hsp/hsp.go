// Package hsp implements ungapped hit extension with the ORIS ordered-
// seed abort rule — the key contribution of paper §2.2.
//
// Step 2 of the algorithm enumerates seeds from the lowest code to the
// highest and extends every hit pair. While the extension grows a run
// of consecutive matches, every run position where the last W bases
// matched is itself a seed hit; if that embedded seed's code is lower
// than the anchor's (or equal, on the left side), this HSP has already
// been generated when that seed was enumerated, so the extension
// aborts. The surviving extensions produce each HSP exactly once — from
// the leftmost occurrence of its minimal-code seed — with no duplicate-
// suppression table ("This is the key point of the ORIS algorithm").
package hsp

import (
	"sort"

	"repro/internal/seed"
)

// HSP is an ungapped alignment between two banks, in bank Data
// coordinates, half open: bank1[S1:E1] aligns to bank2[S2:E2] with
// E1-S1 == E2-S2.
type HSP struct {
	S1, E1 int32
	S2, E2 int32
	Score  int32
}

// Diag returns the diagonal number S1-S2. Step 2 sorts HSPs by diagonal
// "to optimize data access of the next step" (paper §2.2).
func (h HSP) Diag() int32 { return h.S1 - h.S2 }

// Len returns the alignment length.
func (h HSP) Len() int32 { return h.E1 - h.S1 }

// Mid returns the midpoint pair, the anchor for gapped extension
// (paper §2.3: "starting from the middle of an HSP").
func (h HSP) Mid() (int32, int32) {
	off := (h.E1 - h.S1) / 2
	return h.S1 + off, h.S2 + off
}

// SortByDiag orders HSPs by (diagonal, S1), the step-3 processing order.
func SortByDiag(hs []HSP) {
	sort.Slice(hs, func(i, j int) bool {
		di, dj := hs[i].Diag(), hs[j].Diag()
		if di != dj {
			return di < dj
		}
		if hs[i].S1 != hs[j].S1 {
			return hs[i].S1 < hs[j].S1
		}
		if hs[i].E1 != hs[j].E1 {
			return hs[i].E1 < hs[j].E1
		}
		return hs[i].Score > hs[j].Score
	})
}

// Extender performs ungapped extensions. The zero value is unusable;
// fill every field.
type Extender struct {
	// W is the seed length.
	W int
	// Match is the positive per-base reward, Mismatch the positive
	// penalty.
	Match, Mismatch int32
	// XDrop stops an extension arm once the running score falls XDrop
	// below the best score seen on that arm.
	XDrop int32
	// Ordered enables the ORIS abort rule. The BLASTN baseline and the
	// A1 ablation run with Ordered=false.
	Ordered bool
	// SampleStep and SamplePhase mirror the bank-1 index sampling of
	// the asymmetric mode (§3.4). The abort rule may only fire on an
	// embedded seed that is actually IN the index: with half-word
	// sampling, an embedded lower seed at an unsampled position can
	// never generate the HSP itself, and aborting on it would lose the
	// HSP outright. Zero values mean every position is sampled.
	SampleStep, SamplePhase int32
}

// sampled reports whether a bank-1 window start position is in the
// sampled index universe.
func (e *Extender) sampled(p int32) bool {
	return e.SampleStep <= 1 || p%e.SampleStep == e.SamplePhase
}

// Stats counts extension outcomes for diagnostics and the A1 ablation.
type Stats struct {
	// Extensions is the number of Extend calls.
	Extensions int64
	// Aborted counts extensions stopped by the ordered-seed rule.
	Aborted int64
	// Emitted counts HSPs returned (before any score threshold).
	Emitted int64
}

// Extend grows the hit at (p1,p2) — identical W-mers with seed code
// anchor — into a maximal ungapped alignment. d1, d2 are the bank Data
// arrays; [lo1,hi1) and [lo2,hi2) bound the sequences containing p1 and
// p2 (extensions never cross record boundaries).
//
// ok is false when the ordered rule aborted: the HSP is a duplicate of
// one generated from a lower (or equal-and-leftmost) seed.
//
//scorislint:hotpath
func (e *Extender) Extend(d1, d2 []byte, p1, p2, lo1, hi1, lo2, hi2 int32, anchor seed.Code, st *Stats) (HSP, bool) {
	if st != nil {
		st.Extensions++
	}
	w := int32(e.W)
	seedScore := w * e.Match

	// ---- left arm ----
	// Walk q1 from p1-1 down; rolling code tracks the window starting
	// at q1. Bytes are masked to 2 bits inside the roll so that
	// ambiguity codes cannot corrupt the accumulator; the code is only
	// consulted when the last W bases matched (hence were valid), at
	// which point it is exact.
	limit := p1 - lo1
	if l2 := p2 - lo2; l2 < limit {
		limit = l2
	}
	var (
		score    = seedScore
		maxiL    = seedScore
		bestLeft = int32(0)
		run      = w
		code     = anchor
	)
	for l := int32(1); l <= limit; l++ {
		q1 := p1 - l
		q2 := p2 - l
		a, b := d1[q1], d2[q2]
		code = seed.RollLeft(code, a&3, d1[q1+w]&3, e.W)
		if a == b && a < 4 {
			score += e.Match
			if score > maxiL {
				maxiL = score
				bestLeft = l
			}
			run++
			if e.Ordered && run >= w && code <= anchor && e.sampled(q1) {
				if st != nil {
					st.Aborted++
				}
				return HSP{}, false
			}
		} else {
			score -= e.Mismatch
			run = 0
			if maxiL-score >= e.XDrop {
				break
			}
		}
	}

	// ---- right arm ----
	// Walk q1 from p1+W up; rolling code tracks the window *ending* at
	// the current position (i.e. starting at q1-W+1).
	limit = hi1 - (p1 + w)
	if l2 := hi2 - (p2 + w); l2 < limit {
		limit = l2
	}
	var (
		maxiR     = seedScore
		bestRight = int32(0)
	)
	score = seedScore
	run = w
	code = anchor
	for l := int32(1); l <= limit; l++ {
		q1 := p1 + w - 1 + l
		q2 := p2 + w - 1 + l
		a, b := d1[q1], d2[q2]
		code = seed.RollRight(code, a&3, e.W)
		if a == b && a < 4 {
			score += e.Match
			if score > maxiR {
				maxiR = score
				bestRight = l
			}
			run++
			if e.Ordered && run >= w && code < anchor && e.sampled(q1-w+1) {
				if st != nil {
					st.Aborted++
				}
				return HSP{}, false
			}
		} else {
			score -= e.Mismatch
			run = 0
			if maxiR-score >= e.XDrop {
				break
			}
		}
	}

	h := HSP{
		S1:    p1 - bestLeft,
		E1:    p1 + w + bestRight,
		S2:    p2 - bestLeft,
		E2:    p2 + w + bestRight,
		Score: maxiL + maxiR - seedScore,
	}
	if st != nil {
		st.Emitted++
	}
	return h, true
}

// Rescore recomputes an HSP's score directly from the sequences; used
// by tests and assertions.
func Rescore(d1, d2 []byte, h HSP, match, mismatch int32) int32 {
	var s int32
	for i := int32(0); i < h.Len(); i++ {
		a, b := d1[h.S1+i], d2[h.S2+i]
		if a == b && a < 4 {
			s += match
		} else {
			s -= mismatch
		}
	}
	return s
}

// Identity returns the fraction of identical columns in an HSP.
func Identity(d1, d2 []byte, h HSP) float64 {
	if h.Len() == 0 {
		return 0
	}
	n := int32(0)
	for i := int32(0); i < h.Len(); i++ {
		a, b := d1[h.S1+i], d2[h.S2+i]
		if a == b && a < 4 {
			n++
		}
	}
	return float64(n) / float64(h.Len())
}

// Equal reports coordinate-and-score equality.
func (h HSP) Equal(o HSP) bool { return h == o }

// Contains reports whether o lies entirely within h on both sequences.
func (h HSP) Contains(o HSP) bool {
	return o.S1 >= h.S1 && o.E1 <= h.E1 && o.S2 >= h.S2 && o.E2 <= h.E2
}

// Dedup removes exact duplicates from a diagonal-sorted slice in place
// and returns the shortened slice. The naive (Ordered=false) pipeline
// needs this; the ORIS pipeline must not (property-tested).
func Dedup(hs []HSP) []HSP {
	if len(hs) < 2 {
		return hs
	}
	SortByDiag(hs)
	out := hs[:1]
	for _, h := range hs[1:] {
		if h != out[len(out)-1] {
			out = append(out, h)
		}
	}
	return out
}
