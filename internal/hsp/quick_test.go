package hsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/seed"
)

func indexBuildSampled(b *bank.Bank, w, step int) *index.Index {
	return index.Build(b, index.Options{W: w, SampleStep: step})
}

func codeOf(c int) seed.Code { return seed.Code(c) }

// quickBanks derives a related bank pair from fuzz input.
func quickBanks(seedVal int64, nRaw uint8) (*bank.Bank, *bank.Bank) {
	rng := rand.New(rand.NewSource(seedVal))
	n := int(nRaw)%3 + 2
	seqs1 := randomSeqs(rng, n, 40, 120)
	seqs2 := []string{mutate(rng, seqs1[0], 0.06)}
	if n > 2 {
		seqs2 = append(seqs2, mutate(rng, seqs1[1], 0.12))
	}
	return mkBank("x", seqs1...), mkBank("y", seqs2...)
}

// Property: the ordered run never emits duplicates and is a subset of
// the naive run, for arbitrary related banks and parameters.
func TestQuickOrderedSubsetAndUnique(t *testing.T) {
	f := func(seedVal int64, nRaw, wRaw, xRaw uint8) bool {
		w := int(wRaw)%4 + 4
		xdrop := int32(xRaw)%40 + 5
		b1, b2 := quickBanks(seedVal, nRaw)
		ordered, _ := runStep2(b1, b2, w, xdrop, true)
		naive, _ := runStep2(b1, b2, w, xdrop, false)
		naiveSet := map[HSP]bool{}
		for _, h := range naive {
			naiveSet[h] = true
		}
		seen := map[HSP]bool{}
		for _, h := range ordered {
			if seen[h] || !naiveSet[h] {
				return false
			}
			seen[h] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every emitted HSP has a valid geometry and its score is
// reproducible from the sequences.
func TestQuickHSPGeometryAndScore(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		const w = 5
		b1, b2 := quickBanks(seedVal, nRaw)
		hs, _ := runStep2(b1, b2, w, 25, true)
		for _, h := range hs {
			if h.E1-h.S1 != h.E2-h.S2 || h.Len() < int32(w) {
				return false
			}
			if h.Diag() != h.S1-h.S2 {
				return false
			}
			if Rescore(b1.Data, b2.Data, h, 1, 3) != h.Score {
				return false
			}
			if id := Identity(b1.Data, b2.Data, h); id <= 0 || id > 1 {
				return false
			}
			if b1.SeqAt(h.S1) != b1.SeqAt(h.E1-1) || b2.SeqAt(h.S2) != b2.SeqAt(h.E2-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: with bank-1 sampling, the ordered rule still loses no
// diagonals relative to the sampled naive run (the sampled-abort fix).
func TestQuickSampledOrderedLosesNoDiagonals(t *testing.T) {
	f := func(seedVal int64, nRaw uint8) bool {
		const w, xd = 5, 1 << 30
		b1, b2 := quickBanks(seedVal, nRaw)
		run := func(ordered bool) []HSP {
			ix1 := indexBuildSampled(b1, w, 2)
			ix2 := indexBuildSampled(b2, w, 1)
			ext := Extender{W: w, Match: 1, Mismatch: 3, XDrop: xd,
				Ordered: ordered, SampleStep: 2}
			var out []HSP
			for c := 0; c < ix1.NumCodes(); c++ {
				lo, hi := ix1.OccRange(codeOf(c))
				for i1 := lo; i1 < hi; i1++ {
					p1, lo1, hi1 := ix1.Pos[i1], ix1.OccLo[i1], ix1.OccHi[i1]
					for _, p2 := range ix2.Occ(codeOf(c)) {
						lo2, hi2 := b2.SeqBounds(int(b2.SeqAt(p2)))
						if h, ok := ext.Extend(b1.Data, b2.Data, p1, p2, lo1, hi1, lo2, hi2, codeOf(c), nil); ok {
							out = append(out, h)
						}
					}
				}
			}
			return out
		}
		type dk struct{ d, s1, s2 int32 }
		diags := func(hs []HSP) map[dk]bool {
			m := map[dk]bool{}
			for _, h := range hs {
				m[dk{h.Diag(), b1.SeqAt(h.S1), b2.SeqAt(h.S2)}] = true
			}
			return m
		}
		od := diags(run(true))
		nd := diags(run(false))
		for k := range nd {
			if !od[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
