package ixcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/fasta"
	"repro/internal/index"
)

func testBank(t testing.TB, name, seq string) *bank.Bank {
	t.Helper()
	return bank.New(name, []*fasta.Record{{ID: name, Seq: []byte(seq)}})
}

// randomishSeq builds a deterministic non-repetitive sequence long
// enough to index at W=8 without tripping the dust filter everywhere.
func randomishSeq(n int) string {
	const alpha = "ACGT"
	buf := make([]byte, n)
	state := uint32(12345)
	for i := range buf {
		state = state*1664525 + 1013904223
		buf[i] = alpha[state>>30]
	}
	return string(buf)
}

func TestGetBuildsOncePerKey(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	c := New(8)
	p1 := c.Get(b, index.Options{W: 8})
	p2 := c.Get(b, index.Options{W: 8})
	if p1 != p2 {
		t.Error("same key returned different Prepared values")
	}
	if got := c.Builds(); got != 1 {
		t.Errorf("builds = %d, want 1", got)
	}
	if p1.Ix == nil || p1.Bank != b || p1.Ix.Bank != b {
		t.Errorf("prepared not wired to its bank: %+v", p1)
	}
}

// TestKeyDiscrimination pins the cache-key contract: options that change
// the built index never alias, and options that cannot change it
// (Workers, normalized sampling) do alias.
func TestKeyDiscrimination(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	b2 := testBank(t, "b2", randomishSeq(512))
	c := New(64)

	base := index.Options{W: 8}
	distinct := []index.Options{
		base,
		{W: 9},
		{W: 8, SampleStep: 2},
		{W: 8, SampleStep: 2, SamplePhase: 1},
		{W: 8, SampleStep: 4},
		{W: 8, Dust: dust.New(0, 0)},
		{W: 8, Dust: dust.New(32, 0)},
		{W: 8, Dust: dust.New(0, 1.5)},
	}
	for _, o := range distinct {
		c.Get(b, o)
	}
	if got, want := c.Builds(), int64(len(distinct)); got != want {
		t.Fatalf("distinct options: builds = %d, want %d", got, want)
	}

	// A different bank with identical options is a different key.
	c.Get(b2, base)
	if got := c.Builds(); got != int64(len(distinct))+1 {
		t.Errorf("bank identity not in key: builds = %d", got)
	}

	// Aliases: Workers is excluded; SampleStep 0 and 1 both mean "every
	// position"; a fresh dust.Masker with equal parameters is the same
	// filter; SamplePhase is reduced mod SampleStep.
	aliases := []index.Options{
		{W: 8, Workers: 3},
		{W: 8, SampleStep: 1},
		{W: 8, SampleStep: 0},
	}
	before := c.Builds()
	for _, o := range aliases {
		c.Get(b, o)
	}
	c.Get(b, index.Options{W: 8, Dust: dust.New(0, 0)})
	c.Get(b, index.Options{W: 8, SampleStep: 2, SamplePhase: 3})
	// Negative and out-of-range phases reduce into [0, step): -1 mod 2
	// is phase 1, -4 mod 3 is phase 2.
	c.Get(b, index.Options{W: 8, SampleStep: 2, SamplePhase: -1})
	if got := c.Builds(); got != before {
		t.Errorf("equivalent options rebuilt: builds went %d -> %d", before, got)
	}
	if SameKey(index.Options{W: 8, SampleStep: 2, SamplePhase: -1},
		index.Options{W: 8, SampleStep: 2, SamplePhase: 1}) == false {
		t.Error("Phase=-1,Step=2 must alias Phase=1,Step=2")
	}
	if SameKey(index.Options{W: 8, SampleStep: 3, SamplePhase: -4},
		index.Options{W: 8, SampleStep: 3, SamplePhase: 2}) == false {
		t.Error("Phase=-4,Step=3 must alias Phase=2,Step=3")
	}
}

func TestLRUEviction(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	c := New(2)
	o1 := index.Options{W: 6}
	o2 := index.Options{W: 7}
	o3 := index.Options{W: 8}

	c.Get(b, o1)
	c.Get(b, o2)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Touch o1 so o2 is least-recently used, then insert o3.
	c.Get(b, o1)
	c.Get(b, o3)
	if c.Len() != 2 {
		t.Fatalf("len after eviction = %d, want 2", c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions())
	}
	before := c.Builds()
	c.Get(b, o1) // still resident: no rebuild
	if c.Builds() != before {
		t.Error("LRU evicted the recently-used entry")
	}
	c.Get(b, o2) // evicted: rebuilds
	if c.Builds() != before+1 {
		t.Error("evicted entry was not rebuilt on next Get")
	}
}

// TestConcurrentSingleBuild hammers one key from many goroutines; run
// with -race this also proves the lookup path is data-race free.
func TestConcurrentSingleBuild(t *testing.T) {
	b := testBank(t, "b", randomishSeq(4096))
	c := New(4)
	const goroutines = 32
	var wg sync.WaitGroup
	got := make([]*Prepared, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Get(b, index.Options{W: 8, Workers: 1 + i%4})
		}(i)
	}
	wg.Wait()
	if c.Builds() != 1 {
		t.Errorf("concurrent lookups ran %d builds, want 1", c.Builds())
	}
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("goroutine %d got a different Prepared", i)
		}
	}
}

// TestConcurrentDistinctKeys checks that the singleflight of one key
// does not serialize other keys and that counters stay consistent.
func TestConcurrentDistinctKeys(t *testing.T) {
	b := testBank(t, "b", randomishSeq(2048))
	c := New(16)
	ws := []int{6, 7, 8, 9}
	var wg sync.WaitGroup
	for rep := 0; rep < 8; rep++ {
		for _, w := range ws {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				c.Get(b, index.Options{W: w})
			}(w)
		}
	}
	wg.Wait()
	if got, want := c.Builds(), int64(len(ws)); got != want {
		t.Errorf("builds = %d, want %d", got, want)
	}
	if c.Len() != len(ws) {
		t.Errorf("len = %d, want %d", c.Len(), len(ws))
	}
}

func TestMatchesOptions(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	other := testBank(t, "other", randomishSeq(512))
	p := Prepare(b, index.Options{W: 8, Dust: dust.New(0, 0)})

	if !p.MatchesOptions(index.Options{W: 8, Dust: dust.New(64, 2.0)}) {
		t.Error("equal dust parameters should match regardless of masker instance")
	}
	if !p.MatchesOptions(index.Options{W: 8, Dust: dust.New(0, 0), Workers: 7}) {
		t.Error("Workers must not affect validity")
	}
	franken := &Prepared{Bank: other, Ix: p.Ix}
	if franken.MatchesOptions(index.Options{W: 8, Dust: dust.New(0, 0)}) {
		t.Error("an index paired with a bank it was not built from must not match")
	}
	if p.MatchesOptions(index.Options{W: 8}) {
		t.Error("dust on/off must not match")
	}
	if p.MatchesOptions(index.Options{W: 9, Dust: dust.New(0, 0)}) {
		t.Error("different W must not match")
	}
	if p.MatchesOptions(index.Options{W: 8, Dust: dust.New(0, 0), SampleStep: 2}) {
		t.Error("different SampleStep must not match")
	}
	var nilP *Prepared
	if nilP.MatchesOptions(index.Options{W: 8}) {
		t.Error("nil Prepared must not match")
	}
}

// fakeStore is an in-memory Store double that records traffic and can
// inject load failures — the disk tier's cache-side contract tested
// without any file I/O (package ixdisk tests the real files).
type fakeStore struct {
	mu         sync.Mutex
	entries    map[Key]*Prepared
	loads      int
	saves      int
	failOne    bool // next Load returns an injected error
	declineAll bool // Save declines by policy
}

func newFakeStore() *fakeStore { return &fakeStore{entries: map[Key]*Prepared{}} }

func (s *fakeStore) Load(b *bank.Bank, opts index.Options) (*Prepared, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if s.failOne {
		s.failOne = false
		return nil, errInjected
	}
	return s.entries[KeyFor(b, opts)], nil
}

func (s *fakeStore) Save(p *Prepared) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.declineAll {
		return fmt.Errorf("policy says no: %w", ErrSaveDeclined)
	}
	s.saves++
	s.entries[KeyFor(p.Bank, p.Ix.Options())] = p
	return nil
}

var errInjected = fmt.Errorf("injected store failure")

// TestStoreTierOrder pins the lookup order: memory LRU first (no store
// traffic on a memory hit), then store, then build with write-back.
func TestStoreTierOrder(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	s := newFakeStore()
	c := New(8)
	c.SetStore(s)

	p1 := c.Get(b, index.Options{W: 8}) // miss everywhere: build + save
	if c.Builds() != 1 || c.DiskHits() != 0 || s.loads != 1 || s.saves != 1 {
		t.Fatalf("cold get: builds=%d diskHits=%d loads=%d saves=%d, want 1/0/1/1",
			c.Builds(), c.DiskHits(), s.loads, s.saves)
	}
	p2 := c.Get(b, index.Options{W: 8}) // memory hit: store untouched
	if p2 != p1 || s.loads != 1 {
		t.Fatalf("memory hit touched the store (loads=%d) or returned a new value", s.loads)
	}

	c2 := New(8) // fresh memory tier, same store: disk hit, no build
	c2.SetStore(s)
	p3 := c2.Get(b, index.Options{W: 8})
	if c2.Builds() != 0 || c2.DiskHits() != 1 {
		t.Fatalf("warm cache: builds=%d diskHits=%d, want 0/1", c2.Builds(), c2.DiskHits())
	}
	if p3 != p1 {
		t.Error("fake store should round-trip the identical Prepared")
	}
}

// TestStoreErrorFallsBackToBuild: a failing store load never fails a
// Get; the cache builds, counts the error, and still writes back.
func TestStoreErrorFallsBackToBuild(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	s := newFakeStore()
	s.failOne = true
	c := New(8)
	c.SetStore(s)
	p := c.Get(b, index.Options{W: 8})
	if p == nil || p.Ix == nil {
		t.Fatal("Get returned no index despite store failure")
	}
	if c.Builds() != 1 || c.DiskErrors() != 1 || s.saves != 1 {
		t.Fatalf("builds=%d diskErrs=%d saves=%d, want 1/1/1", c.Builds(), c.DiskErrors(), s.saves)
	}
}

// TestStoreSaveDeclined: a save declined by store policy is counted as
// housekeeping, not as a store error, and never fails the Get.
func TestStoreSaveDeclined(t *testing.T) {
	b := testBank(t, "b", randomishSeq(512))
	s := newFakeStore()
	s.declineAll = true
	c := New(8)
	c.SetStore(s)
	p := c.Get(b, index.Options{W: 8})
	if p == nil || p.Ix == nil {
		t.Fatal("Get returned no index despite declined save")
	}
	if c.Builds() != 1 || c.SavesDeclined() != 1 || c.DiskErrors() != 0 || s.saves != 0 {
		t.Fatalf("builds=%d declined=%d diskErrs=%d saves=%d, want 1/1/0/0",
			c.Builds(), c.SavesDeclined(), c.DiskErrors(), s.saves)
	}
}

// TestStoreSingleFlight: concurrent Gets for one key produce exactly
// one store load and either one disk hit or one build — the
// single-flight contract extends to the disk tier.
func TestStoreSingleFlight(t *testing.T) {
	b := testBank(t, "b", randomishSeq(2048))
	s := newFakeStore()
	s.Save(Prepare(b, index.Options{W: 8})) // pre-populate
	baseline := s.saves
	c := New(8)
	c.SetStore(s)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Get(b, index.Options{W: 8})
		}()
	}
	wg.Wait()
	if s.loads != 1 || c.DiskHits() != 1 || c.Builds() != 0 || s.saves != baseline {
		t.Errorf("loads=%d diskHits=%d builds=%d saves=%d, want 1/1/0/%d",
			s.loads, c.DiskHits(), c.Builds(), s.saves, baseline)
	}
}

// TestCountersSnapshot: the one-call snapshot (what scorisd's /stats
// serves) agrees with the individual counter accessors.
func TestCountersSnapshot(t *testing.T) {
	b1 := testBank(t, "b1", randomishSeq(512))
	b2 := testBank(t, "b2", randomishSeq(600))
	c := New(8)
	c.Get(b1, index.Options{W: 8})
	c.Get(b1, index.Options{W: 8}) // hit
	c.Get(b2, index.Options{W: 8})

	got := c.Counters()
	want := Counters{
		Builds:        c.Builds(),
		Lookups:       c.Lookups(),
		Evictions:     c.Evictions(),
		DiskHits:      c.DiskHits(),
		DiskErrors:    c.DiskErrors(),
		SavesDeclined: c.SavesDeclined(),
		Entries:       c.Len(),
	}
	if got != want {
		t.Errorf("Counters() = %+v, accessors say %+v", got, want)
	}
	if got.Builds != 2 || got.Lookups != 3 || got.Entries != 2 {
		t.Errorf("counter values off: %+v", got)
	}
}
