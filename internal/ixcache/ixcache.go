// Package ixcache turns the bank index from a per-call temporary into a
// persistent, shared artifact: a prepared-bank session subsystem for the
// ORIS reproduction.
//
// The ordered-index design front-loads work into the index build so that
// intensive all-vs-all comparison amortizes it (PAPER.md; DESIGN.md §2
// records that the counting-sort CSR build deliberately does *more* work
// than the legacy chain build in exchange for faster scans). That trade
// only pays off if a built index is reused. This package provides the two
// pieces callers need:
//
//   - Prepared — a bank paired with the immutable index.Index built from
//     it for one exact index.Options value;
//   - Cache — a concurrency-safe, size-bounded LRU keyed by
//     (bank identity, W, SampleStep, SamplePhase, dust parameters), with
//     single-flight semantics so concurrent callers share one build per
//     (bank, options) pair, and an optional persistent second tier
//     (Store, implemented by package ixdisk) so the build amortizes
//     across processes, not just within one.
//
// # Reuse contract
//
// A built index.Index is immutable after Build returns: nothing in this
// repository writes to its arrays, so any number of goroutines may read
// one Index (and therefore one Prepared) concurrently without locking.
// An Index is valid only for the exact (bank, Options) pair it was built
// from: the bank value it captured (banks are immutable, so identity is
// the right notion of sameness) and the exact seed length, sampling
// schedule, and dust parameters. Comparing with an index built for
// different options silently changes which seeds exist — which is why
// core.CompareWithIndex and blat.CompareWithIndex verify the match and
// refuse mismatched indexes instead of producing wrong output.
//
// Options.Workers is deliberately NOT part of the cache key: the CSR
// build is canonical — byte-identical output for any worker count
// (DESIGN.md §2) — so builds requested with different parallelism are the
// same artifact.
package ixcache

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/bank"
	"repro/internal/index"
)

// DefaultMaxEntries is the cache bound used when New is given a
// non-positive size. Each entry retains its bank's full CSR index
// (≈ 20 bytes per indexed position, DESIGN.md §3), so the bound is a
// working-set knob, not a correctness one.
const DefaultMaxEntries = 32

// Prepared pairs a bank with the immutable index built from it. The
// fields are exported for read access; construct values with Prepare or
// Cache.Get so Ix really was built from Bank.
type Prepared struct {
	Bank *bank.Bank
	Ix   *index.Index
}

// Prepare builds a bank's index directly, without a cache. It is the
// one-shot constructor; long-lived callers holding many banks should go
// through Cache.Get.
func Prepare(b *bank.Bank, opts index.Options) *Prepared {
	return &Prepared{Bank: b, Ix: index.Build(b, opts)}
}

// MatchesOptions reports whether p is a self-consistent prepared value
// (its index really was built from its bank) built with exactly these
// options — the validity test of the reuse contract. Options compare by
// their cache-key projection (Workers excluded; dust maskers compared
// by parameter value, not identity).
func (p *Prepared) MatchesOptions(opts index.Options) bool {
	return p != nil && p.Ix != nil && p.Ix.Bank == p.Bank &&
		optionsKey(p.Ix.Options()) == optionsKey(opts)
}

// optKey is the comparable projection of index.Options used in cache
// keys: everything that changes the built index, nothing that doesn't.
type optKey struct {
	w             int
	sampleStep    int
	samplePhase   int
	dust          bool
	dustWindow    int
	dustThreshold float64
}

// SameKey reports whether two option values project to the same cache
// key — the canonical "would these build the same index?" test, shared
// with the on-disk store (package ixdisk) so the two tiers agree on
// what counts as a match.
func SameKey(a, b index.Options) bool {
	return optionsKey(a) == optionsKey(b)
}

// optionsKey normalizes opts the same way index.Build does (SampleStep
// < 1 means 1; SamplePhase reduced mod SampleStep) so equivalent option
// values alias to one cache entry.
func optionsKey(o index.Options) optKey {
	step := o.SampleStep
	if step < 1 {
		step = 1
	}
	phase := o.SamplePhase % step
	if phase < 0 {
		phase += step
	}
	k := optKey{w: o.W, sampleStep: step, samplePhase: phase}
	if o.Dust != nil {
		k.dust = true
		k.dustWindow = o.Dust.Window
		k.dustThreshold = o.Dust.Threshold
	}
	return k
}

// Key identifies one (bank, options) build in a Cache. Bank identity is
// pointer identity: banks are immutable once constructed, so two equal
// pointers always denote the same content, and two different banks never
// share an entry even if their contents happen to coincide.
type Key struct {
	bank *bank.Bank
	opts optKey
}

// KeyFor derives the cache key for a (bank, options) pair.
func KeyFor(b *bank.Bank, opts index.Options) Key {
	return Key{bank: b, opts: optionsKey(opts)}
}

// entry is one cache slot. The sync.Once gives single-flight builds:
// every concurrent Get for the same key shares the pointer to one entry
// and exactly one of them runs the build; the rest block on the Once.
// done flips after the build so eviction can tell finished entries from
// in-flight ones (an in-flight entry must stay in the map, or a
// concurrent Get of its key would start a duplicate build).
type entry struct {
	key   Key
	opts  index.Options
	once  sync.Once
	ready *Prepared
	done  atomic.Bool
}

// ErrSaveDeclined is returned by Store.Save when the store's save
// policy declines to persist the value (ixdisk.SavePolicy: query banks
// below a size floor, banks not marked as database banks). A declined
// save is deliberate housekeeping, not a failure: the cache counts it
// under SavesDeclined instead of DiskErrors.
var ErrSaveDeclined = errors.New("ixcache: store save declined by policy")

// Store is an optional persistent second tier below the in-memory LRU:
// Load returns a previously saved Prepared for exactly (b, opts), or
// (nil, nil) on a clean miss; Save persists a freshly built one. A
// non-nil Load error means a file existed but was rejected (corrupt,
// wrong key) — the cache falls back to a fresh build and writes it
// back, healing the store. Save may decline by policy with an error
// wrapping ErrSaveDeclined. Implementations must be safe for concurrent
// use; package ixdisk provides the on-disk implementation (whose Load
// also satisfies a miss by suffix-extending a stored prefix index when
// the bank has only been appended to — transparent to this interface).
type Store interface {
	Load(b *bank.Bank, opts index.Options) (*Prepared, error)
	Save(p *Prepared) error
}

// SeqRange selects the contiguous sequence range [Lo, Hi) of a bank
// for block-granular store operations.
type SeqRange struct {
	Lo, Hi int
}

// BlockStore is the block-aware store contract introduced with the
// block-structured .orix v3 layout. It embeds Store — the whole-index
// Load/Save pair remains the compat surface every consumer (this
// cache included) can rely on — and adds the two block-granular
// operations the monolithic interface could not express:
//
//   - LoadBlocks returns a *partial* Prepared holding only the stored
//     blocks that intersect the given sequence ranges (nil or empty
//     ranges mean all blocks, i.e. Load). The result is structurally
//     valid and safe for every index operation, but lookups only see
//     occurrences from the loaded ranges — the shape a fleet worker
//     serving one shard of a large bank holds. Partial results must
//     not be fed back into Save.
//   - AppendBlock persists p — whose bank extends a previously stored
//     bank that had oldNumSeqs sequences — by writing one new block
//     over the stored file's footer instead of rewriting the file:
//     O(suffix) bytes written. Implementations fall back to a full
//     save when no appendable stored file exists, so the call is
//     always as durable as Save (and may equally decline by policy
//     with ErrSaveDeclined).
//
// Package ixdisk's DirStore implements BlockStore; the cache itself
// only requires Store and discovers block counters via BlockCounters.
type BlockStore interface {
	Store
	LoadBlocks(b *bank.Bank, opts index.Options, ranges []SeqRange) (*Prepared, error)
	AppendBlock(p *Prepared, oldNumSeqs int) error
}

// BlockCounters is the optional observability face of a block-aware
// store: how many blocks it has decoded from disk and how many
// in-place block appends it has performed. Cache.Counters folds these
// into its snapshot when the attached store provides them.
type BlockCounters interface {
	BlockLoads() int64
	BlockAppends() int64
}

// Cache is a concurrency-safe, size-bounded LRU of prepared banks.
// The zero value is not ready; use New.
type Cache struct {
	mu    sync.Mutex
	max   int
	items map[Key]*list.Element // guardedby: mu
	order *list.List            // guardedby: mu ; front = most recently used
	store Store

	builds        atomic.Int64
	lookups       atomic.Int64
	evictions     atomic.Int64
	diskHits      atomic.Int64
	diskErrs      atomic.Int64
	savesDeclined atomic.Int64
}

// New returns a cache bounded to maxEntries prepared banks
// (DefaultMaxEntries when non-positive). The bound can be exceeded
// transiently while more than maxEntries keys are building — see
// evictLocked.
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = DefaultMaxEntries
	}
	return &Cache{
		max:   maxEntries,
		items: make(map[Key]*list.Element),
		order: list.New(),
	}
}

// Get returns the prepared index for (b, opts), building it at most once
// per key no matter how many goroutines ask concurrently. The returned
// Prepared stays valid after eviction — eviction only drops the cache's
// reference, never invalidates an index a caller already holds.
func (c *Cache) Get(b *bank.Bank, opts index.Options) *Prepared {
	c.lookups.Add(1)
	k := KeyFor(b, opts)

	c.mu.Lock()
	el, ok := c.items[k]
	if ok {
		c.order.MoveToFront(el)
	} else {
		el = c.order.PushFront(&entry{key: k, opts: opts})
		c.items[k] = el
	}
	// Evict on every lookup, not just inserts: entries that were
	// in-flight (unevictable) during an earlier overflow get collected
	// by the next Get after their builds finish.
	c.evictLocked()
	e := el.Value.(*entry)
	c.mu.Unlock()

	// The build runs outside the cache lock so a slow build never blocks
	// lookups of other keys; waiters for this key serialize on the Once.
	// Tier order on a memory miss: disk store (if attached), then a
	// fresh build — so across processes an index is built once and
	// loaded ever after.
	var builtHere bool
	e.once.Do(func() {
		defer e.done.Store(true)
		if s := c.getStore(); s != nil {
			p, err := s.Load(b, e.opts)
			switch {
			case err != nil:
				c.diskErrs.Add(1)
			case p != nil:
				c.diskHits.Add(1)
				e.ready = p
				return
			}
		}
		c.builds.Add(1)
		e.ready = Prepare(b, e.opts)
		builtHere = true
	})
	// The write-back runs outside the Once, on the builder goroutine
	// only: concurrent waiters get the ready index as soon as the build
	// finishes instead of also waiting out the disk write. Save is
	// atomic (temp + rename), so racing writers across caches or
	// processes are last-wins over identical bytes.
	if builtHere {
		if s := c.getStore(); s != nil {
			switch err := s.Save(e.ready); {
			case errors.Is(err, ErrSaveDeclined):
				c.savesDeclined.Add(1)
			case err != nil:
				c.diskErrs.Add(1)
			}
		}
	}
	return e.ready
}

// SetStore attaches a persistent second tier consulted on every
// in-memory miss and written back after every build. Attach it before
// sharing the cache; a nil store detaches the tier.
func (c *Cache) SetStore(s Store) {
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

func (c *Cache) getStore() Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// evictLocked enforces the size bound, walking from the LRU end and
// skipping entries whose build is still in flight — evicting one would
// let a concurrent Get of the same key start a duplicate build. The
// cache may therefore briefly exceed its bound when more than max keys
// are building at once; the bound is restored as builds finish and
// later Gets evict.
func (c *Cache) evictLocked() {
	over := c.order.Len() - c.max
	var el *list.Element
	for el = c.order.Back(); el != nil && over > 0; {
		prev := el.Prev()
		if el.Value.(*entry).done.Load() {
			c.order.Remove(el)
			delete(c.items, el.Value.(*entry).key)
			c.evictions.Add(1)
			over--
		}
		el = prev
	}
}

// Len returns the current number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Builds returns the total number of index builds the cache has run —
// the amortization counter: a workload of P pairs over K distinct
// (bank, options) keys should report exactly K.
func (c *Cache) Builds() int64 { return c.builds.Load() }

// Lookups returns the total number of Get calls.
func (c *Cache) Lookups() int64 { return c.lookups.Load() }

// Evictions returns how many entries the size bound has pushed out.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// DiskHits returns how many misses were satisfied by the attached
// Store instead of a build — the cross-process amortization counter: a
// warm process over K keys should report K disk hits and zero Builds.
func (c *Cache) DiskHits() int64 { return c.diskHits.Load() }

// DiskErrors returns how many Store operations failed (rejected files
// on Load, write failures on Save). Store errors never fail a Get —
// the cache builds fresh — so this counter is the only trace. Saves
// declined by the store's policy are not errors; see SavesDeclined.
func (c *Cache) DiskErrors() int64 { return c.diskErrs.Load() }

// SavesDeclined returns how many write-backs the store's save policy
// declined (ErrSaveDeclined) — the trace that single-use query indexes
// are being kept out of a policy-bounded store, not silently lost.
func (c *Cache) SavesDeclined() int64 { return c.savesDeclined.Load() }

// Counters is a point-in-time snapshot of the cache's counters, in one
// value so observers (the scorisd /stats endpoint, log lines) read a
// coherent set instead of six racing loads. The JSON tags are the wire
// names scorisd serves.
type Counters struct {
	Builds        int64 `json:"builds"`
	Lookups       int64 `json:"lookups"`
	Evictions     int64 `json:"evictions"`
	DiskHits      int64 `json:"disk_hits"`
	DiskErrors    int64 `json:"disk_errors"`
	SavesDeclined int64 `json:"saves_declined"`
	// BlockLoads and BlockAppends come from the attached store when it
	// implements BlockCounters (v3 block-granular I/O); zero otherwise.
	BlockLoads   int64 `json:"block_loads"`
	BlockAppends int64 `json:"block_appends"`
	Entries      int   `json:"entries"`
}

// Counters snapshots the cache's counters and current size. Each field
// is individually atomic; the snapshot is taken without the cache lock
// (except Entries), so counts racing with in-flight Gets may be off by
// the in-flight operation — fine for the monitoring use it serves.
// When the attached store implements BlockCounters its block-granular
// counters are folded into the snapshot.
func (c *Cache) Counters() Counters {
	cs := Counters{
		Builds:        c.builds.Load(),
		Lookups:       c.lookups.Load(),
		Evictions:     c.evictions.Load(),
		DiskHits:      c.diskHits.Load(),
		DiskErrors:    c.diskErrs.Load(),
		SavesDeclined: c.savesDeclined.Load(),
		Entries:       c.Len(),
	}
	if bc, ok := c.getStore().(BlockCounters); ok {
		cs.BlockLoads = bc.BlockLoads()
		cs.BlockAppends = bc.BlockAppends()
	}
	return cs
}
