// Package sensemetric implements the paper's §3.4 sensitivity
// comparison between two alignment result sets: "We consider that two
// alignments are equivalent if they overlap of more than 80%."
//
// From two m8 outputs it computes the paper's quantities:
//
//	SCtotal, BLtotal  — alignments found by each program
//	SCmiss            — reference (BLASTN) alignments with no
//	                    equivalent in the SCORIS output
//	BLmiss            — SCORIS alignments with no equivalent in BLASTN
//	SCORISmiss%       — SCmiss / BLtotal × 100
//	BLASTmiss%        — BLmiss / SCtotal × 100
package sensemetric

import (
	"repro/internal/tabular"
)

// DefaultMinOverlap is the paper's 80% equivalence threshold.
const DefaultMinOverlap = 0.8

// interval is a normalized alignment footprint.
type interval struct {
	qLo, qHi int // query span, 1-based inclusive, qLo ≤ qHi
	sLo, sHi int // subject span
	minus    bool
}

func normalize(r *tabular.Record) interval {
	iv := interval{qLo: r.QStart, qHi: r.QEnd, sLo: r.SStart, sHi: r.SEnd}
	if iv.qLo > iv.qHi {
		iv.qLo, iv.qHi = iv.qHi, iv.qLo
		iv.minus = !iv.minus
	}
	if iv.sLo > iv.sHi {
		iv.sLo, iv.sHi = iv.sHi, iv.sLo
		iv.minus = !iv.minus
	}
	return iv
}

// equivalent implements the 80%-overlap rule on both axes, using the
// shorter alignment's length as the denominator so that a slightly
// longer or shorter version of the same alignment still matches.
func equivalent(a, b interval, minOverlap float64) bool {
	if a.minus != b.minus {
		return false
	}
	ovQ := overlap(a.qLo, a.qHi, b.qLo, b.qHi)
	if ovQ <= 0 {
		return false
	}
	ovS := overlap(a.sLo, a.sHi, b.sLo, b.sHi)
	if ovS <= 0 {
		return false
	}
	lq := minInt(a.qHi-a.qLo+1, b.qHi-b.qLo+1)
	ls := minInt(a.sHi-a.sLo+1, b.sHi-b.sLo+1)
	return float64(ovQ) >= minOverlap*float64(lq) &&
		float64(ovS) >= minOverlap*float64(ls)
}

func overlap(alo, ahi, blo, bhi int) int {
	lo, hi := alo, ahi
	if blo > lo {
		lo = blo
	}
	if bhi < hi {
		hi = bhi
	}
	return hi - lo + 1
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// pairKey groups alignments by (query, subject) sequence pair.
type pairKey struct {
	q, s string
}

// Index holds one program's output, grouped for fast equivalence
// queries.
type Index struct {
	byPair map[pairKey][]interval
	total  int
}

// NewIndex builds an index over a result set.
func NewIndex(recs []tabular.Record) *Index {
	ix := &Index{byPair: make(map[pairKey][]interval, len(recs))}
	for i := range recs {
		k := pairKey{recs[i].Query, recs[i].Subject}
		ix.byPair[k] = append(ix.byPair[k], normalize(&recs[i]))
		ix.total++
	}
	return ix
}

// Total returns the number of indexed alignments.
func (ix *Index) Total() int { return ix.total }

// Has reports whether the index holds an equivalent of rec.
func (ix *Index) Has(rec *tabular.Record, minOverlap float64) bool {
	iv := normalize(rec)
	for _, cand := range ix.byPair[pairKey{rec.Query, rec.Subject}] {
		if equivalent(iv, cand, minOverlap) {
			return true
		}
	}
	return false
}

// Report is the output of one two-sided comparison, named with the
// paper's terminology (A = SCORIS-N, B = BLASTN).
type Report struct {
	// SCTotal and BLTotal are the alignment counts of each program.
	SCTotal, BLTotal int
	// SCMiss counts BLASTN alignments with no SCORIS equivalent;
	// BLMiss counts SCORIS alignments with no BLASTN equivalent.
	SCMiss, BLMiss int
}

// SCORISMissPct is SCmiss / BLtotal × 100 (paper §3.4).
func (r Report) SCORISMissPct() float64 {
	if r.BLTotal == 0 {
		return 0
	}
	return 100 * float64(r.SCMiss) / float64(r.BLTotal)
}

// BLASTMissPct is BLmiss / SCtotal × 100.
func (r Report) BLASTMissPct() float64 {
	if r.SCTotal == 0 {
		return 0
	}
	return 100 * float64(r.BLMiss) / float64(r.SCTotal)
}

// Compare computes the full two-sided report. minOverlap ≤ 0 selects
// the paper's 80%.
func Compare(scoris, blast []tabular.Record, minOverlap float64) Report {
	if minOverlap <= 0 {
		minOverlap = DefaultMinOverlap
	}
	scIx := NewIndex(scoris)
	blIx := NewIndex(blast)
	rep := Report{SCTotal: len(scoris), BLTotal: len(blast)}
	for i := range blast {
		if !scIx.Has(&blast[i], minOverlap) {
			rep.SCMiss++
		}
	}
	for i := range scoris {
		if !blIx.Has(&scoris[i], minOverlap) {
			rep.BLMiss++
		}
	}
	return rep
}
