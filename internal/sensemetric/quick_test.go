package sensemetric

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tabular"
)

// randomRecords builds a reproducible random result set from quick's
// fuzz input.
func randomRecords(seed int64, n int) []tabular.Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tabular.Record, n)
	qnames := []string{"q1", "q2", "q3"}
	snames := []string{"s1", "s2"}
	for i := range out {
		qs := 1 + rng.Intn(500)
		ss := 1 + rng.Intn(500)
		l := 30 + rng.Intn(300)
		out[i] = tabular.Record{
			Query:   qnames[rng.Intn(len(qnames))],
			Subject: snames[rng.Intn(len(snames))],
			QStart:  qs, QEnd: qs + l,
			SStart: ss, SEnd: ss + l,
		}
	}
	return out
}

// Reflexivity: a result set compared against itself never misses.
func TestQuickReflexivity(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%40 + 1
		recs := randomRecords(seed, n)
		r := Compare(recs, recs, 0)
		return r.SCMiss == 0 && r.BLMiss == 0 && r.SCTotal == n && r.BLTotal == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Symmetry: swapping the two sets swaps the miss counters.
func TestQuickSymmetry(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		a := randomRecords(seedA, n)
		b := randomRecords(seedB, n)
		fwd := Compare(a, b, 0)
		rev := Compare(b, a, 0)
		return fwd.SCMiss == rev.BLMiss && fwd.BLMiss == rev.SCMiss &&
			fwd.SCTotal == rev.BLTotal && fwd.BLTotal == rev.SCTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Monotonicity: a stricter overlap threshold can only increase misses.
func TestQuickThresholdMonotone(t *testing.T) {
	f := func(seedA, seedB int64, nRaw uint8) bool {
		n := int(nRaw)%30 + 1
		a := randomRecords(seedA, n)
		b := randomRecords(seedB, n)
		loose := Compare(a, b, 0.5)
		strict := Compare(a, b, 0.95)
		return strict.SCMiss >= loose.SCMiss && strict.BLMiss >= loose.BLMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Miss counts are bounded by totals.
func TestQuickMissBounds(t *testing.T) {
	f := func(seedA, seedB int64, nA, nB uint8) bool {
		a := randomRecords(seedA, int(nA)%30)
		b := randomRecords(seedB, int(nB)%30)
		r := Compare(a, b, 0)
		return r.SCMiss >= 0 && r.SCMiss <= r.BLTotal &&
			r.BLMiss >= 0 && r.BLMiss <= r.SCTotal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Adding a record to set A can never increase A's misses of B's
// alignments (more candidates can only help).
func TestQuickMoreCandidatesNeverHurt(t *testing.T) {
	f := func(seedA, seedB, seedC int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		a := randomRecords(seedA, n)
		b := randomRecords(seedB, n)
		extra := randomRecords(seedC, 1)
		before := Compare(a, b, 0)
		after := Compare(append(append([]tabular.Record{}, a...), extra...), b, 0)
		return after.SCMiss <= before.SCMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
