package sensemetric

import (
	"math"
	"testing"

	"repro/internal/tabular"
)

func rec(q, s string, qlo, qhi, slo, shi int) tabular.Record {
	return tabular.Record{Query: q, Subject: s, QStart: qlo, QEnd: qhi, SStart: slo, SEnd: shi}
}

func TestIdenticalSetsNoMisses(t *testing.T) {
	set := []tabular.Record{
		rec("q1", "s1", 1, 100, 201, 300),
		rec("q2", "s1", 50, 150, 1, 101),
	}
	r := Compare(set, set, 0)
	if r.SCMiss != 0 || r.BLMiss != 0 {
		t.Errorf("identical sets: %+v", r)
	}
	if r.SCTotal != 2 || r.BLTotal != 2 {
		t.Errorf("totals: %+v", r)
	}
}

func TestSlightlyShiftedStillEquivalent(t *testing.T) {
	a := []tabular.Record{rec("q", "s", 1, 100, 201, 300)}
	b := []tabular.Record{rec("q", "s", 11, 110, 211, 310)} // 90% overlap
	r := Compare(a, b, 0)
	if r.SCMiss != 0 || r.BLMiss != 0 {
		t.Errorf("90%% overlap should be equivalent: %+v", r)
	}
}

func TestInsufficientOverlapIsMiss(t *testing.T) {
	a := []tabular.Record{rec("q", "s", 1, 100, 201, 300)}
	b := []tabular.Record{rec("q", "s", 51, 150, 251, 350)} // 50% overlap
	r := Compare(a, b, 0)
	if r.SCMiss != 1 || r.BLMiss != 1 {
		t.Errorf("50%% overlap must miss both ways: %+v", r)
	}
}

func TestDifferentPairNeverEquivalent(t *testing.T) {
	a := []tabular.Record{rec("q1", "s", 1, 100, 201, 300)}
	b := []tabular.Record{rec("q2", "s", 1, 100, 201, 300)}
	r := Compare(a, b, 0)
	if r.SCMiss != 1 || r.BLMiss != 1 {
		t.Errorf("different queries must not match: %+v", r)
	}
}

func TestShorterContainedAlignmentEquivalent(t *testing.T) {
	// One program reports a longer version of the same alignment; the
	// min-length denominator keeps them equivalent.
	a := []tabular.Record{rec("q", "s", 1, 200, 201, 400)}
	b := []tabular.Record{rec("q", "s", 41, 160, 241, 360)}
	r := Compare(a, b, 0)
	if r.SCMiss != 0 || r.BLMiss != 0 {
		t.Errorf("contained alignment should be equivalent: %+v", r)
	}
}

func TestMinusStrandNormalization(t *testing.T) {
	// Same footprint, one reported with swapped query coordinates
	// (minus strand): orientations differ → not equivalent.
	a := []tabular.Record{rec("q", "s", 100, 1, 201, 300)}
	b := []tabular.Record{rec("q", "s", 1, 100, 201, 300)}
	r := Compare(a, b, 0)
	if r.SCMiss != 1 || r.BLMiss != 1 {
		t.Errorf("opposite strands must not match: %+v", r)
	}
	// Two minus-strand records with the same footprint do match.
	r = Compare(a, a, 0)
	if r.SCMiss != 0 || r.BLMiss != 0 {
		t.Errorf("same minus-strand records: %+v", r)
	}
}

func TestPercentagesMatchPaperFormulas(t *testing.T) {
	sc := []tabular.Record{
		rec("q1", "s", 1, 100, 1, 100),
		rec("q2", "s", 1, 100, 1, 100),
		rec("q3", "s", 1, 100, 1, 100),
		rec("q4", "s", 1, 100, 1, 100),
	}
	bl := []tabular.Record{
		rec("q1", "s", 1, 100, 1, 100),
		rec("q5", "s", 1, 100, 1, 100), // missed by SCORIS
	}
	r := Compare(sc, bl, 0)
	if r.SCMiss != 1 || r.BLMiss != 3 {
		t.Fatalf("misses: %+v", r)
	}
	if got := r.SCORISMissPct(); math.Abs(got-50) > 1e-9 { // 1/2 × 100
		t.Errorf("SCORISmiss%% = %v, want 50", got)
	}
	if got := r.BLASTMissPct(); math.Abs(got-75) > 1e-9 { // 3/4 × 100
		t.Errorf("BLASTmiss%% = %v, want 75", got)
	}
}

func TestEmptySetsZeroPercent(t *testing.T) {
	r := Compare(nil, nil, 0)
	if r.SCORISMissPct() != 0 || r.BLASTMissPct() != 0 {
		t.Errorf("empty sets: %+v", r)
	}
}

func TestThresholdBoundary(t *testing.T) {
	// Exactly 80% overlap: 1..100 vs 21..120 overlap = 80 of 100.
	a := []tabular.Record{rec("q", "s", 1, 100, 1, 100)}
	b := []tabular.Record{rec("q", "s", 21, 120, 21, 120)}
	r := Compare(a, b, 0.8)
	if r.SCMiss != 0 {
		t.Errorf("exactly 80%% must count as equivalent (≥): %+v", r)
	}
	r = Compare(a, b, 0.81)
	if r.SCMiss != 1 {
		t.Errorf("81%% threshold must reject 80%% overlap: %+v", r)
	}
}

func TestMultipleCandidatesOnPair(t *testing.T) {
	// The second candidate matches even though the first does not.
	sc := []tabular.Record{
		rec("q", "s", 500, 600, 500, 600),
		rec("q", "s", 1, 100, 1, 100),
	}
	bl := []tabular.Record{rec("q", "s", 5, 104, 5, 104)}
	r := Compare(sc, bl, 0)
	if r.SCMiss != 0 {
		t.Errorf("second candidate should match: %+v", r)
	}
}

func TestIndexHasAndTotal(t *testing.T) {
	set := []tabular.Record{rec("q", "s", 1, 100, 1, 100)}
	ix := NewIndex(set)
	if ix.Total() != 1 {
		t.Errorf("Total = %d", ix.Total())
	}
	probe := rec("q", "s", 3, 102, 3, 102)
	if !ix.Has(&probe, 0.8) {
		t.Error("Has should find the shifted probe")
	}
	miss := rec("q", "other", 3, 102, 3, 102)
	if ix.Has(&miss, 0.8) {
		t.Error("Has matched the wrong subject")
	}
}

func TestOverlapOnOneAxisOnlyIsMiss(t *testing.T) {
	// Query spans overlap fully, subject spans are disjoint (e.g. a
	// repeat matched at two different subject locations).
	a := []tabular.Record{rec("q", "s", 1, 100, 1, 100)}
	b := []tabular.Record{rec("q", "s", 1, 100, 1001, 1100)}
	r := Compare(a, b, 0)
	if r.SCMiss != 1 || r.BLMiss != 1 {
		t.Errorf("subject-disjoint alignments must not match: %+v", r)
	}
}
