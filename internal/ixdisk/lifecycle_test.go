package ixdisk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/fasta"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// genRecs returns deterministic records so prefix/appended bank pairs
// can be built from shared record slices.
func genRecs(t testing.TB, n, count int) []*fasta.Record {
	t.Helper()
	const alpha = "ACGT"
	state := uint32(13579)
	recs := make([]*fasta.Record, count)
	for r := range recs {
		buf := make([]byte, n)
		for i := range buf {
			state = state*1664525 + 1013904223
			buf[i] = alpha[state>>30]
		}
		recs[r] = &fasta.Record{ID: fmt.Sprintf("s%d", r), Seq: buf}
	}
	return recs
}

// TestDirStorePrefixExtend is the tentpole flow end to end: a store
// holding the index of a k-sequence bank satisfies a lookup for the
// (k+1)-sequence appended bank by suffix extension, the result is
// indistinguishable from a cold build, and the write-back makes the
// next process exact-hit.
func TestDirStorePrefixExtend(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 5)
	short := bank.New("db", recs[:4])
	grown := bank.New("db", recs)
	opts := index.Options{W: 8}

	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Save(ixcache.Prepare(short, opts)); err != nil {
		t.Fatal(err)
	}

	p, err := store.Load(grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("appended bank missed despite a stored prefix")
	}
	if store.Extends() != 1 {
		t.Errorf("Extends = %d, want 1", store.Extends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown, opts).Ix, p.Ix)
	if p.Bank != grown {
		t.Error("extended index not bound to the requesting bank")
	}

	// The extension was written back under the exact key: a fresh store
	// (new process) exact-hits with zero extensions.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	grown2 := bank.New("db", recs) // fresh pointer, same content
	p2, err := store2.Load(grown2, opts)
	if err != nil || p2 == nil {
		t.Fatalf("warm exact load after extension: %v, %v", p2, err)
	}
	if store2.Extends() != 0 {
		t.Errorf("second process extended (%d) instead of exact-hitting", store2.Extends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown2, opts).Ix, p2.Ix)
}

// TestDirStorePrefixPicksLongest: with several stored prefixes the
// store extends the longest one.
func TestDirStorePrefixPicksLongest(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 400, 6)
	opts := index.Options{W: 7}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	for _, k := range []int{2, 4, 5} {
		if err := store.Save(ixcache.Prepare(bank.New("db", recs[:k]), opts)); err != nil {
			t.Fatal(err)
		}
	}
	grown := bank.New("db", recs)
	cands := store.prefixCandidates(grown, opts, store.Path(grown, opts))
	if len(cands) != 3 || cands[0].k != 5 || cands[1].k != 4 || cands[2].k != 2 {
		t.Fatalf("candidates = %+v, want k descending 5,4,2", cands)
	}
	p, err := store.Load(grown, opts)
	if err != nil || p == nil {
		t.Fatalf("prefix load: %v, %v", p, err)
	}
	assertIndexEqual(t, ixcache.Prepare(grown, opts).Ix, p.Ix)
}

// TestDirStorePrefixGuards: extension must not fire across option
// keys, across banks whose prefix content differs, or when the stored
// bank is not a strict prefix.
func TestDirStorePrefixGuards(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 500, 4)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Save(ixcache.Prepare(bank.New("db", recs[:3]), opts)); err != nil {
		t.Fatal(err)
	}

	t.Run("different-options", func(t *testing.T) {
		p, err := store.Load(bank.New("db", recs), index.Options{W: 9})
		if p != nil || err != nil {
			t.Fatalf("W=9 lookup used a W=8 prefix: %v, %v", p, err)
		}
	})
	t.Run("mutated-prefix", func(t *testing.T) {
		mut := append([]*fasta.Record(nil), recs...)
		mut[0] = &fasta.Record{ID: "s0", Seq: append([]byte("TTTT"), recs[0].Seq...)}
		p, err := store.Load(bank.New("db", mut), opts)
		if p != nil || err != nil {
			t.Fatalf("mutated bank matched a stale prefix: %v, %v", p, err)
		}
	})
	t.Run("shrunk-bank", func(t *testing.T) {
		p, err := store.Load(bank.New("db", recs[:2]), opts)
		if p != nil || err != nil {
			t.Fatalf("shrunk bank matched a longer stored index: %v, %v", p, err)
		}
	})
	t.Run("different-display-name", func(t *testing.T) {
		// The candidate probe filters by the sanitized display name so
		// an exact miss never pays O(store) opens; a renamed bank is a
		// clean miss (rebuild), by design.
		p, err := store.Load(bank.New("renamed", recs), opts)
		if p != nil || err != nil {
			t.Fatalf("renamed bank should be a clean miss: %v, %v", p, err)
		}
	})
}

// TestDirStorePrefixThroughCache: the whole tier stack — an appended
// bank costs zero builds (one disk hit via extension) and produces the
// same index the cache would have built.
func TestDirStorePrefixThroughCache(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 3)
	opts := index.Options{W: 8}

	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cold := ixcache.New(4)
	cold.SetStore(store)
	cold.Get(bank.New("db", recs[:2]), opts)

	grown := bank.New("db", recs)
	warm := ixcache.New(4)
	warm.SetStore(store)
	p := warm.Get(grown, opts)
	if warm.Builds() != 0 || warm.DiskHits() != 1 {
		t.Fatalf("appended bank: builds=%d diskHits=%d, want 0/1", warm.Builds(), warm.DiskHits())
	}
	if store.Extends() != 1 {
		t.Errorf("Extends = %d, want 1", store.Extends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown, opts).Ix, p.Ix)
}

// TestVersion1Rejected pins the migration contract: a file in the old
// (pre-per-sequence-checksum) layout is rejected with ErrVersion by
// both readers — never misread — and the store heals it by rebuild.
func TestVersion1Rejected(t *testing.T) {
	b := genBank(t, "v1", 2048)
	opts := index.Options{W: 8}
	dir := t.TempDir()
	path := filepath.Join(dir, "v1"+FileExt)

	// A plausible version-1 file: old 136-byte header, old section
	// order, no checksum vector. Only the frame prefix matters — the
	// version gate must fire before anything else is interpreted.
	v1 := make([]byte, 136+64)
	copy(v1[0:8], magic)
	binary.LittleEndian.PutUint32(v1[8:], 1)
	binary.LittleEndian.PutUint32(v1[12:], 136)
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	loadBoth(t, path, b, opts, ErrVersion)

	// Healing: a store whose exact path holds a v1 file rebuilds and
	// overwrites it with a current-version file.
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exact := store.Path(b, opts)
	if err := os.Rename(path, exact); err != nil {
		t.Fatal(err)
	}
	c := ixcache.New(4)
	c.SetStore(store)
	c.Get(b, opts)
	if c.Builds() != 1 || c.DiskErrors() != 1 {
		t.Fatalf("v1 file: builds=%d diskErrs=%d, want 1/1", c.Builds(), c.DiskErrors())
	}
	if _, err := Load(exact, b, opts); err != nil {
		t.Fatalf("store did not heal the v1 file: %v", err)
	}
}

// TestPhaseNormalizationRoundTrip is the satellite contract: negative
// or out-of-range SamplePhase values normalize to one identity — the
// same DirStore path and a loadable file — across save and load.
func TestPhaseNormalizationRoundTrip(t *testing.T) {
	b := genBank(t, "phase", 2048)
	saveOpts := index.Options{W: 7, SampleStep: 2, SamplePhase: -1}
	loadOpts := index.Options{W: 7, SampleStep: 2, SamplePhase: 1}

	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if p1, p2 := store.Path(b, saveOpts), store.Path(b, loadOpts); p1 != p2 {
		t.Fatalf("normalized phases map to different paths:\n%s\n%s", p1, p2)
	}
	if err := store.Save(ixcache.Prepare(b, saveOpts)); err != nil {
		t.Fatal(err)
	}
	p, err := store.Load(b, loadOpts)
	if err != nil || p == nil {
		t.Fatalf("load under normalized spelling: %v, %v", p, err)
	}
	assertIndexEqual(t, ixcache.Prepare(b, loadOpts).Ix, p.Ix)
	// And the out-of-range spelling loads what the in-range one saved.
	direct, err := Load(store.Path(b, loadOpts), b, index.Options{W: 7, SampleStep: 2, SamplePhase: 5})
	if err != nil {
		t.Fatalf("phase 5 (≡1 mod 2) rejected: %v", err)
	}
	assertIndexEqual(t, p.Ix, direct.Ix)
}

// TestStaleTempSweep is the satellite regression test: litter from a
// writer killed mid-Save is removed at store open and by GC, while a
// fresh staging file (a live concurrent Save) is left alone.
func TestStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+"stale")
	fresh := filepath.Join(dir, tmpPrefix+"fresh")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("litter"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * DefaultTmpGrace)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale temp file survived store open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file (live writer) was swept")
	}

	// GC with a short grace collects the remaining one once it ages.
	older := time.Now().Add(-time.Minute)
	if err := os.Chtimes(fresh, older, older); err != nil {
		t.Fatal(err)
	}
	st, err := store.gcWith(GCConfig{TmpGrace: time.Second}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if st.RemovedTmps != 1 {
		t.Errorf("GC removed %d temps, want 1", st.RemovedTmps)
	}
	if _, err := os.Stat(fresh); !errors.Is(err, os.ErrNotExist) {
		t.Error("aged temp file survived GC")
	}
}

// gcStoreWithFiles saves count small indexes and returns the store and
// their paths in save order.
func gcStoreWithFiles(t *testing.T, dir string, count int) (*DirStore, []string) {
	t.Helper()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	paths := make([]string, count)
	for i := 0; i < count; i++ {
		b := genBank(t, fmt.Sprintf("gc%d", i), 1024+i)
		if err := store.Save(ixcache.Prepare(b, index.Options{W: 6})); err != nil {
			t.Fatal(err)
		}
		paths[i] = store.Path(b, index.Options{W: 6})
		// Spread mtimes a minute apart, oldest first.
		mt := time.Now().Add(time.Duration(i-count) * time.Minute)
		if err := os.Chtimes(paths[i], mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	return store, paths
}

func storeBytes(t *testing.T, dir string) int64 {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), FileExt) {
			fi, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			total += fi.Size()
		}
	}
	return total
}

// TestGCSizeCap: the size cap evicts oldest-first until the store fits.
func TestGCSizeCap(t *testing.T) {
	dir := t.TempDir()
	store, paths := gcStoreWithFiles(t, dir, 4)
	total := storeBytes(t, dir)
	cap := total / 2
	st, err := store.gcWith(GCConfig{MaxBytes: cap}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if st.RemainingBytes > cap {
		t.Errorf("store still holds %d bytes over the %d cap", st.RemainingBytes, cap)
	}
	if got := storeBytes(t, dir); got != st.RemainingBytes {
		t.Errorf("stats say %d bytes remain, directory holds %d", st.RemainingBytes, got)
	}
	// The newest file must survive; the oldest must not.
	if _, err := os.Stat(paths[len(paths)-1]); err != nil {
		t.Error("size cap evicted the newest file")
	}
	if _, err := os.Stat(paths[0]); !errors.Is(err, os.ErrNotExist) {
		t.Error("size cap kept the oldest file")
	}
}

// TestGCAgeCap: the age cap removes everything older than MaxAge.
func TestGCAgeCap(t *testing.T) {
	dir := t.TempDir()
	store, paths := gcStoreWithFiles(t, dir, 3)
	// Files are 3, 2, 1 minutes old; collect older than 90 seconds.
	st, err := store.gcWith(GCConfig{MaxAge: 90 * time.Second}, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if st.Removed != 2 || st.Remaining != 1 {
		t.Errorf("age cap removed %d kept %d, want 2/1", st.Removed, st.Remaining)
	}
	if _, err := os.Stat(paths[2]); err != nil {
		t.Error("age cap evicted a file inside the window")
	}
}

// TestGCRunsOnSave: with caps configured, saving keeps the store
// converging toward its bound without explicit GC calls.
func TestGCRunsOnSave(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetGC(GCConfig{MaxBytes: 1}) // nothing fits
	if err := store.Save(ixcache.Prepare(genBank(t, "auto", 2048), index.Options{W: 6})); err != nil {
		t.Fatal(err)
	}
	if got := storeBytes(t, dir); got > 1 {
		t.Errorf("store holds %d bytes despite a 1-byte cap and a save-triggered GC", got)
	}
}

// TestSavePolicy covers both policy axes and the declined-save
// plumbing through the cache tier.
func TestSavePolicy(t *testing.T) {
	t.Run("db-only", func(t *testing.T) {
		store, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		store.SetSavePolicy(SavePolicy{DBOnly: true})
		db := genBank(t, "db", 4096)
		query := genBank(t, "query", 2048)
		store.MarkDB(db)

		if err := store.Save(ixcache.Prepare(db, index.Options{W: 8})); err != nil {
			t.Fatalf("db bank declined: %v", err)
		}
		err = store.Save(ixcache.Prepare(query, index.Options{W: 8}))
		if !errors.Is(err, ixcache.ErrSaveDeclined) {
			t.Fatalf("query bank save: %v, want ErrSaveDeclined", err)
		}
		if store.SavesDeclined() != 1 {
			t.Errorf("SavesDeclined = %d, want 1", store.SavesDeclined())
		}
		if _, err := os.Stat(store.Path(query, index.Options{W: 8})); !errors.Is(err, os.ErrNotExist) {
			t.Error("declined save still wrote a file")
		}
	})
	t.Run("min-bases", func(t *testing.T) {
		store, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		store.SetSavePolicy(SavePolicy{MinBases: 3000})
		big := genBank(t, "big", 4096)
		small := genBank(t, "small", 1024)
		if err := store.Save(ixcache.Prepare(big, index.Options{W: 8})); err != nil {
			t.Fatalf("large bank declined: %v", err)
		}
		if err := store.Save(ixcache.Prepare(small, index.Options{W: 8})); !errors.Is(err, ixcache.ErrSaveDeclined) {
			t.Fatalf("small bank save: %v, want ErrSaveDeclined", err)
		}
		// MarkDB overrides the size floor.
		store.MarkDB(small)
		if err := store.Save(ixcache.Prepare(small, index.Options{W: 8})); err != nil {
			t.Fatalf("marked db bank declined: %v", err)
		}
	})
	t.Run("cache-counter", func(t *testing.T) {
		store, err := NewDirStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		store.SetSavePolicy(SavePolicy{DBOnly: true})
		c := ixcache.New(4)
		c.SetStore(store)
		c.Get(genBank(t, "q", 2048), index.Options{W: 8})
		if c.SavesDeclined() != 1 || c.DiskErrors() != 0 {
			t.Errorf("declined=%d diskErrs=%d, want 1/0", c.SavesDeclined(), c.DiskErrors())
		}
	})
}

// TestMemoMapsBounded is the satellite churn test: a long-lived store
// cycling through many query banks keeps its memo maps bounded.
func TestMemoMapsBounded(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	opts := index.Options{W: 6}
	const churn = memoBound*2 + 10
	for i := 0; i < churn; i++ {
		b := genBank(t, fmt.Sprintf("churn%d", i), 512+i)
		if err := store.Save(ixcache.Prepare(b, opts)); err != nil {
			t.Fatal(err)
		}
		if p, err := store.Load(b, opts); err != nil || p == nil {
			t.Fatalf("churn %d: %v, %v", i, p, err)
		}
	}
	store.mu.Lock()
	nCRC, nLoaded := len(store.bankCRCs), len(store.loaded)
	nOrderC, nOrderL := len(store.crcOrder), len(store.ldOrder)
	store.mu.Unlock()
	if nCRC > memoBound || nOrderC > memoBound {
		t.Errorf("bankCRCs grew to %d entries (order %d), bound is %d", nCRC, nOrderC, memoBound)
	}
	if nLoaded > memoBound || nOrderL > memoBound {
		t.Errorf("loaded grew to %d entries (order %d), bound is %d", nLoaded, nOrderL, memoBound)
	}
	// Evicted keys still work — they just pay the read again.
	b0 := genBank(t, "churn0", 512)
	if p, err := store.Load(b0, opts); err != nil || p == nil {
		t.Fatalf("evicted key no longer loads: %v, %v", p, err)
	}
}
