package ixdisk

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/tabular"
)

// homologousBanks plants mutated copies of bank-1 sequences into
// bank 2 so every engine finds real alignments to compare.
func homologousBanks(t testing.TB) (*bank.Bank, *bank.Bank) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	const alpha = "ACGT"
	randSeq := func(n int) []byte {
		s := make([]byte, n)
		for i := range s {
			s[i] = alpha[rng.Intn(4)]
		}
		return s
	}
	mutate := func(s []byte) []byte {
		out := append([]byte(nil), s...)
		for i := range out {
			if rng.Float64() < 0.03 {
				out[i] = alpha[rng.Intn(4)]
			}
		}
		return out
	}
	var recs1, recs2 []*fasta.Record
	for i := 0; i < 6; i++ {
		s := randSeq(700)
		recs1 = append(recs1, &fasta.Record{ID: "a", Seq: s})
		if i < 4 {
			recs2 = append(recs2, &fasta.Record{ID: "b", Seq: mutate(s)})
		}
	}
	recs2 = append(recs2, &fasta.Record{ID: "b", Seq: randSeq(700)})
	return bank.New("db", recs1), bank.New("queries", recs2)
}

func m8Bytes(t *testing.T, as []align.Alignment, b1, b2 *bank.Bank) []byte {
	t.Helper()
	recs := make([]tabular.Record, len(as))
	for i := range as {
		recs[i] = tabular.FromAlignment(&as[i], b1, b2)
	}
	var buf bytes.Buffer
	if err := tabular.Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// saveLoad round-trips a prepared index through one disk file, via the
// copying or the mapped reader.
func saveLoad(t *testing.T, dir string, p *ixcache.Prepared, opts index.Options, mapped bool) *ixcache.Prepared {
	t.Helper()
	path := filepath.Join(dir, p.Bank.Name+FileExt)
	if err := Save(path, p); err != nil {
		t.Fatal(err)
	}
	if mapped {
		loaded, m, err := LoadMapped(path, p.Bank, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { m.Close() })
		return loaded
	}
	loaded, err := Load(path, p.Bank, opts)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestDiskLoadedEquivalenceCore is the acceptance round trip for the
// ORIS engine: CompareWithIndex over disk-loaded indexes (both
// readers) emits byte-identical m8 output to a fresh-build Compare.
func TestDiskLoadedEquivalenceCore(t *testing.T) {
	b1, b2 := homologousBanks(t)
	opt := core.DefaultOptions()
	opt.Workers = 1

	ref, err := core.Compare(b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("degenerate test: no alignments")
	}
	want := m8Bytes(t, ref.Alignments, b1, b2)

	o1, o2 := opt.IndexOptions()
	p1, p2, err := core.Prepare(nil, b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, mapped := range []bool{false, true} {
		dir := t.TempDir()
		l1 := saveLoad(t, dir, p1, o1, mapped)
		l2 := saveLoad(t, dir, p2, o2, mapped)
		got, err := core.CompareWithIndex(l1, l2, opt)
		if err != nil {
			t.Fatalf("mapped=%v: %v", mapped, err)
		}
		if !bytes.Equal(want, m8Bytes(t, got.Alignments, b1, b2)) {
			t.Errorf("mapped=%v: m8 output differs from fresh build", mapped)
		}
	}
}

// TestDiskLoadedEquivalenceBlat does the same for the BLAT-style tile
// engine, whose non-overlapping tile index (SampleStep=W) exercises
// the sampled-index corner of the format.
func TestDiskLoadedEquivalenceBlat(t *testing.T) {
	db, queries := homologousBanks(t)
	opt := blat.DefaultOptions()

	pdb := ixcache.Prepare(db, opt.IndexOptions())
	ref, err := blat.CompareWithIndex(pdb, queries, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("degenerate test: no alignments")
	}
	want := m8Bytes(t, ref.Alignments, db, queries)

	for _, mapped := range []bool{false, true} {
		loaded := saveLoad(t, t.TempDir(), pdb, opt.IndexOptions(), mapped)
		got, err := blat.CompareWithIndex(loaded, queries, opt)
		if err != nil {
			t.Fatalf("mapped=%v: %v", mapped, err)
		}
		if !bytes.Equal(want, m8Bytes(t, got.Alignments, db, queries)) {
			t.Errorf("mapped=%v: m8 output differs from fresh build", mapped)
		}
	}
}

// TestDiskLoadedEquivalenceBlastn closes the three-engine matrix. The
// BLASTN baseline keeps no persistent bank index — its db-side cost is
// the scan itself — so the disk-store invariant for this engine is
// that a session-based run is byte-identical to a one-shot run and
// unaffected by stores attached elsewhere.
func TestDiskLoadedEquivalenceBlastn(t *testing.T) {
	db, queries := homologousBanks(t)
	opt := blastn.DefaultOptions()

	ref, err := blastn.Compare(db, queries, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("degenerate test: no alignments")
	}
	s, err := blastn.NewSession(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Compare(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m8Bytes(t, ref.Alignments, db, queries), m8Bytes(t, got.Alignments, db, queries)) {
		t.Error("session m8 output differs from one-shot run")
	}
}
