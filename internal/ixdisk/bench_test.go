package ixdisk

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/index"
	"repro/internal/ixcache"
)

// benchPrepared builds a ~BenchScale-shaped index once for the save/
// load benchmarks: 512 kb of bank at W=10, the half of the paper
// configuration that fits a CI smoke run.
func benchPrepared(b *testing.B) (*ixcache.Prepared, index.Options, string) {
	b.Helper()
	opts := index.Options{W: 10}
	bk := genBank(b, "bench", 512<<10)
	p := ixcache.Prepare(bk, opts)
	dir := b.TempDir()
	path := filepath.Join(dir, "bench"+FileExt)
	if err := Save(path, p); err != nil {
		b.Fatal(err)
	}
	return p, opts, path
}

// BenchmarkIxdiskSave measures the serialization write path (temp file
// + checksum + rename) against the build it replaces on later runs.
func BenchmarkIxdiskSave(b *testing.B) {
	p, _, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(path, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIxdiskLoad measures the strict copying reader.
func BenchmarkIxdiskLoad(b *testing.B) {
	p, opts, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path, p.Bank, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIxdiskLoadMapped measures the zero-copy mmap reader — the
// cold-process warm-start path whose trajectory CI tracks.
func BenchmarkIxdiskLoadMapped(b *testing.B) {
	p, opts, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := LoadMapped(path, p.Bank, opts)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// BenchmarkIxdiskBuild is the comparison column: what a cold process
// pays when no store is attached.
func BenchmarkIxdiskBuild(b *testing.B) {
	p, opts, _ := benchPrepared(b)
	b.SetBytes(int64(len(p.Bank.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ixcache.Prepare(p.Bank, opts)
	}
}
