package ixdisk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// benchPrepared builds a ~BenchScale-shaped index once for the save/
// load benchmarks: 512 kb of bank at W=10, the half of the paper
// configuration that fits a CI smoke run.
func benchPrepared(b *testing.B) (*ixcache.Prepared, index.Options, string) {
	b.Helper()
	opts := index.Options{W: 10}
	bk := genBank(b, "bench", 512<<10)
	p := ixcache.Prepare(bk, opts)
	dir := b.TempDir()
	path := filepath.Join(dir, "bench"+FileExt)
	if err := Save(path, p); err != nil {
		b.Fatal(err)
	}
	return p, opts, path
}

// BenchmarkIxdiskSave measures the serialization write path (temp file
// + checksum + rename) against the build it replaces on later runs.
func BenchmarkIxdiskSave(b *testing.B) {
	p, _, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(path, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIxdiskLoad measures the strict copying reader.
func BenchmarkIxdiskLoad(b *testing.B) {
	p, opts, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(path, p.Bank, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIxdiskLoadMapped measures the zero-copy mmap reader — the
// cold-process warm-start path whose trajectory CI tracks.
func BenchmarkIxdiskLoadMapped(b *testing.B) {
	p, opts, path := benchPrepared(b)
	fi, _ := os.Stat(path)
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := LoadMapped(path, p.Bank, opts)
		if err != nil {
			b.Fatal(err)
		}
		m.Close()
	}
}

// appendFixture builds the O(suffix) append scenario at realistic
// scale: a ≥4 Mb database bank of 64 sequences stored as v3, and the
// same bank grown by one more sequence. Returns the stored prefix
// file's bytes (for resetting between benchmark iterations) and the
// prepared grown index.
func appendFixture(tb testing.TB) (store *DirStore, short, grown *bank.Bank, opts index.Options, prefixBytes []byte, pGrown *ixcache.Prepared) {
	tb.Helper()
	recs := genRecs(tb, 64<<10, 65) // 65 sequences of 64 kb: > 4 Mb
	short = bank.New("db", recs[:64])
	grown = bank.New("db", recs)
	opts = index.Options{W: 10}
	var err error
	store, err = NewDirStore(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { store.Close() })
	if err := store.Save(ixcache.Prepare(short, opts)); err != nil {
		tb.Fatal(err)
	}
	prefixBytes, err = os.ReadFile(store.Path(short, opts))
	if err != nil {
		tb.Fatal(err)
	}
	return store, short, grown, opts, prefixBytes, ixcache.Prepare(grown, opts)
}

// BenchmarkIndexAppend_v3 measures growing a stored ≥4 Mb index by one
// sequence through the v3 in-place append: build the suffix block,
// write it plus a fresh footer over the old footer, rename. The
// append-bytes metric is what lands on disk per append; compare it to
// fullsave-bytes, what the pre-v3 extend path rewrote every time.
func BenchmarkIndexAppend_v3(b *testing.B) {
	store, short, grown, opts, prefixBytes, pGrown := appendFixture(b)
	oldPath := store.Path(short, opts)
	newPath := store.Path(grown, opts)
	oldInfo, err := Probe(oldPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		os.Remove(newPath)
		if err := os.WriteFile(oldPath, prefixBytes, 0o644); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := store.AppendBlock(pGrown, short.NumSeqs()); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got := int(store.BlockAppends()); got != b.N {
		b.Fatalf("%d of %d iterations fell back to a full save", b.N-got, b.N)
	}
	fi, err := os.Stat(newPath)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fi.Size()-oldInfo.PayloadEnd), "append-bytes")
	b.ReportMetric(float64(len(prefixBytes)), "fullsave-bytes")
}

// TestAppendBytesRatio pins the benchmark's claim as an invariant: at
// ≥4 Mb, appending one sequence writes at least 10× fewer bytes than
// the full rewrite the pre-v3 extend path paid, grows the directory by
// exactly one block, and leaves every stored byte untouched.
func TestAppendBytesRatio(t *testing.T) {
	store, short, grown, opts, prefixBytes, pGrown := appendFixture(t)
	if grown.TotalBases() < 4<<20 {
		t.Fatalf("fixture bank is %d bases, the scenario requires at least 4 Mb", grown.TotalBases())
	}
	oldInfo, err := Probe(store.Path(short, opts))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.AppendBlock(pGrown, short.NumSeqs()); err != nil {
		t.Fatal(err)
	}
	if store.BlockAppends() != 1 {
		t.Fatal("append fell back to a full save")
	}
	newPath := store.Path(grown, opts)
	newBytes, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	newInfo, err := Probe(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(newInfo.Blocks) != len(oldInfo.Blocks)+1 {
		t.Errorf("append grew the directory from %d to %d blocks, want exactly one more",
			len(oldInfo.Blocks), len(newInfo.Blocks))
	}
	if !bytes.Equal(newBytes[:oldInfo.PayloadEnd], prefixBytes[:oldInfo.PayloadEnd]) {
		t.Error("stored prefix bytes changed across the append")
	}
	appended := int64(len(newBytes)) - oldInfo.PayloadEnd
	full := int64(len(prefixBytes))
	if appended*10 > full {
		t.Errorf("append wrote %d bytes where a full save writes %d — less than the required 10x win",
			appended, full)
	}
	loaded, err := Load(newPath, grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, pGrown.Ix, loaded.Ix)
}

// BenchmarkIxdiskBuild is the comparison column: what a cold process
// pays when no store is attached.
func BenchmarkIxdiskBuild(b *testing.B) {
	p, opts, _ := benchPrepared(b)
	b.SetBytes(int64(len(p.Bank.Data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ixcache.Prepare(p.Bank, opts)
	}
}
