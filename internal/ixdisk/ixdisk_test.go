package ixdisk

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/fasta"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// genBank builds a deterministic multi-sequence bank exercising the
// format's edge content: ambiguous bases (unindexed), a poly-A
// low-complexity run (masked under dust), and a short record.
func genBank(t testing.TB, name string, n int) *bank.Bank {
	t.Helper()
	const alpha = "ACGT"
	buf := make([]byte, n)
	state := uint32(98765)
	for i := range buf {
		state = state*1664525 + 1013904223
		buf[i] = alpha[state>>30]
	}
	recs := []*fasta.Record{
		{ID: "r1", Seq: buf[:n/2]},
		{ID: "r2", Seq: append([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAANNNN"), buf[n/2:]...)},
		{ID: "r3", Seq: []byte("ACG")},
	}
	return bank.New(name, recs)
}

// optionVariants covers the identity dimensions of the format.
func optionVariants() map[string]index.Options {
	return map[string]index.Options{
		"plain":      {W: 8},
		"dust":       {W: 8, Dust: dust.New(0, 0)},
		"halfword":   {W: 7, SampleStep: 2},
		"phase1":     {W: 7, SampleStep: 2, SamplePhase: 1},
		"dust+half":  {W: 8, Dust: dust.New(32, 1.5), SampleStep: 2},
		"everyThird": {W: 6, SampleStep: 3, SamplePhase: 2},
	}
}

// sameInts compares slices treating nil and empty as equal (the disk
// loaders return nil for empty sections).
func sameInts[T word](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertIndexEqual checks that a loaded index is indistinguishable from
// the built one in every observable way.
func assertIndexEqual(t *testing.T, built, loaded *index.Index) {
	t.Helper()
	bp, lp := built.Parts(), loaded.Parts()
	if !sameInts(bp.Starts, lp.Starts) {
		t.Error("Starts differ after round trip")
	}
	if !sameInts(bp.Pos, lp.Pos) {
		t.Error("Pos differs after round trip")
	}
	if !sameInts(bp.Codes, lp.Codes) {
		t.Error("Codes differ after round trip")
	}
	if !sameInts(bp.OccSeq, lp.OccSeq) || !sameInts(bp.OccLo, lp.OccLo) || !sameInts(bp.OccHi, lp.OccHi) {
		t.Error("sidecar arrays differ after round trip")
	}
	if bp.Indexed != lp.Indexed || bp.MaskedOut != lp.MaskedOut || bp.SampledOut != lp.SampledOut {
		t.Errorf("counters differ: built %d/%d/%d, loaded %d/%d/%d",
			bp.Indexed, bp.MaskedOut, bp.SampledOut, lp.Indexed, lp.MaskedOut, lp.SampledOut)
	}
	if built.W != loaded.W || built.Bank != loaded.Bank {
		t.Errorf("W/Bank differ: %d/%p vs %d/%p", built.W, built.Bank, loaded.W, loaded.Bank)
	}
	if !ixcache.SameKey(built.Options(), loaded.Options()) {
		t.Errorf("options key differs: %+v vs %+v", built.Options(), loaded.Options())
	}
}

func TestRoundTripLoad(t *testing.T) {
	b := genBank(t, "rt", 4096)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ix"+FileExt)
			built := ixcache.Prepare(b, opts)
			if err := Save(path, built); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(path, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexEqual(t, built.Ix, loaded.Ix)
			if !loaded.MatchesOptions(opts) {
				t.Error("loaded Prepared fails MatchesOptions for its own options")
			}
		})
	}
}

func TestRoundTripLoadMapped(t *testing.T) {
	b := genBank(t, "rtm", 4096)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ix"+FileExt)
			built := ixcache.Prepare(b, opts)
			if err := Save(path, built); err != nil {
				t.Fatal(err)
			}
			loaded, m, err := LoadMapped(path, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if mmapSupported && nativeLittleEndian && !m.Mapped() {
				t.Error("expected a real mapping on this platform")
			}
			assertIndexEqual(t, built.Ix, loaded.Ix)
			// Spot-exercise accessors over the aliased memory.
			for _, c := range loaded.Ix.Parts().Codes {
				occ := loaded.Ix.Occ(seed.Code(c))
				if len(occ) == 0 {
					t.Fatalf("occupied code %d has empty occurrence slice", c)
				}
			}
		})
	}
}

// TestLoadIsIndependentOfFile pins Load's copying contract: deleting
// (or corrupting) the file after Load must not affect the index.
func TestLoadIsIndependentOfFile(t *testing.T) {
	b := genBank(t, "ind", 2048)
	opts := index.Options{W: 8}
	path := filepath.Join(t.TempDir(), "ix"+FileExt)
	built := ixcache.Prepare(b, opts)
	if err := Save(path, built); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, built.Ix, loaded.Ix)
}

// saveValid writes a fresh valid file and returns its bytes and path.
func saveValid(t *testing.T, b *bank.Bank, opts index.Options) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ix"+FileExt)
	if err := Save(path, ixcache.Prepare(b, opts)); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, buf
}

// loadBoth runs both readers and requires identical rejection class
// from each, returning one of the (identical-class) errors.
func loadBoth(t *testing.T, path string, b *bank.Bank, opts index.Options, want error) {
	t.Helper()
	_, errL := Load(path, b, opts)
	p, m, errM := LoadMapped(path, b, opts)
	if p != nil && m != nil {
		m.Close()
	}
	for which, err := range map[string]error{"Load": errL, "LoadMapped": errM} {
		if !errors.Is(err, want) {
			t.Errorf("%s: got error %v, want %v", which, err, want)
		}
		if err != nil && !strings.Contains(err.Error(), "ixdisk") {
			t.Errorf("%s: error lacks package context: %v", which, err)
		}
	}
}

func TestHostileFiles(t *testing.T) {
	b := genBank(t, "hostile", 2048)
	opts := index.Options{W: 8, Dust: dust.New(0, 0)}
	other := genBank(t, "hostile", 2040) // same name, different content

	rewrite := func(t *testing.T, mutate func(buf []byte) []byte) string {
		t.Helper()
		path, buf := saveValid(t, b, opts)
		if err := os.WriteFile(path, mutate(append([]byte(nil), buf...)), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("empty", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { return nil })
		loadBoth(t, path, b, opts, ErrTruncated)
	})
	t.Run("truncated-header", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { return buf[:headerSize/2] })
		loadBoth(t, path, b, opts, ErrTruncated)
	})
	t.Run("truncated-body", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { return buf[:len(buf)-17] })
		loadBoth(t, path, b, opts, ErrTruncated)
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { return append(buf, 1, 2, 3) })
		loadBoth(t, path, b, opts, ErrTruncated)
	})
	t.Run("bad-magic", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { buf[0] ^= 0xFF; return buf })
		loadBoth(t, path, b, opts, ErrBadMagic)
	})
	t.Run("version-mismatch", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { buf[8] = 99; return buf })
		loadBoth(t, path, b, opts, ErrVersion)
	})
	t.Run("checksum-corruption", func(t *testing.T) {
		path := rewrite(t, func(buf []byte) []byte { buf[headerSize+len(buf)/3] ^= 0x40; return buf })
		loadBoth(t, path, b, opts, ErrChecksum)
	})
	t.Run("key-mismatch-W", func(t *testing.T) {
		path, _ := saveValid(t, b, opts)
		loadBoth(t, path, b, index.Options{W: 9, Dust: dust.New(0, 0)}, ErrKeyMismatch)
	})
	t.Run("key-mismatch-dust", func(t *testing.T) {
		path, _ := saveValid(t, b, opts)
		loadBoth(t, path, b, index.Options{W: 8}, ErrKeyMismatch)
		loadBoth(t, path, b, index.Options{W: 8, Dust: dust.New(32, 1.5)}, ErrKeyMismatch)
	})
	t.Run("key-mismatch-sampling", func(t *testing.T) {
		path, _ := saveValid(t, b, opts)
		loadBoth(t, path, b, index.Options{W: 8, Dust: dust.New(0, 0), SampleStep: 2}, ErrKeyMismatch)
	})
	t.Run("key-mismatch-bank", func(t *testing.T) {
		path, _ := saveValid(t, b, opts)
		loadBoth(t, path, other, opts, ErrKeyMismatch)
	})
	t.Run("workers-not-part-of-key", func(t *testing.T) {
		path, _ := saveValid(t, b, opts)
		alias := opts
		alias.Workers = 7
		if _, err := Load(path, b, alias); err != nil {
			t.Errorf("Workers must not participate in the key: %v", err)
		}
	})
}

// TestDirStoreRoundTrip exercises the two-tier flow through real
// caches: a cold cache builds and writes back, a second cache (same
// process, fresh memory tier) loads from disk with zero builds, and a
// third store instance under a re-loaded bank value (content-identical,
// same name, different pointer) still hits — content identity, not
// pointer identity.
func TestDirStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b := genBank(t, "db", 4096)
	opts := index.Options{W: 8}

	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cold := ixcache.New(4)
	cold.SetStore(store)
	p1 := cold.Get(b, opts)
	if cold.Builds() != 1 || cold.DiskHits() != 0 {
		t.Fatalf("cold cache: builds=%d diskHits=%d, want 1/0", cold.Builds(), cold.DiskHits())
	}
	if _, err := os.Stat(store.Path(b, opts)); err != nil {
		t.Fatalf("build was not written back: %v", err)
	}

	warm := ixcache.New(4)
	warm.SetStore(store)
	p2 := warm.Get(b, opts)
	if warm.Builds() != 0 || warm.DiskHits() != 1 {
		t.Fatalf("warm cache: builds=%d diskHits=%d, want 0/1", warm.Builds(), warm.DiskHits())
	}
	assertIndexEqual(t, p1.Ix, p2.Ix)

	// Fresh store + content-identical bank under a different pointer:
	// simulates a new process re-loading the same FASTA.
	b2 := genBank(t, "db", 4096)
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	proc2 := ixcache.New(4)
	proc2.SetStore(store2)
	p3 := proc2.Get(b2, opts)
	if proc2.Builds() != 0 || proc2.DiskHits() != 1 {
		t.Fatalf("second process: builds=%d diskHits=%d, want 0/1", proc2.Builds(), proc2.DiskHits())
	}
	if p3.Bank != b2 {
		t.Error("loaded index not rebound to the requesting bank value")
	}
}

// TestDirStoreHealsCorruptFile pins the fallback contract: a rejected
// file never fails a Get — the cache rebuilds, counts a store error,
// and the write-back replaces the bad file.
func TestDirStoreHealsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	b := genBank(t, "heal", 4096)
	opts := index.Options{W: 8}

	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	seedCache := ixcache.New(4)
	seedCache.SetStore(store)
	built := seedCache.Get(b, opts)

	// Corrupt a byte mid-section.
	path := store.Path(b, opts)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[headerSize+len(buf)/2] ^= 0x01
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	c := ixcache.New(4)
	c.SetStore(store)
	p := c.Get(b, opts)
	if c.Builds() != 1 || c.DiskHits() != 0 || c.DiskErrors() != 1 {
		t.Fatalf("after corruption: builds=%d diskHits=%d diskErrs=%d, want 1/0/1",
			c.Builds(), c.DiskHits(), c.DiskErrors())
	}
	assertIndexEqual(t, built.Ix, p.Ix)

	// The write-back healed the file: a fresh cache now disk-hits.
	c2 := ixcache.New(4)
	c2.SetStore(store)
	c2.Get(b, opts)
	if c2.Builds() != 0 || c2.DiskHits() != 1 {
		t.Fatalf("store not healed: builds=%d diskHits=%d, want 0/1", c2.Builds(), c2.DiskHits())
	}
}

// TestDirStoreUnmappedMode covers the copying path of the store.
func TestDirStoreUnmappedMode(t *testing.T) {
	dir := t.TempDir()
	b := genBank(t, "copy", 2048)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetMapped(false)
	if err := store.Save(ixcache.Prepare(b, opts)); err != nil {
		t.Fatal(err)
	}
	p, err := store.Load(b, opts)
	if err != nil || p == nil {
		t.Fatalf("unmapped load: %v, %v", p, err)
	}
	assertIndexEqual(t, ixcache.Prepare(b, opts).Ix, p.Ix)
}

// TestDirStoreMissIsClean: no file for the key must be (nil, nil), not
// an error — the cache counts errors, and a miss is not one.
func TestDirStoreMissIsClean(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := store.Load(genBank(t, "none", 1024), index.Options{W: 8})
	if p != nil || err != nil {
		t.Fatalf("clean miss returned (%v, %v), want (nil, nil)", p, err)
	}
}

// TestSaveOverwritesAtomically: saving over an existing entry replaces
// it in one rename; the replaced file is immediately loadable.
func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix"+FileExt)
	b := genBank(t, "ow", 2048)
	opts := index.Options{W: 8}
	for i := 0; i < 3; i++ {
		if err := Save(path, ixcache.Prepare(b, opts)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(path, b, opts); err != nil {
		t.Fatal(err)
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".orix-tmp-") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

// TestDirStoreMemoizesLoads: repeated loads of one key (the LRU-above
// evict/reload pattern) return the already-validated index and keep
// the mapping count bounded by distinct keys, not reload count.
func TestDirStoreMemoizesLoads(t *testing.T) {
	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	b := genBank(t, "memo", 2048)
	opts := index.Options{W: 8}
	if err := store.Save(ixcache.Prepare(b, opts)); err != nil {
		t.Fatal(err)
	}
	first, err := store.Load(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p, err := store.Load(b, opts)
		if err != nil {
			t.Fatal(err)
		}
		if p != first {
			t.Fatal("reload returned a new Prepared instead of the memoized one")
		}
	}
	store.mu.Lock()
	nMaps := len(store.maps)
	store.mu.Unlock()
	if nMaps > 1 {
		t.Errorf("6 loads of one key hold %d mappings, want at most 1", nMaps)
	}
}
