package ixdisk

// The .orix version-3 codec: block-structured index files.
//
// # File layout (version 3)
//
//	header (48 bytes)   magic, version, header size, options key, CRC
//	block*              per-sequence-group CSR slices, 8-byte aligned
//	footer              bank identity, per-sequence checksums, block
//	                    directory, CRC, self-locating trailer
//
// Each block is a self-contained index.BlockParts over one contiguous
// sequence range: a 64-byte block header, the six 4-byte-element
// sections (Codes, Counts, Pos, OccSeq, OccLo, OccHi), a CRC-32C over
// header + sections, and zero padding to an 8-byte boundary — so every
// section is 4-byte aligned from any page-aligned base and LoadMapped
// can alias them. Unlike v2 there is no dense 4^W+1 Starts section:
// blocks carry the sparse (code, count) directory and readers
// materialize Starts on load, which shrinks files by 4·4^W bytes.
//
// The footer is the only part of the file that changes when a bank is
// appended to. It records the bank identity (content CRC, data length,
// sequence count), the full per-sequence checksum vector, and one
// 48-byte directory entry per block (offset, length, sequence and Data
// ranges, block CRC), followed by a footer CRC-32C and a 16-byte
// self-locating trailer (CRC, footer length, end magic) so readers and
// the probe find the directory from the file size alone.
//
// # Append
//
// Appending sequences to a stored bank writes exactly one new block:
// the new block overwrites the old footer region (block offsets never
// move — old block bytes are an unchanged prefix of the new file), a
// new footer follows it, and the file is renamed to the grown bank's
// key path. Total write cost is O(suffix) + footer, not O(bank). The
// write is deliberately not atomic — a torn append leaves a footer
// that fails its CRC or magic checks, the file is rejected, and the
// store heals by rebuild, the same no-fsync crash philosophy Save has
// always had. A crash between the footer write and the rename leaves a
// valid grown-bank file under the old key's name; both the old bank
// (via the block boundary) and the grown bank (via the directory scan)
// can still be served from it.
//
// # Partial loads
//
// Because every append leaves a block boundary at the pre-append
// sequence count, a request for a bank that is a block-boundary prefix
// of a stored file is served by reading only the covering blocks —
// header + footer + a prefix of the blocks, never the whole file. The
// per-block CRCs make that sound: each block validates independently.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

const (
	version3     = 3
	headerSizeV3 = 48
	blockMagic   = "ORIXBLK1"
	footerMagic  = "ORIXFTR1"
	endMagic     = "ORIXEND1"
	blockHdrSize = 64
	dirEntSize   = 48
	footerFixed  = 32 // footerMagic + bankCRC + dataLen + numSeqs + numBlocks
	trailerSize  = 16 // footerCRC + footerLen + endMagic
)

// DefaultBlockSeqs is the sequence-group size Save cuts fresh builds
// into. Appends always write one block per append regardless; this
// bound only shapes cold saves, trading finer partial-load granularity
// against per-block overhead (64 bytes + a directory entry).
const DefaultBlockSeqs = 4096

// optionsHeader is the decoded v3 fixed header: the options key alone.
// Bank identity lives in the footer, which is rewritten on append —
// the header is written once and never touched again.
type optionsHeader struct {
	w           uint32
	sampleStep  uint32
	samplePhase uint32
	dustOn      uint32
	dustWindow  uint32
	dustThresh  uint64
}

func (h *optionsHeader) indexOptions() index.Options {
	o := index.Options{
		W:           int(h.w),
		SampleStep:  int(h.sampleStep),
		SamplePhase: int(h.samplePhase),
	}
	if h.dustOn != 0 {
		o.Dust = dust.New(int(h.dustWindow), math.Float64frombits(h.dustThresh))
	}
	return o
}

// checkOptionsKey verifies the recorded options against the requesting
// ones through the same projection the in-memory cache uses.
//
//scorislint:validator
func (h *optionsHeader) checkOptionsKey(opts index.Options) error {
	if !ixcache.SameKey(h.indexOptions(), opts) {
		o := opts.Normalized()
		return fmt.Errorf("ixdisk: %w: file built with W=%d step=%d/%d dust=%v, "+
			"requested W=%d step=%d/%d dust=%v",
			ErrKeyMismatch, h.w, h.sampleStep, h.samplePhase, h.dustOn != 0,
			o.W, o.SampleStep, o.SamplePhase, o.Dust != nil)
	}
	return nil
}

// encodeHeaderV3 serializes the fixed header for opts.
func encodeHeaderV3(opts index.Options) []byte {
	o := opts.Normalized()
	hdr := make([]byte, headerSizeV3)
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version3)
	binary.LittleEndian.PutUint32(hdr[12:], headerSizeV3)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(o.W))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(o.SampleStep))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(o.SamplePhase))
	var dustOn, dw uint32
	var dt uint64
	if o.Dust != nil {
		dustOn = 1
		dw = uint32(o.Dust.Window)
		dt = math.Float64bits(o.Dust.Threshold)
	}
	binary.LittleEndian.PutUint32(hdr[28:], dustOn)
	binary.LittleEndian.PutUint32(hdr[32:], dw)
	binary.LittleEndian.PutUint64(hdr[36:], dt)
	binary.LittleEndian.PutUint32(hdr[44:], crc32.Checksum(hdr[:44], crc32Table))
	return hdr
}

// decodeHeaderV3 parses and checks the fixed v3 header. The header CRC
// makes the options key self-validating — a flipped dust bit cannot
// silently serve an index built under different options.
//
//scorislint:validator
func decodeHeaderV3(buf []byte) (*optionsHeader, error) {
	if len(buf) < headerSizeV3 {
		return nil, fmt.Errorf("ixdisk: %w: %d bytes is below the %d-byte v3 header",
			ErrTruncated, len(buf), headerSizeV3)
	}
	if string(buf[0:8]) != magic {
		return nil, fmt.Errorf("ixdisk: %w: got %q", ErrBadMagic, buf[0:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != version3 {
		return nil, fmt.Errorf("ixdisk: %w: file is version %d, v3 reader got it", ErrVersion, v)
	}
	if hs := binary.LittleEndian.Uint32(buf[12:]); hs != headerSizeV3 {
		return nil, fmt.Errorf("ixdisk: %w: v3 header size %d, want %d", ErrVersion, hs, headerSizeV3)
	}
	if want := binary.LittleEndian.Uint32(buf[44:]); crc32.Checksum(buf[:44], crc32Table) != want {
		return nil, fmt.Errorf("ixdisk: %w: v3 header CRC mismatch", ErrChecksum)
	}
	return &optionsHeader{
		w:           binary.LittleEndian.Uint32(buf[16:]),
		sampleStep:  binary.LittleEndian.Uint32(buf[20:]),
		samplePhase: binary.LittleEndian.Uint32(buf[24:]),
		dustOn:      binary.LittleEndian.Uint32(buf[28:]),
		dustWindow:  binary.LittleEndian.Uint32(buf[32:]),
		dustThresh:  binary.LittleEndian.Uint64(buf[36:]),
	}, nil
}

// dirEntry is one footer directory row: where a block lives and what
// it covers, plus its CRC so a partial reader can validate a block it
// mapped without trusting the block's own trailing copy.
type dirEntry struct {
	offset, length uint64
	seqLo, seqHi   uint32
	dataLo, dataHi uint64
	crc            uint32
}

// footerV3 is the decoded footer: the bank identity and the block
// directory — everything the probe and the partial-load path need.
type footerV3 struct {
	bankCRC uint64
	dataLen uint64
	numSeqs uint32
	seqSums []byte // raw little-endian u64 vector, 8*numSeqs bytes
	dir     []dirEntry
	start   int64 // file offset the footer begins at
}

func (f *footerV3) seqSum(i int) uint64 {
	return binary.LittleEndian.Uint64(f.seqSums[8*i:])
}

// boundaryBlocks returns how many leading blocks cover exactly the
// first k sequences, or -1 when k is not a block boundary.
func (f *footerV3) boundaryBlocks(k int) int {
	if k == 0 {
		return -1
	}
	for i, e := range f.dir {
		if int(e.seqHi) == k {
			return i + 1
		}
		if int(e.seqHi) > k {
			return -1
		}
	}
	return -1
}

// encodeFooterV3 serializes the footer (trailer included) for a bank
// identity and block directory.
func encodeFooterV3(bankCRC uint64, dataLen uint64, seqSums []uint64, dir []dirEntry) []byte {
	flen := footerFixed + 8*len(seqSums) + dirEntSize*len(dir) + trailerSize
	f := make([]byte, flen)
	copy(f[0:8], footerMagic)
	binary.LittleEndian.PutUint64(f[8:], bankCRC)
	binary.LittleEndian.PutUint64(f[16:], dataLen)
	binary.LittleEndian.PutUint32(f[24:], uint32(len(seqSums)))
	binary.LittleEndian.PutUint32(f[28:], uint32(len(dir)))
	off := footerFixed
	for _, s := range seqSums {
		binary.LittleEndian.PutUint64(f[off:], s)
		off += 8
	}
	for _, e := range dir {
		binary.LittleEndian.PutUint64(f[off+0:], e.offset)
		binary.LittleEndian.PutUint64(f[off+8:], e.length)
		binary.LittleEndian.PutUint32(f[off+16:], e.seqLo)
		binary.LittleEndian.PutUint32(f[off+20:], e.seqHi)
		binary.LittleEndian.PutUint64(f[off+24:], e.dataLo)
		binary.LittleEndian.PutUint64(f[off+32:], e.dataHi)
		binary.LittleEndian.PutUint32(f[off+40:], e.crc)
		off += dirEntSize
	}
	binary.LittleEndian.PutUint32(f[off:], crc32.Checksum(f[:off], crc32Table))
	binary.LittleEndian.PutUint32(f[off+4:], uint32(flen))
	copy(f[off+8:], endMagic)
	return f
}

// parseFooterV3 decodes and validates the footer given the file's
// trailing bytes (tail must reach back to at least the footer start;
// fileSize locates offsets). Beyond framing and CRC it enforces the
// structural directory invariants every reader depends on: blocks
// tile the sequence and Data spaces contiguously in ascending order,
// are laid out back-to-back from the header to the footer, and each is
// large enough for its own header. Hostile directories — overlapping
// ranges, gaps, a truncated last block — are rejected here, before any
// block byte is touched.
//
//scorislint:validator
func parseFooterV3(tail []byte, fileSize int64) (*footerV3, error) {
	if len(tail) < trailerSize {
		return nil, fmt.Errorf("ixdisk: %w: %d bytes is below the %d-byte v3 trailer",
			ErrTruncated, len(tail), trailerSize)
	}
	tr := tail[len(tail)-trailerSize:]
	if string(tr[8:16]) != endMagic {
		return nil, fmt.Errorf("ixdisk: %w: v3 end magic is %q", ErrTruncated, tr[8:16])
	}
	flen := int64(binary.LittleEndian.Uint32(tr[4:8]))
	if flen < footerFixed+trailerSize || flen > int64(len(tail)) || fileSize-flen < headerSizeV3 {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer claims %d bytes of a %d-byte file",
			ErrTruncated, flen, fileSize)
	}
	f := tail[int64(len(tail))-flen:]
	if string(f[0:8]) != footerMagic {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer magic is %q", ErrTruncated, f[0:8])
	}
	want := binary.LittleEndian.Uint32(f[flen-trailerSize:])
	if got := crc32.Checksum(f[:flen-trailerSize], crc32Table); got != want {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer computed %08x, file records %08x",
			ErrChecksum, got, want)
	}
	ftr := &footerV3{
		bankCRC: binary.LittleEndian.Uint64(f[8:]),
		dataLen: binary.LittleEndian.Uint64(f[16:]),
		numSeqs: binary.LittleEndian.Uint32(f[24:]),
		start:   fileSize - flen,
	}
	numBlocks := binary.LittleEndian.Uint32(f[28:])
	if flen != int64(footerFixed)+8*int64(ftr.numSeqs)+dirEntSize*int64(numBlocks)+trailerSize {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer is %d bytes for %d sequences and %d blocks",
			ErrTruncated, flen, ftr.numSeqs, numBlocks)
	}
	if numBlocks == 0 || ftr.numSeqs == 0 {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer records %d blocks over %d sequences",
			ErrTruncated, numBlocks, ftr.numSeqs)
	}
	ftr.seqSums = f[footerFixed : footerFixed+8*int(ftr.numSeqs)]
	off := footerFixed + 8*int(ftr.numSeqs)
	ftr.dir = make([]dirEntry, numBlocks)
	for i := range ftr.dir {
		e := &ftr.dir[i]
		e.offset = binary.LittleEndian.Uint64(f[off+0:])
		e.length = binary.LittleEndian.Uint64(f[off+8:])
		e.seqLo = binary.LittleEndian.Uint32(f[off+16:])
		e.seqHi = binary.LittleEndian.Uint32(f[off+20:])
		e.dataLo = binary.LittleEndian.Uint64(f[off+24:])
		e.dataHi = binary.LittleEndian.Uint64(f[off+32:])
		e.crc = binary.LittleEndian.Uint32(f[off+40:])
		off += dirEntSize
	}
	// Directory invariants: contiguous tilings, back-to-back layout.
	wantOff := uint64(headerSizeV3)
	var wantSeq uint32
	wantData := ftr.dir[0].dataLo
	for i, e := range ftr.dir {
		if e.offset != wantOff || e.length < blockHdrSize+8 || e.length%8 != 0 {
			return nil, fmt.Errorf("ixdisk: %w: v3 block %d at offset %d/length %d breaks the back-to-back layout",
				ErrTruncated, i, e.offset, e.length)
		}
		if e.seqLo != wantSeq || e.seqHi <= e.seqLo || e.seqHi > ftr.numSeqs {
			return nil, fmt.Errorf("ixdisk: %w: v3 block %d covers sequences [%d,%d), expected to start at %d",
				ErrTruncated, i, e.seqLo, e.seqHi, wantSeq)
		}
		if e.dataLo != wantData || e.dataHi < e.dataLo || e.dataHi > ftr.dataLen {
			return nil, fmt.Errorf("ixdisk: %w: v3 block %d covers Data [%d,%d), expected to start at %d",
				ErrTruncated, i, e.dataLo, e.dataHi, wantData)
		}
		wantOff += e.length
		wantSeq = e.seqHi
		wantData = e.dataHi
	}
	last := ftr.dir[len(ftr.dir)-1]
	if wantSeq != ftr.numSeqs || wantData != ftr.dataLen || int64(last.offset+last.length) != ftr.start {
		return nil, fmt.Errorf("ixdisk: %w: v3 directory covers %d/%d sequences, %d/%d bytes, blocks end at %d of %d",
			ErrTruncated, wantSeq, ftr.numSeqs, wantData, ftr.dataLen, last.offset+last.length, ftr.start)
	}
	return ftr, nil
}

// blockByteLen returns the padded on-disk length of a block with
// nCodes directory entries and nOcc occurrences.
func blockByteLen(nCodes, nOcc int) int {
	raw := blockHdrSize + 8*nCodes + 16*nOcc + 4 // header + sections + CRC
	return (raw + 7) &^ 7
}

// encodeBlock streams one block to w and returns its padded length and
// CRC (over header + sections) for the footer directory.
func encodeBlock(w io.Writer, bp *index.BlockParts) (length int, crc uint32, err error) {
	hdr := make([]byte, blockHdrSize)
	copy(hdr[0:8], blockMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(bp.SeqLo))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(bp.SeqHi))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(bp.DataLo))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(bp.DataHi))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(len(bp.Pos)))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(len(bp.Codes)))
	binary.LittleEndian.PutUint64(hdr[48:], uint64(bp.MaskedOut))
	binary.LittleEndian.PutUint64(hdr[56:], uint64(bp.SampledOut))

	sum := crc32.New(crc32Table)
	mw := io.MultiWriter(w, sum)
	if _, err := mw.Write(hdr); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.Codes); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.Counts); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.Pos); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.OccSeq); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.OccLo); err != nil {
		return 0, 0, err
	}
	if err := writeWords(mw, bp.OccHi); err != nil {
		return 0, 0, err
	}
	crc = sum.Sum32()
	length = blockByteLen(len(bp.Codes), len(bp.Pos))
	raw := blockHdrSize + 8*len(bp.Codes) + 16*len(bp.Pos)
	tail := make([]byte, length-raw)
	binary.LittleEndian.PutUint32(tail, crc)
	if _, err := w.Write(tail); err != nil {
		return 0, 0, err
	}
	return length, crc, nil
}

// decodeBlock validates one block's bytes against its directory entry
// and returns its parts, aliasing buf when alias is set (mmap path,
// single-block files) and copying otherwise.
//
//scorislint:validator
func decodeBlock(buf []byte, ent dirEntry, alias bool) (index.BlockParts, error) {
	var bp index.BlockParts
	if uint64(len(buf)) != ent.length {
		return bp, fmt.Errorf("ixdisk: %w: block has %d bytes, directory records %d",
			ErrTruncated, len(buf), ent.length)
	}
	if string(buf[0:8]) != blockMagic {
		return bp, fmt.Errorf("ixdisk: %w: block magic is %q", ErrTruncated, buf[0:8])
	}
	nOcc := binary.LittleEndian.Uint64(buf[32:])
	nCodes := binary.LittleEndian.Uint32(buf[40:])
	if nOcc > math.MaxInt32 || nCodes > math.MaxInt32 {
		return bp, fmt.Errorf("ixdisk: %w: block claims %d occurrences, %d codes", ErrTruncated, nOcc, nCodes)
	}
	raw := blockHdrSize + 8*int(nCodes) + 16*int(nOcc)
	if blockByteLen(int(nCodes), int(nOcc)) != int(ent.length) {
		return bp, fmt.Errorf("ixdisk: %w: block sections imply %d bytes, directory records %d",
			ErrTruncated, blockByteLen(int(nCodes), int(nOcc)), ent.length)
	}
	crc := crc32.Checksum(buf[:raw], crc32Table)
	if rec := binary.LittleEndian.Uint32(buf[raw:]); crc != rec || crc != ent.crc {
		return bp, fmt.Errorf("ixdisk: %w: block computed %08x, block records %08x, directory %08x",
			ErrChecksum, crc, rec, ent.crc)
	}
	if binary.LittleEndian.Uint32(buf[8:]) != ent.seqLo ||
		binary.LittleEndian.Uint32(buf[12:]) != ent.seqHi ||
		binary.LittleEndian.Uint64(buf[16:]) != ent.dataLo ||
		binary.LittleEndian.Uint64(buf[24:]) != ent.dataHi {
		return bp, fmt.Errorf("ixdisk: %w: block header ranges disagree with the footer directory", ErrKeyMismatch)
	}
	masked := binary.LittleEndian.Uint64(buf[48:])
	sampled := binary.LittleEndian.Uint64(buf[56:])
	if masked > math.MaxInt32 || sampled > math.MaxInt32 {
		return bp, fmt.Errorf("ixdisk: %w: block counters %d/%d", ErrTruncated, masked, sampled)
	}
	bp.SeqLo, bp.SeqHi = int(ent.seqLo), int(ent.seqHi)
	bp.DataLo, bp.DataHi = int(ent.dataLo), int(ent.dataHi)
	bp.MaskedOut, bp.SampledOut = int(masked), int(sampled)
	secs := buf[blockHdrSize:raw]
	c, n := int(nCodes), int(nOcc)
	cut := func(elems int) []byte {
		s := secs[:4*elems]
		secs = secs[4*elems:]
		return s
	}
	if alias {
		bp.Codes = aliasWords[seed.Code](cut(c))
		bp.Counts = aliasWords[int32](cut(c))
		bp.Pos = aliasWords[int32](cut(n))
		bp.OccSeq = aliasWords[int32](cut(n))
		bp.OccLo = aliasWords[int32](cut(n))
		bp.OccHi = aliasWords[int32](cut(n))
	} else {
		bp.Codes = decodeWords[seed.Code](cut(c))
		bp.Counts = decodeWords[int32](cut(c))
		bp.Pos = decodeWords[int32](cut(n))
		bp.OccSeq = decodeWords[int32](cut(n))
		bp.OccLo = decodeWords[int32](cut(n))
		bp.OccHi = decodeWords[int32](cut(n))
	}
	return bp, nil
}

// saveBlocksTo streams header + blocks + footer for p, split at every
// blockSeqs sequences, to a writer. Shared by SaveBlocks (fresh files)
// and tests.
func saveBlocksTo(w io.Writer, p *ixcache.Prepared, blockSeqs int) error {
	if blockSeqs < 1 {
		blockSeqs = DefaultBlockSeqs
	}
	b := p.Bank
	var cuts []int
	for c := blockSeqs; c < b.NumSeqs(); c += blockSeqs {
		cuts = append(cuts, c)
	}
	blocks := index.SplitBlocks(p.Ix, cuts)
	if _, err := w.Write(encodeHeaderV3(p.Ix.Options())); err != nil {
		return err
	}
	dir := make([]dirEntry, len(blocks))
	off := uint64(headerSizeV3)
	for i := range blocks {
		bp := &blocks[i]
		length, crc, err := encodeBlock(w, bp)
		if err != nil {
			return err
		}
		dir[i] = dirEntry{
			offset: off, length: uint64(length),
			seqLo: uint32(bp.SeqLo), seqHi: uint32(bp.SeqHi),
			dataLo: uint64(bp.DataLo), dataHi: uint64(bp.DataHi),
			crc: crc,
		}
		off += uint64(length)
	}
	_, err := w.Write(encodeFooterV3(BankChecksum(b), uint64(len(b.Data)), b.SeqChecksums(), dir))
	return err
}

// SaveBlocks writes p's index to path as a v3 file cut into blocks of
// blockSeqs sequences (non-positive means DefaultBlockSeqs), with the
// same atomic temp + rename discipline as Save.
func SaveBlocks(path string, p *ixcache.Prepared, blockSeqs int) error {
	if p == nil || p.Bank == nil || p.Ix == nil || p.Ix.Bank != p.Bank {
		return errors.New("ixdisk: Save: inconsistent prepared value")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if err := saveBlocksTo(bw, p, blockSeqs); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	tmpName = ""
	return nil
}

// checkExactBankV3 verifies the footer identity is exactly bank b,
// per-sequence checksums included.
//
//scorislint:validator
func (f *footerV3) checkExactBank(b *bank.Bank) error {
	if f.dataLen != uint64(len(b.Data)) || f.numSeqs != uint32(b.NumSeqs()) ||
		f.bankCRC != BankChecksum(b) {
		return fmt.Errorf("ixdisk: %w: file indexes a different bank "+
			"(crc %016x/%d bytes/%d seqs, requested bank %q is %016x/%d/%d)",
			ErrKeyMismatch, f.bankCRC, f.dataLen, f.numSeqs,
			b.Name, BankChecksum(b), len(b.Data), b.NumSeqs())
	}
	sums := b.SeqChecksums()
	for i := range sums {
		if f.seqSum(i) != sums[i] {
			return fmt.Errorf("ixdisk: %w: per-sequence checksum %d disagrees with requested bank %q",
				ErrKeyMismatch, i, b.Name)
		}
	}
	return nil
}

// checkPrefixSums verifies the footer's first k per-sequence checksums
// match bank b's first k — the shared identity test of the partial-load
// (k == b.NumSeqs(), stored file larger) and append (k < b.NumSeqs(),
// stored file smaller) paths.
//
//scorislint:validator
func (f *footerV3) checkPrefixSums(b *bank.Bank, k int) error {
	if k < 1 || k > int(f.numSeqs) || k > b.NumSeqs() {
		return fmt.Errorf("ixdisk: %w: %d-sequence prefix of a %d-sequence file against bank %q (%d)",
			ErrKeyMismatch, k, f.numSeqs, b.Name, b.NumSeqs())
	}
	sums := b.SeqChecksums()
	for i := 0; i < k; i++ {
		if f.seqSum(i) != sums[i] {
			return fmt.Errorf("ixdisk: %w: per-sequence checksum %d disagrees with bank %q",
				ErrKeyMismatch, i, b.Name)
		}
	}
	return nil
}

// loadV3 parses a complete in-memory v3 image for exactly (b, opts).
// alias selects zero-copy section views (the caller owns a mapping
// that outlives the index) — honored only for single-block files,
// where the block's sections are already whole-bank CSR order; multi-
// block files are merged into fresh arrays regardless. It reports how
// many blocks were decoded (the BlockLoads accounting).
func loadV3(buf []byte, b *bank.Bank, opts index.Options, alias bool) (*ixcache.Prepared, int, bool, error) {
	h, err := decodeHeaderV3(buf)
	if err != nil {
		return nil, 0, false, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, 0, false, err
	}
	ftr, err := parseFooterV3(buf, int64(len(buf)))
	if err != nil {
		return nil, 0, false, err
	}
	if err := ftr.checkExactBank(b); err != nil {
		return nil, 0, false, err
	}
	aliased := alias && len(ftr.dir) == 1
	blocks := make([]index.BlockParts, len(ftr.dir))
	for i, e := range ftr.dir {
		bp, err := decodeBlock(buf[e.offset:e.offset+e.length], e, aliased)
		if err != nil {
			return nil, i, false, err
		}
		blocks[i] = bp
	}
	var ix *index.Index
	if aliased {
		ix, err = fromSingleBlock(b, h.indexOptions(), &blocks[0])
	} else {
		ix, err = index.FromBlocks(b, h.indexOptions(), blocks)
	}
	if err != nil {
		return nil, len(blocks), false, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, len(blocks), aliased, nil
}

// fromSingleBlock assembles a whole-bank index directly over one
// block's (possibly mmap-aliased) sections: the block covers the full
// bank, so its CSR-ordered arrays are the index arrays verbatim and
// only the dense Starts needs materializing from the sparse counts.
// index.FromParts applies the same full structural validation the
// copying path gets.
func fromSingleBlock(b *bank.Bank, opts index.Options, bp *index.BlockParts) (*index.Index, error) {
	opts = opts.Normalized()
	if bp.SeqLo != 0 || bp.SeqHi != b.NumSeqs() || opts.W < 1 || opts.W > seed.MaxW {
		return nil, fmt.Errorf("ixdisk: %w: single block covers sequences [%d,%d) of %d",
			ErrKeyMismatch, bp.SeqLo, bp.SeqHi, b.NumSeqs())
	}
	n := seed.NumCodes(opts.W)
	starts := make([]int32, n+1)
	var running int32
	prev := -1
	for i, c := range bp.Codes {
		if int(c) <= prev || int(c) >= n {
			return nil, fmt.Errorf("ixdisk: %w: block code directory not ascending in the 4^%d space",
				ErrKeyMismatch, opts.W)
		}
		if bp.Counts[i] < 1 {
			return nil, fmt.Errorf("ixdisk: %w: block records %d occurrences for code %d",
				ErrKeyMismatch, bp.Counts[i], c)
		}
		for x := prev + 1; x <= int(c); x++ {
			starts[x] = running
		}
		running += bp.Counts[i]
		prev = int(c)
	}
	for x := prev + 1; x <= n; x++ {
		starts[x] = running
	}
	ix, err := index.FromParts(b, opts, index.Parts{
		Starts: starts, Pos: bp.Pos, Codes: bp.Codes,
		OccSeq: bp.OccSeq, OccLo: bp.OccLo, OccHi: bp.OccHi,
		Indexed:    len(bp.Pos),
		MaskedOut:  bp.MaskedOut,
		SampledOut: bp.SampledOut,
	})
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// readFooterAt reads and parses just the footer of an open v3 file —
// the probe's and the partial loader's entry point: two small ReadAt
// calls (trailer, then footer), never the blocks.
func readFooterAt(f io.ReaderAt, size int64) (*footerV3, error) {
	if size < headerSizeV3+trailerSize {
		return nil, fmt.Errorf("ixdisk: %w: %d bytes is below the v3 minimum", ErrTruncated, size)
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: reading v3 trailer: %v", ErrTruncated, err)
	}
	if string(tr[8:16]) != endMagic {
		return nil, fmt.Errorf("ixdisk: %w: v3 end magic is %q", ErrTruncated, tr[8:16])
	}
	flen := int64(binary.LittleEndian.Uint32(tr[4:8]))
	if flen < footerFixed+trailerSize || size-flen < headerSizeV3 {
		return nil, fmt.Errorf("ixdisk: %w: v3 footer claims %d bytes of a %d-byte file",
			ErrTruncated, flen, size)
	}
	tail := make([]byte, flen)
	if _, err := f.ReadAt(tail, size-flen); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: reading v3 footer: %v", ErrTruncated, err)
	}
	return parseFooterV3(tail, size)
}

// loadV3Prefix serves bank b from a stored v3 file that indexes a
// *larger* bank of which b is a block-boundary prefix: it reads the
// header, the footer, and only the covering blocks — the partial-load
// path. Returns the number of blocks read and the file's total.
func loadV3Prefix(path string, b *bank.Bank, opts index.Options) (p *ixcache.Prepared, loaded, total int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	hdr := make([]byte, headerSizeV3)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, 0, 0, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	h, err := decodeHeaderV3(hdr)
	if err != nil {
		return nil, 0, 0, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, 0, 0, err
	}
	ftr, err := readFooterAt(f, fi.Size())
	if err != nil {
		return nil, 0, 0, err
	}
	total = len(ftr.dir)
	k := b.NumSeqs()
	nb := ftr.boundaryBlocks(k)
	if nb < 0 || int(ftr.numSeqs) < k {
		return nil, 0, total, fmt.Errorf("ixdisk: %w: bank %q (%d seqs) is not a block boundary of the stored %d-sequence file",
			ErrKeyMismatch, b.Name, k, ftr.numSeqs)
	}
	if ftr.dir[nb-1].dataHi != uint64(len(b.Data)) {
		return nil, 0, total, fmt.Errorf("ixdisk: %w: stored boundary at %d bytes, bank %q has %d",
			ErrKeyMismatch, ftr.dir[nb-1].dataHi, b.Name, len(b.Data))
	}
	if err := ftr.checkPrefixSums(b, k); err != nil {
		return nil, 0, total, err
	}
	// One contiguous read of exactly the covering blocks.
	span := ftr.dir[nb-1].offset + ftr.dir[nb-1].length - headerSizeV3
	buf := make([]byte, span)
	if _, err := f.ReadAt(buf, headerSizeV3); err != nil {
		return nil, 0, total, fmt.Errorf("ixdisk: %w: reading %d blocks: %v", ErrTruncated, nb, err)
	}
	blocks := make([]index.BlockParts, nb)
	for i := 0; i < nb; i++ {
		e := ftr.dir[i]
		bp, err := decodeBlock(buf[e.offset-headerSizeV3:e.offset-headerSizeV3+e.length], e, false)
		if err != nil {
			return nil, i, total, err
		}
		blocks[i] = bp
	}
	ix, err := index.FromBlocks(b, h.indexOptions(), blocks)
	if err != nil {
		return nil, nb, total, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, nb, total, nil
}

// appendBlockAt writes suffix (plus a fresh footer for the grown bank
// identity) over the old footer region of the v3 file at path, then
// renames the file to newPath — the O(suffix) append. Old block bytes
// are never touched: the old file's header and blocks remain an
// unchanged byte prefix of the result. Not atomic by design; a torn
// write fails the footer checks and the store heals by rebuild.
func appendBlockAt(path, newPath string, grown *bank.Bank, suffix *index.BlockParts, oldFtr *footerV3) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf bytes.Buffer
	length, crc, err := encodeBlock(&buf, suffix)
	if err != nil {
		return err
	}
	dir := append(append([]dirEntry(nil), oldFtr.dir...), dirEntry{
		offset: uint64(oldFtr.start), length: uint64(length),
		seqLo: uint32(suffix.SeqLo), seqHi: uint32(suffix.SeqHi),
		dataLo: uint64(suffix.DataLo), dataHi: uint64(suffix.DataHi),
		crc: crc,
	})
	buf.Write(encodeFooterV3(BankChecksum(grown), uint64(len(grown.Data)), grown.SeqChecksums(), dir))
	if _, err := f.WriteAt(buf.Bytes(), oldFtr.start); err != nil {
		return err
	}
	if err := f.Truncate(oldFtr.start + int64(buf.Len())); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, newPath)
}
