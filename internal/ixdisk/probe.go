package ixdisk

// The header-only probe: answering "what does this .orix file hold?"
// without reading its index payload. DirStore's prefix-candidate scan
// and the fleet router's backfill both need to decide compatibility
// cheaply; before v3 each such decision opened and read whole files.
// Probe reads the fixed header plus the identity metadata — the footer
// directory for v3, the header + checksum section for v2 — a few KiB
// regardless of index size.

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/index"
)

// BlockInfo describes one block of a v3 file, from the footer
// directory: where it lives and which slice of the bank it covers.
type BlockInfo struct {
	// SeqLo, SeqHi bound the sequence range [SeqLo, SeqHi).
	SeqLo, SeqHi int
	// DataLo, DataHi bound the bank Data byte range the block indexes.
	DataLo, DataHi int64
	// Offset, Length locate the block's bytes in the file.
	Offset, Length int64
	// CRC is the block's CRC-32C as recorded in the directory.
	CRC uint32
}

// FileInfo is what Probe learns about an index file from its metadata
// alone: format version, the options and bank identity it was built
// for, and (v3) the block directory. The payload is not read and no
// payload checksum is verified — Probe answers "what does this file
// claim to hold?", and the loaders re-validate every claim before any
// byte is trusted.
type FileInfo struct {
	// Version is the format version (2 or 3).
	Version int
	// Opts is the recorded index options key.
	Opts index.Options
	// BankCRC, DataLen, NumSeqs identify the recorded bank.
	BankCRC uint64
	DataLen int64
	NumSeqs int
	// SeqSums is the per-sequence checksum vector.
	SeqSums []uint64
	// Blocks is the v3 footer directory in file order; nil for v2 files
	// (a v2 file is one monolithic section set, not blocks).
	Blocks []BlockInfo
	// PayloadEnd is the offset where index payload ends: the footer
	// start for v3 (everything before it is header + blocks, untouched
	// by appends), the file size for v2.
	PayloadEnd int64
}

// Probe reads an index file's metadata without its payload: the fixed
// header plus the footer (v3) or the checksum section (v2). It is the
// shared compatibility test for DirStore's prefix-candidate scan and
// the fleet's backfill — a few small reads per file, O(metadata) not
// O(index). Framing and metadata checksums are verified (v3 header and
// footer carry their own CRCs); the payload is not, so a successful
// probe authorizes nothing — loaders re-validate in full.
func Probe(path string) (*FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	var pfx [12]byte
	if _, err := f.ReadAt(pfx[:], 0); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	v, err := fileVersion(pfx[:])
	if err != nil {
		return nil, err
	}
	if v == version3 {
		return probeV3(f, fi.Size())
	}
	return probeV2(f, fi.Size())
}

func probeV3(f *os.File, size int64) (*FileInfo, error) {
	hdr := make([]byte, headerSizeV3)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	h, err := decodeHeaderV3(hdr)
	if err != nil {
		return nil, err
	}
	ftr, err := readFooterAt(f, size)
	if err != nil {
		return nil, err
	}
	info := &FileInfo{
		Version:    version3,
		Opts:       h.indexOptions(),
		BankCRC:    ftr.bankCRC,
		DataLen:    int64(ftr.dataLen),
		NumSeqs:    int(ftr.numSeqs),
		SeqSums:    make([]uint64, ftr.numSeqs),
		Blocks:     make([]BlockInfo, len(ftr.dir)),
		PayloadEnd: ftr.start,
	}
	for i := range info.SeqSums {
		info.SeqSums[i] = ftr.seqSum(i)
	}
	for i, e := range ftr.dir {
		info.Blocks[i] = BlockInfo{
			SeqLo: int(e.seqLo), SeqHi: int(e.seqHi),
			DataLo: int64(e.dataLo), DataHi: int64(e.dataHi),
			Offset: int64(e.offset), Length: int64(e.length),
			CRC: e.crc,
		}
	}
	return info, nil
}

func probeV2(f *os.File, size int64) (*FileInfo, error) {
	hdr := make([]byte, headerSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	h, err := decodeHeader(hdr)
	if err != nil {
		return nil, err
	}
	sums := make([]byte, 8*h.secLen[0])
	if _, err := io.ReadFull(io.NewSectionReader(f, headerSize, int64(len(sums))), sums); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	info := &FileInfo{
		Version:    version,
		Opts:       h.indexOptions(),
		BankCRC:    h.bankCRC,
		DataLen:    int64(h.dataLen),
		NumSeqs:    int(h.numSeqs),
		SeqSums:    make([]uint64, h.secLen[0]),
		PayloadEnd: size,
	}
	for i := range info.SeqSums {
		info.SeqSums[i] = binary.LittleEndian.Uint64(sums[8*i:])
	}
	return info, nil
}
