package ixdisk

// DirStore's implementation of the block-aware store contract
// (ixcache.BlockStore): block-granular loads and O(suffix) appends on
// top of the v3 layout. The embedded whole-index Load/Save pair stays
// the compat surface — everything here is additive.

import (
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// DirStore implements the block-aware store contract.
var _ ixcache.BlockStore = (*DirStore)(nil)
var _ ixcache.BlockCounters = (*DirStore)(nil)

// LoadBlocks returns a partial index for (b, opts) holding only the
// stored blocks that intersect the given sequence ranges — the shard
// shape a fleet worker holds for a large bank. Only the header, the
// footer, and the selected blocks are read. Nil or empty ranges mean
// every block (identical to Load, minus the memoization — partial and
// full results must never share a memo slot). The result is
// structurally valid for every index operation, but lookups only see
// occurrences from the loaded ranges; do not feed it back into Save.
func (s *DirStore) LoadBlocks(b *bank.Bank, opts index.Options, ranges []ixcache.SeqRange) (*ixcache.Prepared, error) {
	if len(ranges) == 0 {
		return s.Load(b, opts)
	}
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi <= r.Lo || r.Lo >= b.NumSeqs() {
			return nil, fmt.Errorf("ixdisk: LoadBlocks: invalid sequence range [%d,%d) of %d",
				r.Lo, r.Hi, b.NumSeqs())
		}
	}
	path := s.Path(b, opts)
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSizeV3)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	if v, err := fileVersion(hdr); err != nil {
		return nil, err
	} else if v != version3 {
		// Legacy monolithic file: no blocks to select from. Serve the
		// whole index; the exact Load also heals it to v3.
		return s.Load(b, opts)
	}
	h, err := decodeHeaderV3(hdr)
	if err != nil {
		return nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, err
	}
	ftr, err := readFooterAt(f, fi.Size())
	if err != nil {
		return nil, err
	}
	if err := ftr.checkExactBank(b); err != nil {
		return nil, err
	}
	var blocks []index.BlockParts
	for _, e := range ftr.dir {
		hit := false
		for _, r := range ranges {
			if int(e.seqLo) < r.Hi && int(e.seqHi) > r.Lo {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		buf := make([]byte, e.length)
		if _, err := f.ReadAt(buf, int64(e.offset)); err != nil {
			return nil, fmt.Errorf("ixdisk: %w: reading block at %d: %v", ErrTruncated, e.offset, err)
		}
		bp, err := decodeBlock(buf, e, false)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, bp)
	}
	s.blockLoads.Add(int64(len(blocks)))
	ix, err := index.FromBlocksPartial(b, h.indexOptions(), blocks)
	if err != nil {
		return nil, err
	}
	touchFile(path)
	return &ixcache.Prepared{Bank: b, Ix: ix}, nil
}

// AppendBlock persists p — a prepared index whose bank grew from a
// previously stored prefix of oldNumSeqs sequences — by the O(suffix)
// route: one block built over the appended suffix is written over the
// stored file's footer, a fresh footer follows, and the file is
// renamed to the grown bank's key path. The stored prefix's path is
// derived from the grown bank alone (its first oldNumSeqs sequences
// are the old bank by definition), so no directory scan is needed.
// When no appendable v3 file exists — never stored, corrupted, or a
// legacy v2 file — it degrades to a full Save, so the call is always
// as durable as Save. Policy applies exactly as in Save.
func (s *DirStore) AppendBlock(p *ixcache.Prepared, oldNumSeqs int) error {
	if p == nil || p.Bank == nil || p.Ix == nil || p.Ix.Bank != p.Bank {
		return errors.New("ixdisk: AppendBlock: inconsistent prepared value")
	}
	b := p.Bank
	opts := p.Ix.Options()
	k := oldNumSeqs
	if k < 1 || k >= b.NumSeqs() {
		return fmt.Errorf("ixdisk: AppendBlock: old sequence count %d of %d", k, b.NumSeqs())
	}
	s.mu.Lock()
	pol := s.policy
	isDB := s.dbBanks[b]
	gcCfg := s.gcCfg
	s.mu.Unlock()
	if !pol.allows(b, isDB) {
		s.savesDeclined.Add(1)
		return fmt.Errorf("ixdisk: AppendBlock: bank %q (%d bases): %w",
			b.Name, b.TotalBases(), ixcache.ErrSaveDeclined)
	}

	oldDataLen := b.PrefixLen(k)
	oldCRC := crc64.Checksum(b.Data[:oldDataLen], crc64Table)
	oldPath := s.keyPath(b.Name, oldCRC, uint64(oldDataLen), uint32(k), opts)
	ftr, err := appendableFooter(oldPath, opts, b, k)
	if err != nil {
		// No in-place target; a full save is the durable equivalent.
		return s.Save(p)
	}
	suffix, err := index.BuildBlock(b, opts, k, b.NumSeqs())
	if err != nil {
		return s.Save(p)
	}
	exactPath := s.Path(b, opts)
	if err := appendBlockAt(oldPath, exactPath, b, &suffix, ftr); err != nil {
		return s.Save(p)
	}
	s.blockAppends.Add(1)
	touchFile(exactPath)
	if gcCfg.MaxBytes > 0 || gcCfg.MaxAge > 0 {
		_, _ = s.GC()
	}
	return nil
}

// appendableFooter checks that the file at path is a v3 file recording
// exactly the first k sequences of b under the same options, and
// returns its parsed footer — the precondition for an in-place append.
func appendableFooter(path string, opts index.Options, b *bank.Bank, k int) (*footerV3, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, headerSizeV3)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, fmt.Errorf("ixdisk: %w: %v", ErrTruncated, err)
	}
	h, err := decodeHeaderV3(hdr)
	if err != nil {
		return nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, err
	}
	ftr, err := readFooterAt(f, fi.Size())
	if err != nil {
		return nil, err
	}
	if int(ftr.numSeqs) != k || ftr.dataLen != uint64(b.PrefixLen(k)) {
		return nil, fmt.Errorf("ixdisk: %w: stored file records %d sequences/%d bytes, expected prefix is %d/%d",
			ErrKeyMismatch, ftr.numSeqs, ftr.dataLen, k, b.PrefixLen(k))
	}
	if err := ftr.checkPrefixSums(b, k); err != nil {
		return nil, err
	}
	return ftr, nil
}
