package ixdisk

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bank"
)

// Store housekeeping: what gets written, and what gets collected.
//
// A DirStore is one file per (bank content, options) key, so without
// bounds it grows monotonically: every single-use query bank leaves an
// index behind, every appended-to bank strands its superseded prefix
// files, and a writer killed mid-Save leaves a .orix-tmp-* staging file
// forever (the in-process cleanup is a defer — it never runs in a
// killed process). SavePolicy bounds the first at the source; the GC
// bounds the rest by inspection. There is deliberately no manifest:
// the directory itself is the only state, everything the collector
// needs comes from ReadDir + Stat, so any process (or an operator's rm)
// can manage the store without coordination.

// DefaultTmpGrace is how old a .orix-tmp-* staging file must be before
// the sweep treats it as litter from a dead writer rather than a live
// Save in progress. Saves complete in well under a second; an hour is
// paranoid.
const DefaultTmpGrace = time.Hour

// SavePolicy bounds what a DirStore persists. The zero value saves
// everything (the PR-3 behavior).
type SavePolicy struct {
	// DBOnly persists only banks registered via MarkDB — the caller
	// hint for "this is the database side; query banks are single-use".
	DBOnly bool
	// MinBases, when positive, declines banks smaller than this many
	// bases — the size heuristic for the same distinction when the
	// caller doesn't hint (query banks are typically much smaller than
	// the database bank they run against).
	MinBases int
}

// allows reports whether the policy permits persisting bank b. A bank
// marked as a database bank is always persisted.
func (p SavePolicy) allows(b *bank.Bank, isDB bool) bool {
	if isDB {
		return true
	}
	if p.DBOnly {
		return false
	}
	return p.MinBases <= 0 || b.TotalBases() >= p.MinBases
}

// SetSavePolicy installs the store's save policy. Declined saves return
// ixcache.ErrSaveDeclined to the cache tier and count under
// SavesDeclined.
func (s *DirStore) SetSavePolicy(p SavePolicy) {
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

// MarkDB registers b as a database bank: its indexes are persisted
// regardless of policy. Call it for the long-lived side of the workload
// (scoris -d, the harness's subject banks). The store remembers at most
// memoBound marks, expiring the oldest deterministically (FIFO) — a
// caller juggling more than 64 simultaneous database banks should use
// SavePolicy.MinBases instead of per-bank hints.
func (s *DirStore) MarkDB(b *bank.Bank) {
	s.mu.Lock()
	if !s.dbBanks[b] {
		s.dbBanks[b] = true
		s.dbOrder = append(s.dbOrder, b)
		for len(s.dbOrder) > memoBound {
			delete(s.dbBanks, s.dbOrder[0])
			s.dbOrder = s.dbOrder[1:]
		}
	}
	s.mu.Unlock()
}

// GCConfig bounds the store directory. Zero fields mean "no bound" of
// that kind; the zero value collects nothing but still sweeps temp
// litter.
type GCConfig struct {
	// MaxBytes caps the total size of .orix files; the oldest (by
	// mtime, which successful loads refresh, making eviction LRU-ish)
	// are removed until the total fits.
	MaxBytes int64
	// MaxAge removes .orix files whose mtime is older than this.
	MaxAge time.Duration
	// TmpGrace overrides DefaultTmpGrace for the temp-litter sweep.
	TmpGrace time.Duration
}

// SetGC installs the store's GC bounds. When either cap is set, every
// successful Save also runs a best-effort collection, so a long-lived
// store converges toward its bounds without explicit GC calls.
func (s *DirStore) SetGC(cfg GCConfig) {
	s.mu.Lock()
	s.gcCfg = cfg
	s.mu.Unlock()
}

// GCStats reports one collection. Block counts come from each v3
// file's footer directory (one cheap Probe per file — metadata only);
// legacy v2 files count zero blocks.
type GCStats struct {
	Scanned         int   // .orix files examined
	Removed         int   // .orix files deleted (age or size cap)
	RemovedBytes    int64 // bytes those files held
	RemovedBlocks   int   // v3 blocks those files held
	RemovedTmps     int   // stale .orix-tmp-* staging files swept
	Remaining       int   // .orix files left
	RemainingBytes  int64 // bytes they hold
	RemainingBlocks int   // v3 blocks they hold
}

func (g GCStats) String() string {
	return fmt.Sprintf("removed %d files (%d bytes, %d blocks) and %d stale temp files; %d files (%d bytes, %d blocks) remain",
		g.Removed, g.RemovedBytes, g.RemovedBlocks, g.RemovedTmps, g.Remaining, g.RemainingBytes, g.RemainingBlocks)
}

// GC collects the store directory under the configured bounds: sweep
// stale temp files, drop .orix files over the age cap, then drop
// oldest-first until under the size cap. Manifest-free and stat-based,
// so it is safe to run concurrently with readers and writers in any
// process: deleting a file a reader has open (or mmap'd) only unlinks
// the name — the inode lives until the last reference drops — and a
// concurrent Save's rename either lands before the scan (and is the
// newest file, last to be evicted) or after it (and is collected by
// the next run).
func (s *DirStore) GC() (GCStats, error) {
	s.mu.Lock()
	cfg := s.gcCfg
	s.mu.Unlock()
	return s.gcWith(cfg, time.Now())
}

// gcWith is GC with injectable config and clock (tests).
func (s *DirStore) gcWith(cfg GCConfig, now time.Time) (GCStats, error) {
	var st GCStats
	st.RemovedTmps = s.sweepTmp(cfg.TmpGrace, now)

	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return st, fmt.Errorf("ixdisk: GC: %w", err)
	}
	type file struct {
		path   string
		size   int64
		mod    time.Time
		blocks int
	}
	var files []file
	var total int64
	var totalBlocks int
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), FileExt) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // raced with a concurrent delete
		}
		st.Scanned++
		f := file{path: filepath.Join(s.dir, e.Name()), size: fi.Size(), mod: fi.ModTime()}
		if info, err := Probe(f.path); err == nil {
			f.blocks = len(info.Blocks)
		}
		files = append(files, f)
		total += f.size
		totalBlocks += f.blocks
	}

	remove := func(f file) {
		if os.Remove(f.path) == nil {
			st.Removed++
			st.RemovedBytes += f.size
			st.RemovedBlocks += f.blocks
			total -= f.size
			totalBlocks -= f.blocks
		}
	}
	if cfg.MaxAge > 0 {
		kept := files[:0]
		for _, f := range files {
			if now.Sub(f.mod) > cfg.MaxAge {
				remove(f)
			} else {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	if cfg.MaxBytes > 0 && total > cfg.MaxBytes {
		sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
		for _, f := range files {
			if total <= cfg.MaxBytes {
				break
			}
			remove(f)
		}
	}
	st.Remaining = st.Scanned - st.Removed
	st.RemainingBytes = total
	st.RemainingBlocks = totalBlocks
	return st, nil
}

// sweepTmp removes .orix-tmp-* staging files older than grace
// (DefaultTmpGrace when non-positive) — the litter a process killed
// mid-Save leaves behind, since its deferred cleanup never ran. Runs
// at store open and during every GC. Returns how many were removed.
func (s *DirStore) sweepTmp(grace time.Duration, now time.Time) int {
	if grace <= 0 {
		grace = DefaultTmpGrace
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), tmpPrefix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		if now.Sub(fi.ModTime()) > grace {
			if os.Remove(filepath.Join(s.dir, e.Name())) == nil {
				n++
			}
		}
	}
	return n
}
