package ixdisk

import "unsafe"

// nativeLittleEndian reports whether the host stores integers little-
// endian — the precondition for aliasing the file's LE sections as
// typed slices instead of decoding them. Checked once at init.
var nativeLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// aliasWords reinterprets a validated little-endian byte section as a
// typed 4-byte-element slice with zero copying. The caller guarantees
// the section is 4-byte aligned (the format fixes every section offset
// to a multiple of 4 from a page-aligned mmap base) and little-endian
// order matches the host (nativeLittleEndian). The resulting slice is
// read-only memory: writing through it faults, which the index
// immutability contract already forbids.
func aliasWords[T word](sec []byte) []T {
	if len(sec) == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&sec[0])), len(sec)/4)
}
