package ixdisk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// fuzzSeedFile builds the canonical fuzz fixtures: a small bank, its
// built index, and the valid .orix bytes both writers produce for it —
// the current block-structured v3 frame and the legacy monolithic v2
// frame, since both readers stay live. Every fuzz iteration validates
// arbitrary mutations of these frames against the same (bank, options)
// identity the seeds were saved under.
func fuzzSeedFile(tb testing.TB) (v3, v2 []byte, b *bank.Bank, opts index.Options) {
	tb.Helper()
	b = genBank(tb, "fz", 1024)
	opts = index.Options{W: 8}
	p := ixcache.Prepare(b, opts)
	dir := tb.TempDir()
	v3path := filepath.Join(dir, "seed3"+FileExt)
	// Cut small so the v3 seed is multi-block: the directory, the
	// inter-block boundaries, and the footer all get fuzz coverage.
	if err := SaveBlocks(v3path, p, 2); err != nil {
		tb.Fatal(err)
	}
	v2path := filepath.Join(dir, "seed2"+FileExt)
	if err := saveV2(v2path, p); err != nil {
		tb.Fatal(err)
	}
	v3, err := os.ReadFile(v3path)
	if err != nil {
		tb.Fatal(err)
	}
	v2, err = os.ReadFile(v2path)
	if err != nil {
		tb.Fatal(err)
	}
	return v3, v2, b, opts
}

// addFrameSeeds seeds the corpus with both valid frames and the
// mutation classes the readers' validation ladders distinguish:
// truncations at every framing boundary, bit-flips in the magics,
// versions, length tables, bodies, and checksums of each format.
func addFrameSeeds(f *testing.F, v3, v2 []byte) {
	f.Add([]byte{})
	for _, valid := range [][]byte{v3, v2} {
		f.Add(valid)
		f.Add(valid[:len(valid)-1])
		f.Add(append(bytes.Clone(valid), 0))
	}
	// v2 frame: magic, version, section-length table, header boundary.
	f.Add(v2[:headerSize/2])
	f.Add(v2[:headerSize])
	for _, off := range []int{0, 8, 12, 88, headerSize + 1, len(v2) - 1} {
		mut := bytes.Clone(v2)
		mut[off] ^= 0x40
		f.Add(mut)
	}
	// v3 frame: header CRC, first block header, block body, footer
	// directory region, and the fixed trailer (footerCRC, footerLen,
	// endMagic).
	f.Add(v3[:headerSizeV3])
	f.Add(v3[:headerSizeV3+blockHdrSize])
	for _, off := range []int{8, 44, headerSizeV3 + 1, headerSizeV3 + blockHdrSize,
		len(v3) - trailerSize, len(v3) - 12, len(v3) - 8, len(v3) - dirEntSize - trailerSize} {
		mut := bytes.Clone(v3)
		mut[off] ^= 0x40
		f.Add(mut)
	}
}

// loadInvariants asserts what a successful load must always deliver: a
// prepared index over the requesting bank whose occurrence lists are
// addressable — the properties mid-parse corruption would break first.
func loadInvariants(t *testing.T, p *ixcache.Prepared, b *bank.Bank, opts index.Options) {
	t.Helper()
	if p == nil || p.Ix == nil || p.Bank != b {
		t.Fatal("load succeeded but returned an unusable Prepared")
	}
	if !p.MatchesOptions(opts) {
		t.Fatal("load succeeded with a Prepared that fails MatchesOptions")
	}
	parts := p.Ix.Parts()
	if parts.Indexed != len(parts.Pos) {
		t.Fatalf("load succeeded with %d positions for an Indexed count of %d", len(parts.Pos), parts.Indexed)
	}
	total := 0
	for _, c := range parts.Codes {
		occ := p.Ix.Occ(seed.Code(c))
		if len(occ) == 0 {
			t.Fatalf("load succeeded but occupied code %d has no occurrences", c)
		}
		total += len(occ)
	}
	if total != len(parts.Pos) {
		t.Fatalf("load succeeded with %d positions across codes, %d in the flat array", total, len(parts.Pos))
	}
}

// FuzzLoad feeds arbitrary bytes to the copying .orix reader. Any input
// may be rejected with an error; none may panic, and an accepted input
// must yield a structurally sound index.
func FuzzLoad(f *testing.F) {
	v3, v2, b, opts := fuzzSeedFile(f)
	addFrameSeeds(f, v3, v2)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f"+FileExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		p, err := Load(path, b, opts)
		if err != nil {
			return
		}
		loadInvariants(t, p, b, opts)
	})
}

// FuzzLoadMapped is FuzzLoad for the aliasing reader: the same
// no-panic/sound-on-success contract, plus the mapping must close
// cleanly whatever the parse did.
func FuzzLoadMapped(f *testing.F) {
	v3, v2, b, opts := fuzzSeedFile(f)
	addFrameSeeds(f, v3, v2)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f"+FileExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		p, m, err := LoadMapped(path, b, opts)
		if err != nil {
			return
		}
		loadInvariants(t, p, b, opts)
		if err := m.Close(); err != nil {
			t.Fatalf("closing mapping after successful load: %v", err)
		}
	})
}
