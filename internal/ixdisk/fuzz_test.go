package ixdisk

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// fuzzSeedFile builds the canonical fuzz fixture: a small bank, its
// built index, and the valid .orix v2 bytes Save produces for it. Every
// fuzz iteration validates arbitrary mutations of this frame against
// the same (bank, options) identity the seed was saved under.
func fuzzSeedFile(tb testing.TB) ([]byte, *bank.Bank, index.Options) {
	tb.Helper()
	b := genBank(tb, "fz", 1024)
	opts := index.Options{W: 8}
	path := filepath.Join(tb.TempDir(), "seed"+FileExt)
	if err := Save(path, ixcache.Prepare(b, opts)); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data, b, opts
}

// addFrameSeeds seeds the corpus with the valid frame and the mutation
// classes the reader's validation ladder distinguishes: truncations at
// every boundary the header declares, bit-flips in the magic, version,
// section-length table, body, and trailing checksum.
func addFrameSeeds(f *testing.F, valid []byte) {
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:headerSize/2])
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	f.Add(append(bytes.Clone(valid), 0))
	for _, off := range []int{0, 8, 12, 88, headerSize + 1, len(valid) - 1} {
		if off < len(valid) {
			mut := bytes.Clone(valid)
			mut[off] ^= 0x40
			f.Add(mut)
		}
	}
}

// loadInvariants asserts what a successful load must always deliver: a
// prepared index over the requesting bank whose occurrence lists are
// addressable — the properties mid-parse corruption would break first.
func loadInvariants(t *testing.T, p *ixcache.Prepared, b *bank.Bank, opts index.Options) {
	t.Helper()
	if p == nil || p.Ix == nil || p.Bank != b {
		t.Fatal("load succeeded but returned an unusable Prepared")
	}
	if !p.MatchesOptions(opts) {
		t.Fatal("load succeeded with a Prepared that fails MatchesOptions")
	}
	parts := p.Ix.Parts()
	if parts.Indexed != len(parts.Pos) {
		t.Fatalf("load succeeded with %d positions for an Indexed count of %d", len(parts.Pos), parts.Indexed)
	}
	total := 0
	for _, c := range parts.Codes {
		occ := p.Ix.Occ(seed.Code(c))
		if len(occ) == 0 {
			t.Fatalf("load succeeded but occupied code %d has no occurrences", c)
		}
		total += len(occ)
	}
	if total != len(parts.Pos) {
		t.Fatalf("load succeeded with %d positions across codes, %d in the flat array", total, len(parts.Pos))
	}
}

// FuzzLoad feeds arbitrary bytes to the copying .orix reader. Any input
// may be rejected with an error; none may panic, and an accepted input
// must yield a structurally sound index.
func FuzzLoad(f *testing.F) {
	valid, b, opts := fuzzSeedFile(f)
	addFrameSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f"+FileExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		p, err := Load(path, b, opts)
		if err != nil {
			return
		}
		loadInvariants(t, p, b, opts)
	})
}

// FuzzLoadMapped is FuzzLoad for the aliasing reader: the same
// no-panic/sound-on-success contract, plus the mapping must close
// cleanly whatever the parse did.
func FuzzLoadMapped(f *testing.F) {
	valid, b, opts := fuzzSeedFile(f)
	addFrameSeeds(f, valid)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f"+FileExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		p, m, err := LoadMapped(path, b, opts)
		if err != nil {
			return
		}
		loadInvariants(t, p, b, opts)
		if err := m.Close(); err != nil {
			t.Fatalf("closing mapping after successful load: %v", err)
		}
	})
}
