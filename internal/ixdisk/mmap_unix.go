//go:build unix

package ixdisk

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy LoadMapped path; on unsupported
// platforms LoadMapped degrades to the copying Load.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and private: the index never
// writes, and MAP_PRIVATE keeps later file replacement (Save's atomic
// rename) from mutating live mappings — the old inode stays alive until
// munmap.
//
//scorislint:source
func mmapFile(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
