package ixdisk

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// Append-aware reuse: satisfying an exact miss from the bank's lineage.
//
// Whole-bank identity makes a growing bank pathological: append one EST
// run and every cached index of the bank is garbage. The per-sequence
// checksum vector fixes the granularity — and with block-structured v3
// files the reuse works in both directions:
//
//   - a stored file recording a *larger* bank of which the requesting
//     bank is a block-boundary prefix serves the request by loading
//     only the covering blocks (no build work at all, and appends
//     always leave a boundary at the pre-append count);
//   - a stored file recording the first k sequences of the requesting
//     bank is completed by building one block over the appended suffix
//     and — policy permitting — appended in place: one new block plus
//     a rewritten footer, O(suffix) bytes written, never a rewrite of
//     the stored prefix (legacy v2 prefixes go through
//     index.ExtendFromParts and a full v3 write-back instead, which
//     doubles as their heal-by-rewrite).
//
// The flow on an exact miss: scan the directory, Probe each candidate's
// metadata (header + footer — no payload reads), collect compatible
// candidates, and try them best-first with full validation. Partial
// loads win over extensions (they cost no build), longer stored
// prefixes over shorter. Every failure just drops to the next candidate
// and ultimately to a clean miss: the build fallback is always sound,
// so this whole path is opportunistic.

// probeResult is one compatible candidate file.
type probeResult struct {
	path string
	info *FileInfo
	k    int  // stored sequence count
	part bool // stored file is larger; serve b from its leading blocks
}

// compatPrefix decides from probed metadata alone whether the file at
// info could serve (b, opts): either as a partial load (info records a
// larger bank with a block boundary exactly at b's end, v3 only) or as
// an extension base (info records a strict prefix of b). The loaders
// re-validate everything; this only prunes the candidate list.
func compatPrefix(info *FileInfo, b *bank.Bank, opts index.Options) (k int, part, ok bool) {
	if !ixcache.SameKey(info.Opts, opts) {
		return 0, false, false
	}
	sums := b.SeqChecksums()
	switch {
	case info.NumSeqs > b.NumSeqs():
		if info.Version != version3 {
			return 0, false, false
		}
		nb := -1
		for i, blk := range info.Blocks {
			if blk.SeqHi == b.NumSeqs() {
				nb = i + 1
				break
			}
			if blk.SeqHi > b.NumSeqs() {
				break
			}
		}
		if nb < 0 || info.Blocks[nb-1].DataHi != int64(len(b.Data)) {
			return 0, false, false
		}
		for i := range sums {
			if info.SeqSums[i] != sums[i] {
				return 0, false, false
			}
		}
		return info.NumSeqs, true, true
	case info.NumSeqs >= 1 && info.NumSeqs < b.NumSeqs():
		k = info.NumSeqs
		if info.DataLen != int64(b.PrefixLen(k)) {
			return 0, false, false
		}
		for i := 0; i < k; i++ {
			if info.SeqSums[i] != sums[i] {
				return 0, false, false
			}
		}
		return k, false, true
	}
	return 0, false, false
}

// prefixCandidates scans the store directory for files that could serve
// (b, opts), best candidate first: partial loads (smallest stored bank
// first — fewest blocks to read), then extension bases (longest stored
// prefix first — smallest suffix to build). Files are pre-filtered by
// the sanitized bank-name prefix DirStore.Path gives every save, so an
// exact miss probes only the requesting bank's own lineage — O(files
// of this bank) metadata reads, not O(store) full-file opens — at the
// cost that a bank re-loaded under a different display name rebuilds
// instead of reusing (sound: reuse is opportunistic).
func (s *DirStore) prefixCandidates(b *bank.Bank, opts index.Options, exactPath string) []probeResult {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	namePrefix := sanitizeName(b.Name) + "-"
	var out []probeResult
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, FileExt) || !strings.HasPrefix(name, namePrefix) {
			continue
		}
		path := filepath.Join(s.dir, name)
		if path == exactPath {
			continue
		}
		info, err := Probe(path)
		if err != nil {
			continue
		}
		if k, part, ok := compatPrefix(info, b, opts); ok {
			out = append(out, probeResult{path: path, info: info, k: k, part: part})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].part != out[j].part {
			return out[i].part
		}
		if out[i].part {
			return out[i].k < out[j].k
		}
		return out[i].k > out[j].k
	})
	return out
}

// loadPrefixExtend fully validates a legacy v2 candidate file as a
// prefix of b and extends it into the complete index for (b, opts).
// The file's frame (checksum included) and its prefix identity are
// re-checked from scratch — the probe's cheap pass authorizes nothing —
// and index.ExtendFromParts re-validates the decoded CSR structure
// before the merge, so a hostile candidate fails closed. The copying
// reader is used unconditionally: the merged index owns fresh arrays
// anyway, so an mmap would only be a detour.
func loadPrefixExtend(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	h, s, err := parseFrame(buf)
	if err != nil {
		return nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, err
	}
	k, err := h.checkPrefixBank(s, b)
	if err != nil {
		return nil, err
	}
	ix, err := index.ExtendFromParts(b, opts, index.Parts{
		Starts:     decodeWords[int32](s.starts),
		Pos:        decodeWords[int32](s.pos),
		Codes:      decodeWords[seed.Code](s.codes),
		OccSeq:     decodeWords[int32](s.occSeq),
		OccLo:      decodeWords[int32](s.occLo),
		OccHi:      decodeWords[int32](s.occHi),
		Indexed:    int(h.indexed),
		MaskedOut:  int(h.maskedOut),
		SampledOut: int(h.sampledOut),
	}, b.PrefixLen(k))
	if err != nil {
		return nil, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, nil
}

// extendV3 completes a stored v3 prefix file into the full index for
// (b, opts): decode the stored blocks (each CRC-checked) against the
// grown bank — block coordinates are append-stable, so they are valid
// verbatim — build one block over the appended suffix, and reassemble.
// Only the suffix is scanned; the returned footer and suffix block let
// the caller append in place.
func (s *DirStore) extendV3(path string, b *bank.Bank, opts index.Options, k int) (*ixcache.Prepared, *index.BlockParts, *footerV3, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := decodeHeaderV3(buf)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, nil, nil, err
	}
	ftr, err := parseFooterV3(buf, int64(len(buf)))
	if err != nil {
		return nil, nil, nil, err
	}
	if int(ftr.numSeqs) != k || k >= b.NumSeqs() || ftr.dataLen != uint64(b.PrefixLen(k)) {
		return nil, nil, nil, errors.Join(ErrKeyMismatch,
			errors.New("ixdisk: stored file is not the expected strict prefix"))
	}
	if err := ftr.checkPrefixSums(b, k); err != nil {
		return nil, nil, nil, err
	}
	blocks := make([]index.BlockParts, 0, len(ftr.dir)+1)
	for _, e := range ftr.dir {
		bp, err := decodeBlock(buf[e.offset:e.offset+e.length], e, false)
		if err != nil {
			return nil, nil, nil, err
		}
		blocks = append(blocks, bp)
	}
	s.blockLoads.Add(int64(len(ftr.dir)))
	suffix, err := index.BuildBlock(b, opts, k, b.NumSeqs())
	if err != nil {
		return nil, nil, nil, err
	}
	blocks = append(blocks, suffix)
	ix, err := index.FromBlocks(b, opts, blocks)
	if err != nil {
		return nil, nil, nil, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, &suffix, ftr, nil
}

// loadViaPrefix is the exact-miss fallback of DirStore.Load: find the
// best stored relative of (b, opts) and serve the request from it —
// partial-load a larger stored file, or complete a stored prefix and
// persist the result. A clean (nil, nil) miss when no candidate
// survives — never an error, reuse is best-effort.
func (s *DirStore) loadViaPrefix(b *bank.Bank, opts index.Options, exactPath string) (*ixcache.Prepared, error) {
	for _, cand := range s.prefixCandidates(b, opts, exactPath) {
		if cand.part {
			p, loaded, _, err := loadV3Prefix(cand.path, b, opts)
			if err != nil {
				continue
			}
			s.blockLoads.Add(int64(loaded))
			s.memoize(exactPath, b, p, nil)
			// Nothing to write back: the stored file already holds this
			// bank's blocks (and more). Touching keeps the GC honest about
			// the file being in active use.
			touchFile(cand.path)
			return p, nil
		}
		if cand.info.Version == version3 {
			p, suffix, ftr, err := s.extendV3(cand.path, b, opts, cand.k)
			if err != nil {
				continue
			}
			s.extends.Add(1)
			s.memoize(exactPath, b, p, nil)
			s.persistAppend(cand.path, exactPath, p, suffix, ftr)
			return p, nil
		}
		p, err := loadPrefixExtend(cand.path, b, opts)
		if err != nil {
			continue
		}
		s.extends.Add(1)
		s.memoize(exactPath, b, p, nil)
		// Legacy v2 prefix: write the completed index back in full under
		// the exact key — the v2→v3 heal-by-rewrite for the prefix case.
		// Failure never fails the load — the next cold process just
		// extends again — but a genuine I/O failure is counted
		// (WriteBackErrors) so a store that can no longer be written
		// doesn't read as healthy; a policy decline is already counted by
		// Save itself.
		if err := s.Save(p); err != nil && !errors.Is(err, ixcache.ErrSaveDeclined) {
			s.writeBackErrs.Add(1)
		}
		return p, nil
	}
	return nil, nil
}

// persistAppend makes a completed v3 extension durable by the O(suffix)
// route: write the suffix block over the old footer, write the grown
// footer, rename the file to the exact key's path. Policy-gated and
// best-effort like every write-back; if the in-place append fails a
// full save is attempted before counting a write-back error.
func (s *DirStore) persistAppend(oldPath, exactPath string, p *ixcache.Prepared, suffix *index.BlockParts, ftr *footerV3) {
	s.mu.Lock()
	pol := s.policy
	isDB := s.dbBanks[p.Bank]
	gcCfg := s.gcCfg
	s.mu.Unlock()
	if !pol.allows(p.Bank, isDB) {
		s.savesDeclined.Add(1)
		return
	}
	if err := appendBlockAt(oldPath, exactPath, p.Bank, suffix, ftr); err != nil {
		if err := s.Save(p); err != nil && !errors.Is(err, ixcache.ErrSaveDeclined) {
			s.writeBackErrs.Add(1)
		}
		return
	}
	s.blockAppends.Add(1)
	touchFile(exactPath)
	if gcCfg.MaxBytes > 0 || gcCfg.MaxAge > 0 {
		_, _ = s.GC()
	}
}

// Extends returns how many exact misses this store satisfied by
// completing a stored prefix index over its appended suffix (v3 block
// appends and legacy v2 suffix extensions both count) — the
// append-aware reuse counter the CLIs surface next to builds and disk
// hits.
func (s *DirStore) Extends() int64 { return s.extends.Load() }

// SavesDeclined returns how many saves the store's SavePolicy refused.
func (s *DirStore) SavesDeclined() int64 { return s.savesDeclined.Load() }

// WriteBackErrors returns how many extension write-backs failed with a
// genuine I/O error (policy declines excluded). These never pass
// through the cache's save path, so they are invisible to
// ixcache.Cache.DiskErrors; the CLIs add the two counters together.
func (s *DirStore) WriteBackErrors() int64 { return s.writeBackErrs.Load() }

// BlockLoads returns how many v3 blocks the store has decoded and
// CRC-checked from disk — exact loads, partial loads, and extension
// bases all count, so BlockLoads < (blocks on disk touched · loads)
// quantifies how much partial loading saves.
func (s *DirStore) BlockLoads() int64 { return s.blockLoads.Load() }

// BlockAppends returns how many times the store grew a stored v3 file
// in place by exactly one suffix block (plus footer) instead of
// rewriting it.
func (s *DirStore) BlockAppends() int64 { return s.blockAppends.Load() }
