package ixdisk

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// Append-aware reuse: satisfying an exact miss from a stored prefix.
//
// Whole-bank identity makes a growing bank pathological: append one EST
// run and every cached index of the bank is garbage. The per-sequence
// checksum vector (format v2) fixes the granularity — a stored file
// whose recorded sequences are exactly the first k of the requesting
// bank indexes a byte-identical Data prefix, and bank coordinates are
// append-stable, so the stored CSR arrays feed index.ExtendFromParts
// and only the appended suffix is scanned.
//
// The flow on an exact miss: scan the directory, cheaply probe each
// .orix header (144 bytes + the checksum vector — no full read, no
// whole-file CRC), collect prefix-compatible candidates, and try them
// longest-prefix-first with full validation. The first success is
// counted under Extends, memoized under the exact key's path, and
// written back under the exact key (policy permitting) so the next
// process exact-hits instead of re-extending. Every failure — corrupt
// candidate, checksum mismatch, hostile content — just drops to the
// next candidate and ultimately to a clean miss: the build fallback is
// always sound, so this whole path is opportunistic.

// probeResult is one prefix-compatible candidate file.
type probeResult struct {
	path string
	k    int // stored sequence count (strictly < the requesting bank's)
}

// probePrefix cheaply decides whether path could extend to (b, opts):
// it reads only the header and the per-sequence checksum section and
// checks the prefix identity. No whole-file checksum — the full load
// re-validates everything before any byte is trusted.
func probePrefix(path string, b *bank.Bank, opts index.Options) (int, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, false
	}
	h, err := decodeHeader(hdr)
	if err != nil {
		return 0, false
	}
	if h.checkOptionsKey(opts) != nil {
		return 0, false
	}
	if k := int(h.numSeqs); k < 1 || k >= b.NumSeqs() {
		return 0, false
	}
	sums := make([]byte, 8*h.secLen[0])
	if _, err := io.ReadFull(f, sums); err != nil {
		return 0, false
	}
	k, err := h.checkPrefixBank(&sections{seqSums: sums}, b)
	if err != nil {
		return 0, false
	}
	return k, true
}

// prefixCandidates scans the store directory for files that could
// extend to (b, opts), longest stored prefix first. Files are
// pre-filtered by the sanitized bank-name prefix DirStore.Path gives
// every save, so an exact miss probes only the requesting bank's own
// lineage — O(files of this bank), not O(store) opens — at the cost
// that a bank re-loaded under a different display name rebuilds
// instead of extending (sound: extension is opportunistic).
func (s *DirStore) prefixCandidates(b *bank.Bank, opts index.Options, exactPath string) []probeResult {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	namePrefix := sanitizeName(b.Name) + "-"
	var out []probeResult
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, FileExt) || !strings.HasPrefix(name, namePrefix) {
			continue
		}
		path := filepath.Join(s.dir, name)
		if path == exactPath {
			continue
		}
		if k, ok := probePrefix(path, b, opts); ok {
			out = append(out, probeResult{path: path, k: k})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k > out[j].k })
	return out
}

// loadPrefixExtend fully validates a candidate file as a prefix of b
// and extends it into the complete index for (b, opts). The file's
// frame (checksum included) and its prefix identity are re-checked
// from scratch — the probe's cheap pass authorizes nothing — and
// index.ExtendFromParts re-validates the decoded CSR structure before
// the merge, so a hostile candidate fails closed. The copying reader
// is used unconditionally: the merged index owns fresh arrays anyway,
// so an mmap would only be a detour.
func loadPrefixExtend(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	h, s, err := parseFrame(buf)
	if err != nil {
		return nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, err
	}
	k, err := h.checkPrefixBank(s, b)
	if err != nil {
		return nil, err
	}
	ix, err := index.ExtendFromParts(b, opts, index.Parts{
		Starts:     decodeWords[int32](s.starts),
		Pos:        decodeWords[int32](s.pos),
		Codes:      decodeWords[seed.Code](s.codes),
		OccSeq:     decodeWords[int32](s.occSeq),
		OccLo:      decodeWords[int32](s.occLo),
		OccHi:      decodeWords[int32](s.occHi),
		Indexed:    int(h.indexed),
		MaskedOut:  int(h.maskedOut),
		SampledOut: int(h.sampledOut),
	}, b.PrefixLen(k))
	if err != nil {
		return nil, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, nil
}

// loadViaPrefix is the exact-miss fallback of DirStore.Load: find the
// longest stored prefix of (b, opts), extend it, memoize and write the
// result back under the exact key. A clean (nil, nil) miss when no
// candidate survives — never an error, extension is best-effort.
func (s *DirStore) loadViaPrefix(b *bank.Bank, opts index.Options, exactPath string) (*ixcache.Prepared, error) {
	for _, cand := range s.prefixCandidates(b, opts, exactPath) {
		p, err := loadPrefixExtend(cand.path, b, opts)
		if err != nil {
			continue
		}
		s.extends.Add(1)
		s.memoize(exactPath, b, p, nil)
		// Write back under the exact key so later processes exact-hit
		// (and the stale prefix file ages out via GC). Failure never
		// fails the load — the next cold process just extends again —
		// but a genuine I/O failure is counted (WriteBackErrors) so a
		// store that can no longer be written doesn't read as healthy;
		// a policy decline is already counted by Save itself.
		if err := s.Save(p); err != nil && !errors.Is(err, ixcache.ErrSaveDeclined) {
			s.writeBackErrs.Add(1)
		}
		return p, nil
	}
	return nil, nil
}

// Extends returns how many exact misses this store satisfied by
// suffix-extending a stored prefix index — the append-aware reuse
// counter the CLIs surface next to builds and disk hits.
func (s *DirStore) Extends() int64 { return s.extends.Load() }

// SavesDeclined returns how many saves the store's SavePolicy refused.
func (s *DirStore) SavesDeclined() int64 { return s.savesDeclined.Load() }

// WriteBackErrors returns how many extension write-backs failed with a
// genuine I/O error (policy declines excluded). These never pass
// through the cache's save path, so they are invisible to
// ixcache.Cache.DiskErrors; the CLIs add the two counters together.
func (s *DirStore) WriteBackErrors() int64 { return s.writeBackErrs.Load() }
