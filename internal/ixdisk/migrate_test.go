package ixdisk

// The v2→v3 migration matrix: legacy v2 files stay readable, exact
// loads heal them by rewrite to v3, prefix extensions from v2 bases
// write back v3, and the v3-specific behaviors — O(suffix) in-place
// appends, partial block-boundary loads, block-granular API — hold the
// byte-identity invariant against cold builds throughout. Hostile v3
// block footers are rejected by both readers.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// TestV2ReadCompat: files written by the byte-exact legacy writer load
// through both readers, identical to a cold build, across the option
// matrix.
func TestV2ReadCompat(t *testing.T) {
	b := genBank(t, "v2compat", 4096)
	for name, opts := range optionVariants() {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ix"+FileExt)
			built := ixcache.Prepare(b, opts)
			if err := saveV2(path, built); err != nil {
				t.Fatal(err)
			}
			info, err := Probe(path)
			if err != nil || info.Version != version {
				t.Fatalf("Probe of v2 file: version %v, err %v", info, err)
			}
			loaded, err := Load(path, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertIndexEqual(t, built.Ix, loaded.Ix)
			mapped, m, err := LoadMapped(path, b, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			assertIndexEqual(t, built.Ix, mapped.Ix)
		})
	}
}

// TestV2HealByRewrite: a DirStore exact load of a v2 file serves it
// and rewrites it as v3 under the same path; the healed file serves
// the identical index.
func TestV2HealByRewrite(t *testing.T) {
	dir := t.TempDir()
	b := genBank(t, "heal", 4096)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	built := ixcache.Prepare(b, opts)
	path := store.Path(b, opts)
	if err := saveV2(path, built); err != nil {
		t.Fatal(err)
	}

	p, err := store.Load(b, opts)
	if err != nil || p == nil {
		t.Fatalf("exact load of v2 file: %v, %v", p, err)
	}
	assertIndexEqual(t, built.Ix, p.Ix)

	info, err := Probe(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != version3 {
		t.Fatalf("after heal the file is version %d, want %d", info.Version, version3)
	}
	if len(info.Blocks) == 0 {
		t.Fatal("healed v3 file has no block directory")
	}

	// A fresh store serves the healed file, still byte-identical.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	b2 := genBank(t, "heal", 4096)
	p2, err := store2.Load(b2, opts)
	if err != nil || p2 == nil {
		t.Fatalf("load of healed file: %v, %v", p2, err)
	}
	assertIndexEqual(t, ixcache.Prepare(b2, opts).Ix, p2.Ix)
}

// TestV2PrefixExtendWritesV3: an exact miss satisfied by extending a
// stored v2 prefix writes the completed index back as v3 — the heal
// path for prefix files.
func TestV2PrefixExtendWritesV3(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 5)
	short := bank.New("db", recs[:4])
	grown := bank.New("db", recs)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := saveV2(store.Path(short, opts), ixcache.Prepare(short, opts)); err != nil {
		t.Fatal(err)
	}

	p, err := store.Load(grown, opts)
	if err != nil || p == nil {
		t.Fatalf("extend from v2 prefix: %v, %v", p, err)
	}
	if store.Extends() != 1 {
		t.Errorf("Extends = %d, want 1", store.Extends())
	}
	if store.BlockAppends() != 0 {
		t.Errorf("BlockAppends = %d, want 0 (v2 base cannot be appended in place)", store.BlockAppends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown, opts).Ix, p.Ix)

	info, err := Probe(store.Path(grown, opts))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != version3 {
		t.Fatalf("write-back is version %d, want %d", info.Version, version3)
	}
}

// TestV3AppendInPlace is the tentpole byte-level invariant: completing
// a stored v3 prefix appends exactly one block — the stored file's
// header and blocks are an unchanged byte prefix of the result, the
// directory grows by one entry, and the file moves to the grown bank's
// key path.
func TestV3AppendInPlace(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 6)
	short := bank.New("db", recs[:4])
	grown := bank.New("db", recs)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetBlockSeqs(2) // 4 sequences → 2 stored blocks
	if err := store.Save(ixcache.Prepare(short, opts)); err != nil {
		t.Fatal(err)
	}
	oldPath := store.Path(short, opts)
	oldBytes, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	oldInfo, err := Probe(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(oldInfo.Blocks) != 2 {
		t.Fatalf("stored file has %d blocks, want 2", len(oldInfo.Blocks))
	}

	p, err := store.Load(grown, opts)
	if err != nil || p == nil {
		t.Fatalf("append load: %v, %v", p, err)
	}
	if store.Extends() != 1 || store.BlockAppends() != 1 {
		t.Errorf("Extends/BlockAppends = %d/%d, want 1/1", store.Extends(), store.BlockAppends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown, opts).Ix, p.Ix)

	if _, err := os.Stat(oldPath); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("old path still exists after in-place append rename: %v", err)
	}
	newPath := store.Path(grown, opts)
	newBytes, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	newInfo, err := Probe(newPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(newInfo.Blocks) != len(oldInfo.Blocks)+1 {
		t.Errorf("append grew the directory from %d to %d blocks, want exactly one more",
			len(oldInfo.Blocks), len(newInfo.Blocks))
	}
	if !bytes.Equal(newBytes[:oldInfo.PayloadEnd], oldBytes[:oldInfo.PayloadEnd]) {
		t.Error("stored prefix bytes changed across the append")
	}
	suffixBytes := int64(len(newBytes)) - oldInfo.PayloadEnd
	if suffixBytes <= 0 || suffixBytes >= int64(len(oldBytes)) {
		t.Errorf("append wrote %d bytes beyond the old payload (old file: %d) — not O(suffix)",
			suffixBytes, len(oldBytes))
	}

	// The appended file exact-hits in a fresh store, byte-identical.
	store2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	grown2 := bank.New("db", recs)
	p2, err := store2.Load(grown2, opts)
	if err != nil || p2 == nil {
		t.Fatalf("warm load of appended file: %v, %v", p2, err)
	}
	if store2.Extends() != 0 {
		t.Errorf("second store extended (%d) instead of exact-hitting", store2.Extends())
	}
	assertIndexEqual(t, ixcache.Prepare(grown2, opts).Ix, p2.Ix)
}

// TestV3PartialLoad: a bank that is a block-boundary prefix of a
// stored file is served by reading only the covering blocks — fewer
// block loads than the file holds, no build, no extension, identical
// to a cold build of the prefix bank.
func TestV3PartialLoad(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 6)
	prefix := bank.New("db", recs[:4])
	grown := bank.New("db", recs)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetBlockSeqs(2) // 6 sequences → 3 blocks, boundary at 4
	if err := store.Save(ixcache.Prepare(grown, opts)); err != nil {
		t.Fatal(err)
	}
	total := 3
	if info, err := Probe(store.Path(grown, opts)); err != nil || len(info.Blocks) != total {
		t.Fatalf("stored file: %+v, %v — want %d blocks", info, err, total)
	}

	p, err := store.Load(prefix, opts)
	if err != nil || p == nil {
		t.Fatalf("partial load: %v, %v", p, err)
	}
	if got := store.BlockLoads(); got != 2 {
		t.Errorf("BlockLoads = %d, want 2 (of %d on disk)", got, total)
	}
	if store.Extends() != 0 || store.BlockAppends() != 0 {
		t.Errorf("partial load counted as extension: Extends=%d BlockAppends=%d",
			store.Extends(), store.BlockAppends())
	}
	assertIndexEqual(t, ixcache.Prepare(prefix, opts).Ix, p.Ix)

	// Not a boundary: a 3-sequence prefix falls between blocks and must
	// miss cleanly (build fallback), never serve a wrong index.
	odd := bank.New("db", recs[:3])
	pOdd, err := store.Load(odd, opts)
	if err != nil {
		t.Fatalf("non-boundary prefix load errored: %v", err)
	}
	if pOdd != nil {
		t.Fatal("non-boundary prefix was served from blocks")
	}
}

// TestLoadBlocksPartialRanges: the block-aware store API returns a
// structurally valid partial index holding exactly the requested
// ranges' blocks.
func TestLoadBlocksPartialRanges(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 6)
	b := bank.New("db", recs)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetBlockSeqs(2)
	if err := store.Save(ixcache.Prepare(b, opts)); err != nil {
		t.Fatal(err)
	}

	p, err := store.LoadBlocks(b, opts, []ixcache.SeqRange{{Lo: 2, Hi: 4}})
	if err != nil || p == nil {
		t.Fatalf("LoadBlocks: %v, %v", p, err)
	}
	if got := store.BlockLoads(); got != 1 {
		t.Errorf("BlockLoads = %d, want 1", got)
	}
	// The partial index holds exactly the middle block's occurrences:
	// every occurrence's sequence is in [2, 4), and the count matches
	// the cold build restricted to that Data range.
	full := ixcache.Prepare(b, opts).Ix
	lo, hi := int32(b.PrefixLen(2)), int32(b.PrefixLen(4))
	want := 0
	for _, pos := range full.Parts().Pos {
		if pos >= lo && pos < hi {
			want++
		}
	}
	parts := p.Ix.Parts()
	if parts.Indexed != want {
		t.Errorf("partial index holds %d occurrences, the range holds %d", parts.Indexed, want)
	}
	for _, pos := range parts.Pos {
		if pos < lo || pos >= hi {
			t.Fatalf("partial index leaked position %d outside [%d,%d)", pos, lo, hi)
		}
	}

	// Full-range request equals the whole index.
	pAll, err := store.LoadBlocks(b, opts, nil)
	if err != nil || pAll == nil {
		t.Fatalf("LoadBlocks(nil): %v, %v", pAll, err)
	}
	assertIndexEqual(t, full, pAll.Ix)
}

// TestAppendBlockAPI: the explicit AppendBlock entry point appends in
// place when the stored prefix exists and degrades to a full save when
// it does not.
func TestAppendBlockAPI(t *testing.T) {
	dir := t.TempDir()
	recs := genRecs(t, 600, 5)
	short := bank.New("db", recs[:3])
	grown := bank.New("db", recs)
	opts := index.Options{W: 8}
	store, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Save(ixcache.Prepare(short, opts)); err != nil {
		t.Fatal(err)
	}

	p := ixcache.Prepare(grown, opts)
	if err := store.AppendBlock(p, short.NumSeqs()); err != nil {
		t.Fatal(err)
	}
	if store.BlockAppends() != 1 {
		t.Errorf("BlockAppends = %d, want 1", store.BlockAppends())
	}
	loaded, err := Load(store.Path(grown, opts), grown, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, p.Ix, loaded.Ix)

	// No stored prefix for this bank: AppendBlock degrades to Save.
	other := bank.New("other", recs)
	pOther := ixcache.Prepare(other, opts)
	if err := store.AppendBlock(pOther, 3); err != nil {
		t.Fatal(err)
	}
	if store.BlockAppends() != 1 {
		t.Errorf("BlockAppends = %d after fallback, want still 1", store.BlockAppends())
	}
	if _, err := os.Stat(store.Path(other, opts)); err != nil {
		t.Errorf("fallback full save missing: %v", err)
	}
}

// TestHostileV3Files: crafted corruptions of the v3 framing — footer,
// directory, blocks — are rejected by both readers with the right
// sentinel, and never crash.
func TestHostileV3Files(t *testing.T) {
	b := genBank(t, "hostile3", 2048)
	opts := index.Options{W: 8}
	// Multi-block file so directory attacks have room.
	save := func(t *testing.T) (string, []byte) {
		t.Helper()
		path := filepath.Join(t.TempDir(), "ix"+FileExt)
		p := ixcache.Prepare(b, opts)
		var cuts []int
		for c := 1; c < b.NumSeqs(); c++ {
			cuts = append(cuts, c)
		}
		blocks := index.SplitBlocks(p.Ix, cuts)
		if len(blocks) < 2 {
			t.Fatal("need a multi-block file for hostile directory tests")
		}
		if err := SaveBlocks(path, p, 1); err != nil {
			t.Fatal(err)
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, buf
	}

	footerStart := func(buf []byte) int {
		flen := binary.LittleEndian.Uint32(buf[len(buf)-12:])
		return len(buf) - int(flen)
	}

	cases := map[string]struct {
		mutate func(t *testing.T, buf []byte) []byte
		want   error
	}{
		"endMagicGone": {func(t *testing.T, buf []byte) []byte {
			buf[len(buf)-1] ^= 0x40
			return buf
		}, ErrTruncated},
		"truncatedLastBlock": {func(t *testing.T, buf []byte) []byte {
			// Drop bytes from the middle (the last block region), keeping
			// the footer: the directory then points past its blocks.
			fs := footerStart(buf)
			return append(buf[:fs-16:fs-16], buf[fs:]...)
		}, ErrTruncated},
		"footerCRCFlip": {func(t *testing.T, buf []byte) []byte {
			buf[footerStart(buf)+8] ^= 0x01 // bankCRC byte under the footer CRC
			return buf
		}, ErrChecksum},
		"dirOverlap": {func(t *testing.T, buf []byte) []byte {
			// Rewrite block 1's directory offset to overlap block 0, then
			// re-seal the footer CRC so only the structural check can
			// object.
			fs := footerStart(buf)
			ftr, err := parseFooterV3(buf[fs:], int64(len(buf)))
			if err != nil {
				t.Fatal(err)
			}
			numSeqs := int(ftr.numSeqs)
			entOff := fs + footerFixed + 8*numSeqs + dirEntSize // entry 1
			binary.LittleEndian.PutUint64(buf[entOff:], ftr.dir[0].offset)
			resealFooter(buf, fs)
			return buf
		}, ErrTruncated},
		"dirSeqGap": {func(t *testing.T, buf []byte) []byte {
			fs := footerStart(buf)
			ftr, err := parseFooterV3(buf[fs:], int64(len(buf)))
			if err != nil {
				t.Fatal(err)
			}
			entOff := fs + footerFixed + 8*int(ftr.numSeqs) + dirEntSize
			binary.LittleEndian.PutUint32(buf[entOff+16:], ftr.dir[1].seqLo+1)
			resealFooter(buf, fs)
			return buf
		}, ErrTruncated},
		"blockCRCFlip": {func(t *testing.T, buf []byte) []byte {
			buf[headerSizeV3+blockHdrSize] ^= 0x01 // first section byte of block 0
			return buf
		}, ErrChecksum},
		"blockRangeLie": {func(t *testing.T, buf []byte) []byte {
			// Block header disagrees with the (resealed) directory.
			buf[headerSizeV3+8] ^= 0x01 // block 0 seqLo
			return buf
		}, ErrChecksum},
		"headerCRCFlip": {func(t *testing.T, buf []byte) []byte {
			buf[16] ^= 0x01 // W field under the header CRC
			return buf
		}, ErrChecksum},
		"footerLenZero": {func(t *testing.T, buf []byte) []byte {
			binary.LittleEndian.PutUint32(buf[len(buf)-12:], 0)
			return buf
		}, ErrTruncated},
		"footerLenHuge": {func(t *testing.T, buf []byte) []byte {
			binary.LittleEndian.PutUint32(buf[len(buf)-12:], uint32(len(buf)+1024))
			return buf
		}, ErrTruncated},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			path, buf := save(t)
			mutated := tc.mutate(t, buf)
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			loadBoth(t, path, b, opts, tc.want)
		})
	}
}

// resealFooter recomputes the footer CRC after a directory mutation so
// the structural validators — not the checksum — must catch the lie.
func resealFooter(buf []byte, fs int) {
	end := len(buf) - trailerSize
	binary.LittleEndian.PutUint32(buf[end:], crc32.Checksum(buf[fs:end], crc32Table))
}

// TestMultiBlockMappedFallback: LoadMapped on a multi-block file
// returns a valid copied index and a non-mapped Mapping.
func TestMultiBlockMappedFallback(t *testing.T) {
	b := genBank(t, "mb", 4096)
	opts := index.Options{W: 8}
	path := filepath.Join(t.TempDir(), "ix"+FileExt)
	built := ixcache.Prepare(b, opts)
	if err := SaveBlocks(path, built, 1); err != nil {
		t.Fatal(err)
	}
	p, m, err := LoadMapped(path, b, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Mapped() {
		t.Error("multi-block file claimed a live mapping")
	}
	assertIndexEqual(t, built.Ix, p.Ix)
	// Independence: the copied index survives file removal.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	assertIndexEqual(t, built.Ix, p.Ix)
}

// TestProbeMetadata: the probe reports versions, identity, and block
// directories without payload access.
func TestProbeMetadata(t *testing.T) {
	b := genBank(t, "probe", 2048)
	opts := index.Options{W: 8}
	dir := t.TempDir()
	p := ixcache.Prepare(b, opts)

	v2path := filepath.Join(dir, "v2"+FileExt)
	if err := saveV2(v2path, p); err != nil {
		t.Fatal(err)
	}
	v3path := filepath.Join(dir, "v3"+FileExt)
	if err := SaveBlocks(v3path, p, 1); err != nil {
		t.Fatal(err)
	}

	sums := b.SeqChecksums()
	for _, path := range []string{v2path, v3path} {
		info, err := Probe(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.BankCRC != BankChecksum(b) || info.DataLen != int64(len(b.Data)) ||
			info.NumSeqs != b.NumSeqs() {
			t.Errorf("%s: identity %+v does not match bank", path, info)
		}
		if !ixcache.SameKey(info.Opts, opts) {
			t.Errorf("%s: options %+v do not key-match", path, info.Opts)
		}
		for i, sum := range sums {
			if info.SeqSums[i] != sum {
				t.Fatalf("%s: SeqSums[%d] mismatch", path, i)
			}
		}
	}
	i2, _ := Probe(v2path)
	i3, _ := Probe(v3path)
	if i2.Version != version || i3.Version != version3 {
		t.Errorf("versions %d/%d, want %d/%d", i2.Version, i3.Version, version, version3)
	}
	if i2.Blocks != nil {
		t.Error("v2 probe invented a block directory")
	}
	if len(i3.Blocks) != b.NumSeqs() {
		t.Errorf("v3 probe found %d blocks, want %d (blockSeqs=1)", len(i3.Blocks), b.NumSeqs())
	}
	if i3.PayloadEnd >= fileSize(t, v3path) {
		t.Error("v3 PayloadEnd not before the footer")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
