// Package ixdisk persists built CSR bank indexes across processes: the
// on-disk tier below package ixcache's in-memory LRU. The ordered-index
// design front-loads work into the index build so intensive comparison
// amortizes it (PAPER.md); PR 2 made one process amortize it across
// pairs, and this package makes the artifact durable the way inverted-
// index aligners treat their index — a database file built once per
// bank, not a per-run allocation.
//
// # File formats
//
// The current format is version 3 — block-structured: an options-key
// header, per-sequence-group CSR blocks each carrying its own CRC-32C,
// and a footer holding the bank identity (content CRC-64, per-sequence
// checksum vector) plus a directory of block offsets and ranges. The
// full layout, append discipline, and partial-load rules live in v3.go
// and DESIGN.md §7. The structure buys three things the monolithic
// layout could not offer: appending to a bank writes exactly one new
// block plus a footer (O(suffix), the file is never rewritten), a bank
// that is a block-boundary prefix of a stored file loads by reading
// only its covering blocks, and a fleet worker can hold a partial
// index (DirStore.LoadBlocks).
//
// Version 2 — the monolithic layout: one 144-byte header carrying the
// identity key and counters, seven whole-bank sections (SeqSums, then
// the six CSR arrays), one trailing whole-file CRC-32C — remains fully
// readable. An exact load of a v2 file heals it by rewrite: the
// validated index is saved back in v3 under the same path, policy
// permitting. saveV2 keeps the v2 writer byte-exact for the migration
// tests. Version-1 files are rejected with ErrVersion like any other
// unknown version — the store heals them by rebuild — rather than
// being read without the per-sequence identity they lack.
//
// # Invalidation and append-aware reuse
//
// A file is valid only for the exact (bank content, index options) it
// was saved from. Load and LoadMapped reject, with descriptive errors:
// wrong magic, unknown version, truncated or size-inconsistent files,
// checksum mismatches, and key mismatches (different bank content, W,
// sampling, or dust parameters). Rejection is always safe: the caller
// (ixcache's disk tier) falls back to a fresh build and overwrites the
// bad file, healing the store in place.
//
// The per-sequence checksum vector makes identity finer than
// all-or-nothing: when DirStore misses exactly, it scans the directory
// (metadata-only, via Probe) for a file recording a relative of the
// requesting bank, in either direction. A stored file recording the
// first k sequences of the request is completed by building one block
// over the appended suffix and appended in place (prefix.go); a stored
// file recording a larger bank of which the request is a block-boundary
// prefix is served by loading only the covering blocks. Either way a
// grown bank pays the suffix once and exact-hits ever after.
package ixdisk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
)

// Format constants. Version bumps whenever the layout changes; readers
// reject anything they were not compiled for rather than guess.
const (
	magic      = "ORISIXDB"
	version    = 2
	headerSize = 144
	// FileExt is the extension DirStore gives its index files.
	FileExt = ".orix"
	// tmpPattern is the os.CreateTemp pattern for Save's staging files;
	// the GC sweep recognizes litter from killed writers by its prefix.
	tmpPattern = ".orix-tmp-*"
	tmpPrefix  = ".orix-tmp-"
)

// Sentinel errors; returned wrapped with file-specific detail, so test
// with errors.Is.
var (
	ErrBadMagic    = errors.New("not an ORIS index file (bad magic)")
	ErrVersion     = errors.New("unsupported index file version")
	ErrTruncated   = errors.New("index file truncated or size-inconsistent")
	ErrChecksum    = errors.New("index file checksum mismatch (corrupted)")
	ErrKeyMismatch = errors.New("index file key does not match requested (bank, options)")
)

var (
	crc32Table = crc32.MakeTable(crc32.Castagnoli)
	crc64Table = crc64.MakeTable(crc64.ECMA)
)

// BankChecksum returns the content identity of a bank: CRC-64/ECMA over
// its sentinel-bracketed coded Data. Sequence boundaries are part of
// Data (the sentinels), so two banks with equal checksums and lengths
// index identically; the bank's display name is deliberately excluded.
func BankChecksum(b *bank.Bank) uint64 {
	return crc64.Checksum(b.Data, crc64Table)
}

// header is the decoded fixed-size file header.
type header struct {
	bankCRC     uint64
	dataLen     uint64
	numSeqs     uint32
	w           uint32
	sampleStep  uint32
	samplePhase uint32
	dustOn      uint32
	dustWindow  uint32
	dustThresh  uint64 // float64 bits
	indexed     uint64
	maskedOut   uint64
	sampledOut  uint64
	secLen      [numSections]uint64 // element counts, not bytes
}

// Section order: SeqSums (8-byte elements), then the six 4-byte CSR
// sections Starts, Pos, Codes, OccSeq, OccLo, OccHi.
const numSections = 7

// keySize is the identity region of the header: bankCRC through
// dustThresh. Hashed for DirStore filenames, so the filename and the
// in-file key can never disagree.
const keySize = 48

// packKey serializes the identity fields in header order.
func packKey(dst []byte, bankCRC, dataLen uint64, numSeqs uint32, o index.Options) {
	o = o.Normalized()
	binary.LittleEndian.PutUint64(dst[0:], bankCRC)
	binary.LittleEndian.PutUint64(dst[8:], dataLen)
	binary.LittleEndian.PutUint32(dst[16:], numSeqs)
	binary.LittleEndian.PutUint32(dst[20:], uint32(o.W))
	binary.LittleEndian.PutUint32(dst[24:], uint32(o.SampleStep))
	binary.LittleEndian.PutUint32(dst[28:], uint32(o.SamplePhase))
	var dustOn, dw uint32
	var dt uint64
	if o.Dust != nil {
		dustOn = 1
		dw = uint32(o.Dust.Window)
		dt = math.Float64bits(o.Dust.Threshold)
	}
	binary.LittleEndian.PutUint32(dst[32:], dustOn)
	binary.LittleEndian.PutUint32(dst[36:], dw)
	binary.LittleEndian.PutUint64(dst[40:], dt)
}

// indexOptions reconstructs the index.Options recorded in the header.
func (h *header) indexOptions() index.Options {
	o := index.Options{
		W:           int(h.w),
		SampleStep:  int(h.sampleStep),
		SamplePhase: int(h.samplePhase),
	}
	if h.dustOn != 0 {
		o.Dust = dust.New(int(h.dustWindow), math.Float64frombits(h.dustThresh))
	}
	return o
}

// Save writes p's index to path in the current format version (v3,
// block-structured — see v3.go), atomically: the bytes go to a temp
// file in the same directory which is renamed over path only after a
// complete write, so a concurrent reader (or a crashed writer) can
// never observe a half-written file under the final name. There is no
// fsync — a torn file after power loss is caught by the checksums and
// rebuilt, the store-heals-itself property.
func Save(path string, p *ixcache.Prepared) error {
	return SaveBlocks(path, p, DefaultBlockSeqs)
}

// SaveLegacyV2 writes the legacy version-2 monolithic layout. The
// current writer is v3 (Save); this one is kept byte-exact so
// migration tests — here and in dependent packages — can manufacture
// real v2 files and prove the read-compat and heal-by-rewrite paths
// against them. It has no production caller.
func SaveLegacyV2(path string, p *ixcache.Prepared) error { return saveV2(path, p) }

func saveV2(path string, p *ixcache.Prepared) error {
	if p == nil || p.Bank == nil || p.Ix == nil || p.Ix.Bank != p.Bank {
		return errors.New("ixdisk: Save: inconsistent prepared value")
	}
	ix := p.Ix
	parts := ix.Parts()
	seqSums := p.Bank.SeqChecksums()

	hdr := make([]byte, headerSize)
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], headerSize)
	packKey(hdr[16:16+keySize], BankChecksum(p.Bank), uint64(len(p.Bank.Data)),
		uint32(p.Bank.NumSeqs()), ix.Options())
	binary.LittleEndian.PutUint64(hdr[64:], uint64(parts.Indexed))
	binary.LittleEndian.PutUint64(hdr[72:], uint64(parts.MaskedOut))
	binary.LittleEndian.PutUint64(hdr[80:], uint64(parts.SampledOut))
	for i, n := range []int{
		len(seqSums),
		len(parts.Starts), len(parts.Pos), len(parts.Codes),
		len(parts.OccSeq), len(parts.OccLo), len(parts.OccHi),
	} {
		binary.LittleEndian.PutUint64(hdr[88+8*i:], uint64(n))
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	bw := bufio.NewWriterSize(tmp, 256<<10)
	sum := crc32.New(crc32Table)
	w := io.MultiWriter(bw, sum)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords64(w, seqSums); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.Starts); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.Pos); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.Codes); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.OccSeq); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.OccLo); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := writeWords(w, parts.OccHi); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("ixdisk: Save: %w", err)
	}
	tmpName = "" // committed; disarm cleanup
	return nil
}

// word covers the two 4-byte element types of the CSR sections.
type word interface{ ~int32 | ~uint32 }

// writeWords streams a section as little-endian 4-byte elements through
// a fixed scratch buffer.
func writeWords[T word](w io.Writer, vals []T) error {
	const chunk = 8192
	var buf [4 * chunk]byte
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], uint32(vals[i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// decodeWords copies a validated byte section into a fresh slice —
// Load's portable path, correct on any host byte order.
func decodeWords[T word](sec []byte) []T {
	out := make([]T, len(sec)/4)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(sec[4*i:]))
	}
	return out
}

// writeWords64 streams the per-sequence checksum section as
// little-endian 8-byte elements.
func writeWords64(w io.Writer, vals []uint64) error {
	const chunk = 4096
	var buf [8 * chunk]byte
	for len(vals) > 0 {
		n := len(vals)
		if n > chunk {
			n = chunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], vals[i])
		}
		if _, err := w.Write(buf[:8*n]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// sections holds the validated raw byte views of the seven sections,
// aliasing the parsed buffer.
type sections struct {
	seqSums                                  []byte // 8-byte elements
	starts, pos, codes, occSeq, occLo, occHi []byte // 4-byte elements
}

// decodeHeader parses and checks the fixed-size header alone — magic,
// version, declared sizes — without touching (or requiring) the rest
// of the file. Shared by parseFrame and the cheap prefix probe.
//
//scorislint:validator
func decodeHeader(buf []byte) (*header, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("ixdisk: %w: %d bytes is below the %d-byte header",
			ErrTruncated, len(buf), headerSize)
	}
	if string(buf[0:8]) != magic {
		return nil, fmt.Errorf("ixdisk: %w: got %q", ErrBadMagic, buf[0:8])
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != version {
		return nil, fmt.Errorf("ixdisk: %w: file is version %d, reader supports %d",
			ErrVersion, v, version)
	}
	if hs := binary.LittleEndian.Uint32(buf[12:]); hs != headerSize {
		return nil, fmt.Errorf("ixdisk: %w: header size %d, want %d",
			ErrVersion, hs, headerSize)
	}

	var h header
	h.bankCRC = binary.LittleEndian.Uint64(buf[16:])
	h.dataLen = binary.LittleEndian.Uint64(buf[24:])
	h.numSeqs = binary.LittleEndian.Uint32(buf[32:])
	h.w = binary.LittleEndian.Uint32(buf[36:])
	h.sampleStep = binary.LittleEndian.Uint32(buf[40:])
	h.samplePhase = binary.LittleEndian.Uint32(buf[44:])
	h.dustOn = binary.LittleEndian.Uint32(buf[48:])
	h.dustWindow = binary.LittleEndian.Uint32(buf[52:])
	h.dustThresh = binary.LittleEndian.Uint64(buf[56:])
	h.indexed = binary.LittleEndian.Uint64(buf[64:])
	h.maskedOut = binary.LittleEndian.Uint64(buf[72:])
	h.sampledOut = binary.LittleEndian.Uint64(buf[80:])
	for i := range h.secLen {
		h.secLen[i] = binary.LittleEndian.Uint64(buf[88+8*i:])
		if h.secLen[i] > math.MaxInt32 {
			return nil, fmt.Errorf("ixdisk: %w: section %d claims %d elements",
				ErrTruncated, i, h.secLen[i])
		}
	}
	if h.secLen[0] != uint64(h.numSeqs) {
		return nil, fmt.Errorf("ixdisk: %w: %d per-sequence checksums for %d sequences",
			ErrTruncated, h.secLen[0], h.numSeqs)
	}
	return &h, nil
}

// parseFrame checks everything below identity: framing (magic, version,
// sizes), and the whole-file checksum. It returns byte views into buf;
// converting them to typed slices is the caller's choice of copy (Load)
// or alias (LoadMapped).
//
//scorislint:validator
func parseFrame(buf []byte) (*header, *sections, error) {
	if len(buf) < headerSize+4 {
		return nil, nil, fmt.Errorf("ixdisk: %w: %d bytes is below the %d-byte minimum",
			ErrTruncated, len(buf), headerSize+4)
	}
	h, err := decodeHeader(buf)
	if err != nil {
		return nil, nil, err
	}
	total := uint64(headerSize)
	for i := range h.secLen {
		total += sectionElemSize(i) * h.secLen[i]
	}
	total += 4 // trailing checksum
	if uint64(len(buf)) != total {
		return nil, nil, fmt.Errorf("ixdisk: %w: file is %d bytes, header implies %d",
			ErrTruncated, len(buf), total)
	}

	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if got := crc32.Checksum(buf[:len(buf)-4], crc32Table); got != want {
		return nil, nil, fmt.Errorf("ixdisk: %w: computed %08x, file records %08x",
			ErrChecksum, got, want)
	}

	var s sections
	off := uint64(headerSize)
	for i, dst := range []*[]byte{&s.seqSums, &s.starts, &s.pos, &s.codes, &s.occSeq, &s.occLo, &s.occHi} {
		n := sectionElemSize(i) * h.secLen[i]
		*dst = buf[off : off+n]
		off += n
	}
	return h, &s, nil
}

// sectionElemSize returns the byte width of section i's elements.
func sectionElemSize(i int) uint64 {
	if i == 0 {
		return 8 // SeqSums
	}
	return 4
}

// checkOptionsKey verifies the recorded options against the requesting
// ones through the same projection the in-memory cache uses.
//
//scorislint:validator
func (h *header) checkOptionsKey(opts index.Options) error {
	if !ixcache.SameKey(h.indexOptions(), opts) {
		o := opts.Normalized()
		return fmt.Errorf("ixdisk: %w: file built with W=%d step=%d/%d dust=%v, "+
			"requested W=%d step=%d/%d dust=%v",
			ErrKeyMismatch, h.w, h.sampleStep, h.samplePhase, h.dustOn != 0,
			o.W, o.SampleStep, o.SamplePhase, o.Dust != nil)
	}
	return nil
}

// checkExactBank verifies the recorded bank identity is exactly the
// requesting bank: whole-content CRC, length, sequence count, and the
// per-sequence checksum vector.
//
//scorislint:validator
func (h *header) checkExactBank(s *sections, b *bank.Bank) error {
	if h.dataLen != uint64(len(b.Data)) || h.numSeqs != uint32(b.NumSeqs()) ||
		h.bankCRC != BankChecksum(b) {
		return fmt.Errorf("ixdisk: %w: file indexes a different bank "+
			"(crc %016x/%d bytes/%d seqs, requested bank %q is %016x/%d/%d)",
			ErrKeyMismatch, h.bankCRC, h.dataLen, h.numSeqs,
			b.Name, BankChecksum(b), len(b.Data), b.NumSeqs())
	}
	sums := b.SeqChecksums()
	for i := range sums {
		if binary.LittleEndian.Uint64(s.seqSums[8*i:]) != sums[i] {
			return fmt.Errorf("ixdisk: %w: per-sequence checksum %d disagrees with requested bank %q",
				ErrKeyMismatch, i, b.Name)
		}
	}
	return nil
}

// checkPrefixBank verifies the recorded bank is a strict prefix of the
// requesting bank: fewer sequences, recorded data length exactly the
// prefix boundary, and every recorded per-sequence checksum matching
// the request's prefix. On success it returns the recorded sequence
// count k; the prefix boundary is then b.PrefixLen(k) == h.dataLen.
//
//scorislint:validator
func (h *header) checkPrefixBank(s *sections, b *bank.Bank) (int, error) {
	k := int(h.numSeqs)
	if k < 1 || k >= b.NumSeqs() {
		return 0, fmt.Errorf("ixdisk: %w: file records %d sequences, requested bank %q has %d",
			ErrKeyMismatch, k, b.Name, b.NumSeqs())
	}
	if h.dataLen != uint64(b.PrefixLen(k)) {
		return 0, fmt.Errorf("ixdisk: %w: file records %d data bytes, the first %d sequences of %q span %d",
			ErrKeyMismatch, h.dataLen, k, b.Name, b.PrefixLen(k))
	}
	sums := b.SeqChecksums()
	for i := 0; i < k; i++ {
		if binary.LittleEndian.Uint64(s.seqSums[8*i:]) != sums[i] {
			return 0, fmt.Errorf("ixdisk: %w: per-sequence checksum %d disagrees with the prefix of bank %q",
				ErrKeyMismatch, i, b.Name)
		}
	}
	return k, nil
}

// parseAndValidate is the exact-identity validation pass shared by Load
// and LoadMapped: framing, checksum, then the identity key against the
// requesting (bank, options).
func parseAndValidate(buf []byte, b *bank.Bank, opts index.Options) (*header, *sections, error) {
	h, s, err := parseFrame(buf)
	if err != nil {
		return nil, nil, err
	}
	if err := h.checkExactBank(s, b); err != nil {
		return nil, nil, err
	}
	if err := h.checkOptionsKey(opts); err != nil {
		return nil, nil, err
	}
	return h, s, nil
}

// prepared assembles the final value from validated sections already
// converted to typed slices.
func (h *header) prepared(b *bank.Bank, starts, pos []int32, codes []seed.Code,
	occSeq, occLo, occHi []int32) (*ixcache.Prepared, error) {
	ix, err := index.FromParts(b, h.indexOptions(), index.Parts{
		Starts: starts, Pos: pos, Codes: codes,
		OccSeq: occSeq, OccLo: occLo, OccHi: occHi,
		Indexed:    int(h.indexed),
		MaskedOut:  int(h.maskedOut),
		SampledOut: int(h.sampledOut),
	})
	if err != nil {
		return nil, err
	}
	return &ixcache.Prepared{Bank: b, Ix: ix}, nil
}

// fileVersion sniffs the format version from a file's first bytes so
// the readers can dispatch between the v2 and v3 parsers.
func fileVersion(buf []byte) (uint32, error) {
	if len(buf) < 12 {
		return 0, fmt.Errorf("ixdisk: %w: %d bytes is below the 12-byte version prefix",
			ErrTruncated, len(buf))
	}
	if string(buf[0:8]) != magic {
		return 0, fmt.Errorf("ixdisk: %w: got %q", ErrBadMagic, buf[0:8])
	}
	return binary.LittleEndian.Uint32(buf[8:]), nil
}

// loadInfo reports what a load actually did, for the store's
// block-granular accounting.
type loadInfo struct {
	version int
	blocks  int // v3 blocks decoded and CRC-checked
}

// loadBuf parses a complete in-memory file image for exactly (b, opts),
// dispatching on the sniffed version. alias requests zero-copy section
// views (v3 single-block files and v2 files only); the second return
// reports whether aliasing actually happened — when false the result
// owns its memory and buf may be unmapped.
func loadBuf(buf []byte, b *bank.Bank, opts index.Options, alias bool) (*ixcache.Prepared, bool, loadInfo, error) {
	v, err := fileVersion(buf)
	if err != nil {
		return nil, false, loadInfo{}, err
	}
	if v == version3 {
		p, blocks, aliased, err := loadV3(buf, b, opts, alias)
		return p, aliased, loadInfo{version: version3, blocks: blocks}, err
	}
	h, s, err := parseAndValidate(buf, b, opts)
	if err != nil {
		return nil, false, loadInfo{}, err
	}
	info := loadInfo{version: version}
	if alias {
		p, err := h.prepared(b,
			aliasWords[int32](s.starts), aliasWords[int32](s.pos),
			aliasWords[seed.Code](s.codes), aliasWords[int32](s.occSeq),
			aliasWords[int32](s.occLo), aliasWords[int32](s.occHi))
		return p, true, info, err
	}
	p, err := h.prepared(b,
		decodeWords[int32](s.starts), decodeWords[int32](s.pos),
		decodeWords[seed.Code](s.codes), decodeWords[int32](s.occSeq),
		decodeWords[int32](s.occLo), decodeWords[int32](s.occHi))
	return p, false, info, err
}

// Load reads, validates, and copies an index file into a fresh
// Prepared for bank b. It is the strict portable reader: every framing,
// checksum, structural, and key invariant is checked before any slice
// is handed to the engines, and the returned index owns its memory
// (nothing aliases the file). It reads both the current v3 layout and
// legacy v2 files.
func Load(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, error) {
	p, _, err := loadVersioned(path, b, opts)
	return p, err
}

// loadVersioned is Load plus the version/block accounting DirStore
// needs for its counters and the v2 heal-by-rewrite decision.
func loadVersioned(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, loadInfo, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, loadInfo{}, err
	}
	p, _, info, err := loadBuf(buf, b, opts, false)
	return p, info, err
}

// Mapping owns the mmap'd region backing a LoadMapped index. Close
// releases it — after which every slice of the index it backed is
// invalid and must not be touched (see DESIGN.md §7 on the aliasing
// caveats). A no-op Mapping (from the fallback path) closes safely.
type Mapping struct {
	data []byte
	once sync.Once
	err  error
}

// Close unmaps the region. Safe to call more than once.
func (m *Mapping) Close() error {
	m.once.Do(func() {
		if m.data != nil {
			m.err = munmap(m.data)
			m.data = nil
		}
	})
	return m.err
}

// Mapped reports whether the load actually aliased an mmap'd file (as
// opposed to the copying fallback).
func (m *Mapping) Mapped() bool { return m.data != nil }

// LoadMapped validates an index file exactly like Load but aliases the
// int32 sections directly over the mmap'd bytes — zero copy, zero
// allocation proportional to index size — so a cold process skips both
// the build and the copy. The returned Mapping must outlive every use
// of the index; pages fault in lazily on first touch (the up-front
// checksum pass does touch each page once, the price of strictness).
//
// On hosts where aliasing is impossible (no mmap, or big-endian byte
// order) it falls back to Load and returns a non-mapped Mapping. v3
// files alias when they hold a single block (the common fresh-save
// shape); multi-block v3 files are merged into fresh arrays and the
// returned Mapping is non-mapped, so callers need no version logic.
func LoadMapped(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, *Mapping, error) {
	p, m, _, err := loadMappedVersioned(path, b, opts)
	return p, m, err
}

// loadMappedVersioned is LoadMapped plus the load accounting.
func loadMappedVersioned(path string, b *bank.Bank, opts index.Options) (*ixcache.Prepared, *Mapping, loadInfo, error) {
	if !mmapSupported || !nativeLittleEndian {
		p, info, err := loadVersioned(path, b, opts)
		if err != nil {
			return nil, nil, info, err
		}
		return p, &Mapping{}, info, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, loadInfo{}, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, loadInfo{}, err
	}
	if fi.Size() > math.MaxInt32*8 {
		return nil, nil, loadInfo{}, fmt.Errorf("ixdisk: %w: file is %d bytes", ErrTruncated, fi.Size())
	}
	if fi.Size() == 0 {
		// mmap of an empty file is an error on most platforms; report
		// the truncation directly.
		return nil, nil, loadInfo{}, fmt.Errorf("ixdisk: %w: file is empty", ErrTruncated)
	}
	data, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, nil, loadInfo{}, fmt.Errorf("ixdisk: mmap %s: %w", path, err)
	}
	m := &Mapping{data: data}
	p, aliased, info, err := loadBuf(data, b, opts, true)
	if err != nil {
		m.Close()
		return nil, nil, info, err
	}
	if !aliased {
		// The index owns copies (multi-block v3 merge); drop the mapping.
		m.Close()
		return p, &Mapping{}, info, nil
	}
	return p, m, info, nil
}

// touchFile refreshes a file's mtime so the GC's oldest-first eviction
// approximates LRU over actual use. Best-effort.
func touchFile(path string) {
	now := time.Now()
	_ = os.Chtimes(path, now, now)
}

// sanitizeName keeps a bank name filesystem-safe for DirStore paths.
// Purely cosmetic — identity lives in the key hash, not the name.
func sanitizeName(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
	if len(mapped) > 40 {
		mapped = mapped[:40]
	}
	if mapped == "" {
		mapped = "bank"
	}
	return mapped
}

// DirStore is the ixcache.Store implementation over a directory: one
// file per (bank content, options) key, named by the bank's display
// name plus a CRC-64 of the identity key, so concurrent processes
// sharing the directory agree on paths without coordination (Save's
// atomic rename makes concurrent writers last-wins, both writing
// identical bytes).
//
// By default loads go through LoadMapped where the platform supports
// it; SetMapped(false) forces the copying reader. Mappings opened by a
// mapped store stay alive until Close — closing invalidates every
// index the store has loaded, so long-lived callers (CLI sessions,
// the experiment harness) simply let process exit reclaim them.
//
// Beyond exact lookups the store is lifecycle-aware (DESIGN.md §7):
// an exact miss falls back to suffix-extending a stored prefix of the
// requesting bank (Extends counts these), SetSavePolicy bounds what is
// persisted, and SetGC + GC keep the directory itself bounded.
type DirStore struct {
	dir    string
	mapped bool

	mu        sync.Mutex
	policy    SavePolicy
	gcCfg     GCConfig
	blockSeqs int
	dbBanks   map[*bank.Bank]bool
	dbOrder   []*bank.Bank
	bankCRCs  map[*bank.Bank]uint64
	crcOrder  []*bank.Bank
	loaded    map[string]*loadedEntry
	ldOrder   []string
	maps      []*Mapping

	extends       atomic.Int64
	savesDeclined atomic.Int64
	writeBackErrs atomic.Int64
	blockLoads    atomic.Int64
	blockAppends  atomic.Int64
}

// memoBound caps the per-bank and per-path memo maps. A long-lived
// process churning through query banks would otherwise grow them
// without bound (every retired *bank.Bank pointer pinned forever); the
// bound makes the memos caches, evicted FIFO, at a worst cost of one
// re-checksum or re-validate per evicted key. 64 comfortably covers
// the harness's ~30-key working set.
const memoBound = 64

// loadedEntry memoizes one successful load per path, so LRU
// evict-and-reload cycles in a bounded cache above the store return
// the already-validated index instead of mapping (and checksumming)
// the same file again — keeping the number of live mappings bounded
// by the number of distinct keys, not the number of reloads. Safe
// because a path encodes the (bank content, options) key and saved
// files for one key are byte-identical; the memo is keyed on the bank
// pointer too, since a Prepared binds to the requesting bank value.
type loadedEntry struct {
	bank *bank.Bank
	prep *ixcache.Prepared
}

// NewDirStore creates the directory if needed and returns a store
// rooted there, memory-mapped where supported. Opening a store sweeps
// temp-file litter left by writers killed mid-Save (older than
// DefaultTmpGrace, so live concurrent writers are never raced).
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ixdisk: %w", err)
	}
	s := &DirStore{
		dir:      dir,
		mapped:   mmapSupported && nativeLittleEndian,
		dbBanks:  map[*bank.Bank]bool{},
		bankCRCs: map[*bank.Bank]uint64{},
		loaded:   map[string]*loadedEntry{},
	}
	s.sweepTmp(DefaultTmpGrace, time.Now())
	return s, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

// SetMapped toggles mmap-backed loads (no-op toward true on platforms
// without support). Call before sharing the store.
func (s *DirStore) SetMapped(on bool) {
	s.mu.Lock()
	s.mapped = on && mmapSupported && nativeLittleEndian
	s.mu.Unlock()
}

// SetBlockSeqs sets the sequence-group size fresh saves are cut into
// (non-positive restores DefaultBlockSeqs). Smaller groups give finer
// partial-load granularity at the cost of per-block overhead. Call
// before sharing the store.
func (s *DirStore) SetBlockSeqs(n int) {
	s.mu.Lock()
	s.blockSeqs = n
	s.mu.Unlock()
}

// bankChecksum caches the O(N) content checksum per bank value, so a
// store consulted for many (bank, options) keys pays it once per bank.
// The memo is bounded (memoBound, FIFO): under query-bank churn in a
// long-lived process it behaves as a cache, not a leak.
func (s *DirStore) bankChecksum(b *bank.Bank) uint64 {
	s.mu.Lock()
	if crc, ok := s.bankCRCs[b]; ok {
		s.mu.Unlock()
		return crc
	}
	s.mu.Unlock()
	// Compute outside the lock: the checksum is O(bank) and pure.
	crc := BankChecksum(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bankCRCs[b]; !ok {
		s.bankCRCs[b] = crc
		s.crcOrder = append(s.crcOrder, b)
		for len(s.crcOrder) > memoBound {
			delete(s.bankCRCs, s.crcOrder[0])
			s.crcOrder = s.crcOrder[1:]
		}
	}
	return crc
}

// Path returns the file a (bank, options) key maps to. Exported so
// tests and operational scripts can inspect or corrupt specific
// entries.
func (s *DirStore) Path(b *bank.Bank, opts index.Options) string {
	return s.keyPath(b.Name, s.bankChecksum(b), uint64(len(b.Data)), uint32(b.NumSeqs()), opts)
}

// keyPath is Path for an explicit identity — used when the bank value
// for the identity does not exist (AppendBlock derives its stored
// prefix's path from the grown bank alone).
func (s *DirStore) keyPath(name string, bankCRC, dataLen uint64, numSeqs uint32, opts index.Options) string {
	var key [keySize]byte
	packKey(key[:], bankCRC, dataLen, numSeqs, opts)
	h := crc64.Checksum(key[:], crc64Table)
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x%s", sanitizeName(name), h, FileExt))
}

// Load implements ixcache.Store: (nil, nil) when no file exists for the
// key (and no stored prefix of the bank can be extended — see
// loadViaPrefix), the validated Prepared on success, and a descriptive
// error when a file exists but is rejected (the cache then rebuilds
// and Save overwrites it).
func (s *DirStore) Load(b *bank.Bank, opts index.Options) (*ixcache.Prepared, error) {
	path := s.Path(b, opts)
	s.mu.Lock()
	if e, ok := s.loaded[path]; ok && e.bank == b && e.prep.MatchesOptions(opts) {
		s.mu.Unlock()
		// Memo hits are still uses: refresh mtime so the GC's
		// oldest-first eviction never collects a file whose index this
		// process is actively serving from memory.
		now := time.Now()
		_ = os.Chtimes(path, now, now)
		return e.prep, nil
	}
	mapped := s.mapped
	s.mu.Unlock()

	var p *ixcache.Prepared
	var m *Mapping
	var info loadInfo
	var err error
	if mapped {
		p, m, info, err = loadMappedVersioned(path, b, opts)
	} else {
		p, info, err = loadVersioned(path, b, opts)
	}
	if errors.Is(err, fs.ErrNotExist) {
		return s.loadViaPrefix(b, opts, path)
	}
	if err != nil {
		return nil, err
	}
	s.blockLoads.Add(int64(info.blocks))
	// Touch the file so the GC's size-cap eviction (oldest mtime first)
	// approximates LRU over actual use, not save order. Best-effort.
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.memoize(path, b, p, m)
	if info.version == version {
		// Heal-by-rewrite: a legacy v2 file served this load, so persist
		// the validated index in the block-structured v3 layout (same
		// path — the key is unchanged). Best-effort and policy-gated like
		// any save; until it succeeds the v2 file keeps serving loads.
		if err := s.Save(p); err != nil && !errors.Is(err, ixcache.ErrSaveDeclined) {
			s.writeBackErrs.Add(1)
		}
	}
	return p, nil
}

// memoize records a successful load (or extension) for its path so LRU
// evict-and-reload cycles above the store return the validated index
// instead of re-reading the file. Bounded (memoBound, FIFO) — see
// bankChecksum — with the caveat that an evicted entry's Mapping stays
// held until Close, since the Prepared it backs may still be in use.
func (s *DirStore) memoize(path string, b *bank.Bank, p *ixcache.Prepared, m *Mapping) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.loaded[path]; !ok {
		s.ldOrder = append(s.ldOrder, path)
		for len(s.ldOrder) > memoBound {
			delete(s.loaded, s.ldOrder[0])
			s.ldOrder = s.ldOrder[1:]
		}
	}
	s.loaded[path] = &loadedEntry{bank: b, prep: p}
	if m != nil {
		// A superseded entry's mapping (same path, different bank
		// pointer) stays in maps: its Prepared may still be referenced,
		// so it is only released at Close.
		s.maps = append(s.maps, m)
	}
}

// Save implements ixcache.Store: persist a freshly built index under
// its key's path, unless the store's SavePolicy declines it (the
// ixcache.ErrSaveDeclined contract). When GC caps are configured, a
// successful save triggers a best-effort collection so the store
// converges toward its bounds under sustained traffic without anyone
// calling GC explicitly.
func (s *DirStore) Save(p *ixcache.Prepared) error {
	if p == nil || p.Bank == nil || p.Ix == nil {
		return errors.New("ixdisk: DirStore.Save: nil prepared value")
	}
	s.mu.Lock()
	pol := s.policy
	isDB := s.dbBanks[p.Bank]
	gcCfg := s.gcCfg
	blockSeqs := s.blockSeqs
	s.mu.Unlock()
	if !pol.allows(p.Bank, isDB) {
		s.savesDeclined.Add(1)
		return fmt.Errorf("ixdisk: DirStore.Save: bank %q (%d bases): %w",
			p.Bank.Name, p.Bank.TotalBases(), ixcache.ErrSaveDeclined)
	}
	if err := SaveBlocks(s.Path(p.Bank, p.Ix.Options()), p, blockSeqs); err != nil {
		return err
	}
	if gcCfg.MaxBytes > 0 || gcCfg.MaxAge > 0 {
		_, _ = s.GC()
	}
	return nil
}

// Close releases every mapping the store opened. Every mmap-backed
// index loaded through the store is invalid afterwards; only call this
// once nothing can touch them again.
func (s *DirStore) Close() error {
	s.mu.Lock()
	maps := s.maps
	s.maps = nil
	s.loaded = map[string]*loadedEntry{}
	s.mu.Unlock()
	var first error
	for _, m := range maps {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
