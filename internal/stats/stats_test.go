package stats

import (
	"math"
	"sync"
	"testing"
)

// Published NCBI blast_stat.c ungapped values for uniform-composition
// DNA scoring systems. Our series computation must reproduce them.
func TestKarlinAltschulMatchesNCBI(t *testing.T) {
	cases := []struct {
		match, mismatch   int
		lambda, k, h, tol float64
	}{
		{1, 3, 1.374, 0.711, 1.31, 0.002},
		{1, 2, 1.33, 0.621, 1.12, 0.005},
		{1, 4, 1.383, 0.738, 1.36, 0.003},
		{1, 5, 1.39, 0.747, 1.38, 0.005},
	}
	for _, c := range cases {
		ka, err := Ungapped(c.match, c.mismatch)
		if err != nil {
			t.Fatalf("+%d/-%d: %v", c.match, c.mismatch, err)
		}
		if math.Abs(ka.Lambda-c.lambda) > c.tol {
			t.Errorf("+%d/-%d lambda = %.4f, want %.4f", c.match, c.mismatch, ka.Lambda, c.lambda)
		}
		if math.Abs(ka.K-c.k) > c.tol {
			t.Errorf("+%d/-%d K = %.4f, want %.4f", c.match, c.mismatch, ka.K, c.k)
		}
		if math.Abs(ka.H-c.h) > 0.01 {
			t.Errorf("+%d/-%d H = %.4f, want %.4f", c.match, c.mismatch, ka.H, c.h)
		}
	}
}

func TestLambdaSolvesDefiningEquation(t *testing.T) {
	for _, pr := range [][2]int{{1, 3}, {1, 2}, {2, 3}, {2, 5}, {3, 4}} {
		ka, err := Ungapped(pr[0], pr[1])
		if err != nil {
			t.Fatalf("+%d/-%d: %v", pr[0], pr[1], err)
		}
		got := 0.25*math.Exp(ka.Lambda*float64(pr[0])) + 0.75*math.Exp(-ka.Lambda*float64(pr[1]))
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("+%d/-%d: sum p·e^{λs} = %.12f, want 1", pr[0], pr[1], got)
		}
	}
}

func TestUngappedRejectsNonNegativeDrift(t *testing.T) {
	// +3/-1 has expected score 3/4 - 3/4 = 0: invalid.
	if _, err := Ungapped(3, 1); err == nil {
		t.Error("expected error for +3/-1")
	}
	if _, err := Ungapped(4, 1); err == nil {
		t.Error("expected error for +4/-1")
	}
	if _, err := Ungapped(0, 3); err == nil {
		t.Error("expected error for zero match")
	}
	if _, err := Ungapped(1, -1); err == nil {
		t.Error("expected error for negative mismatch")
	}
}

func TestMustUngappedPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustUngapped(4,1) did not panic")
		}
	}()
	MustUngapped(4, 1)
}

func TestEValueScalesWithSearchSpace(t *testing.T) {
	ka := MustUngapped(1, 3)
	e1 := ka.EValue(30, 1e6, 1e3)
	e2 := ka.EValue(30, 2e6, 1e3)
	if math.Abs(e2/e1-2) > 1e-9 {
		t.Errorf("E-value not linear in m: %v vs %v", e1, e2)
	}
	e3 := ka.EValue(30, 1e6, 2e3)
	if math.Abs(e3/e1-2) > 1e-9 {
		t.Errorf("E-value not linear in n: %v vs %v", e1, e3)
	}
}

func TestEValueDecreasesWithScore(t *testing.T) {
	ka := MustUngapped(1, 3)
	prev := math.Inf(1)
	for s := 10; s <= 100; s += 10 {
		e := ka.EValue(s, 1e6, 1e6)
		if e >= prev {
			t.Fatalf("E-value not decreasing at score %d: %v >= %v", s, e, prev)
		}
		prev = e
	}
}

func TestBitScoreLinear(t *testing.T) {
	ka := MustUngapped(1, 3)
	b30 := ka.BitScore(30)
	b60 := ka.BitScore(60)
	slope := (b60 - b30) / 30
	want := ka.Lambda / math.Ln2
	if math.Abs(slope-want) > 1e-9 {
		t.Errorf("bit score slope = %v, want λ/ln2 = %v", slope, want)
	}
}

func TestMinScoreForEValueRoundTrips(t *testing.T) {
	ka := MustUngapped(1, 3)
	for _, maxE := range []float64{10, 1, 1e-3, 1e-10} {
		m, n := 5_000_000, 2_000
		s := ka.MinScoreForEValue(maxE, m, n)
		if e := ka.EValue(s, m, n); e > maxE {
			t.Errorf("maxE=%g: score %d gives E=%g > maxE", maxE, s, e)
		}
		if s > 1 {
			if e := ka.EValue(s-1, m, n); e <= maxE {
				t.Errorf("maxE=%g: score %d-1 already satisfies E=%g", maxE, s, e)
			}
		}
	}
}

func TestMinScoreForEValueDegenerateInputs(t *testing.T) {
	ka := MustUngapped(1, 3)
	if s := ka.MinScoreForEValue(0, 100, 100); s != math.MaxInt32 {
		t.Errorf("maxE=0: got %d", s)
	}
	if s := ka.MinScoreForEValue(1, 0, 100); s != math.MaxInt32 {
		t.Errorf("m=0: got %d", s)
	}
	// Tiny search space: even score 1 might pass; must clamp to ≥1.
	if s := ka.MinScoreForEValue(1e9, 2, 2); s < 1 {
		t.Errorf("clamp failed: %d", s)
	}
}

func TestPValue(t *testing.T) {
	if p := PValue(0); p != 0 {
		t.Errorf("PValue(0) = %v", p)
	}
	if p := PValue(1e-10); p != 1e-10 {
		t.Errorf("PValue small = %v", p)
	}
	if p := PValue(1.0); math.Abs(p-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("PValue(1) = %v", p)
	}
	if p := PValue(100); p > 1 || p < 0.999 {
		t.Errorf("PValue(100) = %v", p)
	}
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring.Validate(); err != nil {
		t.Errorf("default scoring invalid: %v", err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: 3, GapOpen: 5, GapExtend: 2},
		{Match: 1, Mismatch: 0, GapOpen: 5, GapExtend: 2},
		{Match: 1, Mismatch: 3, GapOpen: -1, GapExtend: 2},
		{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 0},
		{Match: 3, Mismatch: 1, GapOpen: 5, GapExtend: 2}, // non-negative drift
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v): expected validation error", i, s)
		}
	}
}

func TestCacheIsConcurrencySafe(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pairs := [][2]int{{1, 3}, {1, 2}, {2, 3}, {2, 5}}
			p := pairs[i%len(pairs)]
			ka, err := Ungapped(p[0], p[1])
			if err != nil || ka.Lambda <= 0 {
				t.Errorf("concurrent Ungapped failed: %v %v", ka, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestLengthAdjustmentFixedPoint(t *testing.T) {
	ka := MustUngapped(1, 3)
	for _, mn := range [][2]int{{1_000_000, 500}, {5_000_000, 2_000}, {100_000, 100_000}} {
		m, n := mn[0], mn[1]
		l := ka.LengthAdjustment(m, n)
		if l <= 0 {
			t.Errorf("m=%d n=%d: adjustment %d not positive", m, n, l)
		}
		// Fixed-point property within a couple of bases.
		want := math.Log(ka.K*float64(m-l)*float64(n-l)) / ka.H
		if math.Abs(float64(l)-want) > 2 {
			t.Errorf("m=%d n=%d: l=%d but fixed point is %.1f", m, n, l, want)
		}
		if l >= n/2+1 && n <= m {
			t.Errorf("adjustment %d consumed the shorter sequence (n=%d)", l, n)
		}
	}
}

func TestLengthAdjustmentDegenerate(t *testing.T) {
	ka := MustUngapped(1, 3)
	if l := ka.LengthAdjustment(0, 100); l != 0 {
		t.Errorf("m=0: %d", l)
	}
	if l := ka.LengthAdjustment(100, -1); l != 0 {
		t.Errorf("n<0: %d", l)
	}
	// Tiny sequences: clamp at half the shorter one.
	if l := ka.LengthAdjustment(30, 30); l > 15 {
		t.Errorf("clamp failed: %d", l)
	}
}

func TestEValueEffectiveIsSmaller(t *testing.T) {
	ka := MustUngapped(1, 3)
	m, n := 2_000_000, 800
	for _, s := range []int{25, 40, 60} {
		raw := ka.EValue(s, m, n)
		eff := ka.EValueEffective(s, m, n)
		if eff >= raw {
			t.Errorf("score %d: effective E %g not below raw %g", s, eff, raw)
		}
		if eff <= 0 {
			t.Errorf("score %d: effective E %g non-positive", s, eff)
		}
	}
}

func TestEValueConsistentWithBitScore(t *testing.T) {
	// E = m·n·2^{-bit} must agree with the raw formula.
	ka := MustUngapped(1, 3)
	m, n := 1_000_000, 5_000
	for _, s := range []int{20, 35, 50} {
		eRaw := ka.EValue(s, m, n)
		eBit := float64(m) * float64(n) * math.Pow(2, -ka.BitScore(s))
		if math.Abs(eRaw-eBit)/eRaw > 1e-9 {
			t.Errorf("score %d: raw %g vs bit %g", s, eRaw, eBit)
		}
	}
}
