// Package stats implements Karlin–Altschul alignment statistics for the
// uniform-composition DNA scoring systems used by SCORIS-N and BLASTN:
// raw-score → bit-score conversion and E-values.
//
// λ is the unique positive solution of Σ pᵢpⱼ·e^{λ·sᵢⱼ} = 1 (bisection);
// H is the relative entropy of the tilted score distribution; K is
// computed with the Karlin–Altschul (1990) lattice series
//
//	K = λ·d·e^{−2σ} / (H·(1−e^{−λd})),
//	σ = Σ_{k≥1} (1/k)·[ Σ_{j<0} P_k(j)e^{λj} + Σ_{j≥0} P_k(j) ],
//
// where P_k is the k-fold convolution of the per-column score
// distribution and d the lattice gcd. The implementation reproduces the
// published NCBI blast_stat.c values (e.g. +1/−3 → λ=1.374, K=0.711,
// H=1.31) to three decimals; see the tests.
//
// E-values follow the paper's §3.1 convention: E = K·m·n·e^{−λS} with
// m the total size of bank 1 and n the length of the subject sequence
// the alignment was found in.
package stats

import (
	"fmt"
	"math"
)

// Scoring bundles the match/mismatch/gap parameters shared by the
// ungapped and gapped extension stages.
type Scoring struct {
	// Match is the (positive) reward for an identical base pair.
	Match int
	// Mismatch is the (positive) penalty for a substitution.
	Mismatch int
	// GapOpen is the (positive) penalty for opening a gap.
	GapOpen int
	// GapExtend is the (positive) penalty per gap base.
	GapExtend int
}

// DefaultScoring matches 2007-era NCBI BLASTN defaults (+1/−3, gap
// open 5, gap extend 2), the plausible configuration of the paper's
// experiments.
var DefaultScoring = Scoring{Match: 1, Mismatch: 3, GapOpen: 5, GapExtend: 2}

// Validate checks that the scoring system is usable by KA theory.
func (s Scoring) Validate() error {
	if s.Match <= 0 || s.Mismatch <= 0 {
		return fmt.Errorf("stats: match (%d) and mismatch (%d) must be positive", s.Match, s.Mismatch)
	}
	if s.GapOpen < 0 || s.GapExtend <= 0 {
		return fmt.Errorf("stats: gap open (%d) must be ≥0 and extend (%d) positive", s.GapOpen, s.GapExtend)
	}
	// Expected per-column score must be negative for local alignment
	// statistics to exist (uniform base composition).
	if float64(s.Match)/4-3*float64(s.Mismatch)/4 >= 0 {
		return fmt.Errorf("stats: expected score non-negative for +%d/−%d", s.Match, s.Mismatch)
	}
	return nil
}

// KarlinAltschul holds the statistical parameters of a scoring system.
type KarlinAltschul struct {
	Lambda float64 // scale of raw scores
	K      float64 // search-space correction constant
	H      float64 // relative entropy (bits of information per position)
}

// Ungapped computes KA parameters for the +match/−mismatch system under
// uniform base composition. Results are cached per parameter pair.
func Ungapped(match, mismatch int) (KarlinAltschul, error) {
	if match <= 0 || mismatch <= 0 {
		return KarlinAltschul{}, fmt.Errorf("stats: invalid scores +%d/−%d", match, mismatch)
	}
	if float64(match)/4-3*float64(mismatch)/4 >= 0 {
		return KarlinAltschul{}, fmt.Errorf("stats: expected score non-negative for +%d/−%d", match, mismatch)
	}
	key := [2]int{match, mismatch}
	cacheMu := &kaCacheMu
	cacheMu.Lock()
	if ka, ok := kaCache[key]; ok {
		cacheMu.Unlock()
		return ka, nil
	}
	cacheMu.Unlock()

	lambda := solveLambda(match, mismatch)
	h := entropyH(lambda, match, mismatch)
	k := karlinK(lambda, h, match, mismatch)
	ka := KarlinAltschul{Lambda: lambda, K: k, H: h}

	cacheMu.Lock()
	kaCache[key] = ka
	cacheMu.Unlock()
	return ka, nil
}

// MustUngapped is Ungapped for known-good parameters (panics on error).
func MustUngapped(match, mismatch int) KarlinAltschul {
	ka, err := Ungapped(match, mismatch)
	if err != nil {
		panic(err)
	}
	return ka
}

var (
	kaCache   = map[[2]int]KarlinAltschul{}
	kaCacheMu mutex
)

// mutex is a tiny local alias so this file stays dependency-light.
type mutex struct{ ch chan struct{} }

func (m *mutex) Lock() {
	if m.ch == nil {
		m.ch = make(chan struct{}, 1)
	}
	m.ch <- struct{}{}
}
func (m *mutex) Unlock() { <-m.ch }

// solveLambda bisects Σ pᵢpⱼ e^{λs} = 1 on (0, 10].
func solveLambda(match, mismatch int) float64 {
	f := func(l float64) float64 {
		return 0.25*math.Exp(l*float64(match)) + 0.75*math.Exp(-l*float64(mismatch)) - 1
	}
	lo, hi := 1e-12, 10.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// entropyH computes H = λ·Σ s·p(s)·e^{λs}.
func entropyH(lambda float64, match, mismatch int) float64 {
	a, b := float64(match), float64(mismatch)
	return lambda * (a*0.25*math.Exp(lambda*a) - b*0.75*math.Exp(-lambda*b))
}

// karlinK evaluates the lattice series for K.
func karlinK(lambda, h float64, match, mismatch int) float64 {
	d := gcd(match, mismatch)
	// k-fold convolution of the step distribution over an integer score
	// axis. After k steps scores span [-k·mismatch, k·match]; offset
	// indexes the slice.
	const (
		iterMax  = 300
		sumLimit = 1e-10
	)
	a, b := match, mismatch
	probs := []float64{1} // P_0: score 0 with prob 1
	offset := 0           // probs[i] is P(score = i - offset)
	sigma := 0.0
	for k := 1; k <= iterMax; k++ {
		nlen := len(probs) + a + b
		np := make([]float64, nlen)
		for i, p := range probs {
			if p == 0 {
				continue
			}
			np[i+a+b] += p * 0.25 // +a after re-offsetting by +b
			np[i] += p * 0.75     // -b
		}
		probs = np
		offset += b
		inner := 0.0
		for i, p := range probs {
			if p == 0 {
				continue
			}
			s := i - offset
			if s < 0 {
				inner += p * math.Exp(lambda*float64(s))
			} else {
				inner += p
			}
		}
		term := inner / float64(k)
		sigma += term
		if term < sumLimit {
			break
		}
	}
	df := float64(d)
	return lambda * df * math.Exp(-2*sigma) / (h * (1 - math.Exp(-lambda*df)))
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// BitScore converts a raw score to a normalized bit score.
func (ka KarlinAltschul) BitScore(raw int) float64 {
	return (ka.Lambda*float64(raw) - math.Log(ka.K)) / math.Ln2
}

// EValue returns the expected number of alignments with score ≥ raw in
// a search space of m×n (paper: m = bank1 residues, n = subject
// sequence length).
func (ka KarlinAltschul) EValue(raw int, m, n int) float64 {
	return ka.K * float64(m) * float64(n) * math.Exp(-ka.Lambda*float64(raw))
}

// MinScoreForEValue returns the smallest raw score whose E-value in an
// m×n space is ≤ maxE. Both engines use it to translate the user's -e
// cutoff into a raw-score threshold.
func (ka KarlinAltschul) MinScoreForEValue(maxE float64, m, n int) int {
	if maxE <= 0 || m <= 0 || n <= 0 {
		return math.MaxInt32
	}
	// E ≤ maxE  ⇔  S ≥ ln(K·m·n/maxE)/λ
	s := math.Log(ka.K*float64(m)*float64(n)/maxE) / ka.Lambda
	raw := int(math.Ceil(s))
	if raw < 1 {
		raw = 1
	}
	return raw
}

// PValue converts an E-value to a P-value (probability of ≥1 hit).
func PValue(e float64) float64 {
	if e > 1e-6 {
		return 1 - math.Exp(-e)
	}
	return e // asymptotically identical, numerically stabler
}

// LengthAdjustment computes BLAST's edge-effect correction: an
// alignment cannot start within ~l bases of a sequence end, where l is
// the expected alignment length, so the effective search space shrinks
// to (m−l)(n−l). l solves the fixed point
//
//	l = ln(K·(m−l)·(n−l)) / H
//
// iterated as in NCBI's BlastComputeLengthAdjustment. Both engines use
// raw m·n by default (the convention of the paper's §3.1 E-values);
// this is the opt-in refinement.
func (ka KarlinAltschul) LengthAdjustment(m, n int) int {
	if m <= 0 || n <= 0 || ka.H <= 0 {
		return 0
	}
	mf, nf := float64(m), float64(n)
	l := 0.0
	for i := 0; i < 20; i++ {
		me, ne := mf-l, nf-l
		if me < 1 {
			me = 1
		}
		if ne < 1 {
			ne = 1
		}
		next := math.Log(ka.K*me*ne) / ka.H
		if next < 0 {
			next = 0
		}
		if math.Abs(next-l) < 0.5 {
			l = next
			break
		}
		l = next
	}
	// Clamp: the adjustment may not consume either sequence.
	max := math.Min(mf, nf) / 2
	if l > max {
		l = max
	}
	return int(l)
}

// EValueEffective is EValue over the edge-corrected search space.
func (ka KarlinAltschul) EValueEffective(raw, m, n int) float64 {
	l := ka.LengthAdjustment(m, n)
	me, ne := m-l, n-l
	if me < 1 {
		me = 1
	}
	if ne < 1 {
		ne = 1
	}
	return ka.EValue(raw, me, ne)
}
