package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestVersionedSurface: /v1/ routes and their bare legacy aliases hit
// the same handler with the same body; only the deprecation headers
// distinguish them.
func TestVersionedSurface(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "result for "+r.URL.Path)
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "job "+r.URL.Path)
	})
	ts := httptest.NewServer(Versioned(mux))
	defer ts.Close()

	get := func(t *testing.T, path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	v1, v1body := get(t, "/v1/compare")
	legacy, legacyBody := get(t, "/compare")
	if v1.StatusCode != http.StatusOK || legacy.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", v1.StatusCode, legacy.StatusCode)
	}
	if v1body != legacyBody {
		t.Errorf("alias bodies differ: %q vs %q", v1body, legacyBody)
	}
	if v1.Header.Get("Deprecation") != "" {
		t.Error("/v1/ route marked deprecated")
	}
	if legacy.Header.Get("Deprecation") != "true" {
		t.Error("legacy alias missing the Deprecation header")
	}
	if got := legacy.Header.Get("Link"); got != `</v1/compare>; rel="successor-version"` {
		t.Errorf("legacy alias Link header: %q", got)
	}

	// Subtree routes carry their suffix through the prefix strip.
	if _, body := get(t, "/v1/jobs/42"); body != "job /jobs/42" {
		t.Errorf("subtree route under /v1: %q", body)
	}

	// Unknown paths 404 under both surfaces.
	if resp, _ := get(t, "/v1/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/nope: status %d", resp.StatusCode)
	}
	if resp, _ := get(t, "/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope: status %d", resp.StatusCode)
	}
}
