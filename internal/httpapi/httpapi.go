// Package httpapi versions the HTTP surface shared by scorisd and the
// fleet router. The service muxes register unversioned paths
// (/compare, /banks, ...); Versioned wraps such a mux so the same
// routes are served under the stable /v1/ prefix, while the original
// bare paths keep working as deprecated aliases for clients written
// against the pre-versioned surface.
//
// Both forms hit the identical handler, so responses are byte-for-byte
// the same; only the deprecation headers differ. New clients should
// use /v1/; the bare aliases exist so upgrading a server never breaks
// a deployed client, and they advertise their own retirement via the
// Deprecation header (draft-ietf-httpapi-deprecation-header) plus a
// Link to the successor surface.
package httpapi

import "net/http"

// Version is the current API version prefix.
const Version = "/v1"

// Versioned wraps an unversioned API mux with the versioned surface:
// requests under /v1/ are served with the prefix stripped, and every
// other path is served as-is with deprecation headers attached.
func Versioned(mux http.Handler) http.Handler {
	outer := http.NewServeMux()
	outer.Handle(Version+"/", http.StripPrefix(Version, mux))
	outer.Handle("/", deprecated(mux))
	return outer
}

// deprecated serves h unchanged but marks the response as coming from
// the legacy unversioned alias of a /v1 route.
func deprecated(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `<`+Version+r.URL.Path+`>; rel="successor-version"`)
		h.ServeHTTP(w, r)
	})
}
