// Package fasta reads and writes FASTA-format sequence files, the input
// format of both the ORIS pipeline and the BLASTN baseline (paper §2.1:
// "Bank indexing is directly performed from FASTA format input files").
//
// The reader is streaming and tolerant: it accepts lower-case bases,
// Windows line endings, interior blank lines, and arbitrary line widths.
// IUPAC ambiguity characters are preserved in Record.Seq (they later
// encode to dna.Invalid and are skipped by the indexer).
package fasta

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	// ID is the first whitespace-delimited token of the header line,
	// without the leading '>'.
	ID string
	// Desc is the remainder of the header line (may be empty).
	Desc string
	// Seq is the raw sequence, ASCII, with whitespace removed.
	Seq []byte
}

// Header reconstructs the full header line content (without '>').
func (r *Record) Header() string {
	if r.Desc == "" {
		return r.ID
	}
	return r.ID + " " + r.Desc
}

// Len returns the sequence length in bases.
func (r *Record) Len() int { return len(r.Seq) }

// Reader streams records from an io.Reader.
type Reader struct {
	br      *bufio.Reader
	pending []byte // header line of the next record, without '>'
	line    int
	done    bool
}

// NewReader returns a streaming FASTA reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF when the input is exhausted.
// A malformed file (sequence data before any header) returns an error
// identifying the line number.
func (r *Reader) Read() (*Record, error) {
	if r.done && r.pending == nil {
		return nil, io.EOF
	}
	header := r.pending
	r.pending = nil

	var seq []byte
	for {
		line, err := r.br.ReadBytes('\n')
		if len(line) > 0 {
			r.line++
			line = trimEOL(line)
			switch {
			case len(line) == 0:
				// skip blank lines
			case line[0] == '>':
				if header == nil {
					header = append([]byte(nil), line[1:]...)
				} else {
					r.pending = append([]byte(nil), line[1:]...)
					return makeRecord(header, seq)
				}
			case line[0] == ';':
				// classic FASTA comment line; ignored
			default:
				if header == nil {
					return nil, fmt.Errorf("fasta: line %d: sequence data before first header", r.line)
				}
				seq = append(seq, compact(line)...)
			}
		}
		if err == io.EOF {
			r.done = true
			if header == nil {
				return nil, io.EOF
			}
			return makeRecord(header, seq)
		}
		if err != nil {
			return nil, fmt.Errorf("fasta: line %d: %w", r.line, err)
		}
	}
}

// ReadAll reads every remaining record.
func (r *Reader) ReadAll() ([]*Record, error) {
	var recs []*Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

func makeRecord(header, seq []byte) (*Record, error) {
	id, desc := splitHeader(string(header))
	if id == "" {
		id = "unnamed"
	}
	if seq == nil {
		seq = []byte{}
	}
	return &Record{ID: id, Desc: desc, Seq: seq}, nil
}

func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}

func trimEOL(line []byte) []byte {
	line = bytes.TrimRight(line, "\r\n")
	return line
}

// compact removes interior whitespace from a sequence line.
func compact(line []byte) []byte {
	clean := line[:0]
	for _, b := range line {
		if b == ' ' || b == '\t' || b == '\v' || b == '\f' {
			continue
		}
		clean = append(clean, b)
	}
	return clean
}

// ParseAll parses a whole in-memory FASTA document.
func ParseAll(data []byte) ([]*Record, error) {
	return NewReader(bytes.NewReader(data)).ReadAll()
}

// ReadFile reads all records from a FASTA file on disk.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Writer emits FASTA records with a fixed line width.
type Writer struct {
	w     *bufio.Writer
	Width int // bases per sequence line; <=0 means a single line
}

// NewWriter returns a Writer with the conventional 70-column width.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), Width: 70}
}

// Write emits one record.
func (w *Writer) Write(rec *Record) error {
	if _, err := w.w.WriteString(">" + rec.Header() + "\n"); err != nil {
		return err
	}
	seq := rec.Seq
	if w.Width <= 0 {
		if _, err := w.w.Write(seq); err != nil {
			return err
		}
		return w.w.WriteByte('\n')
	}
	for len(seq) > 0 {
		n := w.Width
		if n > len(seq) {
			n = len(seq)
		}
		if _, err := w.w.Write(seq[:n]); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
		seq = seq[n:]
	}
	return nil
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteFile writes records to a FASTA file, creating or truncating it.
func WriteFile(path string, recs []*Record) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := NewWriter(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	return w.Flush()
}
