package fasta

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadSingleRecord(t *testing.T) {
	in := ">seq1 a test\nACGT\nTTGG\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.ID != "seq1" || r.Desc != "a test" || string(r.Seq) != "ACGTTTGG" {
		t.Errorf("got %+v", r)
	}
}

func TestReadMultipleRecords(t *testing.T) {
	in := ">a\nAC\n>b\nGT\n>c desc here\nTTTT\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if recs[0].ID != "a" || string(recs[0].Seq) != "AC" {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[1].ID != "b" || string(recs[1].Seq) != "GT" {
		t.Errorf("rec1 = %+v", recs[1])
	}
	if recs[2].ID != "c" || recs[2].Desc != "desc here" || string(recs[2].Seq) != "TTTT" {
		t.Errorf("rec2 = %+v", recs[2])
	}
}

func TestReadWindowsLineEndings(t *testing.T) {
	in := ">a\r\nACGT\r\nGG\r\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGTGG" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
}

func TestReadBlankInteriorLines(t *testing.T) {
	in := ">a\nAC\n\n\nGT\n\n>b\n\nTT\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Seq) != "ACGT" || string(recs[1].Seq) != "TT" {
		t.Errorf("recs = %v %v", recs[0], recs[1])
	}
}

func TestReadCommentLines(t *testing.T) {
	in := ">a\n;comment\nACGT\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
}

func TestReadInteriorWhitespace(t *testing.T) {
	in := ">a\nAC GT\tTT\n"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGTTT" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
}

func TestReadNoTrailingNewline(t *testing.T) {
	in := ">a\nACGT"
	recs, err := ParseAll([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[0].Seq) != "ACGT" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
}

func TestReadEmptyInput(t *testing.T) {
	recs, err := ParseAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("got %d records from empty input", len(recs))
	}
}

func TestReadEmptySequence(t *testing.T) {
	recs, err := ParseAll([]byte(">a\n>b\nAC\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Len() != 0 || recs[1].Len() != 2 {
		t.Errorf("recs = %+v", recs)
	}
}

func TestReadSequenceBeforeHeaderIsError(t *testing.T) {
	_, err := ParseAll([]byte("ACGT\n>a\nAC\n"))
	if err == nil {
		t.Fatal("expected error for sequence before header")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should name the line: %v", err)
	}
}

func TestReadHeaderOnlyWhitespace(t *testing.T) {
	recs, err := ParseAll([]byte(">   \nAC\n"))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].ID != "unnamed" {
		t.Errorf("ID = %q, want unnamed", recs[0].ID)
	}
}

func TestStreamingRead(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAC\n>b\nGT\n"))
	r1, err := r.Read()
	if err != nil || r1.ID != "a" {
		t.Fatalf("first read: %v %v", r1, err)
	}
	r2, err := r.Read()
	if err != nil || r2.ID != "b" {
		t.Fatalf("second read: %v %v", r2, err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("third read err = %v, want EOF", err)
	}
	// Reading past EOF stays EOF.
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("fourth read err = %v, want EOF", err)
	}
}

func TestWriterLineWrapping(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Width = 4
	if err := w.Write(&Record{ID: "x", Seq: []byte("ACGTACGTAC")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := ">x\nACGT\nACGT\nAC\n"
	if buf.String() != want {
		t.Errorf("got %q want %q", buf.String(), want)
	}
}

func TestWriterSingleLine(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Width = 0
	if err := w.Write(&Record{ID: "x", Desc: "d", Seq: []byte("ACGT")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ">x d\nACGT\n" {
		t.Errorf("got %q", buf.String())
	}
}

func TestRoundTripThroughFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.fa")
	in := []*Record{
		{ID: "s1", Desc: "first", Seq: []byte("ACGTACGTACGT")},
		{ID: "s2", Seq: []byte("TTTT")},
		{ID: "s3", Seq: []byte{}},
	}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Desc != in[i].Desc || !bytes.Equal(out[i].Seq, in[i].Seq) {
			t.Errorf("record %d: got %+v want %+v", i, out[i], in[i])
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fa")); !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}

func TestRoundTripRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	letters := []byte("ACGTN")
	var recs []*Record
	for i := 0; i < 25; i++ {
		n := rng.Intn(300)
		seq := make([]byte, n)
		for j := range seq {
			seq[j] = letters[rng.Intn(len(letters))]
		}
		recs = append(recs, &Record{ID: "r" + strings.Repeat("x", i%3), Seq: seq})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Width = 1 + rng.Intn(80)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	out, err := ParseAll(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(recs) {
		t.Fatalf("got %d records, want %d", len(out), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(out[i].Seq, recs[i].Seq) {
			t.Errorf("record %d sequence mismatch", i)
		}
	}
}

// Robustness: arbitrary byte soup must never panic the reader; it
// either parses or returns an error, and parsed records round-trip.
func TestReaderNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := []byte(">;ACGTN \t\r\nacgt#|0123")
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		raw := make([]byte, n)
		for i := range raw {
			raw[i] = alphabet[rng.Intn(len(alphabet))]
		}
		recs, err := ParseAll(raw)
		if err != nil {
			continue // rejected is fine; panicking is not
		}
		// Whatever parsed must survive a write/read cycle.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatalf("trial %d: write: %v", trial, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("trial %d: flush: %v", trial, err)
		}
		back, err := ParseAll(buf.Bytes())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		if len(back) != len(recs) {
			t.Fatalf("trial %d: %d records became %d", trial, len(recs), len(back))
		}
	}
}

func TestHeaderReconstruction(t *testing.T) {
	r := &Record{ID: "a", Desc: "b c"}
	if r.Header() != "a b c" {
		t.Errorf("Header = %q", r.Header())
	}
	r2 := &Record{ID: "a"}
	if r2.Header() != "a" {
		t.Errorf("Header = %q", r2.Header())
	}
}
