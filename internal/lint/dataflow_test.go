package lint

// White-box test of the call-graph layer: a two-package fixture with
// direct calls, a method value, and interface dispatch, checked
// against a golden edge list. The golden file pins both the edge set
// and the FuncKey spelling (FullName strings), which every
// interprocedural analyzer keys its summaries on.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestCallGraphEdges(t *testing.T) {
	l := NewLoader("../..")
	if err := l.Prime(); err != nil {
		t.Fatalf("priming loader: %v", err)
	}
	var pkgs []*Package
	for _, name := range []string{"pkga", "pkgb"} {
		abs, err := filepath.Abs(filepath.Join("testdata/src/callgraph", name))
		if err != nil {
			t.Fatal(err)
		}
		path := "repro/lintfixture/callgraph/" + name
		pkg, err := l.CheckDir(path, abs)
		if err != nil {
			t.Fatalf("type-checking %s: %v", name, err)
		}
		// Register so pkgb's import of pkga resolves to this very
		// check, the way module packages resolve during a Tests load.
		l.register(path, pkg.Pkg)
		pkgs = append(pkgs, pkg)
	}

	mod := buildModule(&Pass{Fset: l.Fset(), Pkgs: pkgs})

	var got []string
	for _, e := range mod.Edges {
		got = append(got, fmt.Sprintf("%s -> %s [%s]", e.Caller, e.Callee, e.Kind))
	}
	sort.Strings(got)

	goldenPath := "testdata/callgraph.golden"
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden edge list: %v", err)
	}
	gotText := strings.Join(got, "\n") + "\n"
	if gotText != string(want) {
		t.Errorf("call graph edges diverge from %s:\ngot:\n%swant:\n%s", goldenPath, gotText, want)
	}

	// The graph must be navigable from both ends: every edge appears
	// under its caller's Callees and its callee's Callers.
	for _, e := range mod.Edges {
		if !containsEdge(mod.Callees(e.Caller), e) {
			t.Errorf("edge %v missing from Callees(%s)", e, e.Caller)
		}
		if !containsEdge(mod.Callers(e.Callee), e) {
			t.Errorf("edge %v missing from Callers(%s)", e, e.Callee)
		}
	}
}

func containsEdge(edges []Edge, e Edge) bool {
	for _, c := range edges {
		if c == e {
			return true
		}
	}
	return false
}
