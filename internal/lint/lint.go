// Package lint is scorislint: a suite of repo-specific static
// analyzers that machine-check the index/concurrency contracts this
// codebase documents in prose but, before this package, enforced only
// by review. Each analyzer encodes one invariant (see DESIGN.md §11
// for the analyzer ↔ contract map):
//
//   - indeximmut: a built index.Index / ixcache.Prepared is immutable
//     and may alias a read-only .orix mmap (DESIGN.md §5, §7)
//   - atomicmix: a location touched through sync/atomic functions is
//     never read or written non-atomically elsewhere
//   - ctxloop: unbounded loops in context-carrying functions consult
//     their context, so compare paths stay cancellable (DESIGN.md §10)
//   - checkedflush: buffered-writer Flush and write-handle Close
//     errors are consumed on output paths (the silent-m8-truncation
//     regression class fixed in PR 5)
//   - versionedmount: HTTP handlers are mounted through
//     httpapi.Versioned so the /v1 + deprecated-alias pair cannot
//     drift (DESIGN.md §8)
//   - goexit: every spawned goroutine has a visible lifecycle —
//     WaitGroup join, channel send/close/receive, ctx.Done — or an
//     explicit "// background:" justification
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with "// want"
// expectations) but is built on the standard library only: packages
// are loaded with `go list -export` and type-checked against gc
// export data (see load.go), so the linter needs no dependencies
// beyond the toolchain that builds the repo.
//
// Findings are suppressed, one site at a time, with an inline
// directive that names the analyzer and must carry a justification:
//
//	//scorislint:ignore ctxloop bounded by the retry cap above
//
// on the flagged line or the line immediately before it. A directive
// without a justification does not suppress anything and is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Pass is a module-wide analysis pass: one analyzer over every loaded
// package at once, so cross-package invariants (atomicmix) see the
// whole tree.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full scorislint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerIndexImmut,
		AnalyzerAtomicMix,
		AnalyzerCtxLoop,
		AnalyzerCheckedFlush,
		AnalyzerVersionedMount,
		AnalyzerGoExit,
	}
}

// ignoreDirective is one parsed //scorislint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	file     string
	line     int // line the directive suppresses (its own line, or the next for full-line comments)
}

const ignorePrefix = "scorislint:ignore"

// parseIgnores extracts every ignore directive from the loaded files.
func parseIgnores(fset *token.FileSet, pkgs []*Package) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					// A nested // starts a comment-within-the-comment
					// (fixture "// want" markers); it is not a reason.
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = strings.TrimSpace(rest[:i])
					}
					name, reason, _ := strings.Cut(rest, " ")
					pos := fset.Position(c.Pos())
					out = append(out, ignoreDirective{
						analyzer: name,
						reason:   strings.TrimSpace(reason),
						pos:      pos,
						file:     pos.Filename,
						line:     pos.Line,
					})
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over the loaded packages, applies ignore
// directives, and returns the surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Pkgs: pkgs, diags: &diags}
		a.Run(pass)
	}

	// A directive on line L suppresses findings on L and L+1: a
	// trailing comment sits on the flagged line itself, a full-line
	// comment sits on the line before it.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppressed := map[key]bool{}
	for _, d := range parseIgnores(fset, pkgs) {
		if d.analyzer == "" || d.reason == "" {
			diags = append(diags, Diagnostic{
				Analyzer: "scorislint",
				Pos:      d.pos,
				Message:  "scorislint:ignore directive needs an analyzer name and a justification: //scorislint:ignore <analyzer> <reason>",
			})
			continue
		}
		suppressed[key{d.file, d.line, d.analyzer}] = true
		suppressed[key{d.file, d.line + 1, d.analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if suppressed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
