// Package lint is scorislint: a suite of repo-specific static
// analyzers that machine-check the index/concurrency contracts this
// codebase documents in prose but, before this package, enforced only
// by review. Each analyzer encodes one invariant (see DESIGN.md §11
// for the analyzer ↔ contract map):
//
//   - indeximmut: a built index.Index / ixcache.Prepared is immutable
//     and may alias a read-only .orix mmap (DESIGN.md §5, §7)
//   - atomicmix: a location touched through sync/atomic functions is
//     never read or written non-atomically elsewhere
//   - ctxloop: unbounded loops in context-carrying functions consult
//     their context, so compare paths stay cancellable (DESIGN.md §10)
//   - checkedflush: buffered-writer Flush and write-handle Close
//     errors are consumed on output paths (the silent-m8-truncation
//     regression class fixed in PR 5)
//   - versionedmount: HTTP handlers are mounted through
//     httpapi.Versioned so the /v1 + deprecated-alias pair cannot
//     drift (DESIGN.md §8)
//   - goexit: every spawned goroutine has a visible lifecycle —
//     WaitGroup join, channel send/close/receive, ctx.Done — or an
//     explicit "// background:" justification
//   - untrustedix: bytes read from disk, mmap, or HTTP never become a
//     slice bound, make size, or ReadAt offset without passing a
//     //scorislint:validator function (DESIGN.md §7)
//   - detorder: values out of a map range pass a sort before reaching
//     an emitted stream, JSON response, or writer (byte-identity)
//   - guardedby: fields annotated "// guardedby: mu" are only touched
//     with the named mutex held, call sites included (DESIGN.md §8)
//   - hotalloc: //scorislint:hotpath functions do not allocate per
//     element in their loops, transitively (DESIGN.md §2)
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with "// want"
// expectations) but is built on the standard library only: packages
// are loaded with `go list -export` and type-checked against gc
// export data (see load.go), so the linter needs no dependencies
// beyond the toolchain that builds the repo. The last four analyzers
// are interprocedural: dataflow.go builds a whole-module call graph
// (direct calls, method values, interface dispatch) and a fact store,
// and each analyzer iterates per-function summaries to a fixpoint so
// facts propagate across function and package boundaries.
//
// Findings are suppressed, one site at a time, with an inline
// directive that names the analyzer and must carry a justification:
//
//	//scorislint:ignore ctxloop bounded by the retry cap above
//
// on the flagged line or the line immediately before it, or for a
// whole file with
//
//	//scorislint:file-ignore <analyzer> <reason>
//
// among the file's comments. A directive without a justification does
// not suppress anything and is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// TestFiles marks which of Files are _test.go files (loaded only
	// when the loader runs with Tests enabled).
	TestFiles map[*ast.File]bool
}

// Pass is a module-wide analysis pass: one analyzer over every loaded
// package at once, so cross-package invariants (atomicmix) see the
// whole tree.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags *[]Diagnostic

	// testFiles and module are shared by every analyzer of one Run.
	testFiles map[string]bool
	module    **Module
}

// Files returns the files of pkg this analyzer should inspect: test
// files are included only for analyzers that opt in with AnalyzeTests,
// so a flow fact inferred from test-only code can never bless or blame
// production code.
func (p *Pass) Files(pkg *Package) []*ast.File {
	if p.Analyzer.AnalyzeTests {
		return pkg.Files
	}
	out := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !pkg.TestFiles[f] {
			out = append(out, f)
		}
	}
	return out
}

// Module returns the whole-module dataflow index (call graph, def-use
// chains, fact store), built lazily on first use and shared by every
// analyzer of the Run.
func (p *Pass) Module() *Module {
	if *p.module == nil {
		*p.module = buildModule(p)
	}
	return *p.module
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)

	// AnalyzeTests opts the analyzer into _test.go files when the
	// loader includes them. Default off: most invariants guard
	// production paths, and test-only evidence must not produce or
	// suppress production findings.
	AnalyzeTests bool

	// Contract is the prose contract the analyzer mechanizes and
	// Annotation the comment syntax it consumes, both printed by
	// `scorislint -explain`.
	Contract   string
	Annotation string
}

// Analyzers returns the full scorislint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerIndexImmut,
		AnalyzerAtomicMix,
		AnalyzerCtxLoop,
		AnalyzerCheckedFlush,
		AnalyzerVersionedMount,
		AnalyzerGoExit,
		AnalyzerUntrustedIx,
		AnalyzerDetOrder,
		AnalyzerGuardedBy,
		AnalyzerHotAlloc,
	}
}

// ignoreDirective is one parsed //scorislint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	file     string
	line     int // line the directive suppresses (its own line, or the next for full-line comments)
}

const (
	ignorePrefix     = "scorislint:ignore"
	fileIgnorePrefix = "scorislint:file-ignore"
)

// parseIgnores extracts every inline ignore directive from the loaded
// files; parseFileIgnores the file-scoped ones. The two prefixes are
// distinguished before inline parsing so a file-ignore is never
// misread as a malformed inline directive.
func parseIgnores(fset *token.FileSet, pkgs []*Package) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if strings.HasPrefix(text, fileIgnorePrefix) {
						continue
					}
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					// A nested // starts a comment-within-the-comment
					// (fixture "// want" markers); it is not a reason.
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = strings.TrimSpace(rest[:i])
					}
					name, reason, _ := strings.Cut(rest, " ")
					pos := fset.Position(c.Pos())
					out = append(out, ignoreDirective{
						analyzer: name,
						reason:   strings.TrimSpace(reason),
						pos:      pos,
						file:     pos.Filename,
						line:     pos.Line,
					})
				}
			}
		}
	}
	return out
}

// parseFileIgnores extracts every file-scoped suppression. Like the
// inline form, a file-ignore without both an analyzer name and a
// justification suppresses nothing and is itself reported.
func parseFileIgnores(fset *token.FileSet, pkgs []*Package) []ignoreDirective {
	var out []ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, fileIgnorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, fileIgnorePrefix))
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = strings.TrimSpace(rest[:i])
					}
					name, reason, _ := strings.Cut(rest, " ")
					pos := fset.Position(c.Pos())
					out = append(out, ignoreDirective{
						analyzer: name,
						reason:   strings.TrimSpace(reason),
						pos:      pos,
						file:     pos.Filename,
					})
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over the loaded packages, applies ignore
// directives, and returns the surviving findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	testFiles := map[string]bool{}
	for _, pkg := range pkgs {
		for f := range pkg.TestFiles {
			testFiles[fset.Position(f.Pos()).Filename] = true
		}
	}
	var module *Module
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a, Fset: fset, Pkgs: pkgs, diags: &diags,
			testFiles: testFiles, module: &module,
		}
		a.Run(pass)
	}

	// A directive on line L suppresses findings on L and L+1: a
	// trailing comment sits on the flagged line itself, a full-line
	// comment sits on the line before it.
	type key struct {
		file     string
		line     int
		analyzer string
	}
	suppressed := map[key]bool{}
	for _, d := range parseIgnores(fset, pkgs) {
		if d.analyzer == "" || d.reason == "" {
			diags = append(diags, Diagnostic{
				Analyzer: "scorislint",
				Pos:      d.pos,
				Message:  "scorislint:ignore directive needs an analyzer name and a justification: //scorislint:ignore <analyzer> <reason>",
			})
			continue
		}
		suppressed[key{d.file, d.line, d.analyzer}] = true
		suppressed[key{d.file, d.line + 1, d.analyzer}] = true
	}

	// File-scoped suppression for generated and fixture files: one
	// justified //scorislint:file-ignore silences its analyzer for the
	// whole file.
	type fileKey struct {
		file     string
		analyzer string
	}
	fileSuppressed := map[fileKey]bool{}
	for _, d := range parseFileIgnores(fset, pkgs) {
		if d.analyzer == "" || d.reason == "" {
			diags = append(diags, Diagnostic{
				Analyzer: "scorislint",
				Pos:      d.pos,
				Message:  "scorislint:file-ignore directive needs an analyzer name and a justification: //scorislint:file-ignore <analyzer> <reason>",
			})
			continue
		}
		fileSuppressed[fileKey{d.file, d.analyzer}] = true
	}

	kept := diags[:0]
	for _, d := range diags {
		if suppressed[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		if fileSuppressed[fileKey{d.Pos.Filename, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
