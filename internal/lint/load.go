package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Loading without golang.org/x/tools: the repo has no third-party
// dependencies, so scorislint resolves imports the way the toolchain
// itself does — `go list -export` compiles every package (cheap and
// cached: it is the same work `go build` already did) and reports the
// path of its gc export data in the build cache. Target packages are
// then parsed and type-checked from source with go/types, importing
// every dependency (stdlib and module-internal alike) through
// importer.ForCompiler("gc", lookup) over that export map.

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
	DepOnly      bool
	Module       *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

const listFields = "ImportPath,Dir,Export,GoFiles,TestGoFiles,XTestGoFiles," +
	"Imports,TestImports,XTestImports,Standard,DepOnly,Module,Error"

// goList runs `go list -e -export -deps` in dir over patterns and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-json=" + listFields, "-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportResolver maps import paths to gc export data files, listing
// lazily on a miss (fixture packages may import stdlib packages the
// module itself does not).
type exportResolver struct {
	dir string

	mu      sync.Mutex
	exports map[string]string
}

func newExportResolver(dir string) *exportResolver {
	return &exportResolver{dir: dir, exports: map[string]string{}}
}

func (r *exportResolver) add(pkgs []listPkg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup satisfies the importer.ForCompiler lookup contract.
func (r *exportResolver) lookup(path string) (io.ReadCloser, error) {
	r.mu.Lock()
	f, ok := r.exports[path]
	r.mu.Unlock()
	if !ok {
		pkgs, err := goList(r.dir, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		r.add(pkgs)
		r.mu.Lock()
		f, ok = r.exports[path]
		r.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for import %q (does it compile?)", path)
		}
	}
	return os.Open(f)
}

// Loader loads and type-checks packages of the module rooted at Dir.
type Loader struct {
	Dir string

	// Tests includes _test.go files: each package is type-checked with
	// its in-package test files added, and external _test packages are
	// checked on top. In this mode the whole main-module dependency
	// closure is checked from source in dependency order with imports
	// resolved in memory — mixing an augmented in-memory package with
	// the export-data view of another module package would split type
	// identities (two incompatible bank.Bank), so the module forms one
	// consistent source-checked universe. Set before Load.
	Tests bool

	fset     *token.FileSet
	resolver *exportResolver
	imp      types.Importer

	checkedMu sync.Mutex
	checked   map[string]*types.Package
	augmented map[string]*types.Package
}

// NewLoader returns a loader for the module rooted at dir ("." for
// the current directory; the go command resolves the enclosing
// module).
func NewLoader(dir string) *Loader {
	l := &Loader{
		Dir:       dir,
		fset:      token.NewFileSet(),
		checked:   map[string]*types.Package{},
		augmented: map[string]*types.Package{},
	}
	l.resolver = newExportResolver(dir)
	l.imp = importer.ForCompiler(l.fset, "gc", l.resolver.lookup)
	return l
}

// register records a source-checked module package so later checks
// resolve its import path in memory instead of from export data.
func (l *Loader) register(path string, pkg *types.Package) {
	l.checkedMu.Lock()
	l.checked[path] = pkg
	l.checkedMu.Unlock()
}

// augment records the test-augmented check of a package. It stays out
// of the general registry — only the package's own external _test
// package imports it (via moduleImporter.under); every other dependent
// compiles against the production package, as go build links them.
func (l *Loader) augment(path string, pkg *types.Package) {
	l.checkedMu.Lock()
	l.augmented[path] = pkg
	l.checkedMu.Unlock()
}

// moduleImporter resolves source-checked module packages in memory and
// everything else (stdlib) through gc export data. overrides (set when
// checking an external _test package) shadows the registry with the
// test-variant closure: the augmented package under test, plus every
// intermediate package re-checked against it.
type moduleImporter struct {
	l         *Loader
	overrides map[string]*types.Package
}

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if pkg := m.overrides[path]; pkg != nil {
		return pkg, nil
	}
	m.l.checkedMu.Lock()
	pkg := m.l.checked[path]
	m.l.checkedMu.Unlock()
	if pkg != nil {
		return pkg, nil
	}
	return m.l.imp.Import(path)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists patterns, then parses and type-checks every matched
// package of the main module. Without Tests, dependencies are consumed
// as export data, not re-checked, and test files are not analyzed;
// with Tests, see loadTests. The tree must compile: any list or type
// error aborts the load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(l.Dir, patterns...)
	if err != nil {
		return nil, err
	}
	if l.Tests {
		// Test files import module packages outside the production
		// dependency closure (simulate, testutil-style helpers), and
		// in-memory resolution needs every module package checked from
		// source. Widen to the whole module; analyzers see the full
		// tree either way.
		wide, err := goList(l.Dir, "./...")
		if err != nil {
			return nil, err
		}
		seen := map[string]bool{}
		for _, p := range listed {
			seen[p.ImportPath] = true
		}
		for _, p := range wide {
			if !seen[p.ImportPath] {
				listed = append(listed, p)
			}
		}
	}
	l.resolver.add(listed)
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || p.Module == nil || !p.Module.Main {
			continue
		}
		if p.DepOnly && !l.Tests {
			continue
		}
		targets = append(targets, p)
	}
	if l.Tests {
		return l.loadTests(targets)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		var paths []string
		for _, g := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Check(t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loadTests checks the module in two layers, the way the go tool
// builds tests. The production layer first: every main-module package,
// GoFiles only, in dependency order over production imports (acyclic
// by construction), each registering with the in-memory importer
// before its dependents check — one consistent source-checked
// universe, so no package ever mixes an in-memory module type with
// the export-data view of the same package. Then the test layer on
// top: packages with in-package test files are re-checked as
// GoFiles+TestGoFiles (test imports resolve against the registered
// production layer — production+test edges may be cyclic at the
// package level, e.g. index_test → simulate → ixcache → index, which
// is why test files cannot join the first pass), and external _test
// packages check last, importing the augmented package under test.
func (l *Loader) loadTests(targets []listPkg) ([]*Package, error) {
	byPath := map[string]listPkg{}
	for _, t := range targets {
		byPath[t.ImportPath] = t
	}
	var order []string
	seen := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		t, ok := byPath[path]
		if !ok {
			return // non-module import: export data
		}
		for _, dep := range t.Imports {
			visit(dep)
		}
		order = append(order, path)
	}
	var roots []string
	for path := range byPath {
		roots = append(roots, path)
	}
	sort.Strings(roots)
	for _, r := range roots {
		visit(r)
	}

	// Production layer.
	prod := map[string]*Package{}
	for _, path := range order {
		t := byPath[path]
		if len(t.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, g := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Check(t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		l.register(t.ImportPath, pkg.Pkg)
		prod[path] = pkg
	}

	// Test layer: re-check packages with in-package test files as one
	// augmented package. The augmented *types.Package stays out of the
	// registry — dependents compile against the production package,
	// exactly as go build links them.
	var pkgs []*Package
	for _, path := range order {
		t := byPath[path]
		if len(t.TestGoFiles) == 0 {
			if p := prod[path]; p != nil {
				pkgs = append(pkgs, p)
			}
			continue
		}
		var paths []string
		for _, g := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		testFrom := len(paths)
		for _, g := range t.TestGoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Check(t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = map[*ast.File]bool{}
		for _, f := range files[testFrom:] {
			pkg.TestFiles[f] = true
		}
		l.augment(t.ImportPath, pkg.Pkg)
		pkgs = append(pkgs, pkg)
	}

	// External _test packages (package foo_test): separate packages
	// importing the augmented foo (exported test helpers included).
	// Any module package the xtest pulls in that itself imports foo
	// must be re-checked against the augmented foo first — the go
	// tool's [foo.test] variants — or the xtest would see two
	// incompatible spellings of foo's types (one through its direct
	// import, one through the intermediate's signatures).
	for _, path := range order {
		t := byPath[path]
		if len(t.XTestGoFiles) == 0 {
			continue
		}
		overrides, err := l.testVariantClosure(path, byPath, order)
		if err != nil {
			return nil, err
		}
		var paths []string
		for _, g := range t.XTestGoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(t.ImportPath+"_test", files, overrides)
		if err != nil {
			return nil, err
		}
		pkg.TestFiles = map[*ast.File]bool{}
		for _, f := range files {
			pkg.TestFiles[f] = true
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// testVariantClosure prepares the import overrides for checking the
// external _test package of under: the augmented package under test,
// plus a re-check (production sources, in dependency order) of every
// module package on an import path between the xtest and under.
func (l *Loader) testVariantClosure(under string, byPath map[string]listPkg, order []string) (map[string]*types.Package, error) {
	l.checkedMu.Lock()
	aug := l.augmented[under]
	l.checkedMu.Unlock()
	if aug == nil {
		return nil, nil // no in-package test files: production foo is the only foo
	}
	overrides := map[string]*types.Package{under: aug}

	// Module packages reachable from the xtest's imports...
	reach := map[string]bool{}
	var walk func(p string)
	walk = func(p string) {
		t, ok := byPath[p]
		if !ok || reach[p] {
			return
		}
		reach[p] = true
		for _, dep := range t.Imports {
			walk(dep)
		}
	}
	for _, dep := range byPath[under].XTestImports {
		walk(dep)
	}
	// ...that transitively import the package under test. Production
	// imports are acyclic, so plain memoization is sound.
	memo := map[string]bool{}
	var importsUnder func(p string) bool
	importsUnder = func(p string) bool {
		if p == under {
			return true
		}
		if v, ok := memo[p]; ok {
			return v
		}
		memo[p] = false
		t, ok := byPath[p]
		if !ok {
			return false
		}
		for _, dep := range t.Imports {
			if importsUnder(dep) {
				memo[p] = true
				return true
			}
		}
		return false
	}
	for _, q := range order {
		if q == under || !reach[q] || !importsUnder(q) {
			continue
		}
		t := byPath[q]
		if len(t.GoFiles) == 0 {
			continue
		}
		var paths []string
		for _, g := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.check(q, files, overrides)
		if err != nil {
			return nil, err
		}
		overrides[q] = pkg.Pkg
	}
	return overrides, nil
}

// parseFiles parses source files with comments retained (the ignore
// and background directives live there).
func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks parsed files as one package under path, resolving
// imports through the loader's export map. Used both by Load and by
// the fixture runner (which checks testdata packages that go list
// never sees).
func (l *Loader) Check(path string, files []*ast.File) (*Package, error) {
	return l.check(path, files, nil)
}

func (l *Loader) check(path string, files []*ast.File, overrides map[string]*types.Package) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: moduleImporter{l: l, overrides: overrides}}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// CheckDir parses every .go file directly inside dir and type-checks
// them as one package under importPath — the fixture entry point.
func (l *Loader) CheckDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files, err := parseFiles(l.fset, paths)
	if err != nil {
		return nil, err
	}
	return l.Check(importPath, files)
}

// Prime pre-lists the module's own dependency closure so fixture
// packages resolve module-internal imports without per-import listing.
func (l *Loader) Prime() error {
	listed, err := goList(l.Dir, "./...")
	if err != nil {
		return err
	}
	l.resolver.add(listed)
	return nil
}
