package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Loading without golang.org/x/tools: the repo has no third-party
// dependencies, so scorislint resolves imports the way the toolchain
// itself does — `go list -export` compiles every package (cheap and
// cached: it is the same work `go build` already did) and reports the
// path of its gc export data in the build cache. Target packages are
// then parsed and type-checked from source with go/types, importing
// every dependency (stdlib and module-internal alike) through
// importer.ForCompiler("gc", lookup) over that export map.

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

const listFields = "ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Module,Error"

// goList runs `go list -e -export -deps` in dir over patterns and
// decodes the package stream.
func goList(dir string, patterns ...string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-json=" + listFields, "-deps", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportResolver maps import paths to gc export data files, listing
// lazily on a miss (fixture packages may import stdlib packages the
// module itself does not).
type exportResolver struct {
	dir string

	mu      sync.Mutex
	exports map[string]string
}

func newExportResolver(dir string) *exportResolver {
	return &exportResolver{dir: dir, exports: map[string]string{}}
}

func (r *exportResolver) add(pkgs []listPkg) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range pkgs {
		if p.Export != "" {
			r.exports[p.ImportPath] = p.Export
		}
	}
}

// lookup satisfies the importer.ForCompiler lookup contract.
func (r *exportResolver) lookup(path string) (io.ReadCloser, error) {
	r.mu.Lock()
	f, ok := r.exports[path]
	r.mu.Unlock()
	if !ok {
		pkgs, err := goList(r.dir, path)
		if err != nil {
			return nil, fmt.Errorf("resolving import %q: %v", path, err)
		}
		r.add(pkgs)
		r.mu.Lock()
		f, ok = r.exports[path]
		r.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for import %q (does it compile?)", path)
		}
	}
	return os.Open(f)
}

// Loader loads and type-checks packages of the module rooted at Dir.
type Loader struct {
	Dir string

	fset     *token.FileSet
	resolver *exportResolver
	imp      types.Importer
}

// NewLoader returns a loader for the module rooted at dir ("." for
// the current directory; the go command resolves the enclosing
// module).
func NewLoader(dir string) *Loader {
	l := &Loader{Dir: dir, fset: token.NewFileSet()}
	l.resolver = newExportResolver(dir)
	l.imp = importer.ForCompiler(l.fset, "gc", l.resolver.lookup)
	return l
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load lists patterns, then parses and type-checks every matched
// package of the main module (dependencies are consumed as export
// data, not re-checked; test files are not analyzed). The tree must
// compile: any list or type error aborts the load.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := goList(l.Dir, patterns...)
	if err != nil {
		return nil, err
	}
	l.resolver.add(listed)
	var targets []listPkg
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Standard || p.DepOnly || p.Module == nil || !p.Module.Main {
			continue
		}
		targets = append(targets, p)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		var paths []string
		for _, g := range t.GoFiles {
			paths = append(paths, filepath.Join(t.Dir, g))
		}
		files, err := parseFiles(l.fset, paths)
		if err != nil {
			return nil, err
		}
		pkg, err := l.Check(t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// parseFiles parses source files with comments retained (the ignore
// and background directives live there).
func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// Check type-checks parsed files as one package under path, resolving
// imports through the loader's export map. Used both by Load and by
// the fixture runner (which checks testdata packages that go list
// never sees).
func (l *Loader) Check(path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}

// CheckDir parses every .go file directly inside dir and type-checks
// them as one package under importPath — the fixture entry point.
func (l *Loader) CheckDir(importPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files, err := parseFiles(l.fset, paths)
	if err != nil {
		return nil, err
	}
	return l.Check(importPath, files)
}

// Prime pre-lists the module's own dependency closure so fixture
// packages resolve module-internal imports without per-import listing.
func (l *Loader) Prime() error {
	listed, err := goList(l.Dir, "./...")
	if err != nil {
		return err
	}
	l.resolver.add(listed)
	return nil
}
