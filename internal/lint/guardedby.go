package lint

// guardedby checks declared lock discipline: a struct field annotated
//
//	items map[string]*entry // guardedby: mu
//
// may only be read or written while the named mutex of the same
// struct value is held. Held regions are tracked lexically —
// x.mu.Lock() opens one, x.mu.Unlock() closes it, defer x.mu.Unlock()
// holds to function end, RLock counts as held — and the check is
// interprocedural: a helper that accesses a guarded field of its
// receiver without locking publishes a "requires lock" summary, and
// every call site must then be inside a held region (or pass a freshly
// constructed, not-yet-shared value). Constructors are exempt the same
// way: accesses to a struct the function itself created never require
// the lock.
//
// Gaps, deliberately: function literals are not analyzed (goroutine
// bodies normally use the locked accessors), and a requiring function
// with no call sites at all stays silent rather than guessing about
// its callers.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerGuardedBy is the lock-discipline analyzer.
var AnalyzerGuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guardedby: mu` are only touched while that mutex is held (DESIGN.md §8)",
	Contract: `DESIGN.md §8: shared mutable state (the server bank registry and
session pool, fleet worker health, the ixcache LRU) is guarded by a
named mutex. Fields carry '// guardedby: <mutex>' annotations; every
access must be inside a region where <mutex> of the same struct value
is held (Lock/RLock through Unlock/RUnlock, or defer Unlock). Helpers
that rely on their caller's lock are checked at every call site via
the call graph. Freshly constructed values are exempt until shared.`,
	Annotation: "// guardedby: <mutexField>   trailing or preceding comment on a struct field",
	Run:        runGuardedBy,
}

// guardKey identifies one annotated field.
type guardKey struct {
	pkg   string
	typ   string
	field string
}

// lockReq is one published requirement: parameter slot must have
// <rel> held at every call site (rel is the path from the argument to
// the mutex, e.g. ".mu" or ".pool.mu").
type lockReq struct {
	slot int
	rel  string
	desc string // guarded field, for messages
}

// argInfo is one call-site argument in parameter-slot order.
type argInfo struct {
	repr   string // canonical expression text, "" if not trackable
	slot   int    // caller parameter slot of its root, -1 otherwise
	exempt bool   // root object was constructed in the caller
}

// callRecord is one direct module call with its caller-side context.
type callRecord struct {
	callee FuncKey
	pos    token.Pos
	args   []argInfo
	held   map[string]bool
}

type guardState struct {
	pass    *Pass
	mod     *Module
	guards  map[guardKey]string // field -> mutex name
	reqs    map[FuncKey][]lockReq
	calls   map[FuncKey][]callRecord
	direct  []Diagnostic
	violMsg map[string]bool
}

func runGuardedBy(pass *Pass) {
	mod := pass.Module()
	st := &guardState{
		pass:    pass,
		mod:     mod,
		guards:  map[guardKey]string{},
		reqs:    map[FuncKey][]lockReq{},
		calls:   map[FuncKey][]callRecord{},
		violMsg: map[string]bool{},
	}
	st.collectGuards()
	if len(st.guards) == 0 {
		return
	}
	for key, fi := range mod.Funcs {
		st.analyzeFunc(key, fi)
	}
	for key, reqs := range st.reqs {
		st.mod.PutFact("guardedby", key, reqs)
	}

	// Propagate requirements up the call graph to fixpoint, then
	// report the call sites that satisfy none of the outs.
	for round := 0; round < 6; round++ {
		if !st.propagate(nil) {
			break
		}
	}
	var viols []Diagnostic
	st.propagate(&viols)
	for _, d := range st.direct {
		viols = append(viols, d)
	}
	seen := map[string]bool{}
	for _, d := range viols {
		k := fmt.Sprint(d.Pos, d.Message)
		if seen[k] {
			continue
		}
		seen[k] = true
		*st.pass.diags = append(*st.pass.diags, d)
	}
}

// collectGuards parses `// guardedby: <mutex>` field annotations and
// validates that the named mutex exists on the same struct.
func (st *guardState) collectGuards() {
	for _, pkg := range st.pass.Pkgs {
		for _, f := range st.pass.Files(pkg) {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				styp, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				fieldTypes := map[string]ast.Expr{}
				for _, field := range styp.Fields.List {
					for _, name := range field.Names {
						fieldTypes[name.Name] = field.Type
					}
				}
				for _, field := range styp.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					muType, ok := fieldTypes[mu]
					if !ok || !isMutexType(typeOf(pkg.Info, muType)) {
						st.pass.Reportf(field.Pos(),
							"guardedby: %q is not a sync.Mutex/RWMutex field of %s", mu, ts.Name.Name)
						continue
					}
					for _, name := range field.Names {
						st.guards[guardKey{pkg.Path, ts.Name.Name, name.Name}] = mu
					}
				}
				return true
			})
		}
	}
}

// guardAnnotation extracts the mutex name from a field's trailing or
// preceding comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "guardedby:"); ok {
				rest = strings.TrimSpace(rest)
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					rest = rest[:i]
				}
				return rest
			}
		}
	}
	return ""
}

func isMutexType(t types.Type) bool {
	return t != nil && (isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex"))
}

// exprRepr renders a lockable expression canonically: "s", "s.pool",
// "rt". Non-path expressions (map index, call result) return "".
func exprRepr(x ast.Expr) string {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		base := exprRepr(v.X)
		if base == "" {
			return ""
		}
		return base + "." + v.Sel.Name
	case *ast.StarExpr:
		return exprRepr(v.X)
	}
	return ""
}

// guardWalker tracks held mutexes through one function body.
type guardWalker struct {
	st     *guardState
	fi     *FuncInfo
	info   *types.Info
	key    FuncKey
	held   map[string]bool
	exempt map[types.Object]bool
	params map[types.Object]int
	slots  map[string]int // param name -> slot, for repr roots
}

func (st *guardState) analyzeFunc(key FuncKey, fi *FuncInfo) {
	w := &guardWalker{
		st: st, fi: fi, info: fi.Pkg.Info, key: key,
		held:   map[string]bool{},
		exempt: map[types.Object]bool{},
		params: map[types.Object]int{},
		slots:  map[string]int{},
	}
	i := 0
	if recv := fi.Decl.Recv; recv != nil {
		for _, field := range recv.List {
			for _, name := range field.Names {
				if obj := w.info.Defs[name]; obj != nil {
					w.params[obj] = i
					w.slots[name.Name] = i
				}
			}
		}
		i++
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := w.info.Defs[name]; obj != nil {
				w.params[obj] = i
				w.slots[name.Name] = i
			}
			i++
		}
	}
	for _, s := range fi.Decl.Body.List {
		w.stmt(s)
	}
}

// lockCall classifies a sync mutex method call, returning the lock
// repr ("s.mu") and whether it acquires.
func (w *guardWalker) lockCall(call *ast.CallExpr) (repr string, acquire, release bool) {
	fn := calleeFunc(w.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return exprRepr(sel.X), true, false
	case "Unlock", "RUnlock":
		return exprRepr(sel.X), false, true
	}
	return "", false, false
}

// access checks one selector expression against the annotations.
func (w *guardWalker) access(sel *ast.SelectorExpr) {
	s := w.info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	named, ok := deref(s.Recv()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	key := guardKey{named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name}
	mu, guarded := w.st.guards[key]
	if !guarded {
		return
	}
	base := exprRepr(sel.X)
	if base != "" && w.held[base+"."+mu] {
		return
	}
	root := rootObj(w.info, sel.X)
	if root != nil && w.exempt[root] {
		return
	}
	desc := named.Obj().Name() + "." + sel.Sel.Name
	if root != nil {
		if slot, isParam := w.params[root]; isParam && base != "" {
			rootName := base
			if i := strings.IndexByte(base, '.'); i >= 0 {
				rootName = base[:i]
			}
			rel := strings.TrimPrefix(base, rootName) + "." + mu
			w.addReq(lockReq{slot: slot, rel: rel, desc: desc})
			return
		}
	}
	holder := mu
	if base != "" {
		holder = base + "." + mu
	}
	w.st.direct = append(w.st.direct, Diagnostic{
		Analyzer: w.st.pass.Analyzer.Name,
		Pos:      w.st.pass.Fset.Position(sel.Pos()),
		Message: fmt.Sprintf("%s is guarded by %s but accessed without holding %s (DESIGN.md §8)",
			desc, mu, holder),
	})
}

func (w *guardWalker) addReq(r lockReq) {
	for _, have := range w.st.reqs[w.key] {
		if have == r {
			return
		}
	}
	w.st.reqs[w.key] = append(w.st.reqs[w.key], r)
}

// recordCall snapshots caller context at a direct module call.
func (w *guardWalker) recordCall(call *ast.CallExpr) {
	fn := calleeFunc(w.info, call)
	if fn == nil {
		return
	}
	key := KeyOf(fn)
	if _, inModule := w.st.mod.Funcs[key]; !inModule {
		return
	}
	sig := fn.Type().(*types.Signature)
	var argExprs []ast.Expr
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			argExprs = append(argExprs, sel.X)
		} else {
			argExprs = append(argExprs, nil)
		}
	}
	argExprs = append(argExprs, call.Args...)
	args := make([]argInfo, len(argExprs))
	for i, a := range argExprs {
		if a == nil {
			args[i] = argInfo{slot: -1}
			continue
		}
		repr := exprRepr(a)
		slot := -1
		exempt := false
		if root := rootObj(w.info, a); root != nil {
			if s, ok := w.params[root]; ok {
				slot = s
			}
			exempt = w.exempt[root]
		}
		args[i] = argInfo{repr: repr, slot: slot, exempt: exempt}
	}
	held := make(map[string]bool, len(w.held))
	for k, v := range w.held {
		held[k] = v
	}
	w.st.calls[w.key] = append(w.st.calls[w.key], callRecord{
		callee: key, pos: call.Pos(), args: args, held: held,
	})
}

// scan processes every expression node of one statement, shallowly:
// lock transitions, guarded accesses, call records.
func (w *guardWalker) scan(n ast.Node, inDefer bool) {
	if n == nil {
		return
	}
	inspectShallow(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.CallExpr:
			if repr, acquire, release := w.lockCall(v); repr != "" {
				switch {
				case acquire:
					w.held[repr] = true
				case release && !inDefer:
					delete(w.held, repr)
				}
				return true
			}
			w.recordCall(v)
		case *ast.SelectorExpr:
			w.access(v)
		}
		return true
	})
}

func (w *guardWalker) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.AssignStmt:
		// Constructor exemption: freshly built values are unshared.
		for i, lhs := range v.Lhs {
			if i >= len(v.Rhs) {
				break
			}
			if isConstruction(v.Rhs[i]) {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := w.info.Defs[id]; obj != nil {
						w.exempt[obj] = true
					}
				}
			}
		}
		w.scan(v, false)
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						construct := len(vs.Values) == 0 // var x T: zero value, unshared
						if i < len(vs.Values) && isConstruction(vs.Values[i]) {
							construct = true
						}
						if construct {
							if obj := w.info.Defs[name]; obj != nil {
								w.exempt[obj] = true
							}
						}
					}
				}
			}
		}
		w.scan(v, false)
	case *ast.DeferStmt:
		w.scan(v.Call, true)
	case *ast.IfStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.scan(v.Cond, false)
		for _, s := range v.Body.List {
			w.stmt(s)
		}
		if v.Else != nil {
			w.stmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.scan(v.Cond, false)
		for _, s := range v.Body.List {
			w.stmt(s)
		}
		if v.Post != nil {
			w.stmt(v.Post)
		}
	case *ast.RangeStmt:
		w.scan(v.X, false)
		for _, s := range v.Body.List {
			w.stmt(s)
		}
	case *ast.BlockStmt:
		for _, s := range v.List {
			w.stmt(s)
		}
	case *ast.SwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.scan(v.Tag, false)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			w.stmt(v.Init)
		}
		w.stmt(v.Assign)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm)
				}
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(v.Stmt)
	default:
		w.scan(s, false)
	}
}

// isConstruction reports whether x builds a fresh value: T{...},
// &T{...}, or new(T).
func isConstruction(x ast.Expr) bool {
	switch v := ast.Unparen(x).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			_, ok := ast.Unparen(v.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// propagate walks every call site against its callee's requirements.
// With viols == nil it only grows caller requirements (returning
// whether anything changed); with viols set it collects the
// unsatisfiable call sites.
func (st *guardState) propagate(viols *[]Diagnostic) bool {
	changed := false
	var callers []FuncKey
	for key := range st.calls {
		callers = append(callers, key)
	}
	sort.Slice(callers, func(i, j int) bool { return callers[i] < callers[j] })
	for _, caller := range callers {
		for _, rec := range st.calls[caller] {
			for _, req := range st.reqs[rec.callee] {
				if req.slot >= len(rec.args) {
					continue
				}
				a := rec.args[req.slot]
				if a.exempt {
					continue
				}
				if a.repr != "" && rec.held[a.repr+req.rel] {
					continue
				}
				if a.slot >= 0 && a.repr != "" {
					// Argument roots in a caller parameter: push the
					// requirement up.
					rootName := a.repr
					if i := strings.IndexByte(a.repr, '.'); i >= 0 {
						rootName = a.repr[:i]
					}
					up := lockReq{
						slot: a.slot,
						rel:  strings.TrimPrefix(a.repr, rootName) + req.rel,
						desc: req.desc,
					}
					have := false
					for _, r := range st.reqs[caller] {
						if r == up {
							have = true
							break
						}
					}
					if !have {
						st.reqs[caller] = append(st.reqs[caller], up)
						changed = true
					}
					continue
				}
				if viols != nil {
					calleeName := string(rec.callee)
					if i := strings.LastIndexByte(calleeName, '.'); i >= 0 {
						calleeName = calleeName[i+1:]
					}
					*viols = append(*viols, Diagnostic{
						Analyzer: st.pass.Analyzer.Name,
						Pos:      st.pass.Fset.Position(rec.pos),
						Message: fmt.Sprintf("call to %s touches %s, which is guarded by %s%s, without holding it (DESIGN.md §8)",
							calleeName, req.desc, a.repr, req.rel),
					})
				}
			}
		}
	}
	return changed
}
