package lint

// detorder mechanizes the byte-identity invariant: every emitted m8
// stream, stored .orix image, JSON response, and /stats snapshot must
// be byte-deterministic, because CI compares them against the serial
// CLI byte-for-byte. Go map iteration order is deliberately random, so
// values that flow out of a `for range` over a map must pass through
// an explicit sort before they reach an output.
//
// The analysis is interprocedural over the module call graph: a
// function that returns a slice built from map iteration publishes a
// "returns unordered" summary, and a function that writes a parameter
// to an encoder or writer publishes "parameter emits" — so building
// the slice in one function and emitting it from another is still a
// finding. Sorting (sort.* / slices.Sort*) clears the unordered mark.
// Commutative uses — counters, sums, min/max folds — never flag,
// because only values appended or emitted in iteration order carry the
// nondeterminism into the output bytes.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerDetOrder is the map-order determinism analyzer.
var AnalyzerDetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "values from map iteration must be sorted before reaching emitted streams, stored files, or JSON (byte-identity invariant)",
	Contract: `The byte-identity invariant: m8 streams, .orix files, JSON responses,
and /stats snapshots are compared byte-for-byte against the serial
CLI. Values that flow out of a map 'for range' — directly, through a
slice built by append, or through a function that returns such a
slice — must pass an explicit sort (sort.*, slices.Sort*) before any
Write/Encode/Fprint emits them. Counter and sum folds over maps are
commutative and never flag.`,
	Run: runDetOrder,
}

// orderSummary is one function's published ordering fact.
type orderSummary struct {
	returnsUnordered bool
	desc             string // origin of the disorder, for messages
	paramEmits       []bool // parameter i is written to an output
}

func (s *orderSummary) fingerprint() string {
	if s == nil {
		return ""
	}
	b := strings.Builder{}
	if s.returnsUnordered {
		b.WriteString("R")
	}
	for _, p := range s.paramEmits {
		if p {
			b.WriteString("1")
		} else {
			b.WriteString("0")
		}
	}
	return b.String()
}

type orderState struct {
	pass      *Pass
	mod       *Module
	summaries map[FuncKey]*orderSummary
}

func runDetOrder(pass *Pass) {
	mod := pass.Module()
	st := &orderState{pass: pass, mod: mod, summaries: map[FuncKey]*orderSummary{}}
	for key, fi := range mod.Funcs {
		st.summaries[key] = &orderSummary{paramEmits: make([]bool, numParams(fi.Obj))}
	}
	for round := 0; round < 6; round++ {
		changed := false
		for key, fi := range mod.Funcs {
			prev := st.summaries[key]
			next := &orderSummary{paramEmits: make([]bool, numParams(fi.Obj))}
			st.analyze(fi, next, false)
			next.returnsUnordered = next.returnsUnordered || prev.returnsUnordered
			if next.desc == "" {
				next.desc = prev.desc
			}
			for i := range prev.paramEmits {
				next.paramEmits[i] = next.paramEmits[i] || prev.paramEmits[i]
			}
			if next.fingerprint() != prev.fingerprint() {
				changed = true
			}
			st.summaries[key] = next
		}
		if !changed {
			break
		}
	}
	for key, sum := range st.summaries {
		st.mod.PutFact("detorder", key, sum)
	}
	for key, fi := range mod.Funcs {
		st.analyze(fi, st.summaries[key], true)
	}
}

type orderEngine struct {
	st   *orderState
	fi   *FuncInfo
	info *types.Info
	sum  *orderSummary

	// unordered maps an object to the description of the map iteration
	// its contents came from; derived tracks values computed from the
	// current iteration's variables.
	unordered map[types.Object]string
	derived   map[types.Object]string
	paramIdx  map[types.Object]int

	report   bool
	reported map[token.Pos]bool
}

func (st *orderState) analyze(fi *FuncInfo, sum *orderSummary, report bool) {
	e := &orderEngine{
		st: st, fi: fi, info: fi.Pkg.Info, sum: sum,
		unordered: map[types.Object]string{},
		derived:   map[types.Object]string{},
		paramIdx:  map[types.Object]int{},
		report:    report,
		reported:  map[token.Pos]bool{},
	}
	i := 0
	if recv := fi.Decl.Recv; recv != nil {
		for _, field := range recv.List {
			for _, name := range field.Names {
				if obj := e.info.Defs[name]; obj != nil {
					e.paramIdx[obj] = i
				}
			}
		}
		i++
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := e.info.Defs[name]; obj != nil {
				e.paramIdx[obj] = i
			}
			i++
		}
	}
	for _, s := range fi.Decl.Body.List {
		e.stmt(s)
	}
}

// disorderOf returns the iteration-origin description of x, or "".
func (e *orderEngine) disorderOf(x ast.Expr) string {
	desc := ""
	ast.Inspect(x, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := e.info.Uses[id]; obj != nil {
				if d := e.unordered[obj]; d != "" {
					desc = d
				} else if d := e.derived[obj]; d != "" {
					desc = d
				}
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeFunc(e.info, call); fn != nil {
				if sum := e.st.summaries[KeyOf(fn)]; sum != nil && sum.returnsUnordered {
					desc = sum.desc
					if desc == "" {
						desc = "map iteration in " + fn.Name()
					}
					return false
				}
			}
		}
		return true
	})
	return desc
}

func (e *orderEngine) reportAt(pos token.Pos, desc, what string) {
	if e.reported[pos] {
		return
	}
	e.reported[pos] = true
	if e.report {
		e.st.pass.Reportf(pos, "values from %s reach %s without an intervening sort; output bytes become nondeterministic (byte-identity invariant)", desc, what)
	}
}

// handleCall processes one call expression for sort-clearing,
// emission, and summary application.
func (e *orderEngine) handleCall(call *ast.CallExpr) {
	fn := calleeFunc(e.info, call)
	if fn == nil {
		return
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	name := fn.Name()
	sig := fn.Type().(*types.Signature)

	// Sorting blesses the slice.
	if isSortCall(pkgPath, name) {
		if len(call.Args) > 0 {
			if obj := sortTargetObj(e.info, call.Args[0]); obj != nil {
				delete(e.unordered, obj)
				delete(e.derived, obj)
			}
		}
		return
	}

	// Emission: check the data arguments.
	emitsArg := func(arg ast.Expr, what string) {
		if desc := e.disorderOf(arg); desc != "" {
			e.reportAt(call.Pos(), desc, what)
		}
		if obj := rootObj(e.info, arg); obj != nil {
			if i, ok := e.paramIdx[obj]; ok && i < len(e.sum.paramEmits) {
				e.sum.paramEmits[i] = true
			}
		}
	}
	switch {
	case sig.Recv() != nil && name == "Encode" && isNamed(sig.Recv().Type(), "encoding/json", "Encoder"):
		for _, a := range call.Args {
			emitsArg(a, "a JSON response")
		}
	case pkgPath == "encoding/json" && (name == "Marshal" || name == "MarshalIndent"):
		for _, a := range call.Args {
			emitsArg(a, "marshaled JSON")
		}
	case pkgPath == "fmt" && strings.HasPrefix(name, "Fprint"):
		for _, a := range call.Args[1:] {
			emitsArg(a, "a formatted output stream")
		}
	case sig.Recv() != nil && (name == "Write" || name == "WriteString"):
		for _, a := range call.Args {
			emitsArg(a, "a writer")
		}
	default:
		// Module function with emitting parameters.
		if sum := e.st.summaries[KeyOf(fn)]; sum != nil {
			args := effectiveArgs(call, sig)
			for i, a := range args {
				if a == nil || i >= len(sum.paramEmits) || !sum.paramEmits[i] {
					continue
				}
				emitsArg(a, "an output written by "+name)
			}
		}
	}
}

// effectiveArgs aligns call arguments with parameter slots (receiver
// first for methods).
func effectiveArgs(call *ast.CallExpr, sig *types.Signature) []ast.Expr {
	var args []ast.Expr
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil)
		}
	}
	return append(args, call.Args...)
}

// isSortCall reports whether pkgPath.name establishes a total order on
// its first argument: the sort package's entry points (Sort, Stable,
// Slice and friends don't have "sort" in the function name) and the
// slices package's Sort* family.
func isSortCall(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Sort", "Stable", "Slice", "SliceStable",
			"Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// sortTargetObj unwraps sort.Sort(ByName(s)) and sort.Slice(s, less)
// arguments to the underlying slice object.
func sortTargetObj(info *types.Info, x ast.Expr) types.Object {
	x = ast.Unparen(x)
	if call, ok := x.(*ast.CallExpr); ok {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			return rootObj(info, call.Args[0])
		}
	}
	return rootObj(info, x)
}

// scanCalls processes every call in an expression tree, shallowly.
func (e *orderEngine) scanCalls(n ast.Node) {
	if n == nil {
		return
	}
	inspectShallow(n, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			e.handleCall(call)
		}
		return true
	})
}

// commutativeFold reports whether the assignment is a compound
// accumulation into a numeric target (+=, -=, *=, |=, &=, ^=), whose
// result cannot depend on iteration order. String += concatenation is
// order-sensitive and stays out.
func commutativeFold(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	t := typeOf(info, as.Lhs[0])
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// markAssign processes one assignment for disorder propagation.
func (e *orderEngine) markAssign(lhs, rhs ast.Expr) {
	// Appending into a map index is exempt: encoding/json re-sorts map
	// keys on marshal.
	if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if t := typeOf(e.info, ast.Unparen(lhs).(*ast.IndexExpr).X); t != nil {
			if _, isMap := deref(t).Underlying().(*types.Map); isMap {
				return
			}
		}
	}
	desc := e.disorderOf(rhs)
	obj := rootObj(e.info, lhs)
	if obj == nil {
		return
	}
	if desc == "" {
		// Reassignment from an ordered value clears plain locals.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && e.info.Defs[id] != nil {
			delete(e.unordered, obj)
			delete(e.derived, obj)
		}
		return
	}
	if isAppendCall(e.info, rhs) || isSliceLike(typeOf(e.info, lhs)) {
		e.unordered[obj] = desc
	} else {
		e.derived[obj] = desc
	}
}

func isAppendCall(info *types.Info, x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	return ok && isBuiltin(info, call, "append")
}

func isSliceLike(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := deref(t).Underlying().(*types.Slice)
	return ok
}

// stmt walks one statement in source order.
func (e *orderEngine) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.RangeStmt:
		e.scanCalls(v.X)
		t := typeOf(e.info, v.X)
		_, overMap := deref(t).Underlying().(*types.Map)
		overUnorderedDesc := ""
		if obj := rootObj(e.info, v.X); obj != nil {
			overUnorderedDesc = e.unordered[obj]
		}
		if !overMap && overUnorderedDesc == "" {
			for _, s := range v.Body.List {
				e.stmt(s)
			}
			return
		}
		desc := overUnorderedDesc
		if overMap {
			pos := e.st.pass.Fset.Position(v.Pos())
			desc = "map iteration at " + shortPos(pos)
		}
		// Iteration variables are derived for the body walk.
		saved := map[types.Object]string{}
		markIter := func(x ast.Expr) {
			if x == nil {
				return
			}
			if id, ok := ast.Unparen(x).(*ast.Ident); ok {
				obj := e.info.Defs[id]
				if obj == nil {
					obj = e.info.Uses[id]
				}
				if obj != nil {
					saved[obj] = e.derived[obj]
					e.derived[obj] = desc
				}
			}
		}
		markIter(v.Key)
		markIter(v.Value)
		for _, s := range v.Body.List {
			e.stmt(s)
		}
		for obj, old := range saved {
			if old == "" {
				delete(e.derived, obj)
			} else {
				e.derived[obj] = old
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			e.scanCalls(rhs)
		}
		if commutativeFold(e.info, v) {
			// n += len(ss), sum |= bits: the fold result is independent
			// of iteration order — the invariant detorder protects is
			// about bytes emitted in order, not aggregate values.
			return
		}
		for i, lhs := range v.Lhs {
			rhs := ast.Expr(nil)
			if i < len(v.Rhs) {
				rhs = v.Rhs[i]
			} else if len(v.Rhs) == 1 {
				rhs = v.Rhs[0]
			}
			if rhs != nil {
				e.markAssign(lhs, rhs)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, nameID := range vs.Names {
						if i < len(vs.Values) {
							e.scanCalls(vs.Values[i])
							e.markAssign(ast.Expr(nameID), vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.ExprStmt:
		e.scanCalls(v.X)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			e.scanCalls(r)
			if desc := e.disorderOf(r); desc != "" {
				e.sum.returnsUnordered = true
				if e.sum.desc == "" {
					e.sum.desc = desc
				}
			}
		}
	case *ast.IfStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.scanCalls(v.Cond)
		for _, s := range v.Body.List {
			e.stmt(s)
		}
		if v.Else != nil {
			e.stmt(v.Else)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.scanCalls(v.Cond)
		for _, s := range v.Body.List {
			e.stmt(s)
		}
		if v.Post != nil {
			e.stmt(v.Post)
		}
	case *ast.BlockStmt:
		for _, s := range v.List {
			e.stmt(s)
		}
	case *ast.SwitchStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.scanCalls(v.Tag)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.stmt(v.Assign)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					e.stmt(cc.Comm)
				}
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.DeferStmt:
		e.scanCalls(v.Call)
	case *ast.GoStmt:
		e.scanCalls(v.Call)
	case *ast.SendStmt:
		e.scanCalls(v.Chan)
		e.scanCalls(v.Value)
	case *ast.LabeledStmt:
		e.stmt(v.Stmt)
	}
}

// shortPos renders file:line with only the file base name, keeping
// messages stable across checkouts.
func shortPos(pos token.Position) string {
	name := pos.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name + ":" + strconv.Itoa(pos.Line)
}
