package lint

import (
	"go/ast"
)

const httpapiPkgPath = "repro/internal/httpapi"

// AnalyzerVersionedMount enforces the API-versioning contract of
// DESIGN.md §8: every HTTP surface is mounted through
// httpapi.Versioned, which serves one handler at both /v1/<path>
// (canonical) and the bare legacy alias (with deprecation headers) so
// the two can never drift apart. A function that registers handlers
// on a raw *http.ServeMux without passing a mux through
// httpapi.Versioned — or that registers on net/http's global
// DefaultServeMux at all — is mounting an unversioned surface.
//
// Package httpapi itself is exempt: it is the one place the raw
// double-mount is implemented.
var AnalyzerVersionedMount = &Analyzer{
	Name: "versionedmount",
	Doc:  "HTTP handlers must be mounted through httpapi.Versioned so the /v1 + deprecated-alias pair cannot drift (DESIGN.md §8)",
	Run:  runVersionedMount,
}

func runVersionedMount(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if pkg.Path == httpapiPkgPath {
			continue
		}
		for _, f := range pass.Files(pkg) {
			// Only walk declarations; a FuncLit's registrations are
			// attributed to the enclosing declaration, where the
			// Versioned wrap (if any) also lexically lives.
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkMountsIn(pass, pkg, fd.Body)
			}
		}
	}
}

func checkMountsIn(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	var rawMounts []*ast.CallExpr
	versioned := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pkg.Info, call, httpapiPkgPath, "Versioned") {
			versioned = true
			return true
		}
		// Global-mux registration is never versioned; flag outright.
		if isPkgFunc(pkg.Info, call, "net/http", "Handle") || isPkgFunc(pkg.Info, call, "net/http", "HandleFunc") {
			pass.Reportf(call.Pos(), "handler registered on net/http's DefaultServeMux: mount through httpapi.Versioned on an explicit mux so /v1 and the deprecated alias stay paired (DESIGN.md §8)")
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
			return true
		}
		if t := typeOf(pkg.Info, sel.X); t != nil && isNamed(t, "net/http", "ServeMux") {
			rawMounts = append(rawMounts, call)
		}
		return true
	})
	if versioned {
		return
	}
	for _, call := range rawMounts {
		pass.Reportf(call.Pos(), "handler mounted on a raw *http.ServeMux in a function that never calls httpapi.Versioned: the /v1 + deprecated-alias pair must come from one mount (DESIGN.md §8)")
	}
}
