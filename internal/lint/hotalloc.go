package lint

// hotalloc enforces the hot-loop budget (DESIGN.md §2): the step-2
// scan, the blat tile probe, and the CSR extend splice process one
// element per iteration at memory speed, so their per-element paths
// must not allocate, box into interfaces, or format. A function opts
// in with //scorislint:hotpath on its declaration; inside its loop
// bodies the analyzer flags
//
//   - make / new / &T{} / slice and map literals / string<->[]byte
//     conversions (plain value struct literals are register-friendly
//     and allowed),
//   - any fmt call,
//   - boxing a concrete value into an interface (call argument or
//     assignment),
//   - calls to module functions that allocate anywhere (transitively,
//     over the call graph) — unless the callee is itself hotpath-tagged
//     and therefore checked on its own.
//
// append and copy are allowed (amortized growth is the idiom the
// paper's CSR splice depends on), and function literals are not
// flagged: spawning workers in a loop is setup, not the per-element
// path. Nested literals inside a tagged function are checked as their
// own lexical scopes.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerHotAlloc is the hot-path allocation analyzer.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//scorislint:hotpath functions must not allocate, box, or call fmt in their loop bodies (DESIGN.md §2)",
	Contract: `DESIGN.md §2's hot-loop budget: the per-element paths of the step-2
scan, blat tile probe, and CSR extend splice run at memory speed.
Inside the loop bodies of a //scorislint:hotpath function, the
analyzer flags make/new, &T{} and slice/map literals,
string<->[]byte conversions, fmt calls, interface boxing, and calls
to module functions that allocate (transitively) unless the callee
is itself hotpath-tagged. append and copy are allowed; creating
function literals is setup, not per-element work.`,
	Annotation: "//scorislint:hotpath   in the function's doc comment",
	Run:        runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	mod := pass.Module()

	// allocates: the function's body performs an allocation anywhere.
	// Transitive over direct call edges, so a hot loop cannot hide an
	// allocation one call deep. Hotpath-tagged callees are excluded:
	// they are checked on their own terms.
	direct := map[FuncKey]bool{}
	hot := map[FuncKey]bool{}
	for key, fi := range mod.Funcs {
		hot[key] = funcDirective(fi.Decl, "hotpath")
		direct[key] = hasDirectAlloc(fi)
	}
	allocates := map[FuncKey]bool{}
	for key := range mod.Funcs {
		allocates[key] = direct[key]
	}
	for {
		changed := false
		for key := range mod.Funcs {
			if allocates[key] {
				continue
			}
			for _, e := range mod.Callees(key) {
				if e.Kind != EdgeDirect {
					continue
				}
				if allocates[e.Callee] && !hot[e.Callee] {
					allocates[key] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for key, a := range allocates {
		mod.PutFact("hotalloc", key, a)
	}

	for key, fi := range mod.Funcs {
		if !hot[key] {
			continue
		}
		checkHotFunc(pass, mod, fi, hot, allocates)
	}
}

// hasDirectAlloc reports whether the function body itself allocates.
func hasDirectAlloc(fi *FuncInfo) bool {
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if kind, _ := allocKind(fi.Pkg.Info, n); kind != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// allocKind classifies one AST node as an allocation, returning a
// description and the node to report at ("" if not an allocation).
func allocKind(info *types.Info, n ast.Node) (string, ast.Node) {
	switch v := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if _, isB := info.Uses[id].(*types.Builtin); isB {
				switch id.Name {
				case "make":
					return "make", v
				case "new":
					return "new", v
				}
				return "", nil
			}
		}
		// string<->[]byte conversions copy.
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			to, from := tv.Type, typeOf(info, v.Args[0])
			if to != nil && from != nil && stringBytesConversion(to, from) {
				return "string/[]byte conversion", v
			}
			return "", nil
		}
		if fn := calleeFunc(info, v); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return "fmt." + fn.Name(), v
		}
	case *ast.UnaryExpr:
		if v.Op.String() == "&" {
			if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				return "&composite literal", v
			}
		}
	case *ast.CompositeLit:
		if t := typeOf(info, v); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return "slice/map literal", v
			}
		}
	}
	return "", nil
}

func stringBytesConversion(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		return ok && isByte(s.Elem())
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}

// checkHotFunc flags per-element violations inside the loop bodies of
// one hotpath function. Each function literal inside is its own
// lexical scope: a loop in the literal counts, a loop merely enclosing
// the literal's creation does not.
func checkHotFunc(pass *Pass, mod *Module, fi *FuncInfo, hot, allocates map[FuncKey]bool) {
	info := fi.Pkg.Info
	var scopes []*ast.BlockStmt
	scopes = append(scopes, fi.Decl.Body)
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	reported := map[token.Pos]bool{}
	for _, scope := range scopes {
		inspectShallow(scope, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkLoopBody(pass, mod, info, body, hot, allocates, reported)
			return true
		})
	}
}

// checkLoopBody flags allocation, fmt, boxing, and allocating module
// calls inside one loop body (not descending into nested literals —
// they are scopes of their own). Nested loops are visited once per
// enclosure; reported dedupes.
func checkLoopBody(pass *Pass, mod *Module, info *types.Info, body *ast.BlockStmt, hot, allocates map[FuncKey]bool, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}
	inspectShallow(body, func(n ast.Node) bool {
		if kind, at := allocKind(info, n); kind != "" {
			report(at.Pos(), "%s in the loop body of a //scorislint:hotpath function (DESIGN.md §2: no per-element allocation)", kind)
			return true
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			checkCallBoxing(pass, info, v, reported)
			if fn := calleeFunc(info, v); fn != nil {
				key := KeyOf(fn)
				if _, inModule := mod.Funcs[key]; inModule && allocates[key] && !hot[key] {
					report(v.Pos(), "call to %s, which allocates, in the loop body of a //scorislint:hotpath function (DESIGN.md §2)", fn.Name())
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				if i >= len(v.Rhs) {
					break
				}
				lt, rt := typeOf(info, lhs), typeOf(info, v.Rhs[i])
				if boxes(lt, rt) {
					report(v.Rhs[i].Pos(), "assignment boxes %s into interface %s in a //scorislint:hotpath loop (DESIGN.md §2)", rt, lt)
				}
			}
		}
		return true
	})
}

// checkCallBoxing flags concrete values passed to interface
// parameters.
func checkCallBoxing(pass *Pass, info *types.Info, call *ast.CallExpr, reported map[token.Pos]bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	sigT := typeOf(info, call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pt, typeOf(info, arg)) && !reported[arg.Pos()] {
			reported[arg.Pos()] = true
			pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in a //scorislint:hotpath loop (DESIGN.md §2)", typeOf(info, arg), pt)
		}
	}
}

// boxes reports whether assigning a value of type from to a location
// of type to converts a concrete value to an interface.
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if !types.IsInterface(to.Underlying()) || types.IsInterface(from.Underlying()) {
		return false
	}
	if b, ok := from.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
