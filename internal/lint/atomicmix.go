package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerAtomicMix enforces the memory-model half of the repo's
// counter discipline: a variable or field whose address is ever passed
// to a sync/atomic function must be accessed through sync/atomic
// everywhere — one plain read or write elsewhere is a data race the
// race detector only catches when the schedule cooperates. (The typed
// atomic.Int64-style values the tree prefers are safe by construction
// and are not in scope; this guards the function-API escape hatch.)
//
// The check is module-wide: the collection pass sees every package
// before the verification pass runs, so an atomic site in one package
// poisons plain access in all others.
var AnalyzerAtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain reads/writes of locations that are accessed through sync/atomic functions anywhere in the module",
	Run:  runAtomicMix,
}

// atomicKey identifies a memory location across packages by stable
// strings (types.Object identity does not survive the export-data
// round trip between a package's own check and its importers).
type atomicKey string

// atomicSite records where a location was first seen used atomically.
type atomicSite struct {
	pos  token.Pos
	fset *token.FileSet
	desc string
}

func runAtomicMix(pass *Pass) {
	sites := map[atomicKey]atomicSite{}
	allowed := map[ast.Node]bool{}

	// Pass 1: collect every &loc argument of a sync/atomic function
	// call. The argument expressions themselves are the allowed
	// accesses.
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // typed atomics (atomic.Int64 methods) are safe by construction
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					target := ast.Unparen(u.X)
					key, desc, ok := atomicKeyOf(pkg, target)
					if !ok {
						continue
					}
					if _, seen := sites[key]; !seen {
						sites[key] = atomicSite{pos: target.Pos(), fset: pass.Fset, desc: desc}
					}
					allowed[target] = true
				}
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}

	// Pass 2: any other access to a collected location is mixing.
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			ast.Inspect(f, func(n ast.Node) bool {
				// Struct-literal keys name the field object but are
				// construction, not access; skip the key identifier.
				if kv, ok := n.(*ast.KeyValueExpr); ok {
					if id, isIdent := kv.Key.(*ast.Ident); isIdent {
						allowed[id] = true
					}
					return true
				}
				e, ok := n.(ast.Expr)
				if !ok || allowed[n] {
					return true
				}
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
				default:
					return true
				}
				key, _, ok := atomicKeyOf(pkg, e)
				if !ok {
					return true
				}
				site, hot := sites[key]
				if !hot {
					return true
				}
				// The selector inside an allowed &x.f is visited
				// separately from the UnaryExpr; tolerate it.
				if allowed[e] {
					return true
				}
				at := site.fset.Position(site.pos)
				pass.Reportf(e.Pos(), "plain access to %s, which is accessed via sync/atomic at %s:%d: mixing atomic and non-atomic access is a data race", site.desc, at.Filename, at.Line)
				return false
			})
		}
	}
}

// atomicKeyOf maps an addressable expression to a module-stable key:
// struct fields key by (package, named type, field), package-level
// variables by (package, name), and function-local variables by object
// identity (they cannot be shared across packages).
func atomicKeyOf(pkg *Package, e ast.Expr) (atomicKey, string, bool) {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		obj, ok := pkg.Info.Uses[x.Sel].(*types.Var)
		if !ok {
			return "", "", false
		}
		if obj.IsField() {
			recv := typeOf(pkg.Info, x.X)
			named, ok := deref(recv).(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return "", "", false
			}
			desc := fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Name(), named.Obj().Name(), obj.Name())
			return atomicKey("field:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()), desc, true
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return atomicKey("var:" + obj.Pkg().Path() + "." + obj.Name()), obj.Pkg().Name() + "." + obj.Name(), true
		}
		return "", "", false
	case *ast.Ident:
		// Uses only: a declaration (Defs) is construction, and
		// initializing an eventually-atomic variable is fine.
		obj, ok := pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return "", "", false
		}
		if obj.IsField() {
			return "", "", false
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return atomicKey("var:" + obj.Pkg().Path() + "." + obj.Name()), obj.Pkg().Name() + "." + obj.Name(), true
		}
		return atomicKey(fmt.Sprintf("local:%p", obj)), obj.Name(), true
	}
	return "", "", false
}
