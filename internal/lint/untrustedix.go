package lint

// untrustedix mechanizes DESIGN.md §7's validation boundary: every
// byte that arrives from disk, an mmap window, or the network is
// hostile until a declared validator blesses it. The analyzer runs a
// whole-module taint analysis over the call graph:
//
//   - sources: os.ReadFile results, buffers filled by (*os.File) /
//     io.ReadFull-style reads, http.Request/Response bodies, and
//     functions tagged //scorislint:source (the mmap window);
//   - sinks: slice/array indexing and slice bounds computed from
//     tainted integers, make sizes, ReadAt offsets, and the arguments
//     of index.FromParts / FromBlocks / FromBlocksPartial /
//     ExtendFromParts;
//   - sanitizers: functions tagged //scorislint:validator
//     (parseFooterV3, decodeBlock, checkParts, ...). Calling one
//     clears the taint of its arguments and receiver; its results are
//     trusted; its own body is the boundary and is exempt from sink
//     checks (hostile-file tests and fuzzers exercise it directly).
//
// Taint is tracked per value as a set of origins — "came from a real
// source here" plus "came from parameter i" — so one pass over a
// function yields both its local findings and a reusable summary
// (tainted returns, parameters that reach sinks, parameters that get
// validated). Summaries reach fixpoint over the call graph, which is
// what makes the analysis interprocedural: a function that indexes by
// its parameter is a sink at every call site that passes it untrusted
// bytes, whatever package the call is in.
//
// Integer range checks (`if n > len(buf) { return err }`) clear the
// checked integer, but nothing short of a validator clears a byte
// buffer: deleting the parseFooterV3 call from the v3 load path makes
// every downstream directory slice a finding.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerUntrustedIx is the taint analyzer.
var AnalyzerUntrustedIx = &Analyzer{
	Name: "untrustedix",
	Doc:  "untrusted bytes must pass a declared validator before indexing, sizing, or seeking (DESIGN.md §7)",
	Contract: `DESIGN.md §7 ("two readers, one validator"): every byte from disk,
mmap, or the network is hostile until a validator blesses it. Sources
are file reads, mmap windows (//scorislint:source), and HTTP bodies;
sinks are slice indexing/bounds, make sizes, ReadAt offsets, and
index.FromParts/FromBlocks arguments; sanitizers are the functions
tagged //scorislint:validator (parseFooterV3, decodeBlock,
checkParts, ...). A source-to-sink path that skips every validator is
a finding, across function and package boundaries.`,
	Annotation: `//scorislint:validator  on a function: calling it clears the taint of
                        its arguments and receiver; its body is the
                        trusted boundary (exempt from sink checks).
//scorislint:source     on a function: its results are untrusted.`,
	Run: runUntrustedIx,
}

const (
	// taintSrc marks bytes or integers that originate at a real
	// untrusted source. Lower bits mark origin at parameter i.
	taintSrc uint64 = 1 << 63
)

func paramBit(i int) uint64 {
	if i >= 62 {
		return 0 // beyond tracking width: drop, stay quiet
	}
	return 1 << uint(i)
}

// taintSummary is one function's published taint fact.
type taintSummary struct {
	validator bool
	source    bool

	returns        uint64   // origins that flow to any result
	paramSink      []string // non-empty: what sink parameter i reaches
	paramValidates []bool   // parameter i is passed to a validator
}

func (s *taintSummary) fingerprint() string {
	return fmt.Sprint(s.returns, s.paramSink, s.paramValidates)
}

// untrustedState is the module-wide driver state.
type untrustedState struct {
	pass      *Pass
	mod       *Module
	summaries map[FuncKey]*taintSummary
}

func runUntrustedIx(pass *Pass) {
	mod := pass.Module()
	st := &untrustedState{pass: pass, mod: mod, summaries: map[FuncKey]*taintSummary{}}

	for key, fi := range mod.Funcs {
		sum := &taintSummary{
			validator:      funcDirective(fi.Decl, "validator"),
			source:         funcDirective(fi.Decl, "source"),
			paramSink:      make([]string, numParams(fi.Obj)),
			paramValidates: make([]bool, numParams(fi.Obj)),
		}
		st.summaries[key] = sum
	}

	// Fixpoint over function summaries: each round re-analyzes every
	// body against the previous round's facts, until stable.
	for round := 0; round < 8; round++ {
		changed := false
		for key, fi := range mod.Funcs {
			sum := st.summaries[key]
			before := sum.fingerprint()
			next := &taintSummary{
				validator:      sum.validator,
				source:         sum.source,
				paramSink:      make([]string, numParams(fi.Obj)),
				paramValidates: make([]bool, numParams(fi.Obj)),
			}
			st.analyze(fi, next, false)
			// Facts only grow, so the fixpoint is monotone.
			next.returns |= sum.returns
			for i := range sum.paramSink {
				if next.paramSink[i] == "" {
					next.paramSink[i] = sum.paramSink[i]
				}
				next.paramValidates[i] = next.paramValidates[i] || sum.paramValidates[i]
			}
			if next.fingerprint() != before {
				changed = true
			}
			st.summaries[key] = next
		}
		if !changed {
			break
		}
	}
	for key, sum := range st.summaries {
		st.mod.PutFact("untrustedix", key, sum)
	}

	// Reporting round.
	for key, fi := range mod.Funcs {
		st.analyze(fi, st.summaries[key], true)
	}
}

func numParams(fn *types.Func) int {
	sig := fn.Type().(*types.Signature)
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

// taintEngine analyzes one function body.
type taintEngine struct {
	st   *untrustedState
	fi   *FuncInfo
	info *types.Info
	sum  *taintSummary

	paramIdx map[types.Object]int
	state    map[types.Object]uint64

	report   bool
	reported map[string]bool
}

func (st *untrustedState) analyze(fi *FuncInfo, sum *taintSummary, report bool) {
	e := &taintEngine{
		st:       st,
		fi:       fi,
		info:     fi.Pkg.Info,
		sum:      sum,
		paramIdx: map[types.Object]int{},
		state:    map[types.Object]uint64{},
		report:   report,
		reported: map[string]bool{},
	}
	// Parameter slots follow numParams ordering: one receiver slot
	// (named or not), then each parameter. Unnamed slots still advance
	// the index so caller and callee agree on positions.
	i := 0
	if recv := fi.Decl.Recv; recv != nil {
		for _, field := range recv.List {
			for _, name := range field.Names {
				if obj := fi.Pkg.Info.Defs[name]; obj != nil {
					e.paramIdx[obj] = i
					e.state[obj] = paramBit(i)
				}
			}
		}
		i++
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := fi.Pkg.Info.Defs[name]; obj != nil {
				e.paramIdx[obj] = i
				e.state[obj] = paramBit(i)
			}
			i++
		}
	}
	for _, s := range fi.Decl.Body.List {
		e.stmt(s)
	}
}

// sink records a finding (or a parameter-sink summary entry) for a
// tainted value reaching the described sink.
func (e *taintEngine) sink(pos token.Pos, taint uint64, what string) {
	if e.sum.validator {
		return // validator bodies are the trusted boundary
	}
	if taint&taintSrc != 0 && e.report {
		k := fmt.Sprint(pos, what)
		if !e.reported[k] {
			e.reported[k] = true
			e.st.pass.Reportf(pos, "untrusted bytes reach %s without passing a validator (DESIGN.md §7)", what)
		}
	}
	for i := range e.sum.paramSink {
		if taint&paramBit(i) != 0 && e.sum.paramSink[i] == "" {
			e.sum.paramSink[i] = what + " in " + e.fi.Obj.Name()
		}
	}
}

// rootObj unwraps an lvalue-ish expression to the object of its base
// identifier.
func rootObj(info *types.Info, x ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.UnaryExpr:
			x = v.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// clear removes all taint from the base object of x, recording a
// paramValidates fact when that object is a parameter.
func (e *taintEngine) clear(x ast.Expr) {
	obj := rootObj(e.info, x)
	if obj == nil {
		return
	}
	e.state[obj] = 0
	if i, ok := e.paramIdx[obj]; ok && i < len(e.sum.paramValidates) {
		e.sum.paramValidates[i] = true
	}
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func isIntegerish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isConstExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.Value != nil
}

// eval computes the taint of an expression, performing sink checks on
// the way down.
func (e *taintEngine) eval(x ast.Expr) uint64 {
	if x == nil {
		return 0
	}
	if isConstExpr(e.info, x) {
		return 0
	}
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		if obj := e.info.Uses[v]; obj != nil {
			return e.state[obj]
		}
		return 0
	case *ast.BasicLit, *ast.FuncLit:
		return 0
	case *ast.SelectorExpr:
		base := e.eval(v.X)
		// HTTP bodies are wire bytes.
		if v.Sel.Name == "Body" {
			t := typeOf(e.info, v.X)
			if t != nil && (isNamed(t, "net/http", "Request") || isNamed(t, "net/http", "Response")) {
				return base | taintSrc
			}
		}
		return base // coarse struct taint: tainted struct, tainted field
	case *ast.IndexExpr:
		baseT := typeOf(e.info, v.X)
		base := e.eval(v.X)
		idx := e.eval(v.Index)
		if baseT != nil && !isMapOrTypeParam(baseT) {
			idxT := typeOf(e.info, v.Index)
			if idx != 0 && (idxT == nil || !isByte(idxT)) {
				e.sink(v.Index.Pos(), idx, "a slice index")
			}
		}
		return base // element of tainted slice is tainted; index taint does not transfer
	case *ast.SliceExpr:
		base := e.eval(v.X)
		for _, bound := range []ast.Expr{v.Low, v.High, v.Max} {
			if bound == nil {
				continue
			}
			if b := e.eval(bound); b != 0 {
				e.sink(bound.Pos(), b, "a slice bound")
			}
		}
		return base
	case *ast.StarExpr:
		return e.eval(v.X)
	case *ast.UnaryExpr:
		return e.eval(v.X)
	case *ast.BinaryExpr:
		return e.eval(v.X) | e.eval(v.Y)
	case *ast.CompositeLit:
		var t uint64
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t |= e.eval(kv.Value)
			} else {
				t |= e.eval(el)
			}
		}
		return t
	case *ast.KeyValueExpr:
		return e.eval(v.Value)
	case *ast.TypeAssertExpr:
		return e.eval(v.X)
	case *ast.CallExpr:
		return e.call(v)
	}
	return 0
}

func isMapOrTypeParam(t types.Type) bool {
	switch deref(t).Underlying().(type) {
	case *types.Map, *types.Interface:
		return true
	}
	return false
}

// call handles every call expression: builtins, conversions, external
// sources, summary application, and call-site sinks.
func (e *taintEngine) call(call *ast.CallExpr) uint64 {
	// Conversions propagate: int64(tainted) is tainted.
	if tv, ok := e.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return e.eval(call.Args[0])
		}
		return 0
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := e.info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "len", "cap", "new":
				for _, a := range call.Args {
					e.eval(a)
				}
				return 0
			case "make":
				for _, a := range call.Args[1:] {
					if t := e.eval(a); t != 0 {
						e.sink(a.Pos(), t, "a make size")
					}
				}
				return 0
			case "append", "min", "max":
				var t uint64
				for _, a := range call.Args {
					t |= e.eval(a)
				}
				return t
			case "copy":
				src := e.eval(call.Args[1])
				e.eval(call.Args[0])
				if src != 0 {
					if obj := rootObj(e.info, call.Args[0]); obj != nil {
						e.state[obj] |= src
					}
				}
				return 0
			default:
				for _, a := range call.Args {
					e.eval(a)
				}
				return 0
			}
		}
	}

	fn := calleeFunc(e.info, call)
	if fn == nil {
		// Function-typed variable: evaluate args for nested sinks.
		for _, a := range call.Args {
			e.eval(a)
		}
		return 0
	}

	// Build the effective argument list: receiver first for methods.
	sig := fn.Type().(*types.Signature)
	var argExprs []ast.Expr
	if sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			argExprs = append(argExprs, sel.X)
		} else {
			argExprs = append(argExprs, nil)
		}
	}
	argExprs = append(argExprs, call.Args...)
	argTaint := make([]uint64, len(argExprs))
	for i, a := range argExprs {
		if a != nil {
			argTaint[i] = e.eval(a)
		}
	}

	key := KeyOf(fn)
	if sum, inModule := e.st.summaries[key]; inModule {
		return e.moduleCall(call, argExprs, argTaint, fn, sum)
	}
	return e.externalCall(call, fn, sig, argExprs, argTaint)
}

// moduleCall applies a module function's summary at the call site.
func (e *taintEngine) moduleCall(call *ast.CallExpr, argExprs []ast.Expr, argTaint []uint64, fn *types.Func, sum *taintSummary) uint64 {
	if sum.source {
		return taintSrc
	}
	if sum.validator {
		for _, a := range argExprs {
			if a != nil {
				e.clear(a)
			}
		}
		return 0
	}
	for i, t := range argTaint {
		if t == 0 || i >= len(sum.paramSink) {
			continue
		}
		if what := sum.paramSink[i]; what != "" {
			e.sink(call.Pos(), t, what+" (via call to "+fn.Name()+")")
		}
	}
	for i := range argTaint {
		if i < len(sum.paramValidates) && sum.paramValidates[i] && argExprs[i] != nil {
			e.clear(argExprs[i])
		}
	}
	// Result taint: callee origins map back through this call's
	// arguments.
	var out uint64
	if sum.returns&taintSrc != 0 {
		out |= taintSrc
	}
	for i, t := range argTaint {
		if sum.returns&paramBit(i) != 0 {
			out |= t
		}
	}

	// index.FromParts-family sinks apply to module calls too.
	e.indexCtorSink(call, argTaint)
	return out
}

// externalCall models the small set of stdlib behaviors the analysis
// understands; everything else returns clean values.
func (e *taintEngine) externalCall(call *ast.CallExpr, fn *types.Func, sig *types.Signature, argExprs []ast.Expr, argTaint []uint64) uint64 {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	name := fn.Name()

	switch {
	case pkgPath == "os" && name == "ReadFile":
		return taintSrc
	case pkgPath == "io" && (name == "ReadAll"):
		if len(argTaint) > 0 && argTaint[len(argTaint)-1] != 0 {
			return argTaint[len(argTaint)-1]
		}
		return 0
	case pkgPath == "io" && (name == "ReadFull" || name == "ReadAtLeast"):
		// Reading from a tainted (or file) reader taints the buffer.
		if len(call.Args) >= 2 && e.readerIsUntrusted(call.Args[0], argTaint[0]) {
			if obj := rootObj(e.info, call.Args[1]); obj != nil {
				e.state[obj] |= taintSrc
			}
		}
		return 0
	}

	if sig.Recv() != nil {
		recvT := sig.Recv().Type()
		switch name {
		case "Read", "ReadAt":
			// Method reads fill their buffer from the receiver.
			if len(call.Args) >= 1 && len(argExprs) > 0 && argExprs[0] != nil &&
				e.readerIsUntrusted(argExprs[0], argTaint[0]) {
				if obj := rootObj(e.info, call.Args[0]); obj != nil {
					e.state[obj] |= taintSrc
				}
			}
			if name == "ReadAt" && len(call.Args) == 2 {
				if t := e.eval(call.Args[1]); t != 0 {
					e.sink(call.Args[1].Pos(), t, "a ReadAt offset")
				}
			}
			return 0
		case "Uint16", "Uint32", "Uint64":
			// binary.ByteOrder decoding: integers decoded from tainted
			// bytes are tainted.
			if isNamedOrIface(recvT, "encoding/binary") && len(argTaint) == 2 {
				return argTaint[1]
			}
		}
	}
	return 0
}

// readerIsUntrusted reports whether reading from this value yields
// hostile bytes: the value is already tainted, or it is an *os.File.
func (e *taintEngine) readerIsUntrusted(x ast.Expr, taint uint64) bool {
	if taint != 0 {
		return true
	}
	t := typeOf(e.info, x)
	return t != nil && isNamed(t, "os", "File")
}

// isNamedOrIface reports whether t is declared in pkgPath (covering
// both binary.littleEndian concrete receivers and the ByteOrder
// interface).
func isNamedOrIface(t types.Type, pkgPath string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// indexCtorSink flags tainted arguments to the index constructors: a
// hostile parts/blocks layout becomes a hostile index.
func (e *taintEngine) indexCtorSink(call *ast.CallExpr, argTaint []uint64) {
	fn := calleeFunc(e.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/index" {
		return
	}
	switch fn.Name() {
	case "FromParts", "FromBlocks", "FromBlocksPartial", "ExtendFromParts":
		for i, t := range argTaint {
			if t != 0 {
				e.sink(call.Pos(), t, "index."+fn.Name()+" argument "+fmt.Sprint(i))
			}
		}
	}
}

// assign writes taint to an lvalue: strong update for plain locals,
// weak (union) update through selectors, indexes, and dereferences.
func (e *taintEngine) assign(lhs ast.Expr, val uint64) {
	// Error values never carry taint: an error's bytes are diagnostic
	// text, not offsets — and every `return nil, err` after a tainted
	// read would otherwise mark the whole function's returns untrusted.
	if isErrorType(typeOf(e.info, lhs)) {
		val = 0
	}
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		obj := e.info.Defs[v]
		if obj == nil {
			obj = e.info.Uses[v]
		}
		if obj != nil {
			e.state[obj] = val
		}
	default:
		e.eval(lhs)
		if obj := rootObj(e.info, lhs); obj != nil {
			e.state[obj] |= val
		}
	}
}

// terminates reports whether the statement list always leaves the
// enclosing scope (return, branch, panic, os.Exit).
func terminates(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "os" && fn.Name() == "Exit" {
				return true
			}
		}
	}
	return false
}

// stmt walks one statement in source order, updating taint state.
func (e *taintEngine) stmt(s ast.Stmt) {
	switch v := s.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) > 1 && len(v.Rhs) == 1 {
			val := e.eval(v.Rhs[0])
			for _, lhs := range v.Lhs {
				e.assign(lhs, val)
			}
			return
		}
		for i, lhs := range v.Lhs {
			if i < len(v.Rhs) {
				e.assign(lhs, e.eval(v.Rhs[i]))
			}
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nameID := range vs.Names {
					var val uint64
					if len(vs.Values) == 1 && len(vs.Names) > 1 {
						val = e.eval(vs.Values[0])
					} else if i < len(vs.Values) {
						val = e.eval(vs.Values[i])
					}
					if obj := e.info.Defs[nameID]; obj != nil {
						e.state[obj] = val
					}
				}
			}
		}
	case *ast.ExprStmt:
		e.eval(v.X)
	case *ast.IfStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.eval(v.Cond)
		for _, s := range v.Body.List {
			e.stmt(s)
		}
		if v.Else != nil {
			e.stmt(v.Else)
		}
		// Guard clearing: a range check whose body bails out blesses
		// the checked integers — but never byte buffers; only a
		// validator clears those.
		if terminates(e.info, v.Body.List) {
			ast.Inspect(v.Cond, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := e.info.Uses[id]
				if obj == nil || e.state[obj] == 0 {
					return true
				}
				if isIntegerish(obj.Type()) {
					e.state[obj] = 0
				}
				return true
			})
		}
	case *ast.BlockStmt:
		for _, s := range v.List {
			e.stmt(s)
		}
	case *ast.ForStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.eval(v.Cond)
		// Two passes over loop bodies so taint introduced late in the
		// body reaches uses earlier in the next iteration.
		for range 2 {
			for _, s := range v.Body.List {
				e.stmt(s)
			}
			if v.Post != nil {
				e.stmt(v.Post)
			}
		}
	case *ast.RangeStmt:
		xTaint := e.eval(v.X)
		keyTaint := uint64(0)
		if t := typeOf(e.info, v.X); t != nil {
			switch deref(t).Underlying().(type) {
			case *types.Map, *types.Basic: // map keys / string bytes carry the taint
				keyTaint = xTaint
			}
		}
		if v.Key != nil {
			e.assign(v.Key, keyTaint)
		}
		if v.Value != nil {
			e.assign(v.Value, xTaint)
		}
		for range 2 {
			for _, s := range v.Body.List {
				e.stmt(s)
			}
		}
	case *ast.ReturnStmt:
		var t uint64
		for _, r := range v.Results {
			t |= e.eval(r)
		}
		if len(v.Results) == 0 {
			// Named results: union their current state.
			if res := e.fi.Decl.Type.Results; res != nil {
				for _, field := range res.List {
					for _, name := range field.Names {
						if obj := e.info.Defs[name]; obj != nil {
							t |= e.state[obj]
						}
					}
				}
			}
		}
		e.sum.returns |= t
	case *ast.SwitchStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.eval(v.Tag)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, x := range cc.List {
					e.eval(x)
				}
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			e.stmt(v.Init)
		}
		e.stmt(v.Assign)
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					e.stmt(cc.Comm)
				}
				for _, s := range cc.Body {
					e.stmt(s)
				}
			}
		}
	case *ast.DeferStmt:
		e.eval(v.Call)
	case *ast.GoStmt:
		e.eval(v.Call)
	case *ast.SendStmt:
		e.eval(v.Chan)
		e.eval(v.Value)
	case *ast.LabeledStmt:
		e.stmt(v.Stmt)
	case *ast.IncDecStmt:
		e.eval(v.X)
	}
}

// isErrorType reports whether t is the universe error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
