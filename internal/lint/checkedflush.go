package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
)

// AnalyzerCheckedFlush is the regression guard for the silent-m8-
// truncation class fixed in PR 5: a buffered writer whose Flush error
// is dropped, or a written file whose Close error is dropped, turns
// ENOSPC into a truncated result file behind exit code 0. It flags:
//
//   - a Flush() call whose single error result is discarded (bare
//     statement or defer), on any type whose Flush returns exactly one
//     error — bufio.Writer, fasta.Writer, and future buffered writers
//     alike (http.Flusher's Flush returns nothing and is exempt);
//   - a Close() with discarded error on a handle obtained from
//     os.Create or a writable os.OpenFile in the same function. A
//     deferred discarded Close is accepted when the same function also
//     consumes a Close error on that handle — the "defer as error-path
//     backstop, checked Close on the success path" idiom (ixdisk's
//     appendBlockAt); a bare discarded Close statement never is.
//
// Read-side handles (os.Open) may keep the idiomatic discarded
// `defer f.Close()`.
var AnalyzerCheckedFlush = &Analyzer{
	Name: "checkedflush",
	Doc:  "Flush/Close errors on output paths must be consumed (silent-truncation regression guard)",
	// Test goroutines leak and test writers truncate the same way
	// production ones do.
	AnalyzeTests: true,
	Run:          runCheckedFlush,
}

func runCheckedFlush(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			for _, fn := range functionsIn(f) {
				checkFlushIn(pass, pkg, fn)
			}
		}
	}
}

func checkFlushIn(pass *Pass, pkg *Package, fn funcNode) {
	// Handles created for writing in this function (lexically).
	writeHandles := map[types.Object]bool{}
	inspectShallow(fn.body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
		if !ok || !isWriteOpen(pkg, call) {
			return true
		}
		if id, ok := st.Lhs[0].(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				writeHandles[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				writeHandles[obj] = true
			}
		}
		return true
	})

	// closeTarget resolves a call to a Close() on one of this
	// function's write handles.
	closeTarget := func(call *ast.CallExpr) (types.Object, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return nil, false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := pkg.Info.Uses[id]
		return obj, writeHandles[obj]
	}

	// First sweep: find discarded Flush/Close sites and count every
	// Close per handle, so a consumed Close can vouch for a deferred
	// backstop. Walks the full body (nested closures included): a bare
	// Flush is a bare Flush wherever it lexically sits, and
	// writeHandles only contains this function's own handles.
	type discard struct {
		call     *ast.CallExpr
		deferred bool
	}
	var flushDiscards []discard
	var closeDiscards []discard
	closes := map[types.Object]int{}    // all Close calls per handle
	discarded := map[types.Object]int{} // discarded Close calls per handle

	ast.Inspect(fn.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, isWrite := closeTarget(call); isWrite {
				closes[obj]++
			}
			return true
		}
		var call *ast.CallExpr
		deferred := false
		switch st := n.(type) {
		case *ast.ExprStmt:
			call, _ = ast.Unparen(st.X).(*ast.CallExpr)
		case *ast.DeferStmt:
			call, deferred = st.Call, true
		}
		if call == nil {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Flush":
			if returnsSingleError(pkg, call) {
				flushDiscards = append(flushDiscards, discard{call, deferred})
			}
		case "Close":
			if obj, isWrite := closeTarget(call); isWrite {
				discarded[obj]++
				closeDiscards = append(closeDiscards, discard{call, deferred})
			}
		}
		return true
	})

	for _, d := range flushDiscards {
		how := "discarded"
		if d.deferred {
			how = "deferred with its error discarded"
		}
		pass.Reportf(d.call.Pos(), "Flush error %s: an unflushed buffer truncates the output file behind a zero exit (use cliflag.Finish or check the error; PR 5 regression class)", how)
	}
	for _, d := range closeDiscards {
		obj, _ := closeTarget(d.call)
		if d.deferred && closes[obj] > discarded[obj] {
			// Error-path backstop: the success path consumes a Close
			// error on this handle.
			continue
		}
		how := "discarded"
		if d.deferred {
			how = "deferred with its error discarded, and no checked Close elsewhere"
		}
		pass.Reportf(d.call.Pos(), "Close error %s on a handle opened for writing: close failures lose buffered data silently (join the error on a defer or check it; PR 5 regression class)", how)
	}
}

// returnsSingleError reports whether the call's result is exactly one
// value of type error.
func returnsSingleError(pkg *Package, call *ast.CallExpr) bool {
	t := typeOf(pkg.Info, call)
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isWriteOpen reports whether call opens a file for writing:
// os.Create, or os.OpenFile whose flag argument is either unknown or
// statically contains a write bit.
func isWriteOpen(pkg *Package, call *ast.CallExpr) bool {
	if isPkgFunc(pkg.Info, call, "os", "Create") {
		return true
	}
	if !isPkgFunc(pkg.Info, call, "os", "OpenFile") || len(call.Args) < 2 {
		return false
	}
	tv, ok := pkg.Info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true // dynamic flags: assume writable
	}
	flag, ok := constant.Int64Val(tv.Value)
	if !ok {
		return true
	}
	return flag&int64(os.O_WRONLY|os.O_RDWR|os.O_APPEND|os.O_CREATE|os.O_TRUNC) != 0
}
