package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer is proven twice: a clean fixture it must stay silent
// on, and a seeded-violation fixture where every finding must match a
// `// want` expectation (and every expectation must be found).

func TestIndexImmut(t *testing.T) {
	linttest.Run(t, lint.AnalyzerIndexImmut, "testdata/src/indeximmut/clean")
	linttest.Run(t, lint.AnalyzerIndexImmut, "testdata/src/indeximmut/bad")
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AnalyzerAtomicMix, "testdata/src/atomicmix/clean")
	linttest.Run(t, lint.AnalyzerAtomicMix, "testdata/src/atomicmix/bad")
}

func TestCtxLoop(t *testing.T) {
	linttest.Run(t, lint.AnalyzerCtxLoop, "testdata/src/ctxloop/clean")
	linttest.Run(t, lint.AnalyzerCtxLoop, "testdata/src/ctxloop/bad")
}

func TestCheckedFlush(t *testing.T) {
	linttest.Run(t, lint.AnalyzerCheckedFlush, "testdata/src/checkedflush/clean")
	linttest.Run(t, lint.AnalyzerCheckedFlush, "testdata/src/checkedflush/bad")
}

func TestVersionedMount(t *testing.T) {
	linttest.Run(t, lint.AnalyzerVersionedMount, "testdata/src/versionedmount/clean")
	linttest.Run(t, lint.AnalyzerVersionedMount, "testdata/src/versionedmount/bad")
}

func TestGoExit(t *testing.T) {
	linttest.Run(t, lint.AnalyzerGoExit, "testdata/src/goexit/clean")
	linttest.Run(t, lint.AnalyzerGoExit, "testdata/src/goexit/bad")
}

// TestIgnoreDirectives exercises the suppression mechanism: justified
// directives silence exactly their analyzer, reason-less ones suppress
// nothing and are themselves findings.
func TestIgnoreDirectives(t *testing.T) {
	linttest.Run(t, lint.AnalyzerCtxLoop, "testdata/src/directives")
}

// TestTreeIsClean runs the full suite over the whole module, so plain
// `go test ./...` enforces every machine-checked invariant even where
// CI's dedicated lint job is not in the loop. A violation anywhere in
// the tree fails this test with the same file:line message scorislint
// would print.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree lint skipped in -short mode")
	}
	l := linttest.ModuleLoader(t)
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 30 {
		t.Fatalf("suspiciously few packages loaded (%d): loader is not seeing the module", len(pkgs))
	}
	for _, d := range lint.Run(l.Fset(), pkgs, lint.Analyzers()) {
		t.Errorf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
}

func TestUntrustedIx(t *testing.T) {
	linttest.Run(t, lint.AnalyzerUntrustedIx, "testdata/src/untrustedix/clean")
	linttest.Run(t, lint.AnalyzerUntrustedIx, "testdata/src/untrustedix/bad")
}

func TestDetOrder(t *testing.T) {
	linttest.Run(t, lint.AnalyzerDetOrder, "testdata/src/detorder/clean")
	linttest.Run(t, lint.AnalyzerDetOrder, "testdata/src/detorder/bad")
}

func TestGuardedBy(t *testing.T) {
	linttest.Run(t, lint.AnalyzerGuardedBy, "testdata/src/guardedby/clean")
	linttest.Run(t, lint.AnalyzerGuardedBy, "testdata/src/guardedby/bad")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.AnalyzerHotAlloc, "testdata/src/hotalloc/clean")
	linttest.Run(t, lint.AnalyzerHotAlloc, "testdata/src/hotalloc/bad")
}

// TestFileIgnoreDirectives exercises file-scoped suppression: a
// justified //scorislint:file-ignore silences its analyzer for the
// whole file, a reason-less one suppresses nothing and is reported.
func TestFileIgnoreDirectives(t *testing.T) {
	linttest.Run(t, lint.AnalyzerCtxLoop, "testdata/src/fileignore")
}

// TestExplain asserts every analyzer renders an explanation, and that
// the ones with fixtures include a flagged example sourced from them.
func TestExplain(t *testing.T) {
	for _, a := range lint.Analyzers() {
		text, err := lint.Explain(a)
		if err != nil {
			t.Fatalf("Explain(%s): %v", a.Name, err)
		}
		if text == "" {
			t.Fatalf("Explain(%s): empty", a.Name)
		}
	}
	text, err := lint.Explain(lint.AnalyzerUntrustedIx)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantSub := range []string{"Contract:", "//scorislint:validator", "Flagged", "Accepted"} {
		if !strings.Contains(text, wantSub) {
			t.Errorf("Explain(untrustedix) missing %q:\n%s", wantSub, text)
		}
	}
}
