// Package linttest runs scorislint analyzers over testdata fixture
// packages, in the style of golang.org/x/tools/go/analysis/analysistest:
// a fixture is a directory of .go files type-checked as one package
// (its imports — stdlib and repro-internal alike — resolve against the
// module's real export data), and expected findings are declared
// inline:
//
//	ix.Indexed = 0 // want `write to index\.Index`
//
// Every reported diagnostic must match a `// want` regexp on its line,
// and every `// want` must be matched by exactly one diagnostic, so
// each fixture proves both that the analyzer catches its seeded
// violations and that it stays silent on the idiomatic code around
// them.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// ModuleLoader returns one module-rooted loader per test process: the
// export-data listing is the expensive step and is identical for every
// fixture (and for whole-tree runs).
func ModuleLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader = lint.NewLoader(root)
		// Whole-tree runs load test files too (checkedflush and goexit
		// opt in); fixture checks are unaffected.
		loader.Tests = true
		loaderErr = loader.Prime()
	})
	if loaderErr != nil {
		t.Fatalf("loading module export data: %v", loaderErr)
	}
	return loader
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod (tests run in their package directory).
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// want is one expected-diagnostic declaration.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile("// want (.*)$")

// parseWants extracts the `// want` expectations of a fixture package.
// Each expectation is a Go-quoted or backquoted regexp; several may
// follow one marker.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					var quoted string
					var err error
					switch rest[0] {
					case '`':
						end := strings.IndexByte(rest[1:], '`')
						if end < 0 {
							t.Fatalf("%s:%d: unterminated backquoted want pattern", pos.Filename, pos.Line)
						}
						quoted, rest = rest[1:1+end], strings.TrimSpace(rest[end+2:])
					case '"':
						quoted, err = strconv.Unquote(rest)
						if err != nil {
							// Quoted string followed by more text: find
							// the closing quote conservatively.
							end := strings.IndexByte(rest[1:], '"')
							if end < 0 {
								t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, rest, err)
							}
							quoted, err = strconv.Unquote(rest[:end+2])
							if err != nil {
								t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, rest, err)
							}
							rest = strings.TrimSpace(rest[end+2:])
						} else {
							rest = ""
						}
					default:
						t.Fatalf("%s:%d: want patterns must be quoted or backquoted, got %q", pos.Filename, pos.Line, rest)
					}
					re, err := regexp.Compile(quoted)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, quoted, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: quoted})
				}
			}
		}
	}
	return wants
}

// Run type-checks the fixture package at dir (relative to the calling
// test's directory) and asserts that the analyzer's findings exactly
// match the fixture's `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	l := ModuleLoader(t)
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckDir("repro/lintfixture/"+filepath.Base(dir), abs)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	diags := lint.Run(l.Fset(), []*lint.Package{pkg}, []*lint.Analyzer{a})
	wants := parseWants(t, l.Fset(), pkg.Files)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic matched want %q at %s:%d", w.raw, w.file, w.line)
		}
	}
}
