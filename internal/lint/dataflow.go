package lint

// Interprocedural dataflow infrastructure (PR 10): a whole-module call
// graph, per-function def-use chains, and a fact store through which
// analyzers publish and consume function summaries across packages.
// The flow analyzers (untrustedix, detorder, guardedby, hotalloc) are
// built on this layer; the PR 9 analyzers remain single-function.
//
// Functions are identified by FuncKey — the types.Func.FullName()
// string — never by object identity: the loader type-checks each
// package from source but resolves imports through gc export data, so
// the *types.Func seen at a cross-package call site is a different
// object from the one owning the body. The string key is stable across
// that divide.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncKey names one function or method, e.g.
// "repro/internal/ixdisk.parseFooterV3" or
// "(*repro/internal/hsp.Extender).Extend".
type FuncKey string

// KeyOf returns the stable key for fn (generic instances collapse to
// their origin).
func KeyOf(fn *types.Func) FuncKey {
	if fn == nil {
		return ""
	}
	return FuncKey(fn.Origin().FullName())
}

// EdgeKind classifies how a call-graph edge is made.
type EdgeKind int

const (
	// EdgeDirect is a static call: pkg.F(...) or concrete v.M(...).
	EdgeDirect EdgeKind = iota
	// EdgeMethodValue is a function or method referenced as a value
	// (x.M passed as a callback, f := pkg.F) — invoked elsewhere, so
	// the reference site is the edge.
	EdgeMethodValue
	// EdgeInterface is a call through an interface method, fanned out
	// to every module type that implements the interface.
	EdgeInterface
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeDirect:
		return "direct"
	case EdgeMethodValue:
		return "method-value"
	case EdgeInterface:
		return "interface"
	}
	return "unknown"
}

// Edge is one call-graph edge, positioned at its call or reference
// site.
type Edge struct {
	Caller FuncKey
	Callee FuncKey
	Kind   EdgeKind
	Pos    token.Pos
}

// FuncInfo is one module function with a body.
type FuncInfo struct {
	Key  FuncKey
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// Module is the whole-module dataflow index: every function body in
// the loaded (non-test) tree, the call graph over them, and the fact
// store. Built once per Run and shared by every analyzer.
type Module struct {
	Funcs map[FuncKey]*FuncInfo
	Edges []Edge

	calleesOf map[FuncKey][]Edge
	callersOf map[FuncKey][]Edge

	facts map[string]map[FuncKey]any
}

// Callees returns the edges leaving fn.
func (m *Module) Callees(fn FuncKey) []Edge { return m.calleesOf[fn] }

// Callers returns the edges arriving at fn.
func (m *Module) Callers(fn FuncKey) []Edge { return m.callersOf[fn] }

// PutFact publishes a summary for fn under an analyzer-chosen
// namespace; ConsumeFact reads it back, from any analyzer. Facts are
// keyed by FuncKey, so a summary published while analyzing one package
// is visible at call sites in every other.
func (m *Module) PutFact(ns string, fn FuncKey, v any) {
	byFn := m.facts[ns]
	if byFn == nil {
		byFn = map[FuncKey]any{}
		m.facts[ns] = byFn
	}
	byFn[fn] = v
}

// Fact returns the summary published for fn under ns, or nil.
func (m *Module) Fact(ns string, fn FuncKey) any {
	return m.facts[ns][fn]
}

// buildModule indexes every non-test function body and the call graph
// over them. Test files never enter the graph: flow facts inferred
// from test-only call sites must not bless or blame production code.
func buildModule(pass *Pass) *Module {
	m := &Module{
		Funcs:     map[FuncKey]*FuncInfo{},
		calleesOf: map[FuncKey][]Edge{},
		callersOf: map[FuncKey][]Edge{},
		facts:     map[string]map[FuncKey]any{},
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			if pass.testFiles[pass.Fset.Position(f.Pos()).Filename] {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				m.Funcs[KeyOf(fn)] = &FuncInfo{Key: KeyOf(fn), Obj: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	for _, fi := range m.Funcs {
		collectEdges(m, fi)
	}
	sort.Slice(m.Edges, func(i, j int) bool {
		a, b := m.Edges[i], m.Edges[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Pos < b.Pos
	})
	for _, e := range m.Edges {
		m.calleesOf[e.Caller] = append(m.calleesOf[e.Caller], e)
		m.callersOf[e.Callee] = append(m.callersOf[e.Callee], e)
	}
	return m
}

// collectEdges walks one function body recording direct-call,
// method-value, and interface-dispatch edges.
func collectEdges(m *Module, fi *FuncInfo) {
	info := fi.Pkg.Info
	caller := fi.Key

	// callFuns marks expressions in call position, so a selector used
	// as a callee is not double-counted as a method value.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	add := func(callee *types.Func, kind EdgeKind, pos token.Pos) {
		if callee == nil {
			return
		}
		key := KeyOf(callee)
		if _, inModule := m.Funcs[key]; !inModule {
			return // stdlib / bodiless: not a graph node
		}
		m.Edges = append(m.Edges, Edge{Caller: caller, Callee: key, Kind: kind, Pos: pos})
	}

	// selParts marks the Sel ident of every selector, so a qualified
	// function reference (pkg.Fn, v.Method) is attributed once, to the
	// selector, and never re-counted when Inspect reaches the ident.
	selParts := map[*ast.Ident]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selParts[sel.Sel] = true
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(info, x)
			if fn == nil {
				return true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				// Interface dispatch: edge to every module
				// implementation of the method.
				for _, impl := range m.implementationsOf(fn) {
					add(impl, EdgeInterface, x.Pos())
				}
				return true
			}
			add(fn, EdgeDirect, x.Pos())
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(x)] {
				return true
			}
			if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
					for _, impl := range m.implementationsOf(fn) {
						add(impl, EdgeMethodValue, x.Pos())
					}
					return true
				}
				add(fn, EdgeMethodValue, x.Pos())
			}
		case *ast.Ident:
			if callFuns[ast.Expr(x)] || selParts[x] {
				return true
			}
			if fn, ok := info.Uses[x].(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
				add(fn, EdgeMethodValue, x.Pos())
			}
		}
		return true
	})
}

// implementationsOf returns the module methods that implement the
// interface method ifn: for every module function with the same name,
// its receiver type (or a pointer to it) must satisfy ifn's interface.
func (m *Module) implementationsOf(ifn *types.Func) []*types.Func {
	iface, _ := ifn.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface == nil {
		return nil
	}
	var out []*types.Func
	for _, fi := range m.Funcs {
		fn := fi.Obj
		if fn.Name() != ifn.Name() {
			continue
		}
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			continue
		}
		rt := recv.Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(deref(rt)), iface) {
			out = append(out, fn)
		}
	}
	return out
}

// DefUse is one function's def-use chains: for each local object, the
// positions that define (assign) it and the identifiers that read it,
// in source order.
type DefUse struct {
	Defs map[types.Object][]token.Pos
	Uses map[types.Object][]*ast.Ident
}

// DefUseOf builds the def-use chains of one function body.
func DefUseOf(pkg *Package, body *ast.BlockStmt) *DefUse {
	du := &DefUse{
		Defs: map[types.Object][]token.Pos{},
		Uses: map[types.Object][]*ast.Ident{},
	}
	// Definition sites: := and = left-hand sides, var declarations,
	// range loop variables.
	markDef := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if obj := pkg.Info.Defs[id]; obj != nil {
			du.Defs[obj] = append(du.Defs[obj], id.Pos())
		} else if obj := pkg.Info.Uses[id]; obj != nil {
			du.Defs[obj] = append(du.Defs[obj], id.Pos())
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markDef(lhs)
			}
		case *ast.RangeStmt:
			markDef(x.Key)
			if x.Value != nil {
				markDef(x.Value)
			}
		case *ast.ValueSpec:
			for _, name := range x.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					du.Defs[obj] = append(du.Defs[obj], name.Pos())
				}
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				du.Uses[obj] = append(du.Uses[obj], x)
			}
		}
		return true
	})
	for _, uses := range du.Uses {
		sort.Slice(uses, func(i, j int) bool { return uses[i].Pos() < uses[j].Pos() })
	}
	return du
}

// funcDirective reports whether the doc comment of decl carries the
// given //scorislint:<name> directive.
func funcDirective(decl *ast.FuncDecl, name string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "scorislint:"+name {
			return true
		}
	}
	return false
}
