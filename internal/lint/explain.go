package lint

// -explain support: each analyzer's contract and annotation syntax are
// fields on the Analyzer, and its bad/good examples are extracted from
// the same fixture pairs the tests assert against — embedded at build
// time, so the explanation cannot drift from what the analyzer
// actually flags and accepts.

import (
	"embed"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path"
	"sort"
	"strings"
)

//go:embed testdata/src
var fixtureFS embed.FS

// Explain renders the analyzer's contract, annotation syntax, and a
// minimal bad/good example pair sourced from its fixtures.
func Explain(a *Analyzer) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", a.Name, a.Doc)
	if a.Contract != "" {
		fmt.Fprintf(&b, "\nContract:\n%s\n", indent(a.Contract))
	}
	if a.Annotation != "" {
		fmt.Fprintf(&b, "\nAnnotations:\n%s\n", indent(a.Annotation))
	}
	fmt.Fprintf(&b, "\nSuppression:\n")
	fmt.Fprintf(&b, "  //scorislint:ignore %s <reason>        one site\n", a.Name)
	fmt.Fprintf(&b, "  //scorislint:file-ignore %s <reason>   whole file\n", a.Name)

	bad, err := fixtureExample(a.Name, "bad", wantedDecl)
	if err != nil {
		return "", err
	}
	if bad != "" {
		fmt.Fprintf(&b, "\nFlagged (from testdata/src/%s/bad — the `// want` markers are the expected findings):\n%s\n", a.Name, indent(bad))
	}
	good, err := fixtureExample(a.Name, "clean", firstDecl)
	if err != nil {
		return "", err
	}
	if good != "" {
		fmt.Fprintf(&b, "\nAccepted (from testdata/src/%s/clean):\n%s\n", a.Name, indent(good))
	}
	return b.String(), nil
}

// wantedDecl picks the first top-level declaration containing a
// `// want` expectation.
func wantedDecl(f *ast.File, fset *token.FileSet, src []byte) string {
	wantPos := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "// want ") || strings.Contains(c.Text, "// want`") {
				wantPos[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	for _, decl := range f.Decls {
		if _, ok := decl.(*ast.GenDecl); ok {
			if gd := decl.(*ast.GenDecl); gd.Tok == token.IMPORT {
				continue
			}
		}
		lo := fset.Position(decl.Pos()).Line
		hi := fset.Position(decl.End()).Line
		for line := range wantPos {
			if line >= lo && line <= hi {
				return declSource(decl, fset, src)
			}
		}
	}
	return ""
}

// firstDecl picks the first non-import top-level declaration.
func firstDecl(f *ast.File, fset *token.FileSet, src []byte) string {
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		return declSource(decl, fset, src)
	}
	return ""
}

func declSource(decl ast.Decl, fset *token.FileSet, src []byte) string {
	pos := decl.Pos()
	if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
		pos = fd.Doc.Pos()
	} else if gd, ok := decl.(*ast.GenDecl); ok && gd.Doc != nil {
		pos = gd.Doc.Pos()
	}
	lo := fset.Position(pos).Offset
	hi := fset.Position(decl.End()).Offset
	if lo < 0 || hi > len(src) || lo >= hi {
		return ""
	}
	return string(src[lo:hi])
}

// fixtureExample parses the embedded fixture files of one analyzer
// variant and extracts an example with pick.
func fixtureExample(analyzer, variant string, pick func(*ast.File, *token.FileSet, []byte) string) (string, error) {
	dir := path.Join("testdata/src", analyzer, variant)
	ents, err := fixtureFS.ReadDir(dir)
	if err != nil {
		return "", nil // analyzer without fixtures: no example
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	for _, name := range names {
		src, err := fixtureFS.ReadFile(path.Join(dir, name))
		if err != nil {
			return "", err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return "", fmt.Errorf("parsing embedded fixture %s: %v", name, err)
		}
		if ex := pick(f, fset, src); ex != "" {
			return ex, nil
		}
	}
	return "", nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		if l != "" {
			lines[i] = "  " + l
		}
	}
	return strings.Join(lines, "\n")
}
