// Package fixture holds atomic-access discipline the atomicmix
// analyzer must stay silent on: consistent function-API use, typed
// atomics, and composite-literal construction.
package fixture

import "sync/atomic"

type cleanCounter struct {
	n    int64
	hits atomic.Int64
}

// Consistent sync/atomic access from everywhere is the contract.
func (c *cleanCounter) inc()       { atomic.AddInt64(&c.n, 1) }
func (c *cleanCounter) get() int64 { return atomic.LoadInt64(&c.n) }

// Typed atomics are safe by construction and out of scope.
func (c *cleanCounter) typed() int64 {
	c.hits.Add(1)
	return c.hits.Load()
}

// A composite literal initializes; it does not race with anything.
func construct() *cleanCounter {
	return &cleanCounter{n: 0}
}

var total int64

func addTotal()        { atomic.AddInt64(&total, 1) }
func readTotal() int64 { return atomic.LoadInt64(&total) }
