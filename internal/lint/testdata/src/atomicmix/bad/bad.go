// Package fixture seeds the mixed atomic/plain access classes the
// atomicmix analyzer must catch, for a struct field, a package-level
// variable, and a function local.
package fixture

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) leak() int64 {
	return c.n // want `plain access to fixture\.counter\.n`
}

var hits int64

func bump() { atomic.AddInt64(&hits, 1) }

func slip() {
	hits++ // want `plain access to fixture\.hits`
}

func local(signal chan struct{}) int64 {
	var flips int64
	go func() {
		atomic.AddInt64(&flips, 1)
		signal <- struct{}{}
	}()
	<-signal
	return flips // want `plain access to flips`
}
