// Package fixture holds idiomatic index use the indeximmut analyzer
// must stay silent on: reads, views, construction, and mutation of
// slices the caller owns.
package fixture

import (
	"sort"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// Reads of fields and sections are always fine.
func reads(ix *index.Index) int32 {
	total := ix.Starts[1] + ix.Pos[0]
	for _, c := range ix.Codes {
		total += int32(c)
	}
	return total + int32(ix.Indexed)
}

// Construction by composite literal is construction, not mutation.
func construct(b *bank.Bank) *ixcache.Prepared {
	return &ixcache.Prepared{Bank: b, Ix: index.Build(b, index.Options{W: 8})}
}

// Slices the caller owns may be grown and sorted freely.
func ownSlices(ix *index.Index) []int32 {
	own := make([]int32, 0, len(ix.Pos))
	own = append(own, ix.Pos...)
	sort.Slice(own, func(i, j int) bool { return own[i] < own[j] })
	copy(own, own)
	return own
}
