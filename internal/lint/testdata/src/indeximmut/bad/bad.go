// Package fixture seeds every violation class the indeximmut analyzer
// must catch: field writes, element writes, growth, overwrite, and
// reorder of the mmap-aliasable CSR sections, plus Prepared rebinding.
package fixture

import (
	"sort"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

func mutateFields(ix *index.Index) {
	ix.Indexed = 0 // want `assignment to index\.Index\.Indexed`
	ix.MaskedOut++ // want `increment to index\.Index\.MaskedOut`
}

func mutateSections(ix *index.Index) {
	ix.Pos[0] = 3                               // want `element write to index\.Index\.Pos`
	_ = append(ix.Codes, 0)                     // want `append to index\.Index\.Codes`
	copy(ix.OccSeq, []int32{1})                 // want `copy into index\.Index\.OccSeq`
	sort.Slice(ix.Starts, func(i, j int) bool { // want `sort\.Slice reorders index\.Index\.Starts`
		return ix.Starts[i] < ix.Starts[j]
	})
}

func rebind(p *ixcache.Prepared, b *bank.Bank) {
	p.Bank = b // want `assignment to ixcache\.Prepared\.Bank`
}
