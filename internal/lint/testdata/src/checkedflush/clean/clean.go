// Package fixture holds output-path idioms the checkedflush analyzer
// must stay silent on.
package fixture

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
)

// The checked flush.
func checked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "row")
	return bw.Flush()
}

// http.Flusher.Flush returns nothing; there is no error to drop.
func httpFlush(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// The defer-join idiom: the close error lands in the named return.
func writeFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write([]byte("x"))
	return err
}

// The backstop idiom: a deferred discard is fine when the success
// path checks Close (double Close of an os.File is a cheap ErrClosed).
func backstop(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Close()
}

// Read-side handles may discard Close: nothing buffered can be lost.
func readSide(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var buf [16]byte
	return f.Read(buf[:])
}
