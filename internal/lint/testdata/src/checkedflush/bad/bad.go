// Package fixture seeds the silent-truncation classes the
// checkedflush analyzer must catch (the PR 5 bug class: ENOSPC behind
// a zero exit status).
package fixture

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/fasta"
)

func bareFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "row")
	bw.Flush() // want `Flush error discarded`
}

func deferredFlush(w io.Writer) {
	bw := bufio.NewWriter(w)
	defer bw.Flush() // want `Flush error deferred`
	fmt.Fprintln(bw, "row")
}

// Any single-error Flush counts, repo writers included.
func fastaFlush(w io.Writer) {
	fw := fasta.NewWriter(w)
	fw.Flush() // want `Flush error discarded`
}

func bareClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		f.Close() // want `Close error discarded`
		return err
	}
	f.Close() // want `Close error discarded`
	return nil
}

func lonelyDefer(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `no checked Close elsewhere`
	_, err = f.Write([]byte("x"))
	return err
}
