// Package fixture is the idiomatic counterpart: every access to a
// `// guardedby: mu` field happens under the mutex — locally, or in a
// *Locked helper whose callers hold the lock when they call it.
package fixture

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int // guardedby: mu
}

// get locks around its own access.
func get(r *registry, name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[name]
}

// getLocked touches the field unlocked — fine, as long as every call
// site holds the mutex.
func getLocked(r *registry, name string) int {
	return r.items[name]
}

// lookup holds the lock across the helper call.
func lookup(r *registry) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return getLocked(r, "x")
}

// fresh constructs a registry: values still private to the
// constructor need no lock.
func fresh() *registry {
	r := &registry{items: make(map[string]int)}
	r.items["seed"] = 1
	return r
}
