// Package fixture seeds the unlocked accesses the guardedby analyzer
// must catch: fields annotated `// guardedby: mu` touched without the
// mutex — directly, and through a call whose callee requires the lock.
package fixture

import "sync"

type registry struct {
	mu    sync.Mutex
	items map[string]int // guardedby: mu
}

var global registry

// raw reads the guarded map of a package-level registry with no lock
// anywhere on the path.
func raw(name string) int {
	return global.items[name] // want `guarded by`
}

// get requires the caller to hold r.mu — it touches r.items unlocked,
// so the requirement propagates to every call site.
func get(r *registry, name string) int {
	return r.items[name]
}

// lookup calls get without holding the lock: the violation surfaces
// here, at the call site.
func lookup() int {
	return get(&global, "x") // want `guarded by`
}

// badMutex names a field that is not a mutex: the annotation itself is
// the finding.
type badMutex struct {
	n     int
	items []int // guardedby: n // want `not a sync.Mutex`
}
