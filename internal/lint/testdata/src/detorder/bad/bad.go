// Package fixture seeds the map-order leaks the detorder analyzer must
// catch: values that flow out of a map range into emitted bytes with
// no sort in between — including when the building and the emitting
// happen in different functions.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
)

// collect builds a listing in map-iteration order: whoever emits it
// inherits the nondeterminism.
func collect(m map[string]int) []string {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	return names
}

// emit is the interprocedural pair: the map range is in collect, the
// emission here.
func emit(w io.Writer, m map[string]int) error {
	names := collect(m)
	return json.NewEncoder(w).Encode(names) // want `map iteration at .* reach a JSON response`
}

// direct ranges and prints in one body.
func direct(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration at .* reach a formatted output stream`
	}
}
