// Package fixture is the idiomatic counterpart: map-derived listings
// are sorted before emission, and commutative folds (counters, sums)
// pass through untouched — aggregate values carry no iteration order.
package fixture

import (
	"encoding/json"
	"io"
	"sort"
)

// collect sorts before returning: the listing is deterministic no
// matter who emits it.
func collect(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func emit(w io.Writer, m map[string]int) error {
	return json.NewEncoder(w).Encode(collect(m))
}

// listing sorts with sort.Slice — the entry point without "sort" in
// its name — before encoding a struct listing.
func listing(w io.Writer, m map[string]int) error {
	type entry struct {
		Name  string
		Count int
	}
	entries := make([]entry, 0, len(m))
	for name, count := range m {
		entries = append(entries, entry{name, count})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return json.NewEncoder(w).Encode(entries)
}

// total is a commutative fold: the sum is the same in any order.
func total(w io.Writer, m map[string]int) error {
	n := 0
	for _, v := range m {
		n += v
	}
	return json.NewEncoder(w).Encode(n)
}
