// Package fixture seeds the per-element allocations the hotalloc
// analyzer must catch inside //scorislint:hotpath functions: makes,
// fmt calls, interface boxing, and calls into allocating helpers — all
// in loop bodies, where they run once per element.
package fixture

import "fmt"

// scan allocates and formats on the per-element path.
//
//scorislint:hotpath
func scan(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
		s := fmt.Sprintf("%d", x) // want `fmt\.Sprintf in the loop body`
		_ = s
	}
	return n
}

// grow makes a fresh slice per element.
//
//scorislint:hotpath
func grow(xs []int) [][]int {
	var out [][]int
	for range xs {
		out = append(out, make([]int, 4)) // want `make\(\) in the loop body|make in the loop body`
	}
	return out
}

// sink takes an interface: passing an int boxes it.
func sink(v any) {}

//scorislint:hotpath
func box(xs []int) {
	for _, x := range xs {
		sink(x) // want `boxes`
	}
}

// helper allocates; calling it from a hot loop hides the allocation
// one frame down, which is exactly what the transitive check is for.
func helper(n int) []byte { return make([]byte, n) }

//scorislint:hotpath
func viaCall(xs []int) {
	for _, x := range xs {
		_ = helper(x) // want `call to helper`
	}
}
