// Package fixture is the idiomatic counterpart: hot loops that stay on
// the stack — arithmetic, appends into a caller-owned buffer, copies —
// and allocation hoisted out of the loop.
package fixture

//scorislint:hotpath
func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// fill appends into a reusable destination: append's amortized growth
// is the allowed allocation discipline (DESIGN.md §2).
//
//scorislint:hotpath
func fill(dst []int32, xs []int32) []int32 {
	for _, x := range xs {
		dst = append(dst, x)
	}
	return dst
}

// hoisted allocates once, outside the loop.
//
//scorislint:hotpath
func hoisted(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}
