// Package pkga is the callee side of the call-graph fixture: an
// interface with two implementations, exercised by direct calls,
// method values, and interface dispatch from pkgb.
package pkga

type Doer interface {
	Do() int
}

type Impl struct{}

func (Impl) Do() int { return 1 }

type Other struct{}

func (Other) Do() int { return 2 }

// Call dispatches through the interface: the graph fans out to every
// module implementation of Doer.
func Call(d Doer) int { return d.Do() }

// Direct calls a concrete method.
func Direct() int { return Impl{}.Do() }
