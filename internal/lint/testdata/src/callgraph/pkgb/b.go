// Package pkgb is the caller side: cross-package direct calls and a
// method value whose invocation site is invisible.
package pkgb

import "repro/lintfixture/callgraph/pkga"

// Use calls across the package boundary.
func Use() int { return pkga.Call(pkga.Impl{}) }

// MethodValue references pkga.Impl.Do without calling it: the edge is
// a method-value edge, charged to the referencing function.
func MethodValue() func() int {
	i := pkga.Impl{}
	return i.Do
}
