// Package fixture exercises the suppression mechanism itself: a
// justified //scorislint:ignore silences exactly its analyzer on the
// next line, and a reason-less directive suppresses nothing and is
// reported in its own right.
package fixture

import "context"

func justified(ctx context.Context, work func() bool) {
	//scorislint:ignore ctxloop bounded by the retry budget inside work; cancellation is handled one frame up
	for work() {
	}
}

func trailing(ctx context.Context, work func() bool) {
	for work() { //scorislint:ignore ctxloop bounded by the retry budget inside work
	}
}

func wrongAnalyzer(ctx context.Context, work func() bool) {
	//scorislint:ignore goexit the wrong name does not suppress ctxloop
	for work() { // want `never consults a context`
	}
}

func naked(ctx context.Context, work func() bool) {
	//scorislint:ignore ctxloop // want `needs an analyzer name and a justification`
	for work() { // want `never consults a context`
	}
}
