// Package fixture is the idiomatic counterpart: the same read-parse-use
// shapes, but every untrusted value passes a declared validator (or an
// explicit integer range check) before it indexes, sizes, or seeks.
package fixture

import (
	"fmt"
	"os"
)

// checkFrame is the declared validation boundary: it rejects any
// length that does not fit the buffer. Its body is exempt from sink
// checks, and calling it blesses its arguments.
//
//scorislint:validator
func checkFrame(buf []byte, n int) error {
	if n < 0 || n > len(buf) {
		return fmt.Errorf("frame length %d exceeds %d-byte buffer", n, len(buf))
	}
	return nil
}

// load parses a length and validates it before slicing.
func load(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := int(buf[0]) | int(buf[1])<<8
	if err := checkFrame(buf, n); err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// guarded shows the integer escape hatch: a range check whose failure
// branch returns clears the checked integer — but only the integer;
// nothing short of a validator clears a byte buffer.
func guarded(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := int(buf[2])
	if n > len(buf) {
		return nil, fmt.Errorf("bad count %d", n)
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return out, nil
}
