// Package fixture seeds the untrusted-byte paths the untrustedix
// analyzer must catch: bytes read from disk flowing into slice bounds,
// make sizes, and ReadAt offsets without a declared validator — across
// function boundaries, not just inside one body.
package fixture

import "os"

// readLen hand-parses a little-endian length out of the header: the
// result is as hostile as the bytes it came from.
func readLen(buf []byte) int {
	return int(buf[0]) | int(buf[1])<<8
}

// load is the interprocedural pair: the source (os.ReadFile) is here,
// the sink (the slice bound) is in body below. The tainted length
// crosses the call unvalidated.
func load(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n := readLen(buf)
	return body(buf, n), nil // want `untrusted bytes reach a slice bound`
}

// body slices the frame by a caller-supplied length.
func body(buf []byte, n int) []byte {
	return buf[:n]
}

// alloc sizes an allocation straight from a header byte.
func alloc(path string) []byte {
	buf, _ := os.ReadFile(path)
	n := int(buf[2])
	return make([]byte, n) // want `untrusted bytes reach a make size`
}

// seek turns an untrusted offset into a file position.
func seek(f *os.File) ([]byte, error) {
	hdr := make([]byte, 16)
	if _, err := f.Read(hdr); err != nil {
		return nil, err
	}
	off := int64(hdr[0]) | int64(hdr[1])<<8
	out := make([]byte, 32)
	if _, err := f.ReadAt(out, off); err != nil { // want `untrusted bytes reach a ReadAt offset`
		return nil, err
	}
	return out, nil
}
