// Package fixture holds the accepted goroutine lifecycles the goexit
// analyzer must stay silent on.
package fixture

import (
	"context"
	"sync"
)

// WaitGroup join.
func joined(items []int, handle func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			handle(v)
		}(it)
	}
	wg.Wait()
}

// Channel send: the receiver joins.
func channelJoin(compute func() int) <-chan int {
	done := make(chan int, 1)
	go func() {
		done <- compute()
	}()
	return done
}

// Close: consumers range until the producer is finished.
func producer(vals []int) <-chan int {
	ch := make(chan int)
	go func() {
		defer close(ch)
		for _, v := range vals {
			ch <- v
		}
	}()
	return ch
}

// Context consult: bounded by the canceller.
func ctxBounded(ctx context.Context, tick func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				tick()
			}
		}
	}()
}

// Channel receive: bounded by the closer.
func waiter(stop chan struct{}, cleanup func()) {
	go func() {
		<-stop
		cleanup()
	}()
}

// The escape hatch: an explicit justification.
func justified(metrics func()) {
	// background: process-lifetime metrics pump; exits with the process.
	go metrics()
}
