// Package fixture seeds the fire-and-forget goroutine classes the
// goexit analyzer must catch.
package fixture

func fireAndForget(log func(string)) {
	go func() { // want `without a visible lifecycle`
		log("started")
	}()
}

func namedNoComment(task func()) {
	go task() // want `named function hides its lifecycle`
}

func nakedBackground(task func()) {
	// background:
	go task() // want `named function hides its lifecycle`
}
