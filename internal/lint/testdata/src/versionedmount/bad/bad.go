// Package fixture seeds the unversioned-mount classes the
// versionedmount analyzer must catch: a raw mux that never passes
// through httpapi.Versioned, and the global DefaultServeMux.
package fixture

import (
	"fmt"
	"net/http"
)

func rawHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) { // want `raw \*http\.ServeMux`
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/stats", http.NotFoundHandler()) // want `raw \*http\.ServeMux`
	return mux
}

func globalMux() {
	http.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {}) // want `DefaultServeMux`
}
