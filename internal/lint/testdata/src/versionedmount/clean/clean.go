// Package fixture holds the sanctioned mount pattern the
// versionedmount analyzer must stay silent on: handlers registered on
// an inner mux that the same function wraps with httpapi.Versioned.
package fixture

import (
	"fmt"
	"net/http"

	"repro/internal/httpapi"
)

func handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/compare", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/stats", http.NotFoundHandler())
	return httpapi.Versioned(mux)
}
