// Package fixture seeds the cancellation-blind loop classes the
// ctxloop analyzer must catch: a function accepts a ctx, promising
// cancellability, then loops without ever consulting one.
package fixture

import "context"

func spinForever(ctx context.Context, work func()) {
	for { // want `never consults a context`
		work()
	}
}

func whileLoop(ctx context.Context, next func() bool) {
	for next() { // want `never consults a context`
	}
}

func chanRange(ctx context.Context, in chan int) int {
	sum := 0
	for v := range in { // want `channel-range loop`
		sum += v
	}
	return sum
}
