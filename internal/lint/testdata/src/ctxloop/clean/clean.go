// Package fixture holds cancellation-correct loops the ctxloop
// analyzer must stay silent on.
package fixture

import "context"

// The canonical pump: unbounded loop, every turn can be cancelled.
func pump(ctx context.Context, in <-chan int, out chan<- int) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case v, ok := <-in:
			if !ok {
				return nil
			}
			out <- v
		}
	}
}

// A channel range that consults ctx inside the body.
func drain(ctx context.Context, in <-chan int) int {
	sum := 0
	for v := range in {
		if ctx.Err() != nil {
			break
		}
		sum += v
	}
	return sum
}

// Passing ctx to a callee that checks is consulting it.
func retry(ctx context.Context, attempt func(context.Context) error) error {
	for {
		if err := attempt(ctx); err == nil {
			return nil
		}
	}
}

// Three-clause loops and ranges over data are bounded; no ctx needed.
func bounded(ctx context.Context, xs []int) int {
	_ = ctx
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	for _, v := range xs {
		total += v
	}
	return total
}

// Functions without a ctx parameter made no cancellation promise.
func noPromise(in chan int) int {
	sum := 0
	for v := range in {
		sum += v
	}
	return sum
}
