// A reason-less file-ignore suppresses nothing and is itself reported;
// the loop it failed to cover still surfaces.
//
//scorislint:file-ignore ctxloop // want `needs an analyzer name and a justification`
package fixture

import "context"

func uncovered(ctx context.Context, work func() bool) {
	for work() { // want `never consults a context`
	}
}
