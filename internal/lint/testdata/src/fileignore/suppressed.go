// Package fixture exercises file-scoped suppression: a justified
// //scorislint:file-ignore silences its analyzer for this whole file —
// both loops below would otherwise be findings.
//
//scorislint:file-ignore ctxloop polling loops in this file are bounded by the caller's retry budget
package fixture

import "context"

func first(ctx context.Context, work func() bool) {
	for work() {
	}
}

func second(ctx context.Context, work func() bool) {
	for {
		if !work() {
			return
		}
	}
}
