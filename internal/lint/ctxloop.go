package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCtxLoop enforces the cancellation contract of the streaming
// paths (DESIGN.md §10): a function that accepts a context.Context
// promises its callers cancellability, so any loop in it that is not
// visibly bounded — `for {}`, `for cond {}`, or ranging over a channel
// — must consult a context somewhere in its header or body (ctx.Err,
// ctx.Done in a select, or passing ctx to a callee that checks).
// Three-clause for loops and range over data are treated as bounded.
//
// This is the machine check behind "streamed compares must stay
// ctx-cancellable": the step-2 chunk-claim loop, CompareStream's group
// loop, and the fleet retry/relay loops all carry a context and must
// keep consulting it as they evolve.
var AnalyzerCtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "unbounded loops in context-carrying functions must consult a context (cancellation contract of the compare/relay paths)",
	Run:  runCtxLoop,
}

func runCtxLoop(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			for _, fn := range functionsIn(f) {
				if !hasCtxParam(pkg, fn.typ) {
					continue
				}
				inspectShallow(fn.body, func(n ast.Node) bool {
					switch st := n.(type) {
					case *ast.ForStmt:
						// A three-clause loop manages its own bound.
						if st.Init != nil || st.Post != nil {
							return true
						}
						if !mentionsContext(pkg, st) {
							pass.Reportf(st.Pos(), "unbounded loop in a context-carrying function never consults a context: compare and relay paths must stay cancellable (DESIGN.md §10)")
						}
					case *ast.RangeStmt:
						t := typeOf(pkg.Info, st.X)
						if t == nil {
							return true
						}
						if _, isChan := t.Underlying().(*types.Chan); !isChan {
							return true
						}
						if !mentionsContext(pkg, st) {
							pass.Reportf(st.Pos(), "channel-range loop in a context-carrying function never consults a context: compare and relay paths must stay cancellable (DESIGN.md §10)")
						}
					}
					return true
				})
			}
		}
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pkg *Package, typ *ast.FuncType) bool {
	if typ == nil || typ.Params == nil {
		return false
	}
	for _, field := range typ.Params.List {
		if t := typeOf(pkg.Info, field.Type); t != nil && isNamed(t, "context", "Context") {
			return true
		}
	}
	return false
}

// mentionsContext reports whether any expression of type
// context.Context appears anywhere in n (header or body, nested
// closures included: a loop that hands ctx to anything is consulting
// it in the only sense a lexical check can certify).
func mentionsContext(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		e, ok := x.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr:
			if t := typeOf(pkg.Info, e); t != nil && isNamed(t, "context", "Context") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
