package lint

import (
	"go/ast"
)

const (
	indexPkgPath   = "repro/internal/index"
	ixcachePkgPath = "repro/internal/ixcache"
)

// csrSections are the index.Index fields that may alias a read-only
// .orix mmap after LoadMapped (DESIGN.md §7): growing, reordering, or
// element-writing them faults on the mapping — or silently corrupts a
// cached index shared by concurrent readers.
var csrSections = map[string]bool{
	"Starts": true, "Pos": true, "Codes": true,
	"OccSeq": true, "OccLo": true, "OccHi": true,
}

// AnalyzerIndexImmut enforces the index reuse contract of DESIGN.md
// §5/§7: outside their defining packages, index.Index and
// ixcache.Prepared are immutable after construction — no field
// assignments, and no append/copy/sort/element writes on the six CSR
// sections, which may be zero-copy views of a read-only mmap.
var AnalyzerIndexImmut = &Analyzer{
	Name: "indeximmut",
	Doc:  "forbid post-construction writes to index.Index / ixcache.Prepared and any mutation of the CSR sections (they may alias a read-only mmap)",
	Run:  runIndexImmut,
}

func runIndexImmut(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						checkImmutWrite(pass, pkg, lhs, "assignment")
					}
				case *ast.IncDecStmt:
					checkImmutWrite(pass, pkg, st.X, "increment")
				case *ast.CallExpr:
					checkImmutCall(pass, pkg, st)
				}
				return true
			})
		}
	}
}

// sectionSelector reports whether e selects one of the CSR section
// fields of an index.Index, returning the field name.
func sectionSelector(pkg *Package, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !csrSections[sel.Sel.Name] {
		return "", false
	}
	t := typeOf(pkg.Info, sel.X)
	if t == nil || !isNamed(t, indexPkgPath, "Index") {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkImmutWrite flags lhs when it writes a field of index.Index or
// ixcache.Prepared, or an element of a CSR section.
func checkImmutWrite(pass *Pass, pkg *Package, lhs ast.Expr, what string) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		t := typeOf(pkg.Info, e.X)
		if t == nil {
			return
		}
		if pkg.Path != indexPkgPath && isNamed(t, indexPkgPath, "Index") {
			pass.Reportf(e.Pos(), "%s to index.Index.%s outside package index: a built Index is immutable and concurrent-reader-shared (DESIGN.md §5)", what, e.Sel.Name)
		}
		if pkg.Path != ixcachePkgPath && isNamed(t, ixcachePkgPath, "Prepared") {
			pass.Reportf(e.Pos(), "%s to ixcache.Prepared.%s outside package ixcache: a Prepared is immutable and valid only for the exact (bank, Options) it was built from (DESIGN.md §5)", what, e.Sel.Name)
		}
	case *ast.IndexExpr:
		if pkg.Path == indexPkgPath {
			return
		}
		if name, ok := sectionSelector(pkg, e.X); ok {
			pass.Reportf(e.Pos(), "element write to index.Index.%s: CSR sections may alias a read-only .orix mmap and must never be mutated (DESIGN.md §7)", name)
		}
	}
}

// checkImmutCall flags append/copy on a CSR section and sort/slices
// calls passed one.
func checkImmutCall(pass *Pass, pkg *Package, call *ast.CallExpr) {
	if pkg.Path == indexPkgPath {
		return
	}
	switch {
	case isBuiltin(pkg.Info, call, "append") && len(call.Args) > 0:
		if name, ok := sectionSelector(pkg, call.Args[0]); ok {
			pass.Reportf(call.Pos(), "append to index.Index.%s: CSR sections may alias a read-only .orix mmap and must never be grown in place (DESIGN.md §7)", name)
		}
	case isBuiltin(pkg.Info, call, "copy") && len(call.Args) > 0:
		if name, ok := sectionSelector(pkg, call.Args[0]); ok {
			pass.Reportf(call.Pos(), "copy into index.Index.%s: CSR sections may alias a read-only .orix mmap and must never be overwritten (DESIGN.md §7)", name)
		}
	default:
		fn := calleeFunc(pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return
		}
		for _, arg := range call.Args {
			if name, ok := sectionSelector(pkg, arg); ok {
				pass.Reportf(call.Pos(), "%s.%s reorders index.Index.%s: CSR sections are position-sorted per code and may alias a read-only mmap (DESIGN.md §7)", fn.Pkg().Name(), fn.Name(), name)
			}
		}
	}
}
