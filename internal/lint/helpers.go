package lint

import (
	"go/ast"
	"go/types"
)

// deref unwraps one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// typeOf is info.TypeOf, nil-safe for expressions the checker never
// recorded.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if e == nil {
		return nil
	}
	return info.TypeOf(e)
}

// calleeFunc resolves a call's callee to its types.Func when the
// callee is a package-level function or a method; nil otherwise
// (builtins, function-typed variables).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether call invokes pkgPath.name (a package-level
// function, not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// isBuiltin reports whether call invokes the builtin name (append,
// copy, close, ...).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// funcNode is one function body in a file: a declaration or a literal.
type funcNode struct {
	typ  *ast.FuncType
	body *ast.BlockStmt
}

// functionsIn lists every function declaration and literal in f that
// has a body.
func functionsIn(f *ast.File) []funcNode {
	var out []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcNode{typ: fn.Type, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcNode{typ: fn.Type, body: fn.Body})
		}
		return true
	})
	return out
}

// inspectShallow walks n but does not descend into nested function
// literals, so statements are attributed to their lexical function.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n {
			return false
		}
		return fn(x)
	})
}

// directiveLines maps "comment directive with prefix" occurrences in a
// file to the source lines they annotate. A directive anywhere in a
// comment group annotates the group's last line and the line after it,
// so trailing comments, single preceding comments, and multi-line
// preceding comments all cover the statement they sit on or above.
func directiveLines(pass *Pass, f *ast.File, prefix string, needsArg bool) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		matched := false
		for _, c := range cg.List {
			text := c.Text
			if len(text) < 2 || text[:2] != "//" {
				continue
			}
			body := text[2:]
			for len(body) > 0 && (body[0] == ' ' || body[0] == '\t') {
				body = body[1:]
			}
			if len(body) < len(prefix) || body[:len(prefix)] != prefix {
				continue
			}
			rest := body[len(prefix):]
			for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
				rest = rest[1:]
			}
			if needsArg && rest == "" {
				continue
			}
			matched = true
		}
		if matched {
			line := pass.Fset.Position(cg.End()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}
