package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerGoExit requires every spawned goroutine to have a visible
// lifecycle. A `go` statement passes if its function literal body
// shows one of the accepted termination/join signals:
//
//   - sync.WaitGroup.Done (typically deferred) — joined by Wait;
//   - a channel send or close — joined by the receiver;
//   - a channel receive or a context consult — bounded by the
//     closer/canceller;
//
// or if the statement carries an explicit justification comment on its
// line or the line above:
//
//	// background: <why this goroutine may outlive its spawner>
//
// `go` of a named function always needs the comment: the lifecycle is
// not visible at the spawn site.
//
// This is the machine check behind the fleet/server shutdown story
// (DESIGN.md §8–§10): graceful drain only works when no goroutine is
// fire-and-forget by accident.
var AnalyzerGoExit = &Analyzer{
	Name: "goexit",
	Doc:  "every go statement needs a visible lifecycle (WaitGroup/channel/ctx) or a '// background:' justification",
	// Test goroutines leak and test writers truncate the same way
	// production ones do.
	AnalyzeTests: true,
	Run:          runGoExit,
}

const backgroundPrefix = "background:"

func runGoExit(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pass.Files(pkg) {
			justified := directiveLines(pass, f, backgroundPrefix, true)
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if justified[pass.Fset.Position(st.Pos()).Line] {
					return true
				}
				lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit)
				if !ok {
					pass.Reportf(st.Pos(), "go statement on a named function hides its lifecycle from the spawn site: join it here (WaitGroup/channel) or justify with '// background: <reason>'")
					return true
				}
				if !hasLifecycleSignal(pkg, lit.Body) {
					pass.Reportf(st.Pos(), "goroutine without a visible lifecycle: no WaitGroup.Done, channel send/close/receive, or context consult in its body — join it or justify with '// background: <reason>' (graceful drain depends on accounted goroutines, DESIGN.md §8)")
				}
				return true
			})
		}
	}
}

// hasLifecycleSignal scans a goroutine body (closures included) for
// any accepted termination/join signal.
func hasLifecycleSignal(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			// <-ch receive: bounded by the sender/closer.
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg.Info, x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pkg.Info, x, "close") {
				found = true
				break
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Done" || sel.Sel.Name == "Wait" {
					if t := typeOf(pkg.Info, sel.X); t != nil && isNamed(t, "sync", "WaitGroup") {
						found = true
					}
				}
			}
		case ast.Expr:
			if t := typeOf(pkg.Info, x); t != nil && isNamed(t, "context", "Context") {
				found = true
			}
		}
		return !found
	})
	return found
}
