package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestServerReadyzDrainFlip pins the readiness contract a fleet router
// depends on: /readyz answers 200 while the server takes traffic and
// flips to 503 the moment draining begins — while /healthz (liveness)
// stays 200 throughout, since a draining server is alive.
func TestServerReadyzDrainFlip(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	if status, body := get("/readyz"); status != http.StatusOK {
		t.Fatalf("fresh server /readyz: status %d: %s", status, body)
	}
	srv.SetDraining(true)
	status, body := get("/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining server /readyz: status %d, body %s; want 503 + draining", status, body)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("draining server /healthz: status %d, want 200 (drain is not death)", status)
	}
	if !srv.StatsSnapshot().Server.Draining {
		t.Error("stats do not report draining")
	}
	srv.SetDraining(false)
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Errorf("un-drained server /readyz: status %d, want 200", status)
	}
}

// TestServerAbandonedQueuedRequest: a request that gives up while
// queued for a worker slot must free its place immediately and be
// counted Abandoned — it must NOT go on to run the full comparison for
// a client that is gone.
func TestServerAbandonedQueuedRequest(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 1})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testHoldCompare = hold
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// First request takes the only worker slot and parks on the hold.
	first := make(chan []byte, 1)
	go func() {
		_, body := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
		first <- body
	}()
	waitFor(t, func() bool { return srv.admitted.Load() == 1 })

	// Second request queues behind it, then its client walks away.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/compare",
		strings.NewReader(`{"db":"est1","query":"est2"}`))
	if err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		second <- err
	}()
	waitFor(t, func() bool { return srv.admitted.Load() == 2 })
	cancel()
	if err := <-second; err == nil {
		t.Fatal("cancelled request reported success")
	}

	// The abandoned request frees its queue slot without waiting for
	// (or taking) a worker slot, and is counted.
	waitFor(t, func() bool { return srv.admitted.Load() == 1 })
	waitFor(t, func() bool { return srv.abandoned.Load() == 1 })
	before := srv.compares.Load()

	// The held request is unaffected and completes with full output.
	close(hold)
	got := <-first
	want := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	if !bytes.Equal(got, want) {
		t.Fatal("held request did not complete with the full serial output")
	}
	waitFor(t, func() bool { return srv.admitted.Load() == 0 })
	if c := srv.compares.Load(); c != before+1 {
		t.Errorf("compares counter moved by %d, want 1 (the abandoned request must not run)", c-before)
	}
}

// TestServerRequestTimeout504 pins the -request-timeout contract: a
// compare that outlives the server-side deadline is answered 504 with
// the distinct timed_out JSON marker, and the worker slot it occupies
// is released once the compare actually finishes — never leaked.
func TestServerRequestTimeout504(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 1, RequestTimeout: 100 * time.Millisecond})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testHoldCompare = hold
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("overlong compare: status %d, want 504: %s", status, body)
	}
	var eb struct {
		Error    string `json:"error"`
		TimedOut bool   `json:"timed_out"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || !eb.TimedOut || eb.Error == "" {
		t.Fatalf("504 body lacks the distinct timed_out marker: %s", body)
	}
	if srv.timedOut.Load() != 1 {
		t.Errorf("timed_out counter = %d, want 1", srv.timedOut.Load())
	}

	// The slot is still held by the parked compare — and is released,
	// not leaked, once that compare returns.
	if got := srv.admitted.Load(); got != 1 {
		t.Fatalf("admitted = %d while the timed-out compare is still parked, want 1", got)
	}
	close(hold)
	waitFor(t, func() bool { return srv.admitted.Load() == 0 })

	// The pool serves normally again (no timeout pressure this time:
	// the hold is gone, the small compare finishes well inside 100ms —
	// and on a pathologically slow machine a 504 here would still be
	// correct behavior, so only insist on one of the two).
	status, body = postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK && status != http.StatusGatewayTimeout {
		t.Fatalf("post-timeout compare: status %d: %s", status, body)
	}
}
