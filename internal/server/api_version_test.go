package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestVersionedAPISurface: every scorisd route answers identically at
// /v1/<path> and at its bare legacy alias — byte-identical compare
// output included — with the alias marked deprecated.
func TestVersionedAPISurface(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 2})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"db":"est1","query":"est2"}`
	post := func(t *testing.T, path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	v1, v1out := post(t, "/v1/compare")
	legacy, legacyOut := post(t, "/compare")
	if v1.StatusCode != http.StatusOK || legacy.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d: %s / %s", v1.StatusCode, legacy.StatusCode, v1out, legacyOut)
	}
	if len(v1out) == 0 || !bytes.Equal(v1out, legacyOut) {
		t.Fatalf("compare output differs across surfaces (%d vs %d bytes)", len(v1out), len(legacyOut))
	}
	want := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	if !bytes.Equal(v1out, want) {
		t.Fatal("/v1/compare output differs from the serial engine bytes")
	}
	if v1.Header.Get("Deprecation") != "" {
		t.Error("/v1/compare marked deprecated")
	}
	if legacy.Header.Get("Deprecation") != "true" {
		t.Error("legacy /compare missing the Deprecation header")
	}

	// The read-only routes alias too.
	for _, path := range []string{"/banks", "/stats", "/healthz", "/readyz"} {
		respV1, err := http.Get(ts.URL + "/v1" + path)
		if err != nil {
			t.Fatal(err)
		}
		respV1.Body.Close()
		respLegacy, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		respLegacy.Body.Close()
		if respV1.StatusCode != respLegacy.StatusCode {
			t.Errorf("%s: status %d under /v1, %d bare", path, respV1.StatusCode, respLegacy.StatusCode)
		}
		if respLegacy.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: legacy alias not marked deprecated", path)
		}
	}
}
