// Async jobs: the third result-path shape. A job is a compare whose
// lifetime is decoupled from any HTTP request — POST /jobs enqueues it
// and returns immediately with an id; GET /jobs/{id} polls state and
// progress; GET /jobs/{id}/result streams the accumulated (possibly
// still growing) m8, following the job live until it finishes; DELETE
// /jobs/{id} cancels and discards it.
//
// Jobs wait for engine capacity by blocking on the worker semaphore
// rather than passing admission control: where an interactive compare
// must be refused fast under overload (429), a job's whole point is to
// absorb that wait. Its bound is the job registry itself — at most
// Config.MaxJobs records exist at once (queued, running, or finished
// and holding a result), and creation past the bound is refused.
//
// A job's result buffer is append-only; result followers snapshot the
// tail under the job lock and wait on a condition variable that every
// append and the final state change broadcast. A follower therefore
// streams exactly the bytes a buffered compare would have produced, in
// order, and its trailer (X-Scoris-Status) reports how the job ended:
// complete, cancelled, or error.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/bank"
)

type jobState string

const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// terminal reports whether the state is final.
func (st jobState) terminal() bool {
	return st == jobDone || st == jobFailed || st == jobCancelled
}

type job struct {
	id     string
	req    compareRequest
	cancel context.CancelFunc

	mu   sync.Mutex
	cond *sync.Cond // signals buf growth and state changes
	// state advances queued → running → one terminal state; buf is
	// append-only m8 bytes; seqsDone counts emitted query sequences.
	state     jobState
	errMsg    string
	buf       []byte
	seqsDone  int
	seqsTotal int
}

func newJob(id string, req compareRequest, cancel context.CancelFunc, seqsTotal int) *job {
	j := &job{id: id, req: req, cancel: cancel, state: jobQueued, seqsTotal: seqsTotal}
	j.cond = sync.NewCond(&j.mu)
	return j
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = jobRunning
	j.cond.Broadcast()
	j.mu.Unlock()
}

// append adds one emitted group and ticks progress.
func (j *job) append(m8 []byte) {
	j.mu.Lock()
	j.buf = append(j.buf, m8...)
	j.seqsDone++
	j.cond.Broadcast()
	j.mu.Unlock()
}

// jobStatus is the poll/list payload.
type jobStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	DB        string `json:"db"`
	Query     string `json:"query"`
	Engine    string `json:"engine"`
	SeqsDone  int    `json:"seqs_done"`
	SeqsTotal int    `json:"seqs_total"`
	Bytes     int    `json:"bytes"`
	Error     string `json:"error,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID: j.id, State: string(j.state),
		DB: j.req.DB, Query: j.req.Query, Engine: engineName(j.req.Engine),
		SeqsDone: j.seqsDone, SeqsTotal: j.seqsTotal,
		Bytes: len(j.buf), Error: j.errMsg,
	}
}

// finishJob seals a job and counts it. It is called exactly once, from
// the job's own goroutine — cancellation reaches it as the engine's
// ctx error, so a cancel racing completion resolves to whichever
// happened first inside the engine, never to two terminal states.
func (s *Server) finishJob(j *job, state jobState, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.cond.Broadcast()
	j.mu.Unlock()
	switch state {
	case jobDone:
		s.jobsCompleted.Add(1)
		s.compares.Add(1)
	case jobCancelled:
		s.jobsCancelled.Add(1)
	case jobFailed:
		s.jobsFailed.Add(1)
	}
}

// runJob is the job goroutine: wait (indefinitely) for a worker slot,
// run the streamed compare with an emit that appends to the job
// buffer, seal the job.
func (s *Server) runJob(ctx context.Context, j *job, db, query *bank.Bank) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finishJob(j, jobCancelled, "cancelled while queued")
		return
	}
	defer func() { <-s.sem }()
	s.admissions.Add(1)
	j.setRunning()
	err := s.runCompareStream(ctx, db, query, &j.req, func(_ int, m8 []byte) error {
		if gate := s.testStreamGate; gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		// No backpressure here: the job buffer is the consumer, and
		// its bound is MaxJobs × result size, paid knowingly.
		j.append(m8)
		return ctx.Err()
	})
	switch {
	case err == nil:
		s.finishJob(j, jobDone, "")
	case errors.Is(err, context.Canceled):
		s.finishJob(j, jobCancelled, "cancelled")
	default:
		s.finishJob(j, jobFailed, err.Error())
	}
}

// handleJobs serves the /jobs collection: POST creates, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.jobMu.Lock()
		list := make([]jobStatus, 0, len(s.jobs))
		for _, j := range s.jobs {
			list = append(list, j.status())
		}
		s.jobMu.Unlock()
		// The registry is a map: sort by id so the listing is
		// byte-deterministic.
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(list)
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading job request: %v", err)
			return
		}
		req, err := parseCompareRequest(body, "")
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if req.Stream {
			httpError(w, http.StatusBadRequest, "jobs have no stream mode; GET /jobs/{id}/result streams")
			return
		}
		if req.Format == "json" {
			httpError(w, http.StatusBadRequest, "job results are m8-only")
			return
		}
		db, ok := s.lookupBank(req.DB)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks)", req.DB)
			return
		}
		query, ok := s.lookupBank(req.Query)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks)", req.Query)
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		id := fmt.Sprintf("j%d", s.jobSeq.Add(1))
		j := newJob(id, req, cancel, query.NumSeqs())
		s.jobMu.Lock()
		if len(s.jobs) >= s.cfg.MaxJobs {
			s.jobMu.Unlock()
			cancel()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests,
				"job registry full (%d jobs); DELETE finished jobs or raise MaxJobs", s.cfg.MaxJobs)
			return
		}
		s.jobs[id] = j
		s.jobMu.Unlock()
		s.jobsCreated.Add(1)
		// background: tracked in s.jobs (bounded by MaxJobs) until a
		// terminal state; cancellable via ctx from DELETE /jobs/{id}.
		go s.runJob(ctx, j, db, query)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(j.status())
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// handleJob serves one job: GET /jobs/{id} (status), GET
// /jobs/{id}/result (streamed m8), DELETE /jobs/{id} (cancel+discard).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, tail, _ := strings.Cut(rest, "/")
	if id == "" || (tail != "" && tail != "result") {
		httpError(w, http.StatusNotFound, "unknown job path %q", r.URL.Path)
		return
	}
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch {
	case r.Method == http.MethodGet && tail == "result":
		s.serveJobResult(w, r, j)
	case r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(j.status())
	case r.Method == http.MethodDelete && tail == "":
		// Cancel reaches a running engine through its ctx; the job
		// goroutine seals the state (and the counters) on its way out.
		// The record is dropped now, so the id is immediately reusable
		// capacity — followers already attached keep following the
		// orphaned record until the goroutine seals it.
		j.cancel()
		s.jobMu.Lock()
		delete(s.jobs, id)
		s.jobMu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"deleted": id})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// serveJobResult streams a job's m8 bytes, following a live job until
// it reaches a terminal state. The X-Scoris-Status trailer reports how
// the job ended; a cancelled or failed job's partial bytes are served,
// sealed with a non-"complete" trailer.
func (s *Server) serveJobResult(w http.ResponseWriter, r *http.Request, j *job) {
	flusher, _ := w.(http.Flusher)
	writeStreamHeader(w)
	// Push the headers out now: a follower of a quiet job should see
	// its response open immediately, not at the first m8 byte.
	if flusher != nil {
		flusher.Flush()
	}

	// A follower blocked in cond.Wait cannot see its client vanish;
	// this broadcast (taking the lock, so it cannot slide between a
	// follower's ctx check and its Wait) wakes every waiter to re-check.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	served := 0
	for {
		j.mu.Lock()
		for len(j.buf) == served && !j.state.terminal() && r.Context().Err() == nil {
			j.cond.Wait()
		}
		chunk := j.buf[served:] // append-only: a snapshot slice stays valid
		state := j.state
		j.mu.Unlock()
		if r.Context().Err() != nil {
			s.abandoned.Add(1)
			return
		}
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			served += len(chunk)
		}
		if state.terminal() {
			switch state {
			case jobDone:
				w.Header().Set(streamStatusTrailer, streamStatusComplete)
			case jobCancelled:
				w.Header().Set(streamStatusTrailer, "cancelled")
			default:
				w.Header().Set(streamStatusTrailer, "error")
			}
			return
		}
	}
}

// jobStats assembles the /stats job section.
func (s *Server) jobStats() JobStats {
	st := JobStats{
		Created:   s.jobsCreated.Load(),
		Completed: s.jobsCompleted.Load(),
		Failed:    s.jobsFailed.Load(),
		Cancelled: s.jobsCancelled.Load(),
	}
	s.jobMu.Lock()
	st.Held = len(s.jobs)
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			st.Queued++
		case jobRunning:
			st.Running++
		}
		j.mu.Unlock()
	}
	s.jobMu.Unlock()
	return st
}
