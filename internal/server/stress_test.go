package server

import (
	"bytes"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/ixdisk"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

// TestServerStress (run under -race in CI) fires mixed concurrent
// requests — same db bank from every goroutine, distinct query banks,
// all three engines — and asserts the two service invariants:
//
//  1. every response is byte-identical to the serial engine output for
//     its (bank, options) pair — concurrency never changes results;
//  2. the shared cache reports exactly one index build per
//     (bank, options) key across the whole run — the single-flight
//     machinery really did coalesce every concurrent first touch.
func TestServerStress(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 1 << 20})
	for _, reg := range []struct {
		name string
		b    *bank.Bank
		db   bool
	}{{"est1", est1, true}, {"est2", est2, false}, {"est3", est3, false}} {
		if err := srv.RegisterBank(reg.name, reg.b, reg.db); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serial references, computed before any server traffic.
	workers := srv.Config().RequestWorkers
	blatRef := func() []byte {
		res, err := blat.Compare(est1, est2, blat.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tabular.Write(&buf, toRecords(res.Alignments, est1, est2)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	blastnRef := func() []byte {
		res, err := blastn.Compare(est1, est2, blastn.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tabular.Write(&buf, toRecords(res.Alignments, est1, est2)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	shapes := []struct {
		name string
		req  string
		want []byte
	}{
		{"oris-est2", `{"db":"est1","query":"est2"}`, serialORIS(t, est1, est2, workers, false)},
		{"oris-est3", `{"db":"est1","query":"est3"}`, serialORIS(t, est1, est3, workers, false)},
		{"blat-est2", `{"db":"est1","query":"est2","engine":"blat"}`, blatRef},
		{"blastn-est2", `{"db":"est1","query":"est2","engine":"blastn"}`, blastnRef},
	}
	for _, sh := range shapes {
		if len(sh.want) == 0 {
			t.Fatalf("degenerate reference for %s: no output", sh.name)
		}
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Rotate the starting shape per goroutine so first
				// touches of every key race with each other.
				for i := range shapes {
					sh := shapes[(g+i)%len(shapes)]
					status, got := postCompare(t, ts.URL, sh.req)
					if status != 200 {
						t.Errorf("%s: status %d: %s", sh.name, status, got)
						return
					}
					if !bytes.Equal(got, sh.want) {
						t.Errorf("%s: response differs from serial output (%d vs %d bytes)",
							sh.name, len(got), len(sh.want))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Exactly one build per key: est1/est2/est3 under the oris options
	// plus est1's blat tile index. blastn builds no bank index.
	if b := srv.Cache().Builds(); b != 4 {
		t.Errorf("cache built %d indexes across the stress run, want exactly 4", b)
	}
	if rej := srv.rejected.Load(); rej != 0 {
		t.Errorf("%d requests rejected despite the deep queue", rej)
	}
	want := int64(goroutines * rounds * len(shapes))
	if c := srv.compares.Load(); c != want {
		t.Errorf("%d compares completed, want %d", c, want)
	}
}

// TestServerStoreWarmStart: a second server over the same store
// directory (fresh process simulation: fresh cache, fresh DirStore,
// freshly loaded banks with identical content) must serve a full
// concurrent wave with zero index builds — every key comes off disk.
func TestServerStoreWarmStart(t *testing.T) {
	dir := t.TempDir()

	run := func(wantBuilds, wantDiskHits int64) {
		t.Helper()
		// Fresh banks each time: content-identical, different pointers —
		// exactly what a new process sees.
		ds := simulate.NewDataSet(256)
		est1, est2, est3 := ds.Get(simulate.EST1), ds.Get(simulate.EST2), ds.Get(simulate.EST3)
		store, err := ixdisk.NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		srv := New(Config{MaxConcurrent: 4, QueueDepth: 1 << 20, Store: store})
		if err := srv.RegisterBank("est1", est1, true); err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterBank("est2", est2, false); err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterBank("est3", est3, false); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		workers := srv.Config().RequestWorkers
		shapes := []struct {
			req  string
			want []byte
		}{
			{`{"db":"est1","query":"est2"}`, serialORIS(t, est1, est2, workers, false)},
			{`{"db":"est1","query":"est3"}`, serialORIS(t, est1, est3, workers, false)},
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := range shapes {
					sh := shapes[(g+i)%len(shapes)]
					status, got := postCompare(t, ts.URL, sh.req)
					if status != 200 || !bytes.Equal(got, sh.want) {
						t.Errorf("warm-start wave: status %d, %d vs %d bytes", status, len(got), len(sh.want))
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if b := srv.Cache().Builds(); b != wantBuilds {
			t.Errorf("builds = %d, want %d", b, wantBuilds)
		}
		if h := srv.Cache().DiskHits(); h != wantDiskHits {
			t.Errorf("disk hits = %d, want %d", h, wantDiskHits)
		}
	}

	// Cold server: three keys built (est1, est2, est3), nothing on disk.
	run(3, 0)
	// Warm server: zero builds, all three keys served from the store.
	run(0, 3)
}
