package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/ixdisk"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

// TestServerStress (run under -race in CI) fires mixed concurrent
// requests — same db bank from every goroutine, distinct query banks,
// all three engines — and asserts the two service invariants:
//
//  1. every response is byte-identical to the serial engine output for
//     its (bank, options) pair — concurrency never changes results;
//  2. the shared cache reports exactly one index build per
//     (bank, options) key across the whole run — the single-flight
//     machinery really did coalesce every concurrent first touch.
func TestServerStress(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 1 << 20})
	for _, reg := range []struct {
		name string
		b    *bank.Bank
		db   bool
	}{{"est1", est1, true}, {"est2", est2, false}, {"est3", est3, false}} {
		if err := srv.RegisterBank(reg.name, reg.b, reg.db); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Serial references, computed before any server traffic.
	workers := srv.Config().RequestWorkers
	blatRef := func() []byte {
		res, err := blat.Compare(est1, est2, blat.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tabular.Write(&buf, toRecords(res.Alignments, est1, est2)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	blastnRef := func() []byte {
		res, err := blastn.Compare(est1, est2, blastn.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tabular.Write(&buf, toRecords(res.Alignments, est1, est2)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	shapes := []struct {
		name string
		req  string
		want []byte
	}{
		{"oris-est2", `{"db":"est1","query":"est2"}`, serialORIS(t, est1, est2, workers, false)},
		{"oris-est3", `{"db":"est1","query":"est3"}`, serialORIS(t, est1, est3, workers, false)},
		{"blat-est2", `{"db":"est1","query":"est2","engine":"blat"}`, blatRef},
		{"blastn-est2", `{"db":"est1","query":"est2","engine":"blastn"}`, blastnRef},
	}
	for _, sh := range shapes {
		if len(sh.want) == 0 {
			t.Fatalf("degenerate reference for %s: no output", sh.name)
		}
	}

	const goroutines = 8
	const rounds = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Rotate the starting shape per goroutine so first
				// touches of every key race with each other.
				for i := range shapes {
					sh := shapes[(g+i)%len(shapes)]
					status, got := postCompare(t, ts.URL, sh.req)
					if status != 200 {
						t.Errorf("%s: status %d: %s", sh.name, status, got)
						return
					}
					if !bytes.Equal(got, sh.want) {
						t.Errorf("%s: response differs from serial output (%d vs %d bytes)",
							sh.name, len(got), len(sh.want))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Exactly one build per key: est1/est2/est3 under the oris options
	// plus est1's blat tile index. blastn builds no bank index.
	if b := srv.Cache().Builds(); b != 4 {
		t.Errorf("cache built %d indexes across the stress run, want exactly 4", b)
	}
	if rej := srv.rejected.Load(); rej != 0 {
		t.Errorf("%d requests rejected despite the deep queue", rej)
	}
	want := int64(goroutines * rounds * len(shapes))
	if c := srv.compares.Load(); c != want {
		t.Errorf("%d compares completed, want %d", c, want)
	}
}

// TestServerStoreWarmStart: a second server over the same store
// directory (fresh process simulation: fresh cache, fresh DirStore,
// freshly loaded banks with identical content) must serve a full
// concurrent wave with zero index builds — every key comes off disk.
func TestServerStoreWarmStart(t *testing.T) {
	dir := t.TempDir()

	run := func(wantBuilds, wantDiskHits int64) {
		t.Helper()
		// Fresh banks each time: content-identical, different pointers —
		// exactly what a new process sees.
		ds := simulate.NewDataSet(256)
		est1, est2, est3 := ds.Get(simulate.EST1), ds.Get(simulate.EST2), ds.Get(simulate.EST3)
		store, err := ixdisk.NewDirStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		srv := New(Config{MaxConcurrent: 4, QueueDepth: 1 << 20, Store: store})
		if err := srv.RegisterBank("est1", est1, true); err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterBank("est2", est2, false); err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterBank("est3", est3, false); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		workers := srv.Config().RequestWorkers
		shapes := []struct {
			req  string
			want []byte
		}{
			{`{"db":"est1","query":"est2"}`, serialORIS(t, est1, est2, workers, false)},
			{`{"db":"est1","query":"est3"}`, serialORIS(t, est1, est3, workers, false)},
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := range shapes {
					sh := shapes[(g+i)%len(shapes)]
					status, got := postCompare(t, ts.URL, sh.req)
					if status != 200 || !bytes.Equal(got, sh.want) {
						t.Errorf("warm-start wave: status %d, %d vs %d bytes", status, len(got), len(sh.want))
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if b := srv.Cache().Builds(); b != wantBuilds {
			t.Errorf("builds = %d, want %d", b, wantBuilds)
		}
		if h := srv.Cache().DiskHits(); h != wantDiskHits {
			t.Errorf("disk hits = %d, want %d", h, wantDiskHits)
		}
	}

	// Cold server: three keys built (est1, est2, est3), nothing on disk.
	run(3, 0)
	// Warm server: zero builds, all three keys served from the store.
	run(0, 3)
}

// TestServerStressStreamedDisconnects (run under -race in CI) fires a
// full house of concurrent streamed compares and tears every client
// away mid-compare. The gate budget makes the outcome deterministic:
// 20 tokens across 6 streams lets some streams get past their first m8
// byte (query seq 8 of est2's 43) while guaranteeing none can finish
// (43 groups each), so every request must end abandoned — slot freed,
// Abandoned incremented, Compares untouched.
func TestServerStressStreamedDisconnects(t *testing.T) {
	est1, est2, _ := testBanks(t)
	const clients = 6
	srv := New(Config{MaxConcurrent: clients, QueueDepth: 4, StreamBuffer: 1})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv.testStreamGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/compare",
				strings.NewReader(`{"db":"est1","query":"est2","stream":true}`))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // cancelled before the first byte arrived
			}
			// Read until the cancellation tears the connection.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}

	// Blocking sends: when this loop returns, every token has been
	// consumed by a running engine — all six streams are live and
	// parked on the gate, none finished.
	for i := 0; i < 20; i++ {
		gate <- struct{}{}
	}
	cancel()
	wg.Wait()

	waitFor(t, func() bool { return srv.admitted.Load() == 0 })
	waitFor(t, func() bool { return srv.abandoned.Load() == clients })
	if got := srv.compares.Load(); got != 0 {
		t.Errorf("compares = %d after %d torn streams, want 0", got, clients)
	}
	if got := srv.rejected.Load(); got != 0 {
		t.Errorf("rejected = %d, want 0 (every client fit a slot)", got)
	}
}

// TestServerStressBatchVsBankDelete (run under -race in CI) races
// /compare/batch against DELETE + re-register churn on one of its
// query banks. The registry contract under churn: a batch either
// resolves every bank and serves bytes identical to the quiet-registry
// oracle (in-flight compares keep their bank pointers; deregistration
// cannot corrupt them), or answers 404 because a name was missing at
// resolve time. Nothing else — no torn bytes, no 500s, no races.
func TestServerStressBatchVsBankDelete(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 1 << 20})
	for _, reg := range []struct {
		name string
		b    *bank.Bank
		db   bool
	}{{"est1", est1, true}, {"est2", est2, false}, {"est3", est3, false}} {
		if err := srv.RegisterBank(reg.name, reg.b, reg.db); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Oracle from the single-compare path, before any churn.
	_, m8est2 := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	_, m8est3 := postCompare(t, ts.URL, `{"db":"est1","query":"est3"}`)
	want := append(append([]byte(nil), m8est2...), m8est3...)

	const goroutines = 6
	const rounds = 5
	var served, missed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp := streamPost(t, ts.URL, "/compare/batch",
					`{"db":"est1","queries":["est2","est3"]}`, "")
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reading batch response: %v", err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Equal(body, want) {
						t.Errorf("batch under churn differs from oracle: %d vs %d bytes",
							len(body), len(want))
						return
					}
					served.Add(1)
				case http.StatusNotFound:
					missed.Add(1) // est3 was deregistered at resolve time
				default:
					t.Errorf("batch under churn: status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 40; i++ {
			req, err := http.NewRequest(http.MethodDelete, ts.URL+"/banks?name=est3", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			// Same pointer, same content: re-registration restores the
			// exact bank, so served batches stay byte-deterministic.
			if err := srv.RegisterBank("est3", est3, false); err != nil {
				t.Errorf("re-registering churned bank: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-churnDone

	if total := served.Load() + missed.Load(); total != goroutines*rounds {
		t.Errorf("%d batches accounted for (served %d + missed %d), want %d",
			total, served.Load(), missed.Load(), goroutines*rounds)
	}
	// The churn loop always re-registers last, so a final batch over the
	// settled registry must serve the oracle bytes.
	resp := streamPost(t, ts.URL, "/compare/batch", `{"db":"est1","queries":["est2","est3"]}`, "")
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
		t.Errorf("post-churn batch: err=%v status=%d, %d vs %d bytes",
			err, resp.StatusCode, len(body), len(want))
	}
}

// TestServerStressJobCancelVsCompletion (run under -race in CI) creates
// a registry full of jobs and fires a DELETE at each one from a racing
// goroutine, with followers attached. Wherever the cancel lands —
// queued, mid-run, or after the job already finished — each job must
// seal exactly one terminal state, each follower must get a coherent
// stream ("complete" ⇒ oracle bytes, "cancelled" ⇒ a prefix), and the
// worker slots and registry must drain to empty.
func TestServerStressJobCancelVsCompletion(t *testing.T) {
	est1, est2, _ := testBanks(t)
	const jobCount = 12
	srv := New(Config{MaxConcurrent: 4, QueueDepth: 8, MaxJobs: jobCount})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, want := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	comparesBefore := srv.compares.Load()

	var wg sync.WaitGroup
	for i := 0; i < jobCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
			var created jobStatus
			err := json.NewDecoder(resp.Body).Decode(&created)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusAccepted {
				t.Errorf("job create: status %d, err %v", resp.StatusCode, err)
				return
			}
			// Follow the result, then cancel at a staggered moment so
			// deletes land across queued → running → done.
			rr := streamGet(t, ts.URL, "/jobs/"+created.ID+"/result")
			time.Sleep(time.Duration(i%4) * 2 * time.Millisecond)
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+created.ID, nil)
			dr, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				rr.Body.Close()
				return
			}
			io.Copy(io.Discard, dr.Body)
			dr.Body.Close()
			if dr.StatusCode != http.StatusOK {
				t.Errorf("job delete: status %d", dr.StatusCode)
			}
			body, err := io.ReadAll(rr.Body)
			rr.Body.Close()
			if err != nil {
				t.Errorf("follower read: %v", err)
				return
			}
			switch tr := rr.Trailer.Get(streamStatusTrailer); tr {
			case streamStatusComplete:
				if !bytes.Equal(body, want) {
					t.Errorf("completed job served %d bytes, want %d", len(body), len(want))
				}
			case "cancelled":
				if len(body) > len(want) {
					t.Errorf("cancelled job served %d bytes, more than a full result (%d)",
						len(body), len(want))
				}
			default:
				t.Errorf("follower trailer = %q, want complete or cancelled", tr)
			}
		}(i)
	}
	wg.Wait()

	// Every job seals exactly one terminal state; none can fail.
	waitFor(t, func() bool {
		return srv.jobsCompleted.Load()+srv.jobsCancelled.Load()+srv.jobsFailed.Load() == jobCount
	})
	if f := srv.jobsFailed.Load(); f != 0 {
		t.Errorf("jobsFailed = %d, want 0", f)
	}
	if c := srv.jobsCreated.Load(); c != jobCount {
		t.Errorf("jobsCreated = %d, want %d", c, jobCount)
	}
	if got := srv.compares.Load() - comparesBefore; got != srv.jobsCompleted.Load() {
		t.Errorf("compares grew by %d for %d completed jobs", got, srv.jobsCompleted.Load())
	}
	waitFor(t, func() bool { return len(srv.sem) == 0 })
	if js := srv.jobStats(); js.Held != 0 || js.Queued != 0 || js.Running != 0 {
		t.Errorf("registry not drained: %+v", js)
	}
}
