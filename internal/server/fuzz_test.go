package server

import (
	"testing"
)

// FuzzParseCompareRequest throws arbitrary bytes at the /compare (and
// /jobs, /compare/batch prefix) JSON parser. Any input may be rejected;
// none may panic, and an accepted request must satisfy the structural
// contract every handler downstream assumes: both bank names present,
// a known format, self implying query==db, and never stream+json.
func FuzzParseCompareRequest(f *testing.F) {
	f.Add([]byte(`{"db":"a","query":"b"}`), "")
	f.Add([]byte(`{"db":"a","self":true,"engine":"blastn","w":11}`), "")
	f.Add([]byte(`{"db":"a","query":"b","stream":true}`), "")
	f.Add([]byte(`{"db":"a","query":"b","format":"json"}`), m8StreamAccept)
	f.Add([]byte(`{"db":"a","query":"b","max_evalue":1e-5,"both_strands":true}`), "application/json, "+m8StreamAccept)
	f.Add([]byte(`{"db":"a","self":true,"query":"b"}`), "")
	f.Add([]byte(`{`), "")
	f.Add([]byte(`[]`), "")
	f.Add([]byte(`{"db":1}`), "")
	f.Add([]byte(``), "text/html")
	f.Fuzz(func(t *testing.T, body []byte, accept string) {
		req, err := parseCompareRequest(body, accept)
		if err != nil {
			return
		}
		if req.DB == "" || req.Query == "" {
			t.Fatalf("accepted request without bank names: %+v", req)
		}
		if req.Self && req.Query != req.DB {
			t.Fatalf("accepted self-comparison against a different query: %+v", req)
		}
		switch req.Format {
		case "", "m8", "json":
		default:
			t.Fatalf("accepted unknown format %q", req.Format)
		}
		if req.Stream && req.Format == "json" {
			t.Fatal("accepted stream+json, which no handler can serve")
		}
	})
}

// FuzzParseBankBody throws arbitrary bytes at the POST /banks body
// dispatcher, which must tell JSON registrations from raw FASTA by
// content and never panic. An accepted FASTA body must carry at least
// one record; an accepted JSON body must carry a load path.
func FuzzParseBankBody(f *testing.F) {
	f.Add([]byte(`{"name":"b1","path":"/tmp/x.fa","db":true}`))
	f.Add([]byte(">r1 desc\nACGTACGT\n>r2\nTTTT\n"))
	f.Add([]byte("  \r\n\t>r1\nACGT"))
	f.Add([]byte(`{"name":"b1"}`))
	f.Add([]byte(">"))
	f.Add([]byte("ACGT"))
	f.Add([]byte(``))
	f.Add([]byte(`{"path":">"}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, recs, isFasta, err := parseBankBody(body)
		if err != nil {
			return
		}
		if isFasta {
			if len(recs) == 0 {
				t.Fatal("accepted FASTA body with no records")
			}
			for i, rec := range recs {
				if rec == nil {
					t.Fatalf("accepted FASTA body with nil record %d", i)
				}
			}
			return
		}
		if req.Path == "" {
			t.Fatal("accepted JSON bank request without a path")
		}
	})
}
