package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ixdisk"
)

// TestServerStoreDegradedServing pins graceful degradation of the cold
// tier: when the -index-dir directory stops being writable mid-run, the
// server must keep serving byte-identical results from in-memory
// builds, the store-error counters must count the failures, and no
// .orix-tmp-* litter may be left behind. The store is a cache below a
// cache — losing it degrades durability, never correctness.
func TestServerStoreDegradedServing(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	storeDir := filepath.Join(t.TempDir(), "ixstore")
	store, err := ixdisk.NewDirStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{MaxConcurrent: 2, Store: store})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est3", est3, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want2 := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	want3 := serialORIS(t, est1, est3, srv.Config().RequestWorkers, false)

	// Healthy phase: the first compare builds and persists two indexes.
	status, got := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK || !bytes.Equal(got, want2) {
		t.Fatalf("healthy compare: status %d, %d bytes (want %d)", status, len(got), len(want2))
	}
	// Write-back is asynchronous; wait for both .orix files to land.
	waitFor(t, func() bool { return len(orixFiles(t, storeDir)) == 2 })

	// Degrade the store mid-run. chmod a-w is the scenario the test is
	// named for, but permission bits do not bind uid 0 — under root the
	// directory is made unreachable instead (moved aside), the other
	// way a store degrades in production (unmounted volume).
	degradedDir := storeDir
	if os.Getuid() == 0 {
		degradedDir = storeDir + ".offline"
		if err := os.Rename(storeDir, degradedDir); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := os.Chmod(storeDir, 0o555); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(storeDir, 0o755)
	}

	// A compare needing a fresh index (est3, first touch) still serves,
	// byte-identical, from a pure in-memory build.
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est3"}`)
	if status != http.StatusOK {
		t.Fatalf("degraded compare: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want3) {
		t.Fatalf("degraded compare differs from the in-memory reference (%d vs %d bytes)", len(got), len(want3))
	}
	// ... and the failed write-back is counted (DiskErrors is the
	// cache-side store-error counter; WriteBackErrors is the extension
	// path's — the CLIs sum the two as "store errors").
	waitFor(t, func() bool {
		return srv.Cache().DiskErrors()+store.WriteBackErrors() >= 1
	})

	// Already-prepared keys keep serving from the in-memory LRU.
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK || !bytes.Equal(got, want2) {
		t.Fatalf("warm compare under a degraded store: status %d", status)
	}

	// No temp litter: every failed save cleaned up after itself.
	for _, f := range tmpLitter(t, degradedDir) {
		t.Errorf("orphaned temp file left behind: %s", f)
	}

	// The counters surface over /stats too, so an operator can see the
	// degradation without reading logs.
	st := srv.StatsSnapshot()
	if st.Cache.DiskErrors+st.Store.WriteBackErrors < 1 {
		t.Errorf("stats do not surface the store errors: %+v", st.Cache)
	}
}

func orixFiles(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, "*.orix"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func tmpLitter(t *testing.T, dir string) []string {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(dir, ".orix-tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}
