package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// streamPost issues a compare POST and returns the live response for
// incremental reading (the caller closes it).
func streamPost(t *testing.T, url, path, body, accept string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamGet opens a GET (job results) for incremental reading.
func streamGet(t *testing.T, url, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(url + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// feedGate pushes tokens into the server's stream gate until stop is
// closed, so a gated stream runs freely.
func feedGate(gate chan struct{}, stop chan struct{}) {
	for {
		select {
		case gate <- struct{}{}:
		case <-stop:
			return
		}
	}
}

func TestServerStreamedCompareMatchesBuffered(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, engine := range []string{"oris", "blat", "blastn"} {
		t.Run(engine, func(t *testing.T) {
			body := fmt.Sprintf(`{"db":"est1","query":"est2","engine":%q}`, engine)
			status, want := postCompare(t, ts.URL, body)
			if status != http.StatusOK {
				t.Fatalf("buffered compare: status %d: %s", status, want)
			}

			// Header form and JSON-field form must behave identically.
			for _, via := range []string{"accept", "field"} {
				sb, accept := body, ""
				if via == "accept" {
					accept = m8StreamAccept
				} else {
					sb = strings.TrimSuffix(body, "}") + `,"stream":true}`
				}
				resp := streamPost(t, ts.URL, "/compare", sb, accept)
				got, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("reading stream (via %s): %v", via, err)
				}
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("stream status %d: %s", resp.StatusCode, got)
				}
				if h := resp.Header.Get("X-Scoris-Stream"); h != "m8" {
					t.Errorf("X-Scoris-Stream = %q, want m8", h)
				}
				if tr := resp.Trailer.Get(streamStatusTrailer); tr != streamStatusComplete {
					t.Errorf("trailer = %q, want %q", tr, streamStatusComplete)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("streamed bytes (via %s) differ from buffered: %d vs %d bytes",
						via, len(got), len(want))
				}
			}
		})
	}
}

func TestServerStreamRejectsJSONFormat(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, body := postCompare(t, ts.URL, `{"db":"est1","query":"est2","format":"json","stream":true}`)
	if status != http.StatusBadRequest {
		t.Fatalf("stream+json accepted: status %d: %s", status, body)
	}
}

// TestServerStreamedCompareEmitsEarly pins the whole point of the
// stream path: m8 bytes reach the client while the engine still has
// query sequences to go.
func TestServerStreamedCompareEmitsEarly(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{StreamBuffer: 1})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	gate := make(chan struct{})
	srv.testStreamGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, want := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK {
		t.Fatalf("buffered compare: %d", status)
	}
	before := srv.compares.Load() // the buffered oracle above counted

	// Let the first 10 of est2's 43 query groups through — the first
	// m8 line lives at query seq 8 (deterministic banks), so bytes are
	// guaranteed flushed while 33 groups are still pending. Feed
	// before the request: a streamed response opens (headers, first
	// chunk) only at its first m8 byte, so the POST itself blocks
	// until the gate lets that group through.
	go func() {
		for i := 0; i < 10; i++ {
			gate <- struct{}{}
		}
	}()
	resp := streamPost(t, ts.URL, "/compare", `{"db":"est1","query":"est2","stream":true}`, "")
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first streamed line: %v", err)
	}
	if srv.compares.Load() != before {
		t.Fatal("compare already finished when the first byte arrived; stream did not start early")
	}
	if !strings.Contains(first, "\t") {
		t.Fatalf("first streamed line is not m8: %q", first)
	}

	// Open the gate and drain; the total must equal the buffered run.
	stop := make(chan struct{})
	// background: feedGate returns once the deferred close(stop) fires.
	go feedGate(gate, stop)
	defer close(stop)
	rest, err := io.ReadAll(br)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]byte(first), rest...)
	if !bytes.Equal(got, want) {
		t.Fatalf("streamed bytes differ from buffered: %d vs %d bytes", len(got), len(want))
	}
	if tr := resp.Trailer.Get(streamStatusTrailer); tr != streamStatusComplete {
		t.Errorf("trailer = %q", tr)
	}
}

// TestServerStreamedCompareClientDisconnect: a client that vanishes
// mid-stream must free the worker slot and count as abandoned, and the
// engine must stop (the gate stays blocked; only ctx cancellation can
// release it).
func TestServerStreamedCompareClientDisconnect(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 1, StreamBuffer: 1})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	gate := make(chan struct{})
	srv.testStreamGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pace the stream past its first m8 line (query seq 8 of 43), so
	// the disconnect lands mid-body with the engine parked on the gate.
	// Fed before the POST: the response opens at its first m8 byte.
	go func() {
		for i := 0; i < 10; i++ {
			gate <- struct{}{}
		}
	}()
	resp := streamPost(t, ts.URL, "/compare", `{"db":"est1","query":"est2","stream":true}`, "")
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first streamed line: %v", err)
	}
	resp.Body.Close()

	// The engine is parked on the gate; only the request context going
	// away can unblock it. Slot free + abandoned counted = the server
	// noticed and cleaned up.
	waitFor(t, func() bool { return srv.admitted.Load() == 0 })
	if got := srv.abandoned.Load(); got != 1 {
		t.Errorf("abandoned = %d, want 1", got)
	}
	if got := srv.compares.Load(); got != 0 {
		t.Errorf("compares = %d after torn stream, want 0", got)
	}
}

func TestServerBatchCompare(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	srv.RegisterBank("est3", est3, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The oracle: each query through the single-compare path.
	_, m8est2 := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	_, m8est3 := postCompare(t, ts.URL, `{"db":"est1","query":"est3"}`)
	want := append(append([]byte(nil), m8est2...), m8est3...)

	admissionsBefore := srv.admissions.Load()
	resp := streamPost(t, ts.URL, "/compare/batch", `{"db":"est1","queries":["est2","est3"]}`, "")
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("batch m8 differs from concatenated single compares: %d vs %d bytes", len(got), len(want))
	}
	if d := srv.admissions.Load() - admissionsBefore; d != 1 {
		t.Errorf("batch consumed %d admissions, want 1", d)
	}
	if got := srv.batches.Load(); got != 1 {
		t.Errorf("batches = %d, want 1", got)
	}
}

func TestServerBatchBlastnSingleCheckout(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	srv.RegisterBank("est3", est3, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := streamPost(t, ts.URL, "/compare/batch",
		`{"db":"est1","queries":["est2","est3","est2"],"engine":"blastn"}`, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	if got := srv.sessions.checkouts.Load(); got != 1 {
		t.Errorf("blastn batch used %d session checkouts, want 1", got)
	}
	if got := srv.admissions.Load(); got != 1 {
		t.Errorf("blastn batch used %d admissions, want 1", got)
	}
}

func TestServerBatchJSONAndValidation(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := streamPost(t, ts.URL, "/compare/batch",
		`{"db":"est1","queries":["est2"],"format":"json"}`, "")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json batch status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("bad batch JSON: %v", err)
	}
	if len(br.Results) != 1 || br.Results[0].Query != "est2" {
		t.Fatalf("batch JSON results: %+v", br.Results)
	}

	bad := []struct{ body, why string }{
		{`{"db":"est1"}`, "no queries"},
		{`{"db":"est1","queries":[]}`, "empty queries"},
		{`{"queries":["est2"]}`, "no db"},
		{`{"db":"est1","queries":["est2"],"query":"est2"}`, "query field set"},
		{`{"db":"est1","queries":["est2"],"self":true}`, "self"},
		{`{"db":"est1","queries":["est2"],"stream":true}`, "stream"},
	}
	for _, c := range bad {
		resp := streamPost(t, ts.URL, "/compare/batch", c.body, "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.why, resp.StatusCode)
		}
	}
	resp = streamPost(t, ts.URL, "/compare/batch", `{"db":"est1","queries":["ghost"]}`, "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown query bank: status %d, want 404", resp.StatusCode)
	}
}

// jobStatusOf polls GET /jobs/{id}.
func jobStatusOf(t *testing.T, url, id string) (jobStatus, int) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode
}

func TestServerJobLifecycle(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, want := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)

	resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
	var created jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job create status %d", resp.StatusCode)
	}
	if created.ID == "" || created.SeqsTotal != est2.NumSeqs() {
		t.Fatalf("created job: %+v", created)
	}

	waitFor(t, func() bool {
		st, _ := jobStatusOf(t, ts.URL, created.ID)
		return st.State == string(jobDone)
	})
	st, _ := jobStatusOf(t, ts.URL, created.ID)
	if st.SeqsDone != st.SeqsTotal || st.Bytes != len(want) {
		t.Errorf("done job progress: %+v (want %d bytes)", st, len(want))
	}

	// The result endpoint replays the finished job byte-for-byte.
	rr := streamGet(t, ts.URL, "/jobs/"+created.ID+"/result")
	got, err := io.ReadAll(rr.Body)
	rr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("job result differs from buffered compare: %d vs %d bytes", len(got), len(want))
	}
	if tr := rr.Trailer.Get(streamStatusTrailer); tr != streamStatusComplete {
		t.Errorf("job result trailer = %q", tr)
	}
	if js := srv.jobStats(); js.Completed != 1 || js.Created != 1 {
		t.Errorf("job stats: %+v", js)
	}

	// DELETE discards; the id stops resolving.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+created.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dr.Body)
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("job delete status %d", dr.StatusCode)
	}
	if _, code := jobStatusOf(t, ts.URL, created.ID); code != http.StatusNotFound {
		t.Errorf("deleted job still resolves: %d", code)
	}
}

// TestServerJobResultFollowsLive attaches a result reader to a running
// job and asserts it receives the bytes incrementally, sealed complete.
func TestServerJobResultFollowsLive(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	gate := make(chan struct{})
	srv.testStreamGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, want := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	// postCompare does not consume the gate (it is not streamed, and
	// jobs gate only in runJob) — but a gated server paces ALL gated
	// paths; the buffered compare above used none. Create the job now.
	resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
	var created jobStatus
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()

	// Attach the follower while the job is still gated (not finished).
	rr := streamGet(t, ts.URL, "/jobs/"+created.ID+"/result")
	defer rr.Body.Close()

	// Pace some progress, then let it run free.
	for i := 0; i < 8; i++ {
		gate <- struct{}{}
	}
	st, _ := jobStatusOf(t, ts.URL, created.ID)
	if st.State != string(jobRunning) || st.SeqsDone == 0 {
		t.Fatalf("mid-flight job status: %+v", st)
	}
	stop := make(chan struct{})
	// background: feedGate returns once the deferred close(stop) fires.
	go feedGate(gate, stop)
	defer close(stop)

	got, err := io.ReadAll(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("followed job result differs: %d vs %d bytes", len(got), len(want))
	}
	if tr := rr.Trailer.Get(streamStatusTrailer); tr != streamStatusComplete {
		t.Errorf("follower trailer = %q", tr)
	}
}

func TestServerJobCancel(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	gate := make(chan struct{})
	srv.testStreamGate = gate
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
	var created jobStatus
	json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()

	// Pace one group so the job is demonstrably running, attach a
	// follower, then cancel: the follower must get a torn trailer, the
	// slot must free, the job must count cancelled.
	gate <- struct{}{}
	rr := streamGet(t, ts.URL, "/jobs/"+created.ID+"/result")
	defer rr.Body.Close()

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+created.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dr.Body)
	dr.Body.Close()

	if _, err := io.ReadAll(rr.Body); err != nil {
		t.Fatalf("reading cancelled job result: %v", err)
	}
	if tr := rr.Trailer.Get(streamStatusTrailer); tr != "cancelled" {
		t.Errorf("cancelled job trailer = %q, want cancelled", tr)
	}
	waitFor(t, func() bool { return srv.jobsCancelled.Load() == 1 })
	waitFor(t, func() bool { return len(srv.sem) == 0 })
}

func TestServerJobRegistryBound(t *testing.T) {
	est1, est2, _ := testBanks(t)
	// MaxConcurrent 1 + a held compare slot keeps jobs queued, so the
	// registry fills deterministically.
	srv := New(Config{MaxConcurrent: 1, MaxJobs: 2})
	srv.RegisterBank("est1", est1, true)
	srv.RegisterBank("est2", est2, false)
	hold := make(chan struct{})
	srv.testHoldCompare = hold
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the only worker slot.
	// background: the compare returns once close(hold) releases it, and
	// the deferred ts.Close waits for the handler to finish.
	go func() {
		resp, err := http.Post(ts.URL+"/compare", "application/json",
			strings.NewReader(`{"db":"est1","query":"est2"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, func() bool { return len(srv.sem) == 1 })

	for i := 0; i < 2; i++ {
		resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d create status %d", i, resp.StatusCode)
		}
	}
	resp := streamPost(t, ts.URL, "/jobs", `{"db":"est1","query":"est2"}`, "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job past MaxJobs: status %d, want 429", resp.StatusCode)
	}
	if js := srv.jobStats(); js.Queued != 2 || js.Held != 2 {
		t.Errorf("job stats with full registry: %+v", js)
	}
	close(hold) // release the held compare; queued jobs drain
	waitFor(t, func() bool { return srv.jobStats().Completed == 2 })
}
