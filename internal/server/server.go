// Package server is the long-lived comparison service of the
// reproduction: scorisd. The paper's premise is *intensive* comparison
// — many query banks thrown against long-lived subject banks — and the
// prepared-bank substrate (ixcache single-flight builds, the ixdisk
// mmap store with append-aware reuse) exists precisely so index builds
// amortize across comparisons. This package turns that substrate into a
// server: banks are registered once (POST /banks), comparisons are
// served from prepared indexes (POST /compare) with zero per-request
// builds after first touch, and the cache/store counters that prove the
// amortization are surfaced live (GET /stats).
//
// # Request lifecycle
//
// A compare request passes admission control first: the server runs at
// most MaxConcurrent comparisons at once and lets at most QueueDepth
// more wait; anything beyond that is rejected immediately with 429 so
// overload degrades into fast, explicit backpressure instead of
// unbounded queueing. An admitted request resolves its banks from the
// registry, clamps its Workers to the per-request cap (one request
// cannot monopolize the machine), and runs its engine:
//
//   - oris — core.Prepare against the shared ixcache (single-flight:
//     concurrent first touches of one bank share one build; a store
//     tier makes restarts warm) then core.CompareWithIndex;
//   - blat — the cached non-overlapping tile index of the db bank,
//     then blat.CompareWithIndex;
//   - blastn — a blastn.Session checked out of the per-(db, options)
//     session pool for the duration of the compare (a Session is not
//     concurrent-safe; its atomic in-use guard is the backstop).
//
// Results are written as BLAST -m 8 tabular text — byte-identical to
// the scoris CLI's output for the same (bank, options) pair, which the
// stress tests and the CI service job assert — or as JSON.
//
// Graceful shutdown is the standard http.Server.Shutdown contract: the
// listener stops accepting, in-flight compares run to completion, and
// cmd/scorisd exits 0 only after the drain.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/fasta"
	"repro/internal/httpapi"
	"repro/internal/ixcache"
	"repro/internal/ixdisk"
	"repro/internal/stats"
	"repro/internal/tabular"
)

// Config bounds the server's concurrency and wires its storage tiers.
type Config struct {
	// MaxConcurrent is the comparison worker-pool size: at most this
	// many compares run at once. Non-positive means GOMAXPROCS.
	MaxConcurrent int
	// QueueDepth is how many admitted requests may wait for a worker
	// beyond the MaxConcurrent running ones before new requests are
	// rejected with 429. Zero means the default (2 × MaxConcurrent);
	// negative means no queue at all.
	QueueDepth int
	// RequestWorkers caps the Workers option of any single compare, so
	// one request cannot monopolize every core. Non-positive means
	// max(1, GOMAXPROCS / MaxConcurrent) — full parallelism for a lone
	// request shape, fair shares under a full pool.
	RequestWorkers int
	// CacheEntries bounds the shared index cache (non-positive: the
	// ixcache default).
	CacheEntries int
	// MaxIdleSessions bounds the idle blastn sessions kept per
	// (db bank, options) key. Non-positive means MaxConcurrent.
	MaxIdleSessions int
	// MaxBanks bounds the registry: each registered bank pins its full
	// sequence data in memory, so without a bound query-bank churn is
	// a slow OOM. Registration past the bound is refused; DELETE
	// /banks releases spent banks. Non-positive means DefaultMaxBanks.
	MaxBanks int
	// RequestTimeout, when positive, is the server-side deadline on
	// each compare: a request that has not produced its result within
	// the deadline is answered 504 (with "timed_out" set in the JSON
	// error body, so clients and the fleet router can tell a server
	// deadline from other failures). The compare itself cannot be
	// interrupted mid-engine, so it runs to completion in the
	// background and only then releases its worker slot — the slot is
	// never leaked, but a server sized for pathological inputs should
	// pair this with MaxConcurrent headroom. Zero (the default)
	// preserves the historical behavior: no server-side deadline.
	RequestTimeout time.Duration
	// StreamBuffer bounds the per-request group buffer of a streamed
	// compare: the engine may run at most this many finished query
	// sequences ahead of what the client has consumed before its next
	// emit blocks — the backpressure that keeps a slow reader from
	// forcing the server to buffer the whole result after all.
	// Non-positive means DefaultStreamBuffer.
	StreamBuffer int
	// MaxJobs bounds the async job registry: queued, running, and
	// finished-but-unretrieved jobs all count (a finished job holds its
	// result bytes until DELETE). POST /jobs past the bound is refused
	// with 429. Non-positive means DefaultMaxJobs.
	MaxJobs int
	// Store, when non-nil, is attached as the cache's persistent tier:
	// index builds survive restarts, and banks registered with "db"
	// are MarkDB'd into it.
	Store *ixdisk.DirStore
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = 2 * c.MaxConcurrent
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.RequestWorkers <= 0 {
		c.RequestWorkers = runtime.GOMAXPROCS(0) / c.MaxConcurrent
		if c.RequestWorkers < 1 {
			c.RequestWorkers = 1
		}
	}
	if c.MaxIdleSessions <= 0 {
		c.MaxIdleSessions = c.MaxConcurrent
	}
	if c.MaxBanks <= 0 {
		c.MaxBanks = DefaultMaxBanks
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = DefaultStreamBuffer
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = DefaultMaxJobs
	}
	return c
}

// DefaultMaxBanks is the registry bound when Config.MaxBanks is unset.
const DefaultMaxBanks = 1024

// DefaultStreamBuffer is the per-request streamed-group buffer when
// Config.StreamBuffer is unset: small enough that a stalled client
// stalls the engine within a few query sequences, large enough to ride
// over flush latency.
const DefaultStreamBuffer = 4

// DefaultMaxJobs is the async job registry bound when Config.MaxJobs is
// unset.
const DefaultMaxJobs = 32

// Server is the comparison service. Create with New, mount Handler on
// an http.Server. All methods are safe for concurrent use.
type Server struct {
	cfg      Config
	cache    *ixcache.Cache
	store    *ixdisk.DirStore
	sessions *sessionPool

	mu    sync.RWMutex
	banks map[string]*bankEntry // guardedby: mu

	// sem has MaxConcurrent slots: holding one is the right to run a
	// compare. admitted counts running + waiting requests; admission
	// rejects when it would exceed MaxConcurrent + QueueDepth.
	sem      chan struct{}
	admitted atomic.Int64

	requests   atomic.Int64 // HTTP requests seen (all endpoints)
	compares   atomic.Int64 // compares completed successfully
	batches    atomic.Int64 // batch requests completed successfully
	admissions atomic.Int64 // cumulative successful admissions (slots granted)
	rejected   atomic.Int64 // compares refused by admission control
	abandoned  atomic.Int64 // compares whose client vanished before the result
	timedOut   atomic.Int64 // compares answered 504 by RequestTimeout

	// Async job registry (POST /jobs); see jobs.go.
	jobMu         sync.Mutex
	jobs          map[string]*job // guardedby: jobMu
	jobSeq        atomic.Int64
	jobsCreated   atomic.Int64
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64

	// draining flips /readyz to 503 the moment graceful shutdown
	// begins, so a fleet router stops routing here before the listener
	// closes (in-flight and already-accepted compares still complete).
	draining atomic.Bool

	gcMu   sync.Mutex
	lastGC *ixdisk.GCStats // guardedby: gcMu

	// testHoldCompare, when non-nil, is received from inside the
	// admitted section of every compare — the hook that lets tests park
	// a compare mid-flight deterministically (admission overflow and
	// graceful-drain tests). Set before the server handles traffic.
	testHoldCompare chan struct{}

	// testStreamGate, when non-nil, is received before every streamed
	// group emit (racing the request context) — the hook that lets
	// tests pace a stream group by group and park the engine mid-stream
	// deterministically. Set before the server handles traffic.
	testStreamGate chan struct{}
}

type bankEntry struct {
	bank *bank.Bank
	crc  uint64 // content identity, for idempotent re-registration
	db   bool
}

// New returns a ready server. The cache (and store tier, if
// configured) is shared by every request for the server's lifetime —
// that sharing is what makes the service "prepared": each
// (bank, options) index is built at most once per process, and with a
// store at most once ever.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cache := ixcache.New(cfg.CacheEntries)
	if cfg.Store != nil {
		cache.SetStore(cfg.Store)
	}
	return &Server{
		cfg:      cfg,
		cache:    cache,
		store:    cfg.Store,
		sessions: newSessionPool(cfg.MaxIdleSessions),
		banks:    make(map[string]*bankEntry),
		jobs:     make(map[string]*job),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
	}
}

// Cache exposes the shared index cache (tests assert its counters).
func (s *Server) Cache() *ixcache.Cache { return s.cache }

// Config returns the effective configuration, defaults filled in.
func (s *Server) Config() Config { return s.cfg }

// RegisterBank adds b to the registry under name. Registering the same
// content under the same name again is idempotent; different content
// under a taken name is refused, and so is growing the registry past
// MaxBanks — each entry pins the bank's full sequence data in memory,
// so an unbounded registry is a slow OOM under query-bank churn
// (deregister spent query banks with DELETE /banks, or raise the cap).
// db marks the bank as a long-lived database bank: with a store
// configured it is MarkDB'd so DBOnly save policies persist its index.
func (s *Server) RegisterBank(name string, b *bank.Bank, db bool) error {
	if name == "" {
		return fmt.Errorf("server: bank name must be non-empty")
	}
	crc := ixdisk.BankChecksum(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.banks[name]; ok {
		if prev.crc != crc || len(prev.bank.Data) != len(b.Data) {
			return fmt.Errorf("server: bank %q already registered with different content", name)
		}
		// Idempotent re-registration; allow a later call to upgrade the
		// bank to db status (never to silently downgrade it).
		if db && !prev.db {
			prev.db = true
			if s.store != nil {
				s.store.MarkDB(prev.bank)
			}
		}
		return nil
	}
	if len(s.banks) >= s.cfg.MaxBanks {
		return fmt.Errorf("server: bank registry full (%d banks); DELETE spent banks or raise MaxBanks", len(s.banks))
	}
	s.banks[name] = &bankEntry{bank: b, crc: crc, db: db}
	if db && s.store != nil {
		s.store.MarkDB(b)
	}
	return nil
}

// DeregisterBank removes name from the registry, releasing the
// server's reference to the bank (and through the cache's LRU,
// eventually its indexes). Compares already in flight hold their own
// bank pointer and are unaffected — banks are immutable. Removing an
// unknown name reports false.
func (s *Server) DeregisterBank(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.banks[name]; !ok {
		return false
	}
	delete(s.banks, name)
	return true
}

// lookupBank resolves a registered bank by name.
func (s *Server) lookupBank(name string) (*bank.Bank, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.banks[name]
	if !ok {
		return nil, false
	}
	return e.bank, true
}

// errAtCapacity reports an admission refusal (429 to the client).
var errAtCapacity = errors.New("server at capacity")

// admit implements admission control: a request either gets a worker
// slot (possibly after waiting in the bounded queue) and a release
// function, or fails — with errAtCapacity when the queue is full
// (refusal is O(1): overload answers immediately instead of stacking
// requests), or with ctx.Err() when the request was abandoned or timed
// out while queued. A queued request that stops waiting frees its queue
// slot immediately, so an abandoned client never holds capacity it will
// not use.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if n := s.admitted.Add(1); n > int64(s.cfg.MaxConcurrent+s.cfg.QueueDepth) {
		s.admitted.Add(-1)
		s.rejected.Add(1)
		return nil, errAtCapacity
	}
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.admitted.Add(-1)
		return nil, ctx.Err()
	}
	s.admissions.Add(1)
	return func() {
		<-s.sem
		s.admitted.Add(-1)
	}, nil
}

// SetDraining flips the /readyz readiness signal; scorisd sets it the
// moment a shutdown signal arrives, before http.Server.Shutdown closes
// the listener, so routers drain traffic away first.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server has begun graceful shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP mux. Every route is served under
// the versioned /v1/ prefix (the stable surface) and, identically, at
// its bare legacy path — a deprecated alias that sets a Deprecation
// header so pre-versioning clients keep working while being told to
// move (see internal/httpapi).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/banks", s.countRequests(s.handleBanks))
	mux.HandleFunc("/compare", s.countRequests(s.handleCompare))
	mux.HandleFunc("/compare/batch", s.countRequests(s.handleCompareBatch))
	mux.HandleFunc("/jobs", s.countRequests(s.handleJobs))
	mux.HandleFunc("/jobs/", s.countRequests(s.handleJob))
	mux.HandleFunc("/stats", s.countRequests(s.handleStats))
	mux.HandleFunc("/gc", s.countRequests(s.handleGC))
	mux.HandleFunc("/healthz", s.countRequests(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/readyz", s.countRequests(s.handleReadyz))
	return httpapi.Versioned(mux)
}

// handleReadyz is the readiness probe: 200 while the server can take
// new compare traffic, 503 the moment it cannot — because graceful
// drain has begun, or because the configured store directory is gone
// (the process still serves from memory, but a router should prefer a
// replica whose cold tier works). Liveness stays /healthz: a draining
// server is alive but not ready.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if s.store != nil {
		if _, err := os.Stat(s.store.Dir()); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"ready": false, "reason": fmt.Sprintf("index store: %v", err)})
			return
		}
	}
	json.NewEncoder(w).Encode(map[string]any{"ready": true})
}

func (s *Server) countRequests(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		h(w, r)
	}
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// bankRequest registers a bank. Either Path names a FASTA file readable
// by the server process, or the request body carries FASTA text (any
// non-JSON content type) with name/db taken from query parameters.
type bankRequest struct {
	// Name the bank is registered under (compare requests refer to it).
	Name string `json:"name"`
	// Path of a FASTA file on the server's filesystem.
	Path string `json:"path"`
	// DB marks the long-lived database side of the workload.
	DB bool `json:"db"`
}

// bankInfo describes one registered bank.
type bankInfo struct {
	Name      string  `json:"name"`
	Sequences int     `json:"sequences"`
	Bases     int     `json:"bases"`
	Mbp       float64 `json:"mbp"`
	DB        bool    `json:"db"`
}

func (s *Server) handleBanks(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		infos := make([]bankInfo, 0, len(s.banks))
		for name, e := range s.banks {
			infos = append(infos, bankInfo{
				Name: name, Sequences: e.bank.NumSeqs(),
				Bases: e.bank.TotalBases(), Mbp: e.bank.Mbp(), DB: e.db,
			})
		}
		s.mu.RUnlock()
		// The bank table is a map: sort so the listing is
		// byte-deterministic.
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(infos)
	case http.MethodPost:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "reading bank request: %v", err)
			return
		}
		req, recs, isFasta, err := parseBankBody(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		var b *bank.Bank
		if isFasta {
			// Raw FASTA body: ?name= is required, ?db=1 optional.
			req.Name = r.URL.Query().Get("name")
			req.DB = r.URL.Query().Get("db") != "" && r.URL.Query().Get("db") != "0"
			if req.Name == "" {
				httpError(w, http.StatusBadRequest, "FASTA-body registration needs a ?name= parameter")
				return
			}
			b = bank.New(req.Name, recs)
		} else {
			if req.Name == "" {
				req.Name = req.Path
			}
			b, err = bank.FromFile(req.Name, req.Path)
			if err != nil {
				httpError(w, http.StatusBadRequest, "loading bank: %v", err)
				return
			}
		}
		if err := s.RegisterBank(req.Name, b, req.DB); err != nil {
			httpError(w, http.StatusConflict, "%v", err)
			return
		}
		// Re-read the entry: an idempotent re-registration answers with
		// the bank and db status that actually serve (RegisterBank may
		// have kept the original pointer and never downgrades db).
		info, _ := s.bankInfoFor(req.Name)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(info)
	case http.MethodDelete:
		// DELETE /banks?name=x releases a spent bank (typically a
		// one-shot query bank) so the registry stays bounded under
		// churn. In-flight compares are unaffected; see DeregisterBank.
		name := r.URL.Query().Get("name")
		if name == "" {
			httpError(w, http.StatusBadRequest, "DELETE needs a ?name= parameter")
			return
		}
		if !s.DeregisterBank(name) {
			httpError(w, http.StatusNotFound, "unknown bank %q", name)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"deleted": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "use GET, POST, or DELETE")
	}
}

// parseBankBody dispatches a POST /banks body: it is either a JSON
// bankRequest or raw FASTA text, told apart by the first non-blank byte
// ('>' opens a FASTA header, '{' a JSON object) rather than the
// Content-Type header, so plain `curl -d '{...}'` works without header
// ceremony. A FASTA body returns its parsed records (isFasta true); a
// JSON body returns the request with Path set — the caller loads the
// file. Shared with FuzzParseBankBody.
//
//scorislint:validator
func parseBankBody(body []byte) (req bankRequest, recs []*fasta.Record, isFasta bool, err error) {
	if !bytes.HasPrefix(bytes.TrimLeft(body, " \t\r\n"), []byte(">")) {
		if err := json.Unmarshal(body, &req); err != nil {
			return req, nil, false, fmt.Errorf("bad bank request: %v", err)
		}
		if req.Path == "" {
			return req, nil, false, errors.New("bank request needs a path (or POST FASTA text with a ?name= parameter)")
		}
		return req, nil, false, nil
	}
	recs, err = fasta.ParseAll(body)
	if err != nil {
		return req, nil, true, fmt.Errorf("parsing FASTA body: %v", err)
	}
	if len(recs) == 0 {
		return req, nil, true, errors.New("FASTA body holds no sequences")
	}
	return req, recs, true, nil
}

// bankInfoFor snapshots the registry entry for name.
func (s *Server) bankInfoFor(name string) (bankInfo, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.banks[name]
	if !ok {
		return bankInfo{}, false
	}
	return bankInfo{
		Name: name, Sequences: e.bank.NumSeqs(),
		Bases: e.bank.TotalBases(), Mbp: e.bank.Mbp(), DB: e.db,
	}, true
}

// compareRequest is one comparison. Optional fields are pointers so
// "absent" is distinguishable from a zero value; absent fields take the
// engine's defaults — the same defaults the scoris CLI flags carry, so
// a default-shaped request is byte-identical to a default CLI run.
type compareRequest struct {
	// DB and Query name registered banks: DB is the subject/database
	// side (the paper's bank 1), Query the query side.
	DB    string `json:"db"`
	Query string `json:"query"`
	// Engine: "oris" (default), "blat", or "blastn".
	Engine string `json:"engine"`
	// Format: "m8" (default; BLAST -m 8 tabular text) or "json".
	Format string `json:"format"`
	// Self compares the db bank against itself, reporting the upper
	// triangle only (oris engine; Query must be empty or equal DB).
	Self bool `json:"self"`
	// Stream requests chunked m8 delivery: each query sequence's
	// alignments are written (and flushed) as they finish, instead of
	// after the whole compare. Equivalent to sending
	// "Accept: text/x-m8-stream". m8 format only.
	Stream bool `json:"stream"`

	W           *int     `json:"w"`
	MaxEValue   *float64 `json:"max_evalue"`
	BothStrands *bool    `json:"both_strands"`
	Dust        *bool    `json:"dust"`
	Workers     *int     `json:"workers"`
	Asymmetric  *bool    `json:"asymmetric"`
	Match       *int     `json:"match"`
	Mismatch    *int     `json:"mismatch"`
	GapOpen     *int     `json:"gap_open"`
	GapExtend   *int     `json:"gap_extend"`
}

// compareResponse is the JSON format of a compare result.
type compareResponse struct {
	Engine     string           `json:"engine"`
	DB         string           `json:"db"`
	Query      string           `json:"query"`
	Alignments []tabular.Record `json:"alignments"`
}

// clampWorkers applies the per-request parallelism cap: unset (or
// "all cores", the CLI's 0) becomes the server's fair share, explicit
// requests are honored up to that cap.
func (s *Server) clampWorkers(req *int) int {
	if req == nil || *req <= 0 || *req > s.cfg.RequestWorkers {
		return s.cfg.RequestWorkers
	}
	return *req
}

// parseCompareRequest parses a POST /compare JSON body and applies the
// structural validation that needs no registry: self/query exclusivity,
// known format, stream×format compatibility. Shared with
// FuzzParseCompareRequest.
//
//scorislint:validator
func parseCompareRequest(body []byte, accept string) (compareRequest, error) {
	var req compareRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad compare request: %v", err)
	}
	if strings.Contains(accept, m8StreamAccept) {
		req.Stream = true
	}
	if req.Self {
		if req.Query != "" && req.Query != req.DB {
			return req, fmt.Errorf("self-comparison takes no separate query bank (query %q given)", req.Query)
		}
		req.Query = req.DB
	}
	if req.DB == "" || req.Query == "" {
		return req, errors.New("compare request needs db and query bank names")
	}
	switch req.Format {
	case "", "m8", "json":
	default:
		return req, fmt.Errorf("unknown format %q (use m8 or json)", req.Format)
	}
	if req.Stream && req.Format == "json" {
		return req, errors.New("streamed delivery is m8-only (drop format json or stream)")
	}
	return req, nil
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading compare request: %v", err)
		return
	}
	req, err := parseCompareRequest(body, r.Header.Get("Accept"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	db, ok := s.lookupBank(req.DB)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks)", req.DB)
		return
	}
	query, ok := s.lookupBank(req.Query)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks)", req.Query)
		return
	}

	// The request context carries both failure signals admission and
	// the compare must observe: client disconnect (the router gave up,
	// or curl was ^C'd) and the server-side RequestTimeout deadline.
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	release, err := s.admit(ctx)
	if err == errAtCapacity {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"server at capacity (%d running, %d queued); retry",
			s.cfg.MaxConcurrent, s.cfg.QueueDepth)
		return
	}
	if err != nil {
		// Gave up while queued: the queue slot is already free.
		s.finishCancelled(w, ctx)
		return
	}

	if req.Stream {
		s.streamCompare(ctx, w, db, query, &req, release)
		return
	}

	// The compare runs in its own goroutine holding the worker slot,
	// releasing it only when the engine actually returns — a timed-out
	// compare cannot be interrupted mid-engine, but its slot is never
	// leaked. The handler waits for whichever comes first: the result,
	// or the context giving up on it.
	type compareOutcome struct {
		recs []tabular.Record
		err  error
	}
	done := make(chan compareOutcome, 1)
	go func() {
		defer release()
		if hold := s.testHoldCompare; hold != nil {
			<-hold
		}
		// A request cancelled between admission and here (abandoned in
		// the queue's last moments, or already past its deadline) must
		// not burn a worker slot on a result nobody reads.
		if err := ctx.Err(); err != nil {
			done <- compareOutcome{nil, err}
			return
		}
		recs, err := s.runCompare(db, query, &req)
		done <- compareOutcome{recs, err}
	}()

	var recs []tabular.Record
	select {
	case out := <-done:
		if out.err != nil {
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				s.finishCancelled(w, ctx)
				return
			}
			httpError(w, http.StatusBadRequest, "%v", out.err)
			return
		}
		recs = out.recs
	case <-ctx.Done():
		s.finishCancelled(w, ctx)
		return
	}
	s.compares.Add(1)

	if req.Format == "json" {
		w.Header().Set("Content-Type", "application/json")
		if recs == nil {
			recs = []tabular.Record{}
		}
		json.NewEncoder(w).Encode(compareResponse{
			Engine: engineName(req.Engine), DB: req.DB, Query: req.Query,
			Alignments: recs,
		})
		return
	}
	// m8: the exact byte stream the scoris/goblastn CLIs write.
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	tabular.Write(w, recs)
}

// finishCancelled answers a compare that will not produce a result:
// 504 with a distinct machine-readable body when the server-side
// RequestTimeout expired, or a silent close (counted as abandoned) when
// the client itself disconnected — there is nobody left to answer.
func (s *Server) finishCancelled(w http.ResponseWriter, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.timedOut.Add(1)
		writeTimeoutBody(w, s.cfg.RequestTimeout)
		return
	}
	s.abandoned.Add(1)
}

// writeTimeoutBody answers 504 with the machine-readable timed_out
// marker clients and the fleet router key on.
func writeTimeoutBody(w http.ResponseWriter, d time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusGatewayTimeout)
	json.NewEncoder(w).Encode(map[string]any{
		"error":     fmt.Sprintf("compare exceeded the server's request timeout (%s)", d),
		"timed_out": true,
	})
}

func engineName(e string) string {
	if e == "" {
		return "oris"
	}
	return e
}

// orisOptions builds the core.Options a request asks for, with the
// server's worker clamp applied.
func (s *Server) orisOptions(req *compareRequest) core.Options {
	opt := core.DefaultOptions()
	applyCommon(&opt.W, &opt.MaxEValue, &opt.Dust, &opt.Scoring, req)
	if req.BothStrands != nil && *req.BothStrands {
		opt.Strand = core.BothStrands
	}
	if req.Asymmetric != nil && *req.Asymmetric {
		opt.W = 10
		opt.Asymmetric = true
	}
	opt.Workers = s.clampWorkers(req.Workers)
	opt.SkipSelfPairs = req.Self
	return opt
}

// blatOptions validates and builds the blat.Options a request asks for.
// Result-changing options an engine does not implement are refused, not
// silently dropped — a 200 carrying half the strands the client asked
// for would be a correctness bug in HTTP form. (workers stays accepted
// everywhere: parallelism is the server's scheduling decision, never a
// result change.)
func blatOptions(req *compareRequest) (blat.Options, error) {
	var opt blat.Options
	if req.Self {
		return opt, fmt.Errorf("self-comparison is an oris-engine mode")
	}
	if req.BothStrands != nil && *req.BothStrands {
		return opt, fmt.Errorf("the blat engine searches a single strand only (drop both_strands or use engine oris/blastn)")
	}
	if req.Asymmetric != nil && *req.Asymmetric {
		return opt, fmt.Errorf("asymmetric half-word indexing is an oris-engine mode")
	}
	opt = blat.DefaultOptions()
	applyCommon(&opt.W, &opt.MaxEValue, &opt.Dust, &opt.Scoring, req)
	return opt, nil
}

// blastnOptions validates and builds the blastn.Options a request asks
// for.
func blastnOptions(req *compareRequest) (blastn.Options, error) {
	var opt blastn.Options
	if req.Self {
		return opt, fmt.Errorf("self-comparison is an oris-engine mode")
	}
	if req.Asymmetric != nil && *req.Asymmetric {
		return opt, fmt.Errorf("asymmetric half-word indexing is an oris-engine mode")
	}
	opt = blastn.DefaultOptions()
	applyCommon(&opt.W, &opt.MaxEValue, &opt.Dust, &opt.Scoring, req)
	if req.BothStrands != nil {
		opt.BothStrands = *req.BothStrands
	}
	return opt, nil
}

// runCompareAligns dispatches to the selected engine and returns its
// display-sorted alignments.
func (s *Server) runCompareAligns(db, query *bank.Bank, req *compareRequest) ([]align.Alignment, error) {
	switch engineName(req.Engine) {
	case "oris":
		opt := s.orisOptions(req)
		p1, p2, err := core.Prepare(s.cache, db, query, opt)
		if err != nil {
			return nil, err
		}
		res, err := core.CompareWithIndex(p1, p2, opt)
		if err != nil {
			return nil, err
		}
		return res.Alignments, nil
	case "blat":
		opt, err := blatOptions(req)
		if err != nil {
			return nil, err
		}
		pdb := s.cache.Get(db, opt.IndexOptions())
		res, err := blat.CompareWithIndex(pdb, query, opt)
		if err != nil {
			return nil, err
		}
		return res.Alignments, nil
	case "blastn":
		opt, err := blastnOptions(req)
		if err != nil {
			return nil, err
		}
		sess, err := s.sessions.checkout(db, opt)
		if err != nil {
			return nil, err
		}
		res, err := sess.Compare(query)
		// Check the session back in on every path: a Session survives
		// a failed compare (errors are option/stats-shaped, detected
		// before the engine arrays are touched).
		s.sessions.checkin(db, opt, sess)
		if err != nil {
			return nil, err
		}
		return res.Alignments, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (use oris, blat, or blastn)", req.Engine)
	}
}

// runCompare converts runCompareAligns's output with the same tabular
// conversion the CLIs use, so the m8 bytes match the CLI byte for byte.
func (s *Server) runCompare(db, query *bank.Bank, req *compareRequest) ([]tabular.Record, error) {
	as, err := s.runCompareAligns(db, query, req)
	if err != nil {
		return nil, err
	}
	return toRecords(as, db, query), nil
}

// applyCommon copies the option fields shared by all three engines.
func applyCommon(w *int, maxE *float64, dustOn *bool, scoring *stats.Scoring, req *compareRequest) {
	if req.W != nil {
		*w = *req.W
	}
	if req.MaxEValue != nil {
		*maxE = *req.MaxEValue
	}
	if req.Dust != nil {
		*dustOn = *req.Dust
	}
	if req.Match != nil {
		scoring.Match = *req.Match
	}
	if req.Mismatch != nil {
		scoring.Mismatch = *req.Mismatch
	}
	if req.GapOpen != nil {
		scoring.GapOpen = *req.GapOpen
	}
	if req.GapExtend != nil {
		scoring.GapExtend = *req.GapExtend
	}
}

func toRecords(as []align.Alignment, db, query *bank.Bank) []tabular.Record {
	out := make([]tabular.Record, len(as))
	for i := range as {
		out[i] = tabular.FromAlignment(&as[i], db, query)
	}
	return out
}

// Stats is the /stats payload: the counters that prove (or disprove)
// the amortization story live, per tier.
type Stats struct {
	Banks int              `json:"banks"`
	Cache ixcache.Counters `json:"cache"`
	// Store is nil when no persistent tier is configured.
	Store *StoreStats `json:"store,omitempty"`
	// LastGC is the most recent store collection triggered through the
	// server (nil before the first /gc).
	LastGC   *ixdisk.GCStats `json:"last_gc,omitempty"`
	Server   ServerStats     `json:"server"`
	Sessions SessionStats    `json:"sessions"`
	Jobs     JobStats        `json:"jobs"`
}

// StoreStats are the DirStore-side counters (the cache's DiskHits /
// DiskErrors / SavesDeclined live under Cache).
type StoreStats struct {
	Extends         int64  `json:"suffix_extensions"`
	SavesDeclined   int64  `json:"saves_declined"`
	WriteBackErrors int64  `json:"write_back_errors"`
	Dir             string `json:"dir"`
}

// ServerStats count the HTTP side.
type ServerStats struct {
	Requests int64 `json:"requests"`
	Compares int64 `json:"compares"`
	Batches  int64 `json:"batches"`
	// Admissions counts worker slots ever granted — the cumulative
	// companion to the instantaneous Admitted. A batch of N queries
	// moves it by exactly 1; that delta is what proves the batch path's
	// single-admission contract.
	Admissions     int64 `json:"admissions"`
	Rejected       int64 `json:"rejected"`
	Abandoned      int64 `json:"abandoned"`
	TimedOut       int64 `json:"timed_out"`
	InFlight       int   `json:"in_flight"`
	Admitted       int64 `json:"admitted"`
	MaxConcurrent  int   `json:"max_concurrent"`
	QueueDepth     int   `json:"queue_depth"`
	RequestWorkers int   `json:"request_workers"`
	Draining       bool  `json:"draining"`
}

// JobStats count the async job subsystem.
type JobStats struct {
	Created   int64 `json:"created"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	// Held counts job records currently retained (any state); the
	// MaxJobs bound applies to this number.
	Held int `json:"held"`
}

// SessionStats count the blastn session pool.
type SessionStats struct {
	Created   int64 `json:"created"`
	Checkouts int64 `json:"checkouts"`
	Idle      int   `json:"idle"`
}

// StatsSnapshot assembles the current Stats (also used by tests
// directly, without HTTP).
func (s *Server) StatsSnapshot() Stats {
	s.mu.RLock()
	nBanks := len(s.banks)
	s.mu.RUnlock()
	st := Stats{
		Banks: nBanks,
		Cache: s.cache.Counters(),
		Server: ServerStats{
			Requests:       s.requests.Load(),
			Compares:       s.compares.Load(),
			Batches:        s.batches.Load(),
			Admissions:     s.admissions.Load(),
			Rejected:       s.rejected.Load(),
			Abandoned:      s.abandoned.Load(),
			TimedOut:       s.timedOut.Load(),
			InFlight:       len(s.sem),
			Admitted:       s.admitted.Load(),
			MaxConcurrent:  s.cfg.MaxConcurrent,
			QueueDepth:     s.cfg.QueueDepth,
			RequestWorkers: s.cfg.RequestWorkers,
			Draining:       s.draining.Load(),
		},
		Sessions: SessionStats{
			Created:   s.sessions.created.Load(),
			Checkouts: s.sessions.checkouts.Load(),
			Idle:      s.sessions.idleCount(),
		},
		Jobs: s.jobStats(),
	}
	if s.store != nil {
		st.Store = &StoreStats{
			Extends:         s.store.Extends(),
			SavesDeclined:   s.store.SavesDeclined(),
			WriteBackErrors: s.store.WriteBackErrors(),
			Dir:             s.store.Dir(),
		}
	}
	s.gcMu.Lock()
	st.LastGC = s.lastGC
	s.gcMu.Unlock()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.StatsSnapshot())
}

// handleGC runs a store collection on demand and reports it. Without a
// store the endpoint answers 404: there is nothing to collect.
func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no index store configured")
		return
	}
	st, err := s.store.GC()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "gc: %v", err)
		return
	}
	s.gcMu.Lock()
	s.lastGC = &st
	s.gcMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}
