package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/bank"
	"repro/internal/blastn"
)

// sessionKey identifies one reusable blastn.Session lineage: the
// database bank (pointer identity — registered banks are immutable and
// unique per name) and the exact engine options. blastn.Options is a
// flat comparable struct, so it can key the map directly.
type sessionKey struct {
	db  *bank.Bank
	opt blastn.Options
}

// sessionPool is the checkout pool for the non-concurrent-safe
// blastn.Session: a request checks a session out for its whole compare
// and checks it back in afterwards, so each session is owned by at most
// one goroutine at a time. The Session's own atomic in-use guard
// (blastn.Session.Compare panics on overlap) is the backstop this pool
// is designed never to trip.
//
// Sessions are created on demand — a burst of concurrent blastn
// requests against one db gets one session each, bounded by the
// server's admission control — and at most maxIdle per key are kept
// for reuse; the rest are dropped for the GC. That caps idle memory at
// maxIdle × O(len(db.Data)) per (db, options) key while still letting
// the steady state serve warm sessions with zero allocation.
type sessionPool struct {
	mu      sync.Mutex
	idle    map[sessionKey][]*blastn.Session // guardedby: mu
	maxIdle int

	created   atomic.Int64
	checkouts atomic.Int64
}

func newSessionPool(maxIdle int) *sessionPool {
	return &sessionPool{
		idle:    make(map[sessionKey][]*blastn.Session),
		maxIdle: maxIdle,
	}
}

// checkout hands the caller exclusive use of a session for (db, opt),
// reusing an idle one when available. The caller must checkin the
// session when done (on every path — the session is lost otherwise,
// which is safe but wastes the warm arrays).
func (p *sessionPool) checkout(db *bank.Bank, opt blastn.Options) (*blastn.Session, error) {
	p.checkouts.Add(1)
	k := sessionKey{db: db, opt: opt}
	p.mu.Lock()
	if ss := p.idle[k]; len(ss) > 0 {
		s := ss[len(ss)-1]
		ss[len(ss)-1] = nil
		p.idle[k] = ss[:len(ss)-1]
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	// Create outside the lock: NewSession allocates O(len(db.Data))
	// arrays and must not serialize the whole pool.
	s, err := blastn.NewSession(db, opt)
	if err != nil {
		return nil, err
	}
	p.created.Add(1)
	return s, nil
}

// checkin returns a session to the idle list, dropping it when the
// per-key idle bound is already met.
func (p *sessionPool) checkin(db *bank.Bank, opt blastn.Options, s *blastn.Session) {
	k := sessionKey{db: db, opt: opt}
	p.mu.Lock()
	if len(p.idle[k]) < p.maxIdle {
		p.idle[k] = append(p.idle[k], s)
	}
	p.mu.Unlock()
}

// idleCount reports the total idle sessions across keys (for /stats).
func (p *sessionPool) idleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, ss := range p.idle {
		n += len(ss)
	}
	return n
}
