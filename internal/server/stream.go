// Streamed m8 delivery for POST /compare: the flowing result path of
// the request lifecycle. A streamed compare writes each query
// sequence's alignments the moment they are final — chunked transfer,
// one flush per group — instead of buffering the whole table, and the
// concatenated bytes are identical to the buffered path (both render
// the same query-major display order through the same tabular code).
//
// # Backpressure
//
// The engine goroutine does not write to the socket; it renders each
// finished group and sends it into a channel of Config.StreamBuffer
// capacity that the handler goroutine drains onto the wire. A client
// that stops reading therefore stalls the engine after at most
// StreamBuffer further groups — bounded per-request memory, enforced by
// the channel, propagated to the engine by its own emit call blocking.
//
// # Cancellation and the status trailer
//
// The request context cancels the compare for real: core's stream
// engine checks it at every step-2 chunk claim and between groups, and
// the emit select below observes it even while blocked on a full
// channel. Because a stream's status line is long gone when a failure
// hits mid-body, the response announces an X-Scoris-Status trailer:
// "complete" seals a finished stream, anything else ("cancelled",
// "error") — or a missing trailer, if the connection died outright —
// marks a torn one. Consumers must treat only "complete" as a full
// result.
package server

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/tabular"
)

// m8StreamAccept is the Accept value that requests streamed m8
// delivery (the header form of "stream": true).
const m8StreamAccept = "text/x-m8-stream"

// streamStatusTrailer is the HTTP trailer sealing a streamed response:
// "complete" for a full result, "cancelled"/"error" for a torn one.
const streamStatusTrailer = "X-Scoris-Status"

// streamStatusComplete is the trailer value of an intact stream.
const streamStatusComplete = "complete"

// sendGroup receives one query sequence's rendered m8 lines; it is
// called once per query sequence in bank order, empty groups included
// (m8 empty) so consumers can count progress. The callee owns m8.
type sendGroup func(seq2 int, m8 []byte) error

// writeStreamHeader marks the response as a stream: m8 content, the
// X-Scoris-Stream marker (how the fleet router recognizes a relayable
// stream before the first body byte), and the status-trailer
// announcement, which must precede the first write.
func writeStreamHeader(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	h.Set("X-Scoris-Stream", "m8")
	h.Set("Trailer", streamStatusTrailer)
}

// streamCompare serves an admitted streamed compare. It owns release.
func (s *Server) streamCompare(ctx context.Context, w http.ResponseWriter, db, query *bank.Bank, req *compareRequest, release func()) {
	flusher, _ := w.(http.Flusher)
	chunks := make(chan []byte, s.cfg.StreamBuffer)
	errc := make(chan error, 1)
	go func() {
		defer release()
		defer close(chunks)
		if hold := s.testHoldCompare; hold != nil {
			<-hold
		}
		if err := ctx.Err(); err != nil {
			errc <- err
			return
		}
		errc <- s.runCompareStream(ctx, db, query, req, func(_ int, m8 []byte) error {
			if gate := s.testStreamGate; gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			if len(m8) == 0 {
				return nil
			}
			select {
			case chunks <- m8:
				return nil
			case <-ctx.Done():
				// Blocked on a full buffer with the client gone: the
				// ctx, not the consumer, is what unblocks the engine.
				return ctx.Err()
			}
		})
	}()

	wroteHeader := false
	//scorislint:ignore ctxloop bounded by close(chunks): the producer goroutine above is ctx-aware and always closes the channel on its way out
	for buf := range chunks {
		if !wroteHeader {
			writeStreamHeader(w)
			wroteHeader = true
		}
		if _, err := w.Write(buf); err != nil {
			// A failed write means the connection is broken; stop
			// consuming and let the engine unblock through the request
			// context, which the server cancels for a dead client.
			break
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	err := <-errc
	switch {
	case err == nil:
		if !wroteHeader {
			// A compare with zero alignments is still a complete
			// stream: headers, empty body, sealing trailer.
			writeStreamHeader(w)
		}
		w.Header().Set(streamStatusTrailer, streamStatusComplete)
		s.compares.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.timedOut.Add(1)
		} else {
			s.abandoned.Add(1)
		}
		if !wroteHeader {
			// Nothing sent yet — the buffered path's answers still
			// apply (504 for a server deadline, silence for a vanished
			// client). finishCancelled would double-count; write the
			// timeout body directly.
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				writeTimeoutBody(w, s.cfg.RequestTimeout)
			}
			return
		}
		w.Header().Set(streamStatusTrailer, "cancelled")
	default:
		if !wroteHeader {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Mid-stream failure: the 200 is irrevocable; the trailer is
		// the only channel left to say the stream is torn.
		w.Header().Set(streamStatusTrailer, "error")
	}
}

// runCompareStream dispatches a streamed compare. The oris engine
// streams natively (send is called as each query sequence finishes,
// while later sequences are still extending); blat and blastn buffer
// inside their engines, so their delivery is streamed after the fact —
// the finished table is emitted one query-sequence run at a time.
func (s *Server) runCompareStream(ctx context.Context, db, query *bank.Bank, req *compareRequest, send sendGroup) error {
	if engineName(req.Engine) == "oris" {
		opt := s.orisOptions(req)
		p1, p2, err := core.Prepare(s.cache, db, query, opt)
		if err != nil {
			return err
		}
		_, err = core.CompareStreamWithIndex(ctx, p1, p2, opt,
			func(seq2 int, g []align.Alignment) error {
				return send(seq2, tabular.AppendGroup(nil, g, db, query))
			})
		return err
	}
	as, err := s.runCompareAligns(db, query, req)
	if err != nil {
		return err
	}
	// Display order is query-major, so each sequence's alignments are
	// one contiguous run.
	lo := 0
	for seq2 := 0; seq2 < query.NumSeqs(); seq2++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo
		//scorislint:ignore ctxloop bounded scan over as; the enclosing per-sequence loop checks ctx.Err each group
		for hi < len(as) && int(as[hi].Seq2) == seq2 {
			hi++
		}
		if err := send(seq2, tabular.AppendGroup(nil, as[lo:hi], db, query)); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}
