// POST /compare/batch: many small query banks against one prepared db
// bank under a single admission slot — the read-mapping-shaped inverse
// of the streamed path. Instead of N requests each paying admission,
// bank resolution, and (for blastn) a session checkout, a batch admits
// once, resolves once, checks one session out for its whole duration,
// and sweeps the already-prepared db index once per query. The m8
// response is the concatenation of the per-query compares in request
// order, byte-identical to running each query through POST /compare.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/tabular"
)

// batchRequest is a set of query banks against one db bank. The
// embedded compareRequest carries the engine/format/option fields;
// its Query/Self/Stream fields must stay unset.
type batchRequest struct {
	compareRequest
	Queries []string `json:"queries"`
}

// batchResult is one query's slice of a JSON-format batch response.
type batchResult struct {
	Query      string           `json:"query"`
	Alignments []tabular.Record `json:"alignments"`
}

// batchResponse is the JSON format of a batch result.
type batchResponse struct {
	Engine  string        `json:"engine"`
	DB      string        `json:"db"`
	Results []batchResult `json:"results"`
}

// parseBatchRequest parses and structurally validates a POST
// /compare/batch body.
func parseBatchRequest(body []byte) (batchRequest, error) {
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad batch request: %v", err)
	}
	if req.DB == "" {
		return req, errors.New("batch request needs a db bank name")
	}
	if len(req.Queries) == 0 {
		return req, errors.New("batch request needs at least one query bank name")
	}
	if req.Query != "" {
		return req, errors.New(`batch requests name queries in "queries", not "query"`)
	}
	if req.Self {
		return req, errors.New("self-comparison is a single-compare mode")
	}
	if req.Stream {
		return req, errors.New("batch responses are not streamed (stream single compares instead)")
	}
	switch req.Format {
	case "", "m8", "json":
	default:
		return req, fmt.Errorf("unknown format %q (use m8 or json)", req.Format)
	}
	return req, nil
}

func (s *Server) handleCompareBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading batch request: %v", err)
		return
	}
	req, err := parseBatchRequest(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	db, ok := s.lookupBank(req.DB)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown db bank %q (register it with POST /banks)", req.DB)
		return
	}
	queries := make([]*bank.Bank, len(req.Queries))
	for i, name := range req.Queries {
		if queries[i], ok = s.lookupBank(name); !ok {
			httpError(w, http.StatusNotFound, "unknown query bank %q (register it with POST /banks)", name)
			return
		}
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	// One admission slot covers the whole batch: that is the point.
	release, err := s.admit(ctx)
	if err == errAtCapacity {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"server at capacity (%d running, %d queued); retry",
			s.cfg.MaxConcurrent, s.cfg.QueueDepth)
		return
	}
	if err != nil {
		s.finishCancelled(w, ctx)
		return
	}

	type batchOutcome struct {
		aligns [][]align.Alignment
		err    error
	}
	done := make(chan batchOutcome, 1)
	go func() {
		defer release()
		if hold := s.testHoldCompare; hold != nil {
			<-hold
		}
		if err := ctx.Err(); err != nil {
			done <- batchOutcome{nil, err}
			return
		}
		aligns, err := s.runBatch(ctx, db, queries, &req.compareRequest)
		done <- batchOutcome{aligns, err}
	}()

	var aligns [][]align.Alignment
	select {
	case out := <-done:
		if out.err != nil {
			if errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded) {
				s.finishCancelled(w, ctx)
				return
			}
			httpError(w, http.StatusBadRequest, "%v", out.err)
			return
		}
		aligns = out.aligns
	case <-ctx.Done():
		s.finishCancelled(w, ctx)
		return
	}
	s.batches.Add(1)
	s.compares.Add(int64(len(queries)))

	if req.Format == "json" {
		resp := batchResponse{Engine: engineName(req.Engine), DB: req.DB}
		for i := range aligns {
			recs := toRecords(aligns[i], db, queries[i])
			if recs == nil {
				recs = []tabular.Record{}
			}
			resp.Results = append(resp.Results, batchResult{Query: req.Queries[i], Alignments: recs})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
		return
	}
	w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	var buf []byte
	for i := range aligns {
		buf = tabular.AppendGroup(buf[:0], aligns[i], db, queries[i])
		if _, err := w.Write(buf); err != nil {
			return
		}
	}
}

// runBatch runs every query against db on one engine instantiation:
// the db index is prepared (or cache-fetched) once, and the blastn
// engine holds a single session checkout across all queries.
func (s *Server) runBatch(ctx context.Context, db *bank.Bank, queries []*bank.Bank, req *compareRequest) ([][]align.Alignment, error) {
	out := make([][]align.Alignment, len(queries))
	switch engineName(req.Engine) {
	case "oris":
		opt := s.orisOptions(req)
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p1, p2, err := core.Prepare(s.cache, db, q, opt)
			if err != nil {
				return nil, err
			}
			res, err := core.CompareWithIndex(p1, p2, opt)
			if err != nil {
				return nil, err
			}
			out[i] = res.Alignments
		}
	case "blat":
		opt, err := blatOptions(req)
		if err != nil {
			return nil, err
		}
		pdb := s.cache.Get(db, opt.IndexOptions())
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := blat.CompareWithIndex(pdb, q, opt)
			if err != nil {
				return nil, err
			}
			out[i] = res.Alignments
		}
	case "blastn":
		opt, err := blastnOptions(req)
		if err != nil {
			return nil, err
		}
		sess, err := s.sessions.checkout(db, opt)
		if err != nil {
			return nil, err
		}
		defer s.sessions.checkin(db, opt, sess)
		for i, q := range queries {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := sess.Compare(q)
			if err != nil {
				return nil, err
			}
			out[i] = res.Alignments
		}
	default:
		return nil, fmt.Errorf("unknown engine %q (use oris, blat, or blastn)", req.Engine)
	}
	return out, nil
}
