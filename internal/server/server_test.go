package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bank"
	"repro/internal/blastn"
	"repro/internal/blat"
	"repro/internal/core"
	"repro/internal/simulate"
	"repro/internal/tabular"
)

// testBanks returns the small paper banks the CLI tests also use.
func testBanks(t *testing.T) (est1, est2, est3 *bank.Bank) {
	t.Helper()
	ds := simulate.NewDataSet(256)
	return ds.Get(simulate.EST1), ds.Get(simulate.EST2), ds.Get(simulate.EST3)
}

// serialORIS computes the reference m8 bytes for (db, query) the way
// the scoris CLI does — the byte-identity oracle for server responses.
func serialORIS(t *testing.T, db, query *bank.Bank, workers int, self bool) []byte {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Workers = workers
	opt.SkipSelfPairs = self
	res, err := core.Compare(db, query, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tabular.Write(&buf, toRecords(res.Alignments, db, query)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postCompare(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/compare", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestServerCompareMatchesSerialEngines(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 2})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// oris, m8: byte-identical to the serial engine output.
	want := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	status, got := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK {
		t.Fatalf("oris compare: status %d: %s", status, got)
	}
	if len(got) == 0 || !bytes.Equal(got, want) {
		t.Fatalf("oris m8 differs from serial output (%d vs %d bytes)", len(got), len(want))
	}

	// blat engine.
	bopt := blat.DefaultOptions()
	bres, err := blat.Compare(est1, est2, bopt)
	if err != nil {
		t.Fatal(err)
	}
	var bbuf bytes.Buffer
	if err := tabular.Write(&bbuf, toRecords(bres.Alignments, est1, est2)); err != nil {
		t.Fatal(err)
	}
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est2","engine":"blat"}`)
	if status != http.StatusOK || !bytes.Equal(got, bbuf.Bytes()) {
		t.Fatalf("blat differs (status %d, %d vs %d bytes)", status, len(got), bbuf.Len())
	}

	// blastn engine, through the session pool.
	nres, err := blastn.Compare(est1, est2, blastn.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var nbuf bytes.Buffer
	if err := tabular.Write(&nbuf, toRecords(nres.Alignments, est1, est2)); err != nil {
		t.Fatal(err)
	}
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est2","engine":"blastn"}`)
	if status != http.StatusOK || !bytes.Equal(got, nbuf.Bytes()) {
		t.Fatalf("blastn differs (status %d, %d vs %d bytes)", status, len(got), nbuf.Len())
	}
	if c := srv.sessions.created.Load(); c != 1 {
		t.Errorf("session pool created %d sessions for one serial blastn stream, want 1", c)
	}

	// Self-comparison (the CLI's -self).
	want = serialORIS(t, est1, est1, srv.Config().RequestWorkers, true)
	status, got = postCompare(t, ts.URL, `{"db":"est1","self":true}`)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("self compare differs (status %d, %d vs %d bytes)", status, len(got), len(want))
	}

	// JSON format parses and carries the same records.
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est2","format":"json"}`)
	if status != http.StatusOK {
		t.Fatalf("json compare: status %d: %s", status, got)
	}
	var cr compareResponse
	if err := json.Unmarshal(got, &cr); err != nil {
		t.Fatalf("json response: %v", err)
	}
	sres, err := core.Compare(est1, est2, func() core.Options {
		o := core.DefaultOptions()
		o.Workers = srv.Config().RequestWorkers
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	if len(cr.Alignments) != len(sres.Alignments) {
		t.Fatalf("json carries %d alignments, serial %d", len(cr.Alignments), len(sres.Alignments))
	}

	// The oris keys (est1, est2) each built exactly once across all of
	// the above — the blat tile index is its own third key.
	if b := srv.Cache().Builds(); b != 3 {
		t.Errorf("cache built %d indexes, want 3 (est1 oris, est2 oris, est1 blat tiles)", b)
	}

	// /stats surfaces the counters.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Banks != 2 || st.Cache.Builds != 3 || st.Server.Compares < 5 {
		t.Errorf("stats off: %+v", st)
	}
	if st.Sessions.Checkouts != 1 || st.Sessions.Idle != 1 {
		t.Errorf("session pool stats off: %+v", st.Sessions)
	}
}

func TestServerBankRegistration(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Same name, same content: idempotent.
	if err := srv.RegisterBank("a", est1, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("a", est1, true); err != nil {
		t.Fatalf("idempotent re-registration refused: %v", err)
	}
	// Same name, different content: refused.
	if err := srv.RegisterBank("a", est2, false); err == nil {
		t.Fatal("conflicting registration accepted")
	}

	// FASTA-body registration over HTTP.
	fa := ">s1 test\nACGTACGTACGTACGTACGTGGCATTGCA\n>s2\nTTGCAACGTTGCAACGTTGCA\n"
	resp, err := http.Post(ts.URL+"/banks?name=little&db=1", "text/x-fasta", strings.NewReader(fa))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("FASTA registration: status %d", resp.StatusCode)
	}
	var info bankInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Sequences != 2 || !info.DB {
		t.Fatalf("FASTA registration parsed wrong: %+v", info)
	}

	// Unknown banks 404.
	status, body := postCompare(t, ts.URL, `{"db":"nope","query":"a"}`)
	if status != http.StatusNotFound {
		t.Fatalf("unknown db bank: status %d: %s", status, body)
	}
	// Unknown engine 400.
	status, body = postCompare(t, ts.URL, `{"db":"a","query":"little","engine":"hmmer"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown engine: status %d: %s", status, body)
	}

	// Result-changing options an engine does not implement are
	// refused, never silently dropped.
	for _, req := range []string{
		`{"db":"a","query":"little","engine":"blat","both_strands":true}`,
		`{"db":"a","query":"little","engine":"blat","asymmetric":true}`,
		`{"db":"a","query":"little","engine":"blastn","asymmetric":true}`,
	} {
		if status, body := postCompare(t, ts.URL, req); status != http.StatusBadRequest {
			t.Errorf("unsupported engine option accepted (%s): status %d: %s", req, status, body)
		}
	}

	// DELETE releases a bank; compares against it then 404.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/banks?name=little", nil)
	resp2, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("DELETE bank: status %d", resp2.StatusCode)
	}
	if status, _ := postCompare(t, ts.URL, `{"db":"a","query":"little"}`); status != http.StatusNotFound {
		t.Errorf("compare against a deleted bank: status %d, want 404", status)
	}
	delReq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/banks?name=little", nil)
	resp3, err := http.DefaultClient.Do(delReq2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("double DELETE: status %d, want 404", resp3.StatusCode)
	}
}

// TestServerBankRegistryBound: the registry refuses growth past
// MaxBanks (each entry pins full sequence data), and deletion makes
// room again.
func TestServerBankRegistryBound(t *testing.T) {
	est1, est2, est3 := testBanks(t)
	srv := New(Config{MaxConcurrent: 1, MaxBanks: 2})
	if err := srv.RegisterBank("a", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("b", est2, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("c", est3, false); err == nil {
		t.Fatal("registration past MaxBanks accepted")
	}
	// Idempotent re-registration of an existing name still works at
	// the bound.
	if err := srv.RegisterBank("a", est1, true); err != nil {
		t.Fatalf("idempotent re-registration refused at the bound: %v", err)
	}
	if !srv.DeregisterBank("b") {
		t.Fatal("deregister failed")
	}
	if err := srv.RegisterBank("c", est3, false); err != nil {
		t.Fatalf("registration after a delete refused: %v", err)
	}
}

// TestServerAdmissionControl pins the 429 contract deterministically
// with the compare hold hook: pool of 1, no queue — the second request
// must be rejected while the first is parked in flight.
func TestServerAdmissionControl(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 1, QueueDepth: -1})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testHoldCompare = hold
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := make(chan []byte, 1)
	go func() {
		_, body := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
		first <- body
	}()
	waitFor(t, func() bool { return srv.admitted.Load() == 1 })

	status, body := postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429: %s", status, body)
	}
	if srv.rejected.Load() != 1 {
		t.Errorf("rejected counter = %d, want 1", srv.rejected.Load())
	}

	close(hold)
	got := <-first
	want := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	if !bytes.Equal(got, want) {
		t.Fatal("held request did not complete with the full serial output")
	}

	// With the hold released, the pool admits again.
	status, got = postCompare(t, ts.URL, `{"db":"est1","query":"est2"}`)
	if status != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("post-overload request: status %d", status)
	}
}

// TestServerGracefulDrain pins the shutdown contract: Shutdown must
// wait for the in-flight compare (parked on the hold hook) and that
// compare must complete with its full output — drained, not dropped.
func TestServerGracefulDrain(t *testing.T) {
	est1, est2, _ := testBanks(t)
	srv := New(Config{MaxConcurrent: 2})
	if err := srv.RegisterBank("est1", est1, true); err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterBank("est2", est2, false); err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	srv.testHoldCompare = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- hs.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	first := make(chan []byte, 1)
	go func() {
		_, body := postCompare(t, url, `{"db":"est1","query":"est2"}`)
		first <- body
	}()
	waitFor(t, func() bool { return srv.admitted.Load() == 1 })

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutDone <- hs.Shutdown(ctx)
	}()
	// Shutdown must NOT complete while the compare is in flight.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a compare was in flight", err)
	case <-time.After(200 * time.Millisecond):
	}

	close(hold)
	got := <-first
	want := serialORIS(t, est1, est2, srv.Config().RequestWorkers, false)
	if !bytes.Equal(got, want) {
		t.Fatal("in-flight compare was dropped by shutdown instead of drained")
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown after drain: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConfigDefaults pins the knob derivations.
func TestConfigDefaults(t *testing.T) {
	c := Config{MaxConcurrent: 4}.withDefaults()
	if c.QueueDepth != 8 {
		t.Errorf("QueueDepth default = %d, want 8", c.QueueDepth)
	}
	if c.RequestWorkers < 1 {
		t.Errorf("RequestWorkers = %d, want >= 1", c.RequestWorkers)
	}
	if c.MaxIdleSessions != 4 {
		t.Errorf("MaxIdleSessions = %d, want 4", c.MaxIdleSessions)
	}
	c = Config{MaxConcurrent: 2, QueueDepth: -1}.withDefaults()
	if c.QueueDepth != 0 {
		t.Errorf("negative QueueDepth should mean none, got %d", c.QueueDepth)
	}
}
