package blat

import (
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// TestCompareWithIndexMatchesCompare: a tile index prepared once and
// reused across query banks must reproduce one-shot Compare exactly.
func TestCompareWithIndexMatchesCompare(t *testing.T) {
	db, q1 := testBanks(21, 5, 5, 3, 700)
	// Same generator seed reproduces the same db sequences, so q2 is a
	// differently-shaped query bank homologous to the SAME db.
	_, q2 := testBanks(21, 5, 8, 4, 700)
	opt := DefaultOptions()

	cache := ixcache.New(4)
	for i, q := range []*bank.Bank{q1, q2, q1} {
		pdb := cache.Get(db, opt.IndexOptions())
		got, err := CompareWithIndex(pdb, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compare(db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Alignments) == 0 {
			t.Fatalf("round %d: degenerate test, no alignments", i)
		}
		if len(got.Alignments) != len(ref.Alignments) {
			t.Fatalf("round %d: %d alignments vs %d", i, len(got.Alignments), len(ref.Alignments))
		}
		for j := range ref.Alignments {
			if got.Alignments[j] != ref.Alignments[j] {
				t.Fatalf("round %d: alignment %d differs:\n  prepared: %+v\n  oneshot:  %+v",
					i, j, got.Alignments[j], ref.Alignments[j])
			}
		}
	}
	if cache.Builds() != 1 {
		t.Errorf("tile index built %d times, want 1", cache.Builds())
	}
}

// TestCompareWithIndexRejectsMismatch: an all-positions (ORIS-style)
// index or a different tile size is not a valid BLAT tile index.
func TestCompareWithIndexRejectsMismatch(t *testing.T) {
	db, q := testBanks(23, 3, 3, 2, 400)
	opt := DefaultOptions()

	allPositions := ixcache.Prepare(db, index.Options{W: opt.W}) // SampleStep 1, not W
	if _, err := CompareWithIndex(allPositions, q, opt); err == nil {
		t.Error("accepted an all-positions index as a tile index")
	}

	wrongTile := DefaultOptions()
	wrongTile.W = 12
	pdb := ixcache.Prepare(db, wrongTile.IndexOptions())
	if _, err := CompareWithIndex(pdb, q, opt); err == nil {
		t.Error("accepted a tile index with a different tile size")
	}
	if _, err := CompareWithIndex(nil, q, opt); err == nil {
		t.Error("accepted a nil prepared db")
	}
}
