package blat

import (
	"math/rand"
	"testing"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/fasta"
)

func mkBank(name string, seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: name + "_" + string(rune('a'+i)), Seq: []byte(s)}
	}
	return bank.New(name, recs)
}

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGT")
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}

func mutate(rng *rand.Rand, s string, pSub float64) string {
	letters := []byte("ACGT")
	b := []byte(s)
	for i := range b {
		if rng.Float64() < pSub {
			b[i] = letters[rng.Intn(4)]
		}
	}
	return string(b)
}

func testBanks(seedVal int64, n1, n2, nHom, seqLen int) (*bank.Bank, *bank.Bank) {
	rng := rand.New(rand.NewSource(seedVal))
	seqs1 := make([]string, n1)
	for i := range seqs1 {
		seqs1[i] = randSeq(rng, seqLen)
	}
	seqs2 := make([]string, 0, n2)
	for i := 0; i < nHom && i < n1; i++ {
		seqs2 = append(seqs2, mutate(rng, seqs1[i], 0.03))
	}
	for len(seqs2) < n2 {
		seqs2 = append(seqs2, randSeq(rng, seqLen))
	}
	return mkBank("db", seqs1...), mkBank("q", seqs2...)
}

func TestFindsPlantedHomologies(t *testing.T) {
	db, q := testBanks(1, 6, 6, 4, 800)
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int32]bool{}
	for _, a := range res.Alignments {
		found[[2]int32{a.Seq1, a.Seq2}] = true
	}
	for i := int32(0); i < 4; i++ {
		if !found[[2]int32{i, i}] {
			t.Errorf("planted pair (%d,%d) missed", i, i)
		}
	}
}

func TestTileIndexIsWTimesSmaller(t *testing.T) {
	db, q := testBanks(2, 4, 1, 0, 2000)
	_ = q
	res, err := Compare(db, mkBank("q", randSeq(rand.New(rand.NewSource(3)), 300)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Non-overlapping tiles: ≈ totalBases/W entries.
	want := db.TotalBases() / 11
	got := res.Metrics.TilesIndexed
	if got < want*8/10 || got > want*12/10 {
		t.Errorf("TilesIndexed = %d, want ≈ %d", got, want)
	}
}

func TestGuaranteedMatchLength(t *testing.T) {
	// A (2W-1)-base exact match must always be found regardless of tile
	// phase: slide a 21-base shared segment through several offsets.
	rng := rand.New(rand.NewSource(4))
	segment := randSeq(rng, 21) // 2*11 - 1
	for off := 0; off < 11; off++ {
		db := mkBank("db", randSeq(rng, 100+off)+segment+randSeq(rng, 100))
		q := mkBank("q", randSeq(rng, 50)+segment+randSeq(rng, 50))
		opt := DefaultOptions()
		opt.MinUngappedScore = 18
		opt.MaxEValue = 1e6 // disable the statistical filter for this structural test
		opt.Dust = false
		res, err := Compare(db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, a := range res.Alignments {
			if a.Matches >= 21 {
				found = true
			}
		}
		if !found {
			t.Errorf("offset %d: 2W-1 match not found", off)
		}
	}
}

func TestShortMatchesCanBeMissed(t *testing.T) {
	// BLAT's known limitation: an isolated W-length match (11 bases)
	// has no guaranteed aligned tile. Verify the engine finds strictly
	// fewer or equal alignments than ORIS on fragmented homology.
	rng := rand.New(rand.NewSource(5))
	// Heavy mutation fragments the homology into short exact runs.
	base := randSeq(rng, 2000)
	db := mkBank("db", base)
	q := mkBank("q", mutate(rng, base, 0.12))
	bres, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	oOpt := core.DefaultOptions()
	ores, err := core.Compare(db, q, oOpt)
	if err != nil {
		t.Fatal(err)
	}
	var blatCols, orisCols int32
	for _, a := range bres.Alignments {
		blatCols += a.Length
	}
	for _, a := range ores.Alignments {
		orisCols += a.Length
	}
	if blatCols > orisCols {
		t.Errorf("BLAT-style covered more columns (%d) than ORIS (%d) on fragmented homology",
			blatCols, orisCols)
	}
}

func TestScanCostIsPerQueryBaseNotPerQueryScan(t *testing.T) {
	// The structural contrast with classic BLASTN: doubling the query
	// count doubles QueryPositions but leaves the db index untouched.
	rng := rand.New(rand.NewSource(6))
	db := mkBank("db", randSeq(rng, 3000))
	q1 := mkBank("q", randSeq(rng, 400))
	q2 := mkBank("q", randSeq(rng, 400), randSeq(rng, 400))
	r1, err := Compare(db, q1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compare(db, q2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Metrics.QueryPositions <= r1.Metrics.QueryPositions {
		t.Errorf("query positions did not grow: %d vs %d",
			r2.Metrics.QueryPositions, r1.Metrics.QueryPositions)
	}
	if r2.Metrics.QueryPositions > 2*r1.Metrics.QueryPositions+100 {
		t.Errorf("scan cost grew faster than query bases: %d vs 2×%d",
			r2.Metrics.QueryPositions, r1.Metrics.QueryPositions)
	}
	if r1.Metrics.TilesIndexed != r2.Metrics.TilesIndexed {
		t.Errorf("db index depends on queries: %d vs %d",
			r1.Metrics.TilesIndexed, r2.Metrics.TilesIndexed)
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	db, q := testBanks(7, 1, 1, 1, 120)
	bad := []func(*Options){
		func(o *Options) { o.W = 2 },
		func(o *Options) { o.Scoring.Match = 0 },
		func(o *Options) { o.UngappedXDrop = 0 },
		func(o *Options) { o.MaxEValue = 0 },
	}
	for i, f := range bad {
		opt := DefaultOptions()
		f(&opt)
		if _, err := Compare(db, q, opt); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

func TestDeterministic(t *testing.T) {
	db, q := testBanks(8, 5, 5, 3, 500)
	r1, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Alignments) != len(r2.Alignments) {
		t.Fatalf("nondeterministic: %d vs %d", len(r1.Alignments), len(r2.Alignments))
	}
	for i := range r1.Alignments {
		if r1.Alignments[i] != r2.Alignments[i] {
			t.Fatalf("alignment %d differs", i)
		}
	}
}
