// Package blat implements a BLAT-style comparison engine (Kent, Genome
// Research 2002), the first of the "other programs … which also handle
// sequence indexing into main memory" the paper lists as comparison
// targets for future work (§4: "Comparing SCORIS-N with other programs
// (BLAT, FLASH, BLASTZ)").
//
// Structurally BLAT is the mirror image of classic BLASTN: the
// *database* is indexed once with NON-OVERLAPPING W-mer tiles (so the
// index is W× smaller than ORIS's all-positions index), and each query
// is scanned once at every position against that index. Bank-vs-bank
// cost is therefore one pass over the total query bases instead of one
// database scan per query — fast like ORIS, but with BLAT's
// characteristic sensitivity limit: only matches of length ≥ 2W−1 are
// guaranteed to contain an aligned tile, so shorter or fragmented
// matches can be missed. The three-way experiment in the harness
// (experiments.ThreeWay) shows exactly this trade-off.
//
// Extension, statistics and output share the same substrates as the
// other two engines, so cross-engine differences reflect search
// strategy only.
package blat

import (
	"fmt"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/gapped"
	"repro/internal/hsp"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
	"repro/internal/stats"
)

// Options configures the engine. Defaults mirror the other engines
// where meaningful (BLAT's own default tile size is also 11 for DNA).
type Options struct {
	// W is the tile size.
	W int
	// Scoring holds match/mismatch/gap parameters.
	Scoring stats.Scoring
	// UngappedXDrop and GappedXDrop are the X-drop thresholds.
	UngappedXDrop int32
	GappedXDrop   int32
	// MinUngappedScore gates HSPs into the gapped stage.
	MinUngappedScore int32
	// MaxEValue is the report threshold.
	MaxEValue float64
	// Dust masks low-complexity query words.
	Dust          bool
	DustWindow    int
	DustThreshold float64
}

// DefaultOptions mirrors the repository-wide engine defaults.
func DefaultOptions() Options {
	return Options{
		W:                11,
		Scoring:          stats.DefaultScoring,
		UngappedXDrop:    20,
		GappedXDrop:      25,
		MinUngappedScore: 22,
		MaxEValue:        1e-3,
		Dust:             true,
	}
}

// Validate checks option consistency.
func (o *Options) Validate() error {
	if o.W < 4 || o.W > seed.MaxW {
		return fmt.Errorf("blat: W=%d out of range [4,%d]", o.W, seed.MaxW)
	}
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.UngappedXDrop <= 0 || o.GappedXDrop <= 0 {
		return fmt.Errorf("blat: X-drop thresholds must be positive")
	}
	if o.MaxEValue <= 0 {
		return fmt.Errorf("blat: MaxEValue must be positive")
	}
	return nil
}

// Metrics counts engine work.
type Metrics struct {
	IndexTime time.Duration
	ScanTime  time.Duration
	GapTime   time.Duration

	// TilesIndexed is the database tile count (≈ N/W).
	TilesIndexed int
	// QueryPositions is the number of query windows probed.
	QueryPositions int64
	TileHits       int64
	SkippedByDiag  int64
	Extensions     int64
	HSPs           int
	GappedExts     int
	SkippedCovered int
	Alignments     int
}

// Result bundles alignments and metrics.
type Result struct {
	Alignments []align.Alignment
	Metrics    Metrics
}

// IndexOptions reports the index.Options of the non-overlapping tile
// index Compare derives from o for the database bank — what a prepared
// index must have been built with to be valid for CompareWithIndex.
func (o Options) IndexOptions() index.Options {
	return index.Options{W: o.W, SampleStep: o.W}
}

// Compare searches every query sequence against the tile-indexed db
// bank, building the tile index in place. Conventions match the other
// engines: db is "bank 1"/subject, E-values use m = db residues,
// n = query length. Callers searching many query banks against one db
// should build the tile index once (ixcache) and use CompareWithIndex.
func Compare(db, queries *bank.Bank, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	p := ixcache.Prepare(db, opt.IndexOptions())
	indexTime := time.Since(t0)
	res, err := compareWithIndex(p.Bank, p.Ix, queries, opt)
	if err != nil {
		return nil, err
	}
	res.Metrics.IndexTime += indexTime
	return res, nil
}

// CompareWithIndex runs the search against a prepared database tile
// index, skipping the build (Metrics.IndexTime stays zero). The
// prepared value must match opt's IndexOptions exactly — tile size and
// non-overlapping sampling — or an error is returned (the ixcache reuse
// contract: an index is valid only for the exact (bank, Options) it was
// built from).
func CompareWithIndex(pdb *ixcache.Prepared, queries *bank.Bank, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if !pdb.MatchesOptions(opt.IndexOptions()) {
		return nil, fmt.Errorf("blat: prepared db does not match options (want W=%d non-overlapping tiles)", opt.W)
	}
	return compareWithIndex(pdb.Bank, pdb.Ix, queries, opt)
}

// tileProbe is the per-window probe state of one query scan: the
// stable pieces (index, extender, diagonal arrays) are set once per
// search, the per-query fields before each ForEach walk. Extracting
// the callback into a method keeps the per-element path in one named,
// hotpath-checked function instead of a closure rebuilt per query.
type tileProbe struct {
	ix       *index.Index
	ext      *hsp.Extender
	met      *Metrics
	d1, d2   []byte
	diagGen  []int32
	diagEnd  []int32
	w        int32
	minScore int32

	// per-query state, reset before each scan
	maskPfx []int32
	qLo     int32
	qHi     int32
	diagOff int32
	gen     int32
	hsps    []hsp.HSP
}

// probe handles one query window: dust test, then a flat walk of the
// tile's contiguous CSR occurrence slice — sequential reads instead of
// a Head/NextPos chain walk — extending only windows that beat the
// per-diagonal high-water mark.
//
//scorislint:hotpath
func (tp *tileProbe) probe(rel int32, c seed.Code) {
	tp.met.QueryPositions++
	if tp.maskPfx != nil && tp.maskPfx[rel+tp.w] != tp.maskPfx[rel] {
		return
	}
	qPos := tp.qLo + rel
	tLo, tHi := tp.ix.OccRange(c)
	for k := tLo; k < tHi; k++ {
		p := tp.ix.Pos[k]
		tp.met.TileHits++
		diag := p - rel + tp.diagOff
		if tp.diagGen[diag] == tp.gen && tp.diagEnd[diag] > p {
			tp.met.SkippedByDiag++
			continue
		}
		tp.met.Extensions++
		h, _ := tp.ext.Extend(tp.d1, tp.d2, p, qPos, tp.ix.OccLo[k], tp.ix.OccHi[k], tp.qLo, tp.qHi, c, nil)
		tp.diagGen[diag] = tp.gen
		tp.diagEnd[diag] = h.E1
		if h.Score >= tp.minScore {
			tp.hsps = append(tp.hsps, h)
		}
	}
}

// compareWithIndex is the engine body on a prebuilt tile index.
func compareWithIndex(db *bank.Bank, ix *index.Index, queries *bank.Bank, opt Options) (*Result, error) {
	ka, err := stats.Ungapped(opt.Scoring.Match, opt.Scoring.Mismatch)
	if err != nil {
		return nil, err
	}
	var met Metrics
	met.TilesIndexed = ix.Indexed
	var t0 time.Time

	var masker *dust.Masker
	if opt.Dust {
		masker = dust.New(opt.DustWindow, opt.DustThreshold)
	}

	maxQ := 0
	for i := 0; i < queries.NumSeqs(); i++ {
		if l := queries.SeqLen(i); l > maxQ {
			maxQ = l
		}
	}
	diagEnd := make([]int32, len(db.Data)+maxQ+1)
	diagGen := make([]int32, len(db.Data)+maxQ+1)
	var gen int32

	ext := hsp.Extender{
		W:        opt.W,
		Match:    int32(opt.Scoring.Match),
		Mismatch: int32(opt.Scoring.Mismatch),
		XDrop:    opt.UngappedXDrop,
		Ordered:  false,
	}
	gapExt := gapped.NewExtender(gapped.FromScoring(opt.Scoring, opt.GappedXDrop))

	d1, d2 := db.Data, queries.Data
	var all []align.Alignment
	w := int32(opt.W)

	tp := &tileProbe{
		ix:       ix,
		ext:      &ext,
		met:      &met,
		d1:       d1,
		d2:       d2,
		diagGen:  diagGen,
		diagEnd:  diagEnd,
		w:        w,
		minScore: opt.MinUngappedScore,
	}

	for qi := 0; qi < queries.NumSeqs(); qi++ {
		qLo, qHi := queries.SeqBounds(qi)
		if qHi-qLo < w {
			continue
		}
		gen++
		// maskPfx[i] counts masked query positions before i, making the
		// per-window dust test one subtraction instead of a W-bit scan.
		var maskPfx []int32
		if masker != nil {
			maskPfx = masker.MaskPrefix(queries.Data[qLo:qHi])
		}

		// ---- scan the query against the tile index ----
		t0 = time.Now()
		tp.maskPfx = maskPfx
		tp.qLo, tp.qHi, tp.diagOff = qLo, qHi, qHi-qLo
		tp.gen = gen
		tp.hsps = tp.hsps[:0]
		seed.ForEach(queries.Data[qLo:qHi], opt.W, tp.probe)
		hsps := tp.hsps
		met.ScanTime += time.Since(t0)

		// ---- gapped stage (shared shape with the other engines) ----
		t0 = time.Now()
		hsp.SortByDiag(hsps)
		met.HSPs += len(hsps)
		var ta align.TAlign
		for _, h := range hsps {
			if ta.Covered(h) {
				met.SkippedCovered++
				continue
			}
			met.GappedExts++
			m1, m2 := h.Mid()
			s1 := db.SeqAt(m1)
			lo1, hi1 := db.SeqBounds(int(s1))
			left := gapExt.ExtendLeft(d1, d2, m1, lo1, m2, qLo)
			right := gapExt.ExtendRight(d1, d2, m1, hi1, m2, qHi)
			r := left.Add(right)
			if r.AlignLen() == 0 {
				continue
			}
			ta.Add(align.Alignment{
				Seq1: s1, Seq2: int32(qi),
				S1: m1 - left.Len1, E1: m1 + right.Len1,
				S2: m2 - left.Len2, E2: m2 + right.Len2,
				Score:      r.Score,
				Matches:    r.Matches,
				Mismatches: r.Mismatches,
				GapOpens:   r.GapOpens,
				GapBases:   r.GapBases(),
				Length:     r.AlignLen(),
				Anchor1:    m1,
				Anchor2:    m2,
			})
		}
		all = append(all, ta.All()...)
		met.GapTime += time.Since(t0)
	}

	// ---- statistics, dedup, sort ----
	t0 = time.Now()
	m := db.TotalBases()
	deduped := align.Dedup(all)
	out := deduped[:0]
	for i := range deduped {
		a := deduped[i]
		n := queries.SeqLen(int(a.Seq2))
		a.EValue = ka.EValue(int(a.Score), m, n)
		a.BitScore = ka.BitScore(int(a.Score))
		if a.EValue <= opt.MaxEValue {
			out = append(out, a)
		}
	}
	align.SortForDisplay(out)
	met.Alignments = len(out)
	met.GapTime += time.Since(t0)
	return &Result{Alignments: out, Metrics: met}, nil
}
