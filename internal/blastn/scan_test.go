package blastn

import (
	"testing"
)

// The strided 8-mer scan must find the same homologies as a plain
// every-position W-mer scan — the stride is chosen so every W-mer match
// contains an aligned probe word.
func TestStridedScanFindsSamePairsAsFullScan(t *testing.T) {
	db, q := testBanks(31, 8, 8, 6, 700)

	full := DefaultOptions()
	full.ScanWord = 11
	full.ScanStride = 1

	strided := DefaultOptions() // ScanWord 8, stride 4

	rFull, err := Compare(db, q, full)
	if err != nil {
		t.Fatal(err)
	}
	rStr, err := Compare(db, q, strided)
	if err != nil {
		t.Fatal(err)
	}

	pairs := func(r *Result) map[[2]int32]bool {
		m := map[[2]int32]bool{}
		for _, a := range r.Alignments {
			m[[2]int32{a.Seq1, a.Seq2}] = true
		}
		return m
	}
	pf, ps := pairs(rFull), pairs(rStr)
	for k := range pf {
		if !ps[k] {
			t.Errorf("pair %v found by full scan but missed by strided scan", k)
		}
	}
	for i := int32(0); i < 6; i++ {
		if !ps[[2]int32{i, i}] {
			t.Errorf("strided scan missed planted pair (%d,%d)", i, i)
		}
	}
}

func TestStridedScanProbesFewerPositions(t *testing.T) {
	db, q := testBanks(32, 4, 4, 2, 800)
	full := DefaultOptions()
	full.ScanWord = 11
	full.ScanStride = 1
	strided := DefaultOptions()
	rFull, err := Compare(db, q, full)
	if err != nil {
		t.Fatal(err)
	}
	rStr, err := Compare(db, q, strided)
	if err != nil {
		t.Fatal(err)
	}
	// Stride 4 must probe ~1/4 of the positions.
	lo := rFull.Metrics.ScannedPositions / 5
	hi := rFull.Metrics.ScannedPositions / 3
	if rStr.Metrics.ScannedPositions < lo || rStr.Metrics.ScannedPositions > hi {
		t.Errorf("strided probes %d, full %d (want ≈ 1/4)",
			rStr.Metrics.ScannedPositions, rFull.Metrics.ScannedPositions)
	}
}

func TestVerificationRejectsBare8merHits(t *testing.T) {
	// Unrelated random banks: plenty of random 8-mer probe hits, nearly
	// all failing the W=11 verification.
	db, q := testBanks(33, 4, 4, 0, 800)
	r, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m.WordHits == 0 {
		t.Fatal("no 8-mer probe hits on random banks?")
	}
	if m.VerifyFailed == 0 {
		t.Error("verification never rejected a bare 8-mer hit")
	}
	if m.VerifyFailed+m.SkippedByDiag+m.Extensions != m.WordHits {
		t.Errorf("accounting: %+v", m)
	}
	// Rejection rate should dominate on unrelated data.
	if float64(m.VerifyFailed) < 0.5*float64(m.WordHits-m.SkippedByDiag) {
		t.Errorf("verification rejected too few: %d of %d unskipped hits",
			m.VerifyFailed, m.WordHits-m.SkippedByDiag)
	}
}

func TestScanOptionValidation(t *testing.T) {
	db, q := testBanks(34, 1, 1, 1, 120)
	bad := []func(*Options){
		func(o *Options) { o.ScanWord = 2 },                    // too small
		func(o *Options) { o.ScanWord = 12 },                   // exceeds W
		func(o *Options) { o.ScanStride = 5 },                  // misses 11-mers with sw=8
		func(o *Options) { o.ScanWord = 11; o.ScanStride = 2 }, // sw=W needs stride 1
	}
	for i, f := range bad {
		opt := DefaultOptions()
		f(&opt)
		if _, err := Compare(db, q, opt); err == nil {
			t.Errorf("bad scan options %d accepted", i)
		}
	}
	// Legal boundary: sw=8, stride=4 == W-sw+1.
	opt := DefaultOptions()
	opt.ScanWord = 8
	opt.ScanStride = 4
	if _, err := Compare(db, q, opt); err != nil {
		t.Errorf("legal boundary rejected: %v", err)
	}
}

func TestZeroScanParamsDefaultToFullScan(t *testing.T) {
	opt := Options{}
	opt.W = 11
	sw, stride := opt.scanParams()
	if sw != 11 || stride != 1 {
		t.Errorf("scanParams zero-value = %d,%d, want 11,1", sw, stride)
	}
}
