package blastn

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestSessionConcurrentUsePanics pins the in-use guard deterministically:
// a Compare entered while the session is already in use must panic with
// a message naming the misuse, and the session must be fully usable
// again once the holder releases it.
func TestSessionConcurrentUsePanics(t *testing.T) {
	db, q := testBanks(41, 5, 5, 3, 600)
	s, err := NewSession(db, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a concurrent holder mid-Compare.
	if !s.inUse.CompareAndSwap(false, true) {
		t.Fatal("fresh session reports in use")
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Compare on an in-use session did not panic")
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "NOT safe for concurrent use") {
				t.Fatalf("panic message does not name the misuse: %v", r)
			}
		}()
		s.Compare(q)
	}()

	// Release; the guarded session must work normally again.
	s.inUse.Store(false)
	got, err := s.Compare(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Alignments, ref.Alignments) {
		t.Fatal("session output diverged after a guard panic was recovered")
	}
}

// TestSessionGuardUnderRace hammers one session from many goroutines
// (run under -race in CI): every call must either panic with the guard
// message or complete with exactly the serial reference alignments —
// overlapped calls are rejected at entry instead of silently corrupting
// the generation-stamped arrays.
func TestSessionGuardUnderRace(t *testing.T) {
	db, q := testBanks(41, 5, 5, 3, 600)
	opt := DefaultOptions()
	ref, err := Compare(db, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Alignments) == 0 {
		t.Fatal("degenerate test: no alignments")
	}

	s, err := NewSession(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const rounds = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	var completed, panicked int
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				func() {
					defer func() {
						if rec := recover(); rec != nil {
							msg, ok := rec.(string)
							if !ok || !strings.Contains(msg, "concurrent") {
								t.Errorf("unexpected panic: %v", rec)
							}
							mu.Lock()
							panicked++
							mu.Unlock()
						}
					}()
					got, err := s.Compare(q)
					if err != nil {
						t.Errorf("Compare: %v", err)
						return
					}
					if !reflect.DeepEqual(got.Alignments, ref.Alignments) {
						t.Error("a Compare that won the guard produced corrupt output")
					}
					mu.Lock()
					completed++
					mu.Unlock()
				}()
			}
		}()
	}
	wg.Wait()
	if completed+panicked != goroutines*rounds {
		t.Fatalf("accounting: %d completed + %d panicked != %d calls",
			completed, panicked, goroutines*rounds)
	}
	if completed == 0 {
		t.Fatal("no call ever won the guard")
	}
	t.Logf("%d completed, %d rejected by the guard", completed, panicked)
}
