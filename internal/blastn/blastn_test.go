package blastn

import (
	"math/rand"
	"testing"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/fasta"
)

func mkBank(name string, seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: name + "_" + string(rune('a'+i)), Seq: []byte(s)}
	}
	return bank.New(name, recs)
}

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGT")
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}

func mutateIndel(rng *rand.Rand, s string, pSub, pIndel float64) string {
	letters := []byte("ACGT")
	var out []byte
	for i := 0; i < len(s); i++ {
		r := rng.Float64()
		switch {
		case r < pIndel/2:
		case r < pIndel:
			out = append(out, s[i], letters[rng.Intn(4)])
		case r < pIndel+pSub:
			out = append(out, letters[rng.Intn(4)])
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

func testBanks(seedVal int64, n1, n2, nHom, seqLen int) (*bank.Bank, *bank.Bank) {
	rng := rand.New(rand.NewSource(seedVal))
	seqs1 := make([]string, n1)
	for i := range seqs1 {
		seqs1[i] = randSeq(rng, seqLen)
	}
	seqs2 := make([]string, 0, n2)
	for i := 0; i < nHom && i < n1; i++ {
		seqs2 = append(seqs2, mutateIndel(rng, seqs1[i], 0.04, 0.005))
	}
	for len(seqs2) < n2 {
		seqs2 = append(seqs2, randSeq(rng, seqLen))
	}
	return mkBank("db", seqs1...), mkBank("q", seqs2...)
}

func TestFindsPlantedHomologies(t *testing.T) {
	db, q := testBanks(1, 6, 6, 4, 800)
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int32]bool{}
	for _, a := range res.Alignments {
		found[[2]int32{a.Seq1, a.Seq2}] = true
	}
	for i := int32(0); i < 4; i++ {
		if !found[[2]int32{i, i}] {
			t.Errorf("planted pair (%d,%d) missed", i, i)
		}
	}
}

func TestNoHomologyFindsNothing(t *testing.T) {
	db, q := testBanks(2, 4, 4, 0, 600)
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) > 1 {
		t.Errorf("found %d alignments between unrelated banks", len(res.Alignments))
	}
}

func TestAlignmentFieldsConsistent(t *testing.T) {
	db, q := testBanks(3, 4, 4, 3, 700)
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments")
	}
	for _, a := range res.Alignments {
		if a.Length != a.Matches+a.Mismatches+a.GapBases {
			t.Errorf("length inconsistency: %+v", a)
		}
		if db.SeqAt(a.S1) != a.Seq1 || db.SeqAt(a.E1-1) != a.Seq1 {
			t.Errorf("alignment crosses db record boundary: %+v", a)
		}
		if q.SeqAt(a.S2) != a.Seq2 || q.SeqAt(a.E2-1) != a.Seq2 {
			t.Errorf("alignment crosses query record boundary: %+v", a)
		}
		if a.EValue > DefaultOptions().MaxEValue {
			t.Errorf("alignment above cutoff: %+v", a)
		}
	}
}

// The paper's central sensitivity claim: SCORIS-N and BLASTN find
// essentially the same alignments. On clean planted homologies the two
// engines must agree on the (seq1, seq2) pairs found.
func TestAgreesWithORISOnCleanHomologies(t *testing.T) {
	db, q := testBanks(4, 8, 8, 6, 700)
	bres, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ores, err := core.Compare(db, q, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bp := map[[2]int32]bool{}
	for _, a := range bres.Alignments {
		bp[[2]int32{a.Seq1, a.Seq2}] = true
	}
	op := map[[2]int32]bool{}
	for _, a := range ores.Alignments {
		op[[2]int32{a.Seq1, a.Seq2}] = true
	}
	for i := int32(0); i < 6; i++ {
		k := [2]int32{i, i}
		if !bp[k] {
			t.Errorf("BLASTN missed planted pair %v", k)
		}
		if !op[k] {
			t.Errorf("ORIS missed planted pair %v", k)
		}
	}
}

func TestDiagonalSkippingReducesExtensions(t *testing.T) {
	// A highly repetitive region would trigger an extension per word hit
	// without the diagonal array.
	db, q := testBanks(5, 2, 2, 2, 2000)
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.SkippedByDiag == 0 {
		t.Error("diagonal redundancy array never skipped a hit")
	}
	if m.Extensions+m.SkippedByDiag+m.VerifyFailed != m.WordHits {
		t.Errorf("hit accounting: ext %d + skipped %d + failed %d != hits %d",
			m.Extensions, m.SkippedByDiag, m.VerifyFailed, m.WordHits)
	}
}

func TestScanCostScalesWithQueryCount(t *testing.T) {
	// The structural property the paper exploits: scanning work is
	// (number of queries) × (db size), measured via ScannedPositions.
	rng := rand.New(rand.NewSource(6))
	dbSeq := randSeq(rng, 3000)
	db := mkBank("db", dbSeq)
	q1 := mkBank("q", randSeq(rng, 300))
	q4 := mkBank("q", randSeq(rng, 300), randSeq(rng, 300), randSeq(rng, 300), randSeq(rng, 300))
	r1, err := Compare(db, q1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Compare(db, q4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r4.Metrics.ScannedPositions != 4*r1.Metrics.ScannedPositions {
		t.Errorf("scan cost not linear in queries: %d vs 4×%d",
			r4.Metrics.ScannedPositions, r1.Metrics.ScannedPositions)
	}
}

func TestShortQueriesSkipped(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := mkBank("db", randSeq(rng, 500))
	q := mkBank("q", "ACGT", randSeq(rng, 300)) // first query shorter than W
	res, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Queries != 1 {
		t.Errorf("Queries = %d, want 1 (short query skipped)", res.Metrics.Queries)
	}
}

func TestBothStrandsFindsRCHomology(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randSeq(rng, 800)
	rc := string(dna.Decode(dna.ReverseComplement(dna.Encode([]byte(s)))))
	db := mkBank("db", s)
	q := mkBank("q", rc)
	opt := DefaultOptions()
	plus, err := Compare(db, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plus.Alignments) != 0 {
		t.Errorf("single strand found %d alignments", len(plus.Alignments))
	}
	opt.BothStrands = true
	both, err := Compare(db, q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Alignments) == 0 {
		t.Fatal("both strands found nothing")
	}
	if !both.Alignments[0].Minus {
		t.Error("expected minus-strand alignment")
	}
}

func TestDustMasksQueryWords(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	polyA := string(make([]byte, 60))
	pa := []byte(polyA)
	for i := range pa {
		pa[i] = 'A'
	}
	db := mkBank("db", randSeq(rng, 300)+string(pa)+randSeq(rng, 300))
	q := mkBank("q", randSeq(rng, 100)+string(pa)+randSeq(rng, 100))
	on := DefaultOptions()
	off := DefaultOptions()
	off.Dust = false
	rOn, err := Compare(db, q, on)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := Compare(db, q, off)
	if err != nil {
		t.Fatal(err)
	}
	if rOn.Metrics.WordHits >= rOff.Metrics.WordHits {
		t.Errorf("dust did not reduce word hits: %d vs %d",
			rOn.Metrics.WordHits, rOff.Metrics.WordHits)
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	db, q := testBanks(10, 1, 1, 1, 100)
	bad := []func(*Options){
		func(o *Options) { o.W = 2 },
		func(o *Options) { o.Scoring.Mismatch = 0 },
		func(o *Options) { o.UngappedXDrop = 0 },
		func(o *Options) { o.MaxEValue = -1 },
	}
	for i, f := range bad {
		opt := DefaultOptions()
		f(&opt)
		if _, err := Compare(db, q, opt); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	db, q := testBanks(11, 5, 5, 3, 500)
	r1, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compare(db, q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Alignments) != len(r2.Alignments) {
		t.Fatalf("nondeterministic: %d vs %d", len(r1.Alignments), len(r2.Alignments))
	}
	for i := range r1.Alignments {
		if r1.Alignments[i] != r2.Alignments[i] {
			t.Fatalf("alignment %d differs", i)
		}
	}
}

func BenchmarkCompareSmallBanks(b *testing.B) {
	db, q := testBanks(20, 20, 20, 10, 400)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(db, q, opt); err != nil {
			b.Fatal(err)
		}
	}
}
