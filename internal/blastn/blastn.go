// Package blastn is a from-scratch Go implementation of the classic
// (2007-era, pre-indexed-megablast) NCBI BLASTN search strategy, used as
// the baseline the paper compares against (§3: NCBI BLAST 2.2.17,
// blastall -p blastn).
//
// The defining structural property — and the reason ORIS wins on
// bank-vs-bank workloads — is that BLASTN processes queries one at a
// time: for each query sequence it builds a word lookup table and then
// scans the ENTIRE subject bank, so a J-query bank costs J full scans.
// Heuristics reproduced from the original:
//
//   - contiguous W-mer lookup (one-hit triggering, the classic BLASTN
//     mode with W=11);
//   - a per-diagonal "last extended position" array so hits inside an
//     already-extended region are skipped cheaply;
//   - ungapped X-drop extension, score-thresholded HSPs, then gapped
//     X-drop extension (shared packages hsp, gapped);
//   - Karlin–Altschul E-values with the same m·n convention as
//     SCORIS-N, so sensitivity comparisons reflect search strategy, not
//     statistics.
//
// Lookup tables and diagonal arrays are generation-stamped so per-query
// setup is O(query length), not O(4^W) — the real BLAST does the same.
// That stamping also makes the whole engine reusable across query
// banks: Session holds one database bank plus the engine arrays so
// multi-query-bank workloads pay the O(len(db)) allocations once, the
// baseline's analog of the prepared-index sessions in core and blat.
package blastn

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/gapped"
	"repro/internal/hsp"
	"repro/internal/seed"
	"repro/internal/stats"
)

// Options configures the baseline. Defaults mirror core.DefaultOptions
// so engine comparisons are apples-to-apples.
type Options struct {
	// W is the word size (BLASTN default 11).
	W int
	// Scoring holds match/mismatch/gap parameters.
	Scoring stats.Scoring
	// UngappedXDrop and GappedXDrop are the X-drop thresholds.
	UngappedXDrop int32
	GappedXDrop   int32
	// MinUngappedScore gates HSPs into the gapped stage.
	MinUngappedScore int32
	// MaxEValue is the report threshold (-e).
	MaxEValue float64
	// Dust masks low-complexity words out of the query lookup table,
	// as -F T does.
	Dust          bool
	DustWindow    int
	DustThreshold float64
	// BothStrands searches the reverse complement of each query too
	// (-S 3); the paper benchmarks single-strand (-S 1).
	BothStrands bool
	// ScanWord and ScanStride reproduce the classic BLASTN scanning
	// strategy on the packed database: the query lookup table holds
	// ScanWord-mers (8 by default) and the subject is probed every
	// ScanStride positions (4 by default, the ncbi2na byte boundary).
	// Any W-mer match contains an aligned ScanWord-mer starting at one
	// of ScanStride consecutive offsets, so no W-mer hit is lost; each
	// probe hit is verified by growing the exact-match run to ≥ W
	// before triggering an extension, as NCBI's mini-extension does.
	// ScanStride=1 with ScanWord=W degenerates to a plain full scan.
	ScanWord   int
	ScanStride int
}

// DefaultOptions mirrors the paper's blastall invocation:
// -p blastn -e 0.001 -S 1 with stock W=11 scoring.
func DefaultOptions() Options {
	return Options{
		W:                11,
		Scoring:          stats.DefaultScoring,
		UngappedXDrop:    20,
		GappedXDrop:      25,
		MinUngappedScore: 22,
		MaxEValue:        1e-3,
		Dust:             true,
		ScanWord:         8,
		ScanStride:       4,
	}
}

// Validate checks option consistency.
func (o *Options) Validate() error {
	if o.W < 4 || o.W > seed.MaxW {
		return fmt.Errorf("blastn: W=%d out of range [4,%d]", o.W, seed.MaxW)
	}
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.UngappedXDrop <= 0 || o.GappedXDrop <= 0 {
		return fmt.Errorf("blastn: X-drop thresholds must be positive")
	}
	if o.MaxEValue <= 0 {
		return fmt.Errorf("blastn: MaxEValue must be positive")
	}
	sw, stride := o.scanParams()
	if sw < 4 || sw > o.W {
		return fmt.Errorf("blastn: ScanWord=%d out of range [4,W=%d]", sw, o.W)
	}
	if stride < 1 || stride > o.W-sw+1 {
		return fmt.Errorf("blastn: ScanStride=%d out of range [1,%d] (would miss W-mer hits)",
			stride, o.W-sw+1)
	}
	return nil
}

// scanParams resolves the scan word/stride, defaulting to a plain full
// scan when unset so zero-filled Options behave predictably.
func (o *Options) scanParams() (scanWord, stride int) {
	scanWord, stride = o.ScanWord, o.ScanStride
	if scanWord == 0 {
		scanWord = o.W
	}
	if stride == 0 {
		stride = 1
	}
	return scanWord, stride
}

// Metrics counts baseline work for the experiment harness.
type Metrics struct {
	SetupTime time.Duration
	ScanTime  time.Duration
	GapTime   time.Duration

	Queries          int
	ScannedPositions int64
	WordHits         int64
	SkippedByDiag    int64
	VerifyFailed     int64
	Extensions       int64
	HSPs             int
	GappedExtensions int
	SkippedCovered   int
	Alignments       int
}

// Result bundles alignments with metrics.
type Result struct {
	Alignments []align.Alignment
	Metrics    Metrics
}

// engine holds the per-search state reused across queries.
type engine struct {
	opt Options
	db  *bank.Bank

	// query word table, generation stamped.
	gen     []int32
	head    []int32
	nextPos []int32 // per query position
	curGen  int32
	// present is a 1-bit-per-code bitmap over the ScanWord code space
	// (8 KB for 8-mers), cleared per query. The overwhelming majority
	// of scan probes miss, and this L1-resident test is what lets the
	// real BLASTN stream through gigabases — reproduced here so the
	// baseline's scan constant is honest.
	present []uint64

	// per-diagonal last extended end (db axis), generation stamped.
	diagEnd []int32
	diagGen []int32

	ext    hsp.Extender
	gapExt *gapped.Extender
	ka     stats.KarlinAltschul
	masker *dust.Masker
}

// Session is the prepared-bank form of the baseline: a database bank
// paired with the reusable per-search engine state (word-table and
// diagonal arrays, extenders, statistics). BLASTN has no bank index to
// persist — its db-side cost is the scan itself — but the
// O(len(db.Data)) diagonal arrays and the O(4^ScanWord) lookup arrays
// are allocated once here and reused for every query bank, the analog
// of core/blat index reuse for this engine.
//
// A Session is NOT safe for concurrent use: the generation-stamped
// arrays are mutated per query. Compare enforces this with an atomic
// in-use guard that panics on concurrent entry — corrupting the
// generation stamps silently (wrong alignments) is strictly worse than
// a loud crash naming the misuse. Callers that serve many goroutines
// should hold one Session per goroutine, or a checkout pool handing
// each Session to one goroutine at a time (internal/server does this).
// A Session is valid only for the (db, Options) it was created with;
// create one session per database bank.
type Session struct {
	eng *engine // sole owner of the db, options, and reusable arrays

	// inUse is the concurrency guard: set for the duration of Compare
	// with a compare-and-swap, so overlapped calls are detected at
	// entry instead of corrupting the engine arrays mid-scan.
	inUse atomic.Bool
}

// NewSession validates opt and allocates the reusable engine state for
// searches against db.
func NewSession(db *bank.Bank, opt Options) (*Session, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	eng, err := newEngine(db, opt)
	if err != nil {
		return nil, err
	}
	return &Session{eng: eng}, nil
}

// DB returns the session's database bank.
func (s *Session) DB() *bank.Bank { return s.eng.db }

// Compare searches every sequence of queries against the session's db
// bank, one query at a time, and returns the merged alignment list
// sorted for display. db plays the paper's "bank 1" (subject) role.
func (s *Session) Compare(queries *bank.Bank) (*Result, error) {
	if !s.inUse.CompareAndSwap(false, true) {
		panic("blastn: Session.Compare called concurrently: a Session is NOT safe for concurrent use " +
			"(its generation-stamped engine arrays are mutated per query); " +
			"give each goroutine its own Session or serialize access with a checkout pool")
	}
	defer s.inUse.Store(false)
	opt := s.eng.opt
	res, err := s.compareStrand(queries)
	if err != nil {
		return nil, err
	}
	if opt.BothStrands {
		rc := queries.ReverseComplement()
		rcRes, err := s.compareStrand(rc)
		if err != nil {
			return nil, err
		}
		for i := range rcRes.Alignments {
			a := &rcRes.Alignments[i]
			_, hi := rc.SeqBounds(int(a.Seq2))
			oLo, _ := queries.SeqBounds(int(a.Seq2))
			s := oLo + (hi - a.E2)
			e := oLo + (hi - a.S2)
			a.S2, a.E2 = s, e
			// The anchor refers to the discarded reverse-complement bank;
			// clear it so render reports "no anchor" instead of garbage.
			a.Anchor1, a.Anchor2 = 0, 0
			a.Minus = true
		}
		res.Alignments = append(res.Alignments, rcRes.Alignments...)
		mergeMetrics(&res.Metrics, &rcRes.Metrics)
		align.SortForDisplay(res.Alignments)
	}
	return res, nil
}

func mergeMetrics(m, o *Metrics) {
	m.SetupTime += o.SetupTime
	m.ScanTime += o.ScanTime
	m.GapTime += o.GapTime
	m.Queries += o.Queries
	m.ScannedPositions += o.ScannedPositions
	m.WordHits += o.WordHits
	m.SkippedByDiag += o.SkippedByDiag
	m.VerifyFailed += o.VerifyFailed
	m.Extensions += o.Extensions
	m.HSPs += o.HSPs
	m.GappedExtensions += o.GappedExtensions
	m.SkippedCovered += o.SkippedCovered
	m.Alignments += o.Alignments
}

// Compare searches queries against db with a one-shot Session — the
// thin wrapper kept for single-pair callers. Workloads that search
// several query banks against the same db should hold one Session so
// the db-sized engine arrays are allocated once.
func Compare(db, queries *bank.Bank, opt Options) (*Result, error) {
	s, err := NewSession(db, opt)
	if err != nil {
		return nil, err
	}
	return s.Compare(queries)
}

// newEngine allocates the query-independent engine state; the arrays
// sized by the longest query grow on demand in grow.
func newEngine(db *bank.Bank, opt Options) (*engine, error) {
	ka, err := stats.Ungapped(opt.Scoring.Match, opt.Scoring.Mismatch)
	if err != nil {
		return nil, err
	}
	scanWord, _ := opt.scanParams()
	nCodes := seed.NumCodes(scanWord)
	e := &engine{
		opt:     opt,
		db:      db,
		gen:     make([]int32, nCodes),
		head:    make([]int32, nCodes),
		present: make([]uint64, (nCodes+63)/64),
		ext: hsp.Extender{
			W:        opt.W,
			Match:    int32(opt.Scoring.Match),
			Mismatch: int32(opt.Scoring.Mismatch),
			XDrop:    opt.UngappedXDrop,
			Ordered:  false, // BLAST has no ordered-seed rule
		},
		gapExt: gapped.NewExtender(gapped.FromScoring(opt.Scoring, opt.GappedXDrop)),
		ka:     ka,
	}
	if opt.Dust {
		e.masker = dust.New(opt.DustWindow, opt.DustThreshold)
	}
	return e, nil
}

// grow sizes the query-length-dependent arrays for a bank whose longest
// sequence is maxQ bases. Enlarged arrays arrive zeroed, which the
// generation stamps read as "never touched" (curGen only moves upward
// from 1), so reuse across query banks cannot leak diagonal state.
func (e *engine) grow(maxQ int) {
	if len(e.nextPos) < maxQ+1 {
		e.nextPos = make([]int32, maxQ+1)
	}
	if need := len(e.db.Data) + maxQ + 1; len(e.diagEnd) < need {
		e.diagEnd = make([]int32, need)
		e.diagGen = make([]int32, need)
	}
}

func (s *Session) compareStrand(queries *bank.Bank) (*Result, error) {
	e := s.eng
	opt := e.opt
	t0 := time.Now()
	maxQ := 0
	for i := 0; i < queries.NumSeqs(); i++ {
		if l := queries.SeqLen(i); l > maxQ {
			maxQ = l
		}
	}
	e.grow(maxQ)
	var met Metrics
	met.SetupTime = time.Since(t0)

	var all []align.Alignment
	for qi := 0; qi < queries.NumSeqs(); qi++ {
		if queries.SeqLen(qi) < opt.W {
			continue
		}
		met.Queries++
		as := e.searchQuery(queries, qi, &met)
		all = append(all, as...)
	}

	t0 = time.Now()
	m := e.db.TotalBases()
	ka := e.ka
	deduped := align.Dedup(all)
	out := deduped[:0]
	for i := range deduped {
		a := deduped[i]
		n := queries.SeqLen(int(a.Seq2))
		a.EValue = ka.EValue(int(a.Score), m, n)
		a.BitScore = ka.BitScore(int(a.Score))
		if a.EValue <= opt.MaxEValue {
			out = append(out, a)
		}
	}
	align.SortForDisplay(out)
	met.Alignments = len(out)
	met.GapTime += time.Since(t0)

	return &Result{Alignments: out, Metrics: met}, nil
}

// searchQuery runs the classic pipeline for one query sequence.
func (e *engine) searchQuery(queries *bank.Bank, qi int, met *Metrics) []align.Alignment {
	opt := e.opt
	qLo, qHi := queries.SeqBounds(qi)
	qLen := qHi - qLo

	// ---- build the query word table over ScanWord-mers ----
	t0 := time.Now()
	e.curGen++
	gen := e.curGen
	var maskBits []bool
	if e.masker != nil {
		maskBits = e.masker.MaskBits(queries.Data[qLo:qHi])
	}
	scanWord, stride := opt.scanParams()
	sw := int32(scanWord)
	for i := range e.present {
		e.present[i] = 0
	}
	seed.ForEach(queries.Data[qLo:qHi], scanWord, func(rel int32, c seed.Code) {
		if maskBits != nil {
			for q := rel; q < rel+sw; q++ {
				if maskBits[q] {
					return
				}
			}
		}
		if e.gen[c] != gen {
			e.gen[c] = gen
			e.head[c] = -1
		}
		// Prepend; query word chains don't need position order.
		e.nextPos[rel] = e.head[c]
		e.head[c] = rel
		e.present[c>>6] |= 1 << (c & 63)
	})
	met.SetupTime += time.Since(t0)

	// ---- scan the whole subject bank ----
	// The scan is the dominant cost of the whole baseline (J queries ×
	// full bank). Like 2007 BLASTN on the 2-bit-packed database, the
	// subject is probed every `stride` positions with a ScanWord-mer
	// lookup; every probe hit is then verified by growing the exact
	// match to ≥ W before an extension is triggered.
	t0 = time.Now()
	var hsps []hsp.HSP
	d1, d2 := e.db.Data, queries.Data
	db := e.db
	w := int32(opt.W)
	diagOff := qLen // diag = dbPos - qRel + qLen ∈ [0, len(db.Data)+qLen]
	var (
		scanned  int64
		hits     int64
		skips    int64
		failed   int64
		extCount int64
	)
	{
		data := db.Data
		n := len(data)
		topShift := 2 * uint(scanWord-stride)
		dropShift := 2 * uint(stride)
		var c seed.Code
		valid := false
		present := e.present
		// The loop advances by the stride directly, rolling the code
		// forward by `stride` bases per step, and consults the 1-bit
		// presence table first; only present codes (a percent or so on
		// unrelated sequence) touch the chain arrays. This mirrors the
		// byte-boundary scan of the packed-database BLASTN.
		for i := 0; i+scanWord <= n; i += stride {
			if valid {
				var top seed.Code
				ok := true
				for k := 0; k < stride; k++ {
					b := data[i+scanWord-stride+k]
					if b >= 4 {
						ok = false
						break
					}
					top |= seed.Code(b) << (2 * uint(k))
				}
				if !ok {
					valid = false
					continue
				}
				c = (c >> dropShift) | top<<topShift
			} else {
				var nc seed.Code
				ok := true
				for k := scanWord - 1; k >= 0; k-- {
					b := data[i+k]
					if b >= 4 {
						ok = false
						break
					}
					nc = nc<<2 | seed.Code(b)
				}
				if !ok {
					continue
				}
				c = nc
				valid = true
			}
			scanned++
			if present[c>>6]>>(c&63)&1 == 0 {
				continue
			}
			dbPos := int32(i)
			s1 := db.SeqAt(dbPos)
			lo1, hi1 := db.SeqBounds(int(s1))
			for rel := e.head[c]; rel >= 0; rel = e.nextPos[rel] {
				hits++
				diag := dbPos - rel + diagOff
				if e.diagGen[diag] == gen && e.diagEnd[diag] > dbPos {
					skips++
					continue
				}
				qPos := qLo + rel
				// Verify: grow the exact-match run around the probe to
				// the full word size W (NCBI's mini-extension).
				l1, l2 := dbPos, qPos
				for l1 > lo1 && l2 > qLo && d1[l1-1] == d2[l2-1] && d1[l1-1] < 4 {
					l1--
					l2--
				}
				r1, r2 := dbPos+sw, qPos+sw
				for r1 < hi1 && r2 < qHi && d1[r1] == d2[r2] && d1[r1] < 4 {
					r1++
					r2++
				}
				if r1-l1 < w {
					failed++
					// Remember the probe so later probes of the same
					// failed run are skipped cheaply.
					e.diagGen[diag] = gen
					e.diagEnd[diag] = r1
					continue
				}
				extCount++
				h, _ := e.ext.Extend(d1, d2, l1, l2, lo1, hi1, qLo, qHi, 0, nil)
				e.diagGen[diag] = gen
				e.diagEnd[diag] = h.E1
				if h.Score >= opt.MinUngappedScore {
					hsps = append(hsps, h)
				}
			}
		}
	}
	met.ScannedPositions += scanned
	met.WordHits += hits
	met.SkippedByDiag += skips
	met.VerifyFailed += failed
	met.Extensions += extCount
	met.ScanTime += time.Since(t0)

	// ---- gapped extensions over diagonal-sorted HSPs ----
	t0 = time.Now()
	hsp.SortByDiag(hsps)
	met.HSPs += len(hsps)
	var ta align.TAlign
	for _, h := range hsps {
		if ta.Covered(h) {
			met.SkippedCovered++
			continue
		}
		met.GappedExtensions++
		m1, m2 := h.Mid()
		// Bounds: db side limited to the subject sequence, query side to
		// the query record.
		s1 := db.SeqAt(m1)
		lo1, hi1 := db.SeqBounds(int(s1))
		left := e.gapExt.ExtendLeft(d1, d2, m1, lo1, m2, qLo)
		right := e.gapExt.ExtendRight(d1, d2, m1, hi1, m2, qHi)
		r := left.Add(right)
		if r.AlignLen() == 0 {
			continue
		}
		ta.Add(align.Alignment{
			Seq1: s1, Seq2: int32(qi),
			S1: m1 - left.Len1, E1: m1 + right.Len1,
			S2: m2 - left.Len2, E2: m2 + right.Len2,
			Score:      r.Score,
			Matches:    r.Matches,
			Mismatches: r.Mismatches,
			GapOpens:   r.GapOpens,
			GapBases:   r.GapBases(),
			Length:     r.AlignLen(),
			Anchor1:    m1,
			Anchor2:    m2,
		})
	}
	met.GapTime += time.Since(t0)
	return ta.All()
}
