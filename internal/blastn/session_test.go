package blastn

import (
	"math/rand"
	"testing"

	"repro/internal/bank"
)

// TestSessionReuseMatchesCompare: one Session serving several query
// banks (including re-serving the first, and a both-strand pass) must
// produce exactly what one-shot Compare produces for each — the
// generation-stamped engine state cannot leak between query banks.
func TestSessionReuseMatchesCompare(t *testing.T) {
	db, q1 := testBanks(41, 5, 5, 3, 600)
	// Same generator seed reproduces the same db sequences, so q2 is a
	// differently-shaped query bank homologous to the SAME db.
	_, q2 := testBanks(41, 5, 8, 4, 600)
	// A query bank with much longer sequences forces the session's
	// diagonal/word arrays to grow mid-life.
	rng := rand.New(rand.NewSource(45))
	qLong := mkBank("qlong", randSeq(rng, 2000), randSeq(rng, 1800))
	opt := DefaultOptions()

	s, err := NewSession(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range []*bank.Bank{q1, q2, qLong, q1} {
		got, err := s.Compare(q)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compare(db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref.Alignments) == 0 && q != qLong {
			t.Fatalf("round %d: degenerate test, no alignments", i)
		}
		if len(got.Alignments) != len(ref.Alignments) {
			t.Fatalf("round %d: session found %d alignments, one-shot %d",
				i, len(got.Alignments), len(ref.Alignments))
		}
		for j := range ref.Alignments {
			if got.Alignments[j] != ref.Alignments[j] {
				t.Fatalf("round %d: alignment %d differs:\n  session: %+v\n  oneshot: %+v",
					i, j, got.Alignments[j], ref.Alignments[j])
			}
		}
	}
}

func TestSessionBothStrands(t *testing.T) {
	db, q := testBanks(43, 4, 4, 3, 500)
	opt := DefaultOptions()
	opt.BothStrands = true
	s, err := NewSession(db, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Two rounds on the same queries: the strand passes share one
	// engine inside a session, and a second round must still agree.
	for i := 0; i < 2; i++ {
		got, err := s.Compare(q)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Compare(db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Alignments) != len(ref.Alignments) {
			t.Fatalf("round %d: %d vs %d alignments", i, len(got.Alignments), len(ref.Alignments))
		}
		for j := range ref.Alignments {
			if got.Alignments[j] != ref.Alignments[j] {
				t.Fatalf("round %d: alignment %d differs", i, j)
			}
		}
	}
}

func TestNewSessionValidates(t *testing.T) {
	db, _ := testBanks(44, 2, 2, 1, 200)
	opt := DefaultOptions()
	opt.W = 2
	if _, err := NewSession(db, opt); err == nil {
		t.Error("invalid options accepted")
	}
}
