package simulate

import (
	"bytes"
	"testing"

	"repro/internal/bank"
	"repro/internal/core"
	"repro/internal/dna"
	"repro/internal/dust"
)

func TestPoolDeterministic(t *testing.T) {
	a := NewPool(7, 10, 500)
	b := NewPool(7, 10, 500)
	if len(a.Genes) != len(b.Genes) {
		t.Fatal("pool sizes differ")
	}
	for i := range a.Genes {
		if !bytes.Equal(a.Genes[i], b.Genes[i]) {
			t.Fatalf("gene %d differs", i)
		}
	}
	c := NewPool(8, 10, 500)
	same := true
	for i := range a.Genes {
		if len(a.Genes[i]) != len(c.Genes[i]) || !bytes.Equal(a.Genes[i], c.Genes[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical pools")
	}
}

func TestESTBankShape(t *testing.T) {
	pool := NewPool(1, 50, 800)
	spec := ESTSpec{Name: "E", Seed: 2, NumSeqs: 200, MeanLen: 500, GeneFraction: 0.5,
		Mut: Mutation{Sub: 0.03, Indel: 0.004}, PolyATailFraction: 0.2}
	b := EST(spec, pool)
	if b.NumSeqs() != 200 {
		t.Fatalf("NumSeqs = %d", b.NumSeqs())
	}
	mean := float64(b.TotalBases()) / float64(b.NumSeqs())
	if mean < 300 || mean > 800 {
		t.Errorf("mean read length %v outside expected range", mean)
	}
}

func TestESTDeterministic(t *testing.T) {
	pool := NewPool(1, 20, 600)
	spec := ESTSpec{Name: "E", Seed: 3, NumSeqs: 50, MeanLen: 400, GeneFraction: 0.5,
		Mut: Mutation{Sub: 0.03, Indel: 0.004}}
	a := EST(spec, pool)
	pool2 := NewPool(1, 20, 600)
	b := EST(spec, pool2)
	if !bytes.Equal(a.Data, b.Data) {
		t.Error("EST generation not deterministic")
	}
}

func TestGenomicBankShape(t *testing.T) {
	pool := NewPool(1, 30, 700)
	g := Genomic(GenomicSpec{
		Name: "G", Seed: 4, NumSeqs: 3, SeqLen: 50000,
		RepeatFamilies: 4, RepeatUnitLen: 400, RepeatCopies: 10,
		GeneDensity: 2, Mut: Mutation{Sub: 0.04, Indel: 0.004},
		LowComplexityDensity: 3,
	}, pool)
	if g.NumSeqs() != 3 {
		t.Fatalf("NumSeqs = %d", g.NumSeqs())
	}
	if g.TotalBases() != 150000 {
		t.Errorf("TotalBases = %d", g.TotalBases())
	}
}

func TestGenomicHasLowComplexityTracts(t *testing.T) {
	pool := NewPool(1, 5, 500)
	g := Genomic(GenomicSpec{
		Name: "G", Seed: 5, NumSeqs: 1, SeqLen: 100000,
		LowComplexityDensity: 10, Mut: Mutation{Sub: 0.02, Indel: 0.002},
	}, pool)
	frac := dust.New(0, 0).MaskedFraction(g.SeqCodes(0))
	if frac < 0.005 {
		t.Errorf("masked fraction %v too low; tracts missing", frac)
	}
}

func TestSharedPoolProducesCrossBankHomology(t *testing.T) {
	pool := NewPool(42, 40, 800)
	spec := ESTSpec{Name: "A", Seed: 10, NumSeqs: 120, MeanLen: 500, GeneFraction: 0.6,
		Mut: Mutation{Sub: 0.035, Indel: 0.004}}
	a := EST(spec, pool)
	spec.Name, spec.Seed = "B", 11
	b := EST(spec, pool)
	res, err := core.Compare(a, b, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) < 20 {
		t.Errorf("shared pool yielded only %d alignments", len(res.Alignments))
	}
}

func TestPrivatePoolsProduceNoHomology(t *testing.T) {
	poolA := NewPool(1, 30, 700)
	poolB := NewPool(2, 30, 700)
	spec := ESTSpec{Name: "A", Seed: 20, NumSeqs: 80, MeanLen: 500, GeneFraction: 0.6,
		Mut: Mutation{Sub: 0.035, Indel: 0.004}}
	a := EST(spec, poolA)
	spec.Name, spec.Seed = "B", 21
	b := EST(spec, poolB)
	res, err := core.Compare(a, b, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) > 2 {
		t.Errorf("private pools yielded %d alignments, want ~0", len(res.Alignments))
	}
}

func TestDataSetShapesMatchPaperTable(t *testing.T) {
	const scale = 64
	ds := NewDataSet(scale)
	for _, pb := range AllPaperBanks {
		b := ds.Get(pb)
		if b == nil {
			t.Fatalf("bank %s missing", pb)
		}
		_, wantMbp := PaperShape(pb)
		got := b.Mbp() * float64(scale)
		// Genomic banks cap sequence counts, so sizes are approximate;
		// within 40% of the scaled paper value is structurally faithful.
		if got < wantMbp*0.6 || got > wantMbp*1.4 {
			t.Errorf("%s: scaled size %.2f Mbp vs paper %.2f Mbp", pb, got, wantMbp)
		}
	}
	// EST banks must keep the paper's many-short-reads shape, genomic
	// banks the few-long-sequences shape.
	if ds.Get(EST1).NumSeqs() < 100 {
		t.Errorf("EST1 has %d seqs at scale %d", ds.Get(EST1).NumSeqs(), scale)
	}
	if ds.Get(H10).NumSeqs() > 20 {
		t.Errorf("H10 has %d seqs, want few long sequences", ds.Get(H10).NumSeqs())
	}
	if ds.Get(BCT).NumSeqs() > 10 {
		t.Errorf("BCT has %d seqs", ds.Get(BCT).NumSeqs())
	}
}

func TestDataSetDeterministic(t *testing.T) {
	a := NewDataSet(128)
	b := NewDataSet(128)
	for _, pb := range AllPaperBanks {
		if !bytes.Equal(a.Get(pb).Data, b.Get(pb).Data) {
			t.Errorf("bank %s not deterministic", pb)
		}
	}
}

func TestBanksAreCleanDNA(t *testing.T) {
	ds := NewDataSet(128)
	for _, pb := range AllPaperBanks {
		b := ds.Get(pb)
		for i := 0; i < b.NumSeqs(); i++ {
			for _, c := range b.SeqCodes(i) {
				if !dna.IsValid(c) {
					t.Fatalf("%s seq %d contains non-ACGT code %#x", pb, i, c)
				}
			}
		}
	}
}

func TestH10xBCTStaysEmpty(t *testing.T) {
	// The paper's sensitivity table has 0 alignments for H10 vs BCT;
	// the private BCT pool must reproduce that.
	ds := NewDataSet(64)
	res, err := core.Compare(ds.Get(H10), ds.Get(BCT), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) > 3 {
		t.Errorf("H10×BCT yielded %d alignments, paper reports 0", len(res.Alignments))
	}
}

// Mixed-orientation EST banks: single-strand search misses the
// reversed reads; BothStrands recovers them (the §4 strand feature).
func TestReverseFractionNeedsBothStrands(t *testing.T) {
	pool := NewPool(77, 60, 800)
	mut := Mutation{Sub: 0.03, Indel: 0.003}
	db := EST(ESTSpec{Name: "db", Seed: 70, NumSeqs: 150, MeanLen: 500,
		GeneFraction: 0.7, Mut: mut}, pool)
	mixed := EST(ESTSpec{Name: "mixed", Seed: 71, NumSeqs: 150, MeanLen: 500,
		GeneFraction: 0.7, Mut: mut, ReverseFraction: 0.5}, pool)

	plusOpt := core.DefaultOptions()
	plus, err := core.Compare(db, mixed, plusOpt)
	if err != nil {
		t.Fatal(err)
	}
	bothOpt := core.DefaultOptions()
	bothOpt.Strand = core.BothStrands
	both, err := core.Compare(db, mixed, bothOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Alignments) <= len(plus.Alignments) {
		t.Errorf("both strands found %d alignments, plus-only %d; reversed reads not recovered",
			len(both.Alignments), len(plus.Alignments))
	}
	minus := 0
	for _, a := range both.Alignments {
		if a.Minus {
			minus++
		}
	}
	if minus == 0 {
		t.Error("no minus-strand alignments reported")
	}
	// Roughly half the homologous reads are reversed; expect a
	// substantial minus fraction, not a token one.
	if float64(minus) < 0.2*float64(len(both.Alignments)) {
		t.Errorf("minus fraction suspiciously low: %d of %d", minus, len(both.Alignments))
	}
}

func TestMutationRatesRespected(t *testing.T) {
	// A heavily mutated copy should diverge; a lightly mutated one
	// should stay nearly  identical. Identity measured via alignment.
	pool := NewPool(9, 1, 2000)
	mkBankFromGene := func(name string, mut Mutation, seedVal int64) *bank.Bank {
		spec := ESTSpec{Name: name, Seed: seedVal, NumSeqs: 1, MeanLen: 1900,
			GeneFraction: 1.0, Mut: mut}
		return EST(spec, pool)
	}
	orig := mkBankFromGene("o", Mutation{}, 30)
	light := mkBankFromGene("l", Mutation{Sub: 0.02, Indel: 0.002}, 31)
	res, err := core.Compare(orig, light, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alignments) == 0 {
		t.Fatal("no alignment between original and light copy")
	}
	if id := res.Alignments[0].Identity(); id < 0.93 {
		t.Errorf("light mutation identity %v, want ≥ 0.93", id)
	}
}
