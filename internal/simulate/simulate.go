// Package simulate generates the synthetic DNA banks that stand in for
// the paper's GenBank data sets (§3.2: EST1–EST7 sampled from the
// GenBank EST division, the gbvrl1 virus division, miscellaneous
// bacterial genomes, and human chromosomes 10 and 19).
//
// The substitution is documented in DESIGN.md §3: what drives both the
// paper's speed-up curves and its sensitivity tables is the *structure*
// of the banks — many short reads vs. few long genomic sequences, and
// the density of diverged homologies between bank pairs — not the
// literal GenBank bases. The generator reproduces that structure
// deterministically:
//
//   - a shared "gene pool" of ancestral segments models the fact that
//     GenBank EST banks sampled at random share many transcripts;
//   - each EST read is a mutated (substitutions + indels) window of a
//     pool gene over a random background, so alignments of every
//     quality exist, including the borderline-E-value ones that cause
//     the paper's ~3% cross-engine disagreement;
//   - genomic banks carry repeat families and low-complexity tracts so
//     the dust filter and the repeat discussion of §4 are exercised.
//
// All generation is driven by explicit seeds: the same Spec always
// yields byte-identical banks.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/bank"
	"repro/internal/dna"
	"repro/internal/fasta"
)

// letters used for synthesis.
var letters = []byte("ACGT")

// Pool is a shared set of ancestral gene segments that related banks
// sample from.
type Pool struct {
	Genes [][]byte
	rng   *rand.Rand
}

// NewPool creates a deterministic gene pool. meanLen is the mean gene
// length; lengths vary ±50%.
func NewPool(seed int64, nGenes, meanLen int) *Pool {
	rng := rand.New(rand.NewSource(seed))
	p := &Pool{rng: rng}
	for i := 0; i < nGenes; i++ {
		l := meanLen/2 + rng.Intn(meanLen)
		g := make([]byte, l)
		for j := range g {
			g[j] = letters[rng.Intn(4)]
		}
		p.Genes = append(p.Genes, g)
	}
	return p
}

// Mutation rates for derived copies.
type Mutation struct {
	// Sub is the per-base substitution probability.
	Sub float64
	// Indel is the per-base probability of an insertion or deletion
	// (split evenly).
	Indel float64
}

// mutate applies substitutions and indels to a template.
func mutate(rng *rand.Rand, tpl []byte, mut Mutation) []byte {
	out := make([]byte, 0, len(tpl)+8)
	for _, c := range tpl {
		r := rng.Float64()
		switch {
		case r < mut.Indel/2: // deletion
		case r < mut.Indel: // insertion
			out = append(out, c, letters[rng.Intn(4)])
		case r < mut.Indel+mut.Sub:
			out = append(out, letters[rng.Intn(4)])
		default:
			out = append(out, c)
		}
	}
	return out
}

func randSeq(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return b
}

// ESTSpec describes an EST-division-like bank: many short reads, a
// fraction of which carry (possibly partial) diverged copies of pool
// genes.
type ESTSpec struct {
	Name string
	Seed int64
	// NumSeqs and MeanLen set the bank shape (paper EST banks average
	// ~450-600 nt per read).
	NumSeqs int
	MeanLen int
	// GeneFraction of reads embed a pool-gene window; the rest are
	// random background.
	GeneFraction float64
	// Mut diversifies embedded gene copies.
	Mut Mutation
	// PolyATailFraction of reads get a poly-A tail, as real ESTs do;
	// exercises the dust filter.
	PolyATailFraction float64
	// ReverseFraction of reads are emitted as the reverse complement of
	// their generated sequence, as real EST runs mix orientations. The
	// paper's single-strand prototype misses these; the BothStrands
	// option recovers them.
	ReverseFraction float64
}

// EST generates an EST-like bank from the shared pool.
func EST(spec ESTSpec, pool *Pool) *bank.Bank {
	rng := rand.New(rand.NewSource(spec.Seed))
	recs := make([]*fasta.Record, 0, spec.NumSeqs)
	for i := 0; i < spec.NumSeqs; i++ {
		l := spec.MeanLen/2 + rng.Intn(spec.MeanLen)
		var seq []byte
		if rng.Float64() < spec.GeneFraction && len(pool.Genes) > 0 {
			g := pool.Genes[rng.Intn(len(pool.Genes))]
			// A window of the gene, possibly the whole gene.
			wl := l
			if wl > len(g) {
				wl = len(g)
			}
			off := 0
			if len(g) > wl {
				off = rng.Intn(len(g) - wl)
			}
			seq = mutate(rng, g[off:off+wl], spec.Mut)
			// Pad with background if the read is longer than the gene.
			if len(seq) < l {
				seq = append(seq, randSeq(rng, l-len(seq))...)
			}
		} else {
			seq = randSeq(rng, l)
		}
		if rng.Float64() < spec.PolyATailFraction {
			tail := make([]byte, 8+rng.Intn(25))
			for j := range tail {
				tail[j] = 'A'
			}
			seq = append(seq, tail...)
		}
		// The short-circuit matters: an unused feature must not consume
		// a random draw, or enabling it would reshuffle every bank
		// generated after this point (and scale-16 results would stop
		// matching EXPERIMENTS.md).
		if spec.ReverseFraction > 0 && rng.Float64() < spec.ReverseFraction {
			seq = dna.Decode(dna.ReverseComplement(dna.Encode(seq)))
		}
		recs = append(recs, &fasta.Record{
			ID:  fmt.Sprintf("%s_%06d", spec.Name, i),
			Seq: seq,
		})
	}
	return bank.New(spec.Name, recs)
}

// GenomicSpec describes a genomic bank: few long sequences with repeat
// families, low-complexity tracts, and optional diverged pool genes
// embedded (so cross-bank homologies exist).
type GenomicSpec struct {
	Name string
	Seed int64
	// NumSeqs long sequences of ~SeqLen bases each.
	NumSeqs int
	SeqLen  int
	// RepeatFamilies distinct repeat units are created; each is
	// stamped RepeatCopies times across the bank with light mutation.
	RepeatFamilies int
	RepeatUnitLen  int
	RepeatCopies   int
	// GeneDensity is the expected number of embedded pool genes per
	// 100 kb.
	GeneDensity float64
	// Mut diversifies embedded genes and repeat copies.
	Mut Mutation
	// LowComplexity tracts (poly-A / dinucleotide) per 100 kb.
	LowComplexityDensity float64
}

// Genomic generates a genomic bank.
func Genomic(spec GenomicSpec, pool *Pool) *bank.Bank {
	rng := rand.New(rand.NewSource(spec.Seed))

	// Repeat family units.
	units := make([][]byte, spec.RepeatFamilies)
	for i := range units {
		units[i] = randSeq(rng, spec.RepeatUnitLen)
	}

	recs := make([]*fasta.Record, 0, spec.NumSeqs)
	for i := 0; i < spec.NumSeqs; i++ {
		seq := randSeq(rng, spec.SeqLen)
		// Stamp repeat copies.
		if spec.RepeatFamilies > 0 {
			for c := 0; c < spec.RepeatCopies; c++ {
				u := mutate(rng, units[rng.Intn(len(units))], spec.Mut)
				if len(u) >= len(seq) {
					continue
				}
				pos := rng.Intn(len(seq) - len(u))
				copy(seq[pos:], u)
			}
		}
		// Embed diverged pool genes.
		nGenes := int(spec.GeneDensity * float64(spec.SeqLen) / 100000)
		for g := 0; g < nGenes && len(pool.Genes) > 0; g++ {
			gene := mutate(rng, pool.Genes[rng.Intn(len(pool.Genes))], spec.Mut)
			if len(gene) >= len(seq) {
				continue
			}
			pos := rng.Intn(len(seq) - len(gene))
			copy(seq[pos:], gene)
		}
		// Low-complexity tracts.
		nTracts := int(spec.LowComplexityDensity * float64(spec.SeqLen) / 100000)
		for t := 0; t < nTracts; t++ {
			tl := 20 + rng.Intn(80)
			if tl >= len(seq) {
				continue
			}
			pos := rng.Intn(len(seq) - tl)
			switch rng.Intn(3) {
			case 0: // homopolymer
				c := letters[rng.Intn(4)]
				for k := 0; k < tl; k++ {
					seq[pos+k] = c
				}
			case 1: // dinucleotide
				a, b := letters[rng.Intn(4)], letters[rng.Intn(4)]
				for k := 0; k < tl; k++ {
					if k%2 == 0 {
						seq[pos+k] = a
					} else {
						seq[pos+k] = b
					}
				}
			default: // trinucleotide
				u := randSeq(rng, 3)
				for k := 0; k < tl; k++ {
					seq[pos+k] = u[k%3]
				}
			}
		}
		recs = append(recs, &fasta.Record{
			ID:  fmt.Sprintf("%s_chr%02d", spec.Name, i+1),
			Seq: seq,
		})
	}
	return bank.New(spec.Name, recs)
}

// PaperBank identifies one of the §3.2 data-set banks.
type PaperBank string

// The paper's banks.
const (
	EST1 PaperBank = "EST1"
	EST2 PaperBank = "EST2"
	EST3 PaperBank = "EST3"
	EST4 PaperBank = "EST4"
	EST5 PaperBank = "EST5"
	EST6 PaperBank = "EST6"
	EST7 PaperBank = "EST7"
	VRL  PaperBank = "VRL"
	BCT  PaperBank = "BCT"
	H10  PaperBank = "H10"
	H19  PaperBank = "H19"
)

// AllPaperBanks lists the banks in the paper's table order.
var AllPaperBanks = []PaperBank{EST1, EST2, EST3, EST4, EST5, EST6, EST7, VRL, BCT, H10, H19}

// paperShape captures the paper's data-set table (nb. seq, Mbp); the
// generator reproduces these shapes scaled by 1/Scale.
var paperShape = map[PaperBank]struct {
	numSeqs int
	mbp     float64
}{
	EST1: {13013, 6.44},
	EST2: {11220, 6.65},
	EST3: {37483, 14.64},
	EST4: {34902, 14.87},
	EST5: {50537, 25.48},
	EST6: {53550, 25.20},
	EST7: {88452, 40.08},
	VRL:  {72113, 65.84},
	BCT:  {59, 98.10},
	H10:  {19, 131.73},
	H19:  {6, 56.03},
}

// PaperShape exposes the paper's (#sequences, Mbp) for a bank.
func PaperShape(b PaperBank) (numSeqs int, mbp float64) {
	s := paperShape[b]
	return s.numSeqs, s.mbp
}

// DataSet generates every paper bank at the given scale divisor
// (Scale=16 → a 6.44 Mbp bank becomes ~0.40 Mbp with 1/16 the reads).
// Banks share one gene pool so EST×EST, ×VRL and ×chromosome pairs all
// have homologies, mirroring the paper's non-empty result tables — and
// H10×BCT stays (nearly) empty by giving BCT its own pool, matching the
// paper's 0-alignment row.
type DataSet struct {
	Scale int
	Banks map[PaperBank]*bank.Bank
}

// NewDataSet generates all banks deterministically.
func NewDataSet(scale int) *DataSet {
	if scale < 1 {
		scale = 1
	}
	sharedPool := NewPool(1001, 400, 900)
	bctPool := NewPool(2002, 200, 900)

	ds := &DataSet{Scale: scale, Banks: map[PaperBank]*bank.Bank{}}

	estMut := Mutation{Sub: 0.035, Indel: 0.004}
	for i, pb := range []PaperBank{EST1, EST2, EST3, EST4, EST5, EST6, EST7} {
		shape := paperShape[pb]
		n := shape.numSeqs / scale
		if n < 10 {
			n = 10
		}
		meanLen := int(shape.mbp * 1e6 / float64(shape.numSeqs))
		ds.Banks[pb] = EST(ESTSpec{
			Name:              string(pb),
			Seed:              3000 + int64(i),
			NumSeqs:           n,
			MeanLen:           meanLen,
			GeneFraction:      0.45,
			Mut:               estMut,
			PolyATailFraction: 0.15,
		}, sharedPool)
	}

	// VRL: mid-length viral sequences, moderate pool sharing.
	{
		shape := paperShape[VRL]
		n := shape.numSeqs / scale
		if n < 10 {
			n = 10
		}
		meanLen := int(shape.mbp * 1e6 / float64(shape.numSeqs))
		ds.Banks[VRL] = EST(ESTSpec{
			Name:         string(VRL),
			Seed:         4001,
			NumSeqs:      n,
			MeanLen:      meanLen,
			GeneFraction: 0.25,
			Mut:          Mutation{Sub: 0.06, Indel: 0.006},
		}, sharedPool)
	}

	// BCT: few long bacterial genomes from a PRIVATE pool, so H10×BCT
	// reproduces the paper's empty table row.
	{
		shape := paperShape[BCT]
		n := shape.numSeqs
		if n > 6 {
			n = 6
		}
		ds.Banks[BCT] = Genomic(GenomicSpec{
			Name:                 string(BCT),
			Seed:                 5001,
			NumSeqs:              n,
			SeqLen:               int(shape.mbp * 1e6 / float64(n) / float64(scale)),
			RepeatFamilies:       6,
			RepeatUnitLen:        600,
			RepeatCopies:         30 / n,
			GeneDensity:          1.2,
			Mut:                  Mutation{Sub: 0.05, Indel: 0.005},
			LowComplexityDensity: 2,
		}, bctPool)
	}

	// Human chromosomes: long sequences sharing the main pool (so
	// H10/H19 × VRL reproduce the paper's large result counts).
	for i, pb := range []PaperBank{H10, H19} {
		shape := paperShape[pb]
		n := shape.numSeqs
		if n > 4 {
			n = 4
		}
		ds.Banks[pb] = Genomic(GenomicSpec{
			Name:                 string(pb),
			Seed:                 6001 + int64(i),
			NumSeqs:              n,
			SeqLen:               int(shape.mbp * 1e6 / float64(n) / float64(scale)),
			RepeatFamilies:       10,
			RepeatUnitLen:        300,
			RepeatCopies:         60 / n,
			GeneDensity:          2.5,
			Mut:                  Mutation{Sub: 0.045, Indel: 0.004},
			LowComplexityDensity: 3,
		}, sharedPool)
	}
	return ds
}

// Get returns a generated bank.
func (d *DataSet) Get(b PaperBank) *bank.Bank { return d.Banks[b] }
