// Package cliflag holds small flag.Value helpers shared by the
// command-line tools.
package cliflag

import "strings"

// Multi collects a repeatable string flag (e.g. -i a.fasta -i b.fasta).
type Multi []string

// String implements flag.Value.
func (m *Multi) String() string { return strings.Join(*m, ",") }

// Set implements flag.Value, appending each occurrence.
func (m *Multi) Set(v string) error {
	*m = append(*m, v)
	return nil
}
