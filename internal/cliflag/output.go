package cliflag

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Output is a CLI result sink: stdout by default, or a buffered file
// for -o. It exists because the naive `f, _ := os.Create(path); defer
// f.Close()` shape silently truncates results — a failed write or
// close (ENOSPC, quota, NFS flush-at-close) is discarded by the defer
// and the process exits 0 over a partial file. Output centralizes the
// checked flush-then-close pattern (the one cmd/bankgen writes inline)
// so the tools exit non-zero whenever the bytes did not all land.
//
//	out, err := cliflag.OpenOutput(*outPath)
//	// write to out.W ...
//	err = out.Finish() // MUST be checked before a zero exit
type Output struct {
	// W is the writer to produce results into.
	W io.Writer

	path string
	f    *os.File
	buf  *bufio.Writer
}

// OpenOutput opens path for writing, buffered; an empty path means
// stdout.
func OpenOutput(path string) (*Output, error) {
	if path == "" {
		return &Output{W: os.Stdout}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	buf := bufio.NewWriter(f)
	return &Output{W: buf, path: path, f: f, buf: buf}, nil
}

// Finish flushes and closes the underlying file, reporting the first
// failure; for stdout it is a no-op. After Finish the Output must not
// be written to. A non-nil error means the output file is incomplete
// and the caller must exit non-zero.
func (o *Output) Finish() error {
	if o.f == nil {
		return nil
	}
	if err := o.buf.Flush(); err != nil {
		o.f.Close()
		return fmt.Errorf("writing %s: %w", o.path, err)
	}
	if err := o.f.Close(); err != nil {
		return fmt.Errorf("closing %s: %w", o.path, err)
	}
	return nil
}
