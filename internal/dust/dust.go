// Package dust implements a DUST-style low-complexity filter. The paper
// (§2.1) optionally discards W-words in low-complexity regions from the
// index "to eliminate non interesting alignments made of small repeats",
// and notes (§3.4) that its filter differs from NCBI's dust [14]; this
// implementation is the same family of algorithm: windows are scored by
// their triplet-composition bias and high-scoring spans are masked.
//
// Score of a window holding triplet counts c_t over k = L-2 triplets:
//
//	score = Σ_t c_t(c_t-1)/2 / (k-1)
//
// A uniform-random window scores ≈0.5; poly-A or dinucleotide repeats
// score far above the default threshold of 2.0 (NCBI dust "level 20").
package dust

import "repro/internal/dna"

// DefaultWindow is the classic dust window size.
const DefaultWindow = 64

// DefaultThreshold corresponds to NCBI dust level 20 (score×10 > 20).
const DefaultThreshold = 2.0

// Masker holds filter parameters. The zero value is not ready; use New.
type Masker struct {
	// Window is the sliding-window length in bases.
	Window int
	// Threshold is the triplet score above which a window is masked.
	Threshold float64
}

// New returns a Masker with the given parameters; non-positive values
// select the defaults.
func New(window int, threshold float64) *Masker {
	m := &Masker{Window: window, Threshold: threshold}
	if m.Window <= 4 {
		m.Window = DefaultWindow
	}
	if m.Threshold <= 0 {
		m.Threshold = DefaultThreshold
	}
	return m
}

// Interval is a half-open masked range [Start,End) in the coordinates of
// the scanned slice.
type Interval struct {
	Start, End int
}

// Mask returns merged masked intervals for a coded sequence. Ambiguous
// or sentinel bytes split the sequence into independently scanned runs
// (and are never themselves masked — the indexer skips them anyway).
func (m *Masker) Mask(codes []byte) []Interval {
	var out []Interval
	runStart := -1
	for i := 0; i <= len(codes); i++ {
		valid := i < len(codes) && dna.IsValid(codes[i])
		switch {
		case valid && runStart < 0:
			runStart = i
		case !valid && runStart >= 0:
			out = appendMerged(out, m.maskRun(codes, runStart, i)...)
			runStart = -1
		}
	}
	return out
}

// maskRun scans one all-valid run [lo,hi) and returns masked intervals.
func (m *Masker) maskRun(codes []byte, lo, hi int) []Interval {
	n := hi - lo
	if n < 3 {
		return nil
	}
	w := m.Window
	if w > n {
		w = n
	}
	// Triplet codes for positions lo..hi-3.
	var counts [64]int16
	tripAt := func(p int) int {
		return int(codes[p])<<4 | int(codes[p+1])<<2 | int(codes[p+2])
	}
	var out []Interval
	// pairs = Σ c(c-1)/2, maintained incrementally.
	pairs := 0
	add := func(t int) {
		pairs += int(counts[t])
		counts[t]++
	}
	del := func(t int) {
		counts[t]--
		pairs -= int(counts[t])
	}
	k := w - 2 // triplets per full window
	// Prime first window's triplets.
	for p := lo; p < lo+k; p++ {
		add(tripAt(p))
	}
	for start := lo; ; start++ {
		denom := k - 1
		if denom < 1 {
			denom = 1
		}
		score := float64(pairs) / float64(denom)
		if score > m.Threshold {
			out = appendMerged(out, Interval{start, start + w})
		}
		if start+w >= hi {
			break
		}
		del(tripAt(start))
		add(tripAt(start + w - 2))
	}
	return out
}

// appendMerged appends intervals, merging overlapping/adjacent ones.
func appendMerged(out []Interval, ivs ...Interval) []Interval {
	for _, iv := range ivs {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// MaskBits returns a per-position masked flag for codes, convenient for
// the indexer (a seed is discarded when any of its bases is masked).
func (m *Masker) MaskBits(codes []byte) []bool {
	bits := make([]bool, len(codes))
	for _, iv := range m.Mask(codes) {
		for i := iv.Start; i < iv.End && i < len(bits); i++ {
			bits[i] = true
		}
	}
	return bits
}

// MaskPrefix returns a prefix count of masked positions: pfx[i] is the
// number of masked positions before i, so a window [p,p+w) is clean iff
// pfx[p+w] == pfx[p] — the O(1) per-window test the indexer and the
// BLAT query scan use instead of scanning w mask bits.
func (m *Masker) MaskPrefix(codes []byte) []int32 {
	bits := m.MaskBits(codes)
	pfx := make([]int32, len(bits)+1)
	for i, masked := range bits {
		pfx[i+1] = pfx[i]
		if masked {
			pfx[i+1]++
		}
	}
	return pfx
}

// MaskedFraction reports the fraction of positions masked.
func (m *Masker) MaskedFraction(codes []byte) float64 {
	if len(codes) == 0 {
		return 0
	}
	n := 0
	for _, iv := range m.Mask(codes) {
		n += iv.End - iv.Start
	}
	return float64(n) / float64(len(codes))
}
