package dust

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/dna"
)

func maskString(t *testing.T, m *Masker, s string) []Interval {
	t.Helper()
	return m.Mask(dna.Encode([]byte(s)))
}

func TestPolyARunIsMasked(t *testing.T) {
	m := New(0, 0)
	ivs := maskString(t, m, strings.Repeat("A", 200))
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	if ivs[0].Start != 0 || ivs[0].End != 200 {
		t.Errorf("interval = %v, want [0,200)", ivs[0])
	}
}

func TestDinucleotideRepeatIsMasked(t *testing.T) {
	m := New(0, 0)
	ivs := maskString(t, m, strings.Repeat("AT", 100))
	if len(ivs) == 0 {
		t.Fatal("AT repeat not masked")
	}
}

func TestTrinucleotideRepeatIsMasked(t *testing.T) {
	m := New(0, 0)
	ivs := maskString(t, m, strings.Repeat("CAG", 70))
	if len(ivs) == 0 {
		t.Fatal("CAG repeat not masked")
	}
}

func TestRandomSequenceMostlyUnmasked(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	letters := []byte("ACGT")
	s := make([]byte, 20000)
	for i := range s {
		s[i] = letters[rng.Intn(4)]
	}
	m := New(0, 0)
	frac := m.MaskedFraction(dna.Encode(s))
	if frac > 0.05 {
		t.Errorf("random sequence masked fraction = %v, want < 0.05", frac)
	}
}

func TestEmbeddedRepeatMaskedRandomContextNot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	letters := []byte("ACGT")
	mkRand := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(4)]
		}
		return string(b)
	}
	left, right := mkRand(500), mkRand(500)
	s := left + strings.Repeat("A", 120) + right
	m := New(0, 0)
	bits := m.MaskBits(dna.Encode([]byte(s)))
	// The center of the poly-A must be masked.
	for p := 540; p < 580; p++ {
		if !bits[p] {
			t.Fatalf("poly-A center position %d unmasked", p)
		}
	}
	// Positions far away must not be masked (allow the window's bleed).
	for p := 0; p < 400; p++ {
		if bits[p] {
			t.Fatalf("random left-context position %d masked", p)
		}
	}
}

func TestShortSequencesNoPanic(t *testing.T) {
	m := New(0, 0)
	for _, s := range []string{"", "A", "AC", "ACG", "AAAA"} {
		if ivs := maskString(t, m, s); len(ivs) != 0 && len(s) < 4 {
			t.Errorf("%q masked: %v", s, ivs)
		}
	}
}

func TestAmbiguousBasesSplitRuns(t *testing.T) {
	m := New(16, 2.0)
	s := strings.Repeat("A", 40) + "N" + strings.Repeat("A", 40)
	ivs := maskString(t, m, s)
	// Both poly-A runs are masked; the N position (40) never is.
	bits := m.MaskBits(dna.Encode([]byte(s)))
	if bits[40] {
		t.Error("N position masked")
	}
	if !bits[10] || !bits[60] {
		t.Errorf("poly-A runs not masked: %v", ivs)
	}
}

func TestIntervalsAreMergedAndSorted(t *testing.T) {
	m := New(0, 0)
	ivs := maskString(t, m, strings.Repeat("A", 300))
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start <= ivs[i-1].End {
			t.Fatalf("intervals not merged: %v", ivs)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	letters := []byte("ACGT")
	s := make([]byte, 3000)
	for i := range s {
		if i/100%2 == 0 {
			s[i] = 'A' // alternating biased and random stretches
		} else {
			s[i] = letters[rng.Intn(4)]
		}
	}
	codes := dna.Encode(s)
	loose := New(0, 1.0).MaskedFraction(codes)
	strict := New(0, 4.0).MaskedFraction(codes)
	if strict > loose {
		t.Errorf("higher threshold masked more: strict %v > loose %v", strict, loose)
	}
	if loose == 0 {
		t.Error("loose threshold masked nothing on biased input")
	}
}

func TestMaskDeterministic(t *testing.T) {
	s := strings.Repeat("ACGTAAAAAAAAAAAAAAAAAAAAAAAAAAAAGTCA", 10)
	m := New(0, 0)
	a := maskString(t, m, s)
	b := maskString(t, m, s)
	if len(a) != len(b) {
		t.Fatal("non-deterministic interval count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("interval %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNewDefaults(t *testing.T) {
	m := New(0, 0)
	if m.Window != DefaultWindow || m.Threshold != DefaultThreshold {
		t.Errorf("defaults not applied: %+v", m)
	}
	m = New(32, 3.5)
	if m.Window != 32 || m.Threshold != 3.5 {
		t.Errorf("explicit params ignored: %+v", m)
	}
}

func BenchmarkMask1Mb(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	letters := []byte("ACGT")
	s := make([]byte, 1<<20)
	for i := range s {
		s[i] = letters[rng.Intn(4)]
	}
	codes := dna.Encode(s)
	m := New(0, 0)
	b.SetBytes(int64(len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mask(codes)
	}
}
