package bank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dna"
	"repro/internal/fasta"
)

func mk(seqs ...string) *Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: string(rune('a' + i)), Seq: []byte(s)}
	}
	return New("test", recs)
}

func TestLayoutSentinels(t *testing.T) {
	b := mk("ACGT", "TT")
	// Expect: S ACGT S TT S  -> length 4+2+3 sentinels = 9
	if len(b.Data) != 9 {
		t.Fatalf("len(Data) = %d, want 9", len(b.Data))
	}
	for _, p := range []int{0, 5, 8} {
		if b.Data[p] != Sentinel {
			t.Errorf("Data[%d] = %#x, want sentinel", p, b.Data[p])
		}
		if b.SeqAt(int32(p)) != -1 {
			t.Errorf("SeqAt(%d) = %d, want -1", p, b.SeqAt(int32(p)))
		}
	}
}

func TestBasicAccessors(t *testing.T) {
	b := mk("ACGT", "TTG")
	if b.NumSeqs() != 2 {
		t.Fatalf("NumSeqs = %d", b.NumSeqs())
	}
	if b.TotalBases() != 7 {
		t.Errorf("TotalBases = %d, want 7", b.TotalBases())
	}
	if b.SeqLen(0) != 4 || b.SeqLen(1) != 3 {
		t.Errorf("SeqLen = %d,%d", b.SeqLen(0), b.SeqLen(1))
	}
	if b.SeqID(0) != "a" || b.SeqID(1) != "b" {
		t.Errorf("SeqID = %q,%q", b.SeqID(0), b.SeqID(1))
	}
	if got := string(dna.Decode(b.SeqCodes(0))); got != "ACGT" {
		t.Errorf("SeqCodes(0) decodes to %q", got)
	}
	if got := string(dna.Decode(b.SeqCodes(1))); got != "TTG" {
		t.Errorf("SeqCodes(1) decodes to %q", got)
	}
}

func TestSeqBoundsConsistent(t *testing.T) {
	b := mk("ACGT", "", "TT")
	for i := 0; i < b.NumSeqs(); i++ {
		s, e := b.SeqBounds(i)
		if int(e-s) != b.SeqLen(i) {
			t.Errorf("seq %d: bounds [%d,%d) but len %d", i, s, e, b.SeqLen(i))
		}
		for p := s; p < e; p++ {
			if b.SeqAt(p) != int32(i) {
				t.Errorf("SeqAt(%d) = %d, want %d", p, b.SeqAt(p), i)
			}
		}
	}
}

func TestEmptySequenceOccupiesSlot(t *testing.T) {
	b := mk("AC", "", "GT")
	if b.NumSeqs() != 3 {
		t.Fatalf("NumSeqs = %d, want 3", b.NumSeqs())
	}
	if b.SeqLen(1) != 0 {
		t.Errorf("SeqLen(1) = %d, want 0", b.SeqLen(1))
	}
	if b.SeqID(2) != "c" {
		t.Errorf("SeqID(2) = %q", b.SeqID(2))
	}
}

func TestCoord(t *testing.T) {
	b := mk("ACGT", "TTG")
	s0, _ := b.SeqBounds(0)
	seq, off := b.Coord(s0 + 2)
	if seq != 0 || off != 2 {
		t.Errorf("Coord = %d,%d want 0,2", seq, off)
	}
	s1, _ := b.SeqBounds(1)
	seq, off = b.Coord(s1)
	if seq != 1 || off != 0 {
		t.Errorf("Coord = %d,%d want 1,0", seq, off)
	}
}

func TestCoordPanicsOnSentinel(t *testing.T) {
	b := mk("AC")
	defer func() {
		if recover() == nil {
			t.Fatal("Coord(0) on sentinel did not panic")
		}
	}()
	b.Coord(0)
}

func TestAmbiguousBasesStoredInvalid(t *testing.T) {
	b := mk("ANGT")
	s, _ := b.SeqBounds(0)
	if b.Data[s+1] != dna.Invalid {
		t.Errorf("N encoded as %#x, want Invalid", b.Data[s+1])
	}
	if b.TotalBases() != 4 {
		t.Errorf("TotalBases = %d, want 4 (N counts)", b.TotalBases())
	}
	if b.ValidBases() != 3 {
		t.Errorf("ValidBases = %d, want 3", b.ValidBases())
	}
}

func TestSentinelNeverEqualsNucleotideOrInvalid(t *testing.T) {
	for c := byte(0); c < dna.Alphabet; c++ {
		if Sentinel == c {
			t.Fatal("sentinel collides with nucleotide code")
		}
	}
	if Sentinel == dna.Invalid {
		t.Fatal("sentinel collides with dna.Invalid")
	}
}

func TestMbp(t *testing.T) {
	b := mk("ACGT")
	if got := b.Mbp(); got != 4e-6 {
		t.Errorf("Mbp = %v", got)
	}
}

func TestSummary(t *testing.T) {
	b := mk("GGCC", "AATT")
	s := b.Summary()
	if s.NumSeqs != 2 || s.Bases != 8 || s.GC != 0.5 || s.Name != "test" {
		t.Errorf("Summary = %+v", s)
	}
}

func TestReverseComplementBank(t *testing.T) {
	b := mk("GATTACA", "CC")
	rc := b.ReverseComplement()
	if rc.NumSeqs() != 2 {
		t.Fatalf("NumSeqs = %d", rc.NumSeqs())
	}
	if got := string(dna.Decode(rc.SeqCodes(0))); got != "TGTAATC" {
		t.Errorf("rc seq0 = %q", got)
	}
	if got := string(dna.Decode(rc.SeqCodes(1))); got != "GG" {
		t.Errorf("rc seq1 = %q", got)
	}
	if rc.SeqID(0) != "a/rc" {
		t.Errorf("rc id = %q", rc.SeqID(0))
	}
	// double reverse complement restores the original bases
	rcrc := rc.ReverseComplement()
	if got := string(dna.Decode(rcrc.SeqCodes(0))); got != "GATTACA" {
		t.Errorf("rcrc seq0 = %q", got)
	}
}

func TestMemoryFootprintScales(t *testing.T) {
	small := mk("ACGT")
	big := mk("ACGTACGTACGTACGTACGTACGTACGTACGT")
	if small.MemoryFootprint() >= big.MemoryFootprint() {
		t.Errorf("footprints: small %d >= big %d", small.MemoryFootprint(), big.MemoryFootprint())
	}
	// ~5 bytes/position per the paper's estimate (1 SEQ + 4 seqID here).
	if f := big.MemoryFootprint(); f < 5*big.TotalBases() {
		t.Errorf("footprint %d below 5N = %d", f, 5*big.TotalBases())
	}
}

// Property: for every position of every random bank, SeqAt agrees with
// the bounds table, sentinel positions are exactly the complement of
// sequence spans, and Coord round-trips.
func TestPositionMapProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		if len(lens) == 0 || len(lens) > 12 {
			return true
		}
		rng := rand.New(rand.NewSource(int64(len(lens))))
		recs := make([]*fasta.Record, len(lens))
		letters := []byte("ACGT")
		for i, L := range lens {
			seq := make([]byte, int(L)%40)
			for j := range seq {
				seq[j] = letters[rng.Intn(4)]
			}
			recs[i] = &fasta.Record{ID: "q", Seq: seq}
		}
		b := New("prop", recs)
		covered := make([]bool, len(b.Data))
		for i := 0; i < b.NumSeqs(); i++ {
			s, e := b.SeqBounds(i)
			for p := s; p < e; p++ {
				covered[p] = true
				seq, off := b.Coord(p)
				if seq != int32(i) || b.starts[seq]+off != p {
					return false
				}
			}
		}
		for p, c := range covered {
			isSent := b.Data[p] == Sentinel
			if c == isSent { // position must be exactly one of the two
				return false
			}
			if isSent != (b.SeqAt(int32(p)) == -1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSeqChecksums(t *testing.T) {
	b := mk("ACGT", "TTG", "ACGT")
	sums := b.SeqChecksums()
	if len(sums) != 3 {
		t.Fatalf("len(SeqChecksums) = %d, want 3", len(sums))
	}
	if sums[0] != sums[2] {
		t.Error("identical sequences must have identical checksums")
	}
	if sums[0] == sums[1] {
		t.Error("different sequences should have different checksums")
	}
	// Memoized: same backing slice on every call.
	if again := b.SeqChecksums(); &again[0] != &sums[0] {
		t.Error("SeqChecksums not memoized")
	}
	// Checksums are per-sequence content identity: a bank holding the
	// same sequences yields the same vector regardless of bank name.
	other := New("other-name", []*fasta.Record{
		{ID: "x", Seq: []byte("ACGT")},
		{ID: "y", Seq: []byte("TTG")},
		{ID: "z", Seq: []byte("ACGT")},
	})
	for i, s := range other.SeqChecksums() {
		if s != sums[i] {
			t.Errorf("checksum %d differs across content-identical banks", i)
		}
	}
}

func TestSeqChecksumsConcurrent(t *testing.T) {
	b := mk("ACGTACGTAC", "TTGTTG")
	done := make(chan []uint64, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- b.SeqChecksums() }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; &got[0] != &first[0] {
			t.Fatal("concurrent SeqChecksums returned different slices")
		}
	}
}

// TestPrefixLen pins the append-boundary contract: the prefix covering
// k sequences ends one past the sentinel closing sequence k-1, and a
// bank built from the first k records has Data exactly equal to that
// prefix of the longer bank.
func TestPrefixLen(t *testing.T) {
	long := mk("ACGT", "TTG", "CCCC")
	short := mk("ACGT", "TTG")
	if got := long.PrefixLen(0); got != 1 {
		t.Errorf("PrefixLen(0) = %d, want 1 (leading sentinel)", got)
	}
	if got, want := long.PrefixLen(3), len(long.Data); got != want {
		t.Errorf("PrefixLen(NumSeqs) = %d, want len(Data) = %d", got, want)
	}
	k := short.NumSeqs()
	pl := long.PrefixLen(k)
	if pl != len(short.Data) {
		t.Fatalf("PrefixLen(%d) = %d, want len(short.Data) = %d", k, pl, len(short.Data))
	}
	for i := 0; i < pl; i++ {
		if long.Data[i] != short.Data[i] {
			t.Fatalf("Data prefix differs at %d", i)
		}
	}
	if long.Data[pl-1] != Sentinel {
		t.Error("prefix must end on a sentinel")
	}
	defer func() {
		if recover() == nil {
			t.Error("PrefixLen out of range did not panic")
		}
	}()
	long.PrefixLen(4)
}
