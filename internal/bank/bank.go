// Package bank implements the in-memory DNA bank representation of the
// ORIS algorithm (paper §2.1, Fig. 2): every sequence of a FASTA bank is
// 2-bit encoded and concatenated into one SEQ byte array, bracketed by
// sentinel bytes, together with constant-time position→sequence lookup.
//
// The paper stores a bank of N nucleotides in ≈5N bytes (1 byte/base in
// SEQ + a 4-byte INDEX entry per position). This package owns the SEQ
// part plus the coordinate bookkeeping; package index owns INDEX.
package bank

import (
	"fmt"
	"hash/crc64"
	"sync"

	"repro/internal/dna"
	"repro/internal/fasta"
)

// Sentinel is the byte that separates (and brackets) sequences inside
// Data. It is not a valid nucleotide code and never compares equal to
// one, so extensions that overrun a hard bound still cannot match
// across a record boundary.
const Sentinel byte = 0xF0

// Bank is an immutable, indexed-ready DNA bank.
type Bank struct {
	// Name labels the bank in outputs and experiment tables.
	Name string

	// Data holds sentinel-bracketed 2-bit codes:
	// [S] seq0 [S] seq1 [S] ... [S] seqK-1 [S].
	// Ambiguous input bases are stored as dna.Invalid.
	Data []byte

	// starts[i] is the offset in Data of the first base of sequence i;
	// ends[i] is one past its last base.
	starts, ends []int32

	// seqID[p] is the sequence index owning Data position p, or -1 for
	// sentinel positions. Gives O(1) bounds lookup in hot extension
	// paths at a cost of 4 bytes/position.
	seqID []int32

	ids   []string
	descs []string

	// totalBases is the number of bases (valid + ambiguous), i.e. the
	// bank size "N" of the paper, excluding sentinels.
	totalBases int
	// validBases counts A/C/G/T only.
	validBases int

	// sumsOnce/seqSums memoize SeqChecksums: banks are immutable, so
	// the per-sequence content identity is computed at most once.
	sumsOnce sync.Once
	seqSums  []uint64
}

// New builds a bank from FASTA records. Records may be empty; an empty
// record still occupies a slot so record numbering matches the input
// file.
func New(name string, recs []*fasta.Record) *Bank {
	total := 0
	for _, r := range recs {
		total += len(r.Seq)
	}
	b := &Bank{
		Name:   name,
		Data:   make([]byte, 0, total+len(recs)+1),
		starts: make([]int32, 0, len(recs)),
		ends:   make([]int32, 0, len(recs)),
		seqID:  make([]int32, 0, total+len(recs)+1),
		ids:    make([]string, 0, len(recs)),
		descs:  make([]string, 0, len(recs)),
	}
	b.Data = append(b.Data, Sentinel)
	b.seqID = append(b.seqID, -1)
	for i, r := range recs {
		b.starts = append(b.starts, int32(len(b.Data)))
		for _, c := range r.Seq {
			code := dna.EncodeByte(c)
			b.Data = append(b.Data, code)
			b.seqID = append(b.seqID, int32(i))
			b.totalBases++
			if dna.IsValid(code) {
				b.validBases++
			}
		}
		b.ends = append(b.ends, int32(len(b.Data)))
		b.Data = append(b.Data, Sentinel)
		b.seqID = append(b.seqID, -1)
		b.ids = append(b.ids, r.ID)
		b.descs = append(b.descs, r.Desc)
	}
	return b
}

// FromFile loads a FASTA file into a bank named after the file.
func FromFile(name, path string) (*Bank, error) {
	recs, err := fasta.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("bank: %s: no sequences", path)
	}
	return New(name, recs), nil
}

// NumSeqs returns the number of sequences in the bank.
func (b *Bank) NumSeqs() int { return len(b.starts) }

// TotalBases returns the total base count N (paper's bank size),
// excluding sentinels, including ambiguous bases.
func (b *Bank) TotalBases() int { return b.totalBases }

// ValidBases returns the number of unambiguous (ACGT) bases.
func (b *Bank) ValidBases() int { return b.validBases }

// Mbp returns the bank size in megabases, the unit of the paper's
// data-set and search-space tables.
func (b *Bank) Mbp() float64 { return float64(b.totalBases) / 1e6 }

// SeqID returns the FASTA identifier of sequence i.
func (b *Bank) SeqID(i int) string { return b.ids[i] }

// SeqDesc returns the FASTA description of sequence i.
func (b *Bank) SeqDesc(i int) string { return b.descs[i] }

// SeqLen returns the length of sequence i in bases.
func (b *Bank) SeqLen(i int) int { return int(b.ends[i] - b.starts[i]) }

// SeqBounds returns the half-open Data range [start,end) of sequence i.
func (b *Bank) SeqBounds(i int) (start, end int32) { return b.starts[i], b.ends[i] }

// SeqCodes returns the coded bases of sequence i (a view, not a copy).
func (b *Bank) SeqCodes(i int) []byte { return b.Data[b.starts[i]:b.ends[i]] }

// SeqAt returns the sequence index owning Data position p, or -1 if p is
// a sentinel position.
func (b *Bank) SeqAt(p int32) int32 { return b.seqID[p] }

// seqSumTable is the CRC-64/ECMA polynomial shared by every bank
// checksum in the repository (ixdisk uses the same one for whole-bank
// content identity).
var seqSumTable = crc64.MakeTable(crc64.ECMA)

// SeqChecksums returns the per-sequence content identity of the bank:
// CRC-64/ECMA over each sequence's coded bases, in bank order. The
// vector is computed once and memoized (banks are immutable), so
// repeated identity checks — the on-disk store consults it on every
// lookup — cost a slice read, not an O(N) pass. Callers must treat the
// returned slice as read-only.
//
// Together with PrefixLen this is what makes append-aware index reuse
// sound: if the first k checksums of two banks agree (and the prefix
// lengths agree), the first PrefixLen(k) bytes of their Data arrays are
// identical up to CRC collision — sequence boundaries are pinned by the
// per-sequence granularity — so Data coordinates below that boundary
// mean the same thing in both banks.
func (b *Bank) SeqChecksums() []uint64 {
	b.sumsOnce.Do(func() {
		sums := make([]uint64, b.NumSeqs())
		for i := range sums {
			sums[i] = crc64.Checksum(b.SeqCodes(i), seqSumTable)
		}
		b.seqSums = sums
	})
	return b.seqSums
}

// PrefixLen returns the length of the Data prefix covering the first k
// sequences, including the sentinel that closes sequence k-1 — the
// boundary from which an append-only extension scan must start. k may
// equal NumSeqs (the whole Data array); k=0 is the leading sentinel
// alone. Any window starting before PrefixLen(k) lies entirely inside
// the first k sequences, and any window starting at or after it lies
// entirely inside the appended suffix, because the sentinel at
// PrefixLen(k)-1 invalidates every straddling window.
func (b *Bank) PrefixLen(k int) int {
	if k < 0 || k > b.NumSeqs() {
		panic(fmt.Sprintf("bank %s: PrefixLen(%d) outside [0,%d]", b.Name, k, b.NumSeqs()))
	}
	if k == b.NumSeqs() {
		return len(b.Data)
	}
	return int(b.starts[k])
}

// Coord translates a Data position into (sequence index, 0-based offset
// within that sequence). It panics if p is a sentinel position, which
// would indicate a coordinate bug upstream.
func (b *Bank) Coord(p int32) (seq int32, off int32) {
	s := b.seqID[p]
	if s < 0 {
		panic(fmt.Sprintf("bank %s: Coord on sentinel position %d", b.Name, p))
	}
	return s, p - b.starts[s]
}

// MemoryFootprint returns the approximate resident bytes of the bank
// representation itself plus the per-position index the paper counts
// (SEQ: 1 byte/pos, seqID: 4 bytes/pos; package index adds 4 more).
func (b *Bank) MemoryFootprint() int {
	return len(b.Data) + 4*len(b.seqID)
}

// ReverseComplement returns a new bank holding the reverse complement
// of every sequence, in the same order, with IDs suffixed "/rc". This
// supports the complementary-strand search the paper lists as future
// work for SCORIS-N.
func (b *Bank) ReverseComplement() *Bank {
	recs := make([]*fasta.Record, b.NumSeqs())
	for i := range recs {
		codes := append([]byte(nil), b.SeqCodes(i)...)
		dna.ReverseComplementInPlace(codes)
		recs[i] = &fasta.Record{ID: b.ids[i] + "/rc", Desc: b.descs[i], Seq: dna.Decode(codes)}
	}
	return New(b.Name+"/rc", recs)
}

// Stats summarizes a bank for the paper's §3.2 data-set table.
type Stats struct {
	Name    string
	NumSeqs int
	Bases   int
	Mbp     float64
	GC      float64
}

// Summary computes data-set table statistics.
func (b *Bank) Summary() Stats {
	gc, _ := dna.GC(b.Data)
	return Stats{
		Name:    b.Name,
		NumSeqs: b.NumSeqs(),
		Bases:   b.totalBases,
		Mbp:     b.Mbp(),
		GC:      gc,
	}
}
