// Package core implements the ORIS (ORdered Index Seed) pipeline — the
// primary contribution of Lavenier, "Ordered Index Seed Algorithm for
// Intensive DNA Sequence Comparison" (HiCOMB 2008). The four steps of
// paper Fig. 1:
//
//	step 1  index both banks (package index)
//	step 2  enumerate all 4^W seeds from the lowest code to the highest
//	        and run ordered ungapped extensions (package hsp) — each HSP
//	        is produced exactly once, no duplicate table needed
//	step 3  gapped X-drop extension from the middle of each HSP, walking
//	        HSPs in diagonal order and skipping those already inside an
//	        alignment (packages gapped, align)
//	step 4  E-value annotation, dedup, sort, display (packages stats,
//	        tabular)
//
// Step 2 parallelizes over disjoint seed-code ranges exactly as §4 of
// the paper anticipates ("the outer loop … can be run in parallel since
// seed order prevents identical HSPs to be generated"); workers share
// nothing but an atomic chunk counter. Step 3 optionally parallelizes
// over diagonal bands with a final dedup pass.
//
// # Index reuse
//
// Compare rebuilds both bank indexes on every call. For workloads that
// compare one bank against many others, prepare the indexes once and
// call CompareWithIndex instead: Options.IndexOptions reports the exact
// index.Options each side needs, Prepare builds (or fetches from an
// ixcache.Cache) the matching ixcache.Prepared pair, and
// CompareWithIndex runs steps 2–4 against them. The reuse contract
// (package ixcache): a built index.Index is immutable and safe for any
// number of concurrent readers, but valid only for the exact
// (bank, index.Options) it was built from — CompareWithIndex verifies
// the match and rejects mismatched indexes rather than produce output
// for seeds that don't exist.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/dust"
	"repro/internal/gapped"
	"repro/internal/hsp"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/seed"
	"repro/internal/stats"
)

// Strand selects which strands of bank 2 are searched.
type Strand int

const (
	// PlusOnly searches the given orientation only — the mode of the
	// paper's prototype (blastall -S 1 in §3.3).
	PlusOnly Strand = iota
	// BothStrands additionally searches the reverse complement of
	// bank 2, the feature the paper defers to "a new release".
	BothStrands
)

// Options configures a comparison. The zero value is not valid; use
// DefaultOptions as a base.
type Options struct {
	// W is the seed length (paper uses 11; 10 with Asymmetric).
	W int
	// Scoring holds match/mismatch/gap parameters.
	Scoring stats.Scoring
	// UngappedXDrop is the step-2 X-drop threshold (raw score units).
	UngappedXDrop int32
	// GappedXDrop is the step-3 X-drop threshold.
	GappedXDrop int32
	// MinUngappedScore is S1 of paper Fig. 1: HSPs scoring below it are
	// not carried into step 3.
	MinUngappedScore int32
	// MaxEValue is the final report threshold (paper uses 1e-3).
	MaxEValue float64
	// Dust enables the low-complexity index filter of §2.1.
	Dust bool
	// DustWindow and DustThreshold override the masker defaults when
	// positive.
	DustWindow    int
	DustThreshold float64
	// Asymmetric enables §3.4's 10-nt half-word indexing: bank 1 is
	// indexed at every other position only. W should be 10.
	Asymmetric bool
	// Strand selects single- or double-strand search.
	Strand Strand
	// Workers bounds step-2/step-3 parallelism; 0 means GOMAXPROCS.
	Workers int
	// ParallelStep3 also parallelizes gapped extension over diagonal
	// bands (a final dedup restores uniqueness).
	ParallelStep3 bool
	// OrderedRule can be disabled for the A1 ablation; the pipeline
	// then deduplicates HSPs explicitly, which is what the ordered rule
	// exists to avoid.
	OrderedRule bool
	// ShuffledSeedOrder enumerates the outer step-2 loop in a fixed
	// pseudo-random permutation instead of ascending code order (the A4
	// ablation). The HSP *set* is unchanged — the abort rule is
	// anchor-local — but the cache locality the paper credits for its
	// speed ("all the portions of sequence having the same seed are
	// implicitly and simultaneously moved into the cache") is destroyed.
	ShuffledSeedOrder bool
	// SkipSelfPairs restricts step 2 to hit pairs with p1 < p2, for
	// comparing a bank against ITSELF (full-genome self-comparison, a
	// §4 perspective): the trivial identity alignment of every position
	// with itself and the mirror copy of each alignment are suppressed.
	// The ordered-rule uniqueness proof survives the restriction
	// because run-embedded candidate seeds lie on the same diagonal and
	// therefore satisfy p1 < p2 exactly when the anchor does. Only
	// meaningful when both banks are the same Bank value.
	SkipSelfPairs bool
}

// DefaultOptions returns the paper-plausible configuration: W=11,
// +1/−3 scoring with 5/2 gaps, E ≤ 1e-3, ordered rule on, single
// strand, dust filter on.
func DefaultOptions() Options {
	return Options{
		W:                11,
		Scoring:          stats.DefaultScoring,
		UngappedXDrop:    20,
		GappedXDrop:      25,
		MinUngappedScore: 22,
		MaxEValue:        1e-3,
		Dust:             true,
		Strand:           PlusOnly,
		OrderedRule:      true,
	}
}

// Validate checks option consistency.
func (o *Options) Validate() error {
	if o.W < 4 || o.W > seed.MaxW {
		return fmt.Errorf("core: W=%d out of range [4,%d]", o.W, seed.MaxW)
	}
	if err := o.Scoring.Validate(); err != nil {
		return err
	}
	if o.UngappedXDrop <= 0 || o.GappedXDrop <= 0 {
		return fmt.Errorf("core: X-drop thresholds must be positive")
	}
	if o.MaxEValue <= 0 {
		return fmt.Errorf("core: MaxEValue must be positive")
	}
	if o.SkipSelfPairs && o.Strand == BothStrands {
		// The p1<p2 triangle restriction is defined on one shared
		// coordinate space; the reverse-complement pass compares
		// against a different bank, where it would drop arbitrary hits.
		return fmt.Errorf("core: SkipSelfPairs requires PlusOnly strand")
	}
	return nil
}

// Metrics reports per-step timings and counters for the experiment
// harness and the ablations.
type Metrics struct {
	IndexTime time.Duration
	Step2Time time.Duration
	Step3Time time.Duration
	Step4Time time.Duration

	// HitPairs is Σ X1·X2 over all seeds (paper §2.2).
	HitPairs int64
	// Extensions, Aborted, Emitted summarize step 2.
	Extensions int64
	Aborted    int64
	// HSPs is the number of HSPs above MinUngappedScore.
	HSPs int
	// DuplicateHSPs counts duplicates removed when OrderedRule is off.
	DuplicateHSPs int
	// GappedExtensions counts step-3 DP runs; SkippedCovered counts
	// HSPs suppressed by the T_ALIGN containment test.
	GappedExtensions int
	SkippedCovered   int
	// Alignments is the final reported count; Subthreshold counts
	// alignments that failed MaxEValue.
	Alignments   int
	Subthreshold int
	IndexedBank1 int
	IndexedBank2 int
	MaskedSeeds  int
}

// Result bundles the alignments with run metrics.
type Result struct {
	Alignments []align.Alignment
	Metrics    Metrics
}

// IndexOptions reports the exact index.Options Compare derives from o
// for bank 1 and bank 2 — the options a prepared index must have been
// built with to be valid for CompareWithIndex under o. Each call
// returns fresh dust.Masker values; maskers are compared by parameter,
// not identity, so that is harmless.
func (o Options) IndexOptions() (o1, o2 index.Options) {
	var masker *dust.Masker
	if o.Dust {
		masker = dust.New(o.DustWindow, o.DustThreshold)
	}
	o1 = index.Options{W: o.W, Dust: masker, Workers: o.Workers}
	if o.Asymmetric {
		o1.SampleStep = 2
	}
	o2 = index.Options{W: o.W, Dust: masker, Workers: o.Workers}
	return o1, o2
}

// Prepare builds (or fetches) the prepared indexes Compare would build
// for (b1, b2) under opt. With a non-nil cache the builds are shared
// across calls keyed by (bank, options); with a nil cache the indexes
// are built directly. When b1 == b2 and the two sides need identical
// options (no Asymmetric), one index serves both.
func Prepare(c *ixcache.Cache, b1, b2 *bank.Bank, opt Options) (p1, p2 *ixcache.Prepared, err error) {
	if err := opt.Validate(); err != nil {
		return nil, nil, err
	}
	o1, o2 := opt.IndexOptions()
	if c != nil {
		p1 = c.Get(b1, o1)
		p2 = c.Get(b2, o2)
		return p1, p2, nil
	}
	p1 = ixcache.Prepare(b1, o1)
	if b1 == b2 && !opt.Asymmetric {
		return p1, p1, nil
	}
	p2 = ixcache.Prepare(b2, o2)
	return p1, p2, nil
}

// Compare runs the full ORIS pipeline on two banks, building both
// indexes in place. It is the thin build-then-call wrapper over
// CompareWithIndex; callers comparing a bank against many others should
// Prepare once and call CompareWithIndex so the builds amortize.
func Compare(b1, b2 *bank.Bank, opt Options) (*Result, error) {
	t0 := time.Now()
	p1, p2, err := Prepare(nil, b1, b2, opt)
	if err != nil {
		return nil, err
	}
	indexTime := time.Since(t0)
	res, err := compareWithIndexes(p1.Bank, p2.Bank, p1.Ix, p2.Ix, opt)
	if err != nil {
		return nil, err
	}
	res.Metrics.IndexTime += indexTime
	return res, nil
}

// CompareWithIndex runs the pipeline on prepared banks, skipping the
// index builds entirely (Metrics.IndexTime covers only work done here,
// e.g. the reverse-complement index of a BothStrands run). Both
// prepared values must match opt exactly — same bank, same derived
// index options — or an error is returned (see the package comment's
// reuse contract).
func CompareWithIndex(p1, p2 *ixcache.Prepared, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	o1, o2 := opt.IndexOptions()
	if !p1.MatchesOptions(o1) {
		return nil, matchErr1(o1)
	}
	if !p2.MatchesOptions(o2) {
		return nil, matchErr2(o2)
	}
	return compareWithIndexes(p1.Bank, p2.Bank, p1.Ix, p2.Ix, opt)
}

func matchErr1(o1 index.Options) error {
	return fmt.Errorf("core: prepared bank 1 does not match options (want W=%d, sample step %d, dust %v)",
		o1.W, o1.SampleStep, o1.Dust != nil)
}

func matchErr2(o2 index.Options) error {
	return fmt.Errorf("core: prepared bank 2 does not match options (want W=%d, dust %v)",
		o2.W, o2.Dust != nil)
}

// compareWithIndexes is the buffered engine body: the stream path with
// an appending Emit. Implementing the buffered report as a collected
// stream is what makes "streamed output is byte-identical to buffered
// output" structural rather than something a test has to chase.
func compareWithIndexes(b1, b2 *bank.Bank, ix1, ix2 *index.Index, opt Options) (*Result, error) {
	var all []align.Alignment
	res, err := compareStream(context.Background(), b1, b2, ix1, ix2, opt,
		func(_ int, g []align.Alignment) error {
			all = append(all, g...)
			return nil
		})
	if err != nil {
		return nil, err
	}
	res.Alignments = all
	return res, nil
}

// step2Result carries a worker's private output.
type step2Result struct {
	hsps     []hsp.HSP
	hitPairs int64
	stats    hsp.Stats
}

func workerCount(opt Options) int {
	w := opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// step2 enumerates the seed codes in ascending order, split into
// contiguous chunks claimed by workers via an atomic counter. The
// ordered rule makes every HSP globally unique, so workers need no
// coordination (paper §4).
//
// The normal path walks ix1's occupied-code directory (index.Codes)
// instead of all 4^W dictionary entries: codes absent from bank 1
// produce no hit pairs, and at any realistic bank size the dictionary
// is overwhelmingly empty, so the directory sweep removes millions of
// wasted Starts probes per run. Per-worker order stays ascending, which
// is all the ordered-rule uniqueness proof needs. The A4 ablation
// (ShuffledSeedOrder) keeps the full 4^W sweep so its fixed permutation
// of the whole code space is preserved.
//
//scorislint:hotpath
func step2(ctx context.Context, b1, b2 *bank.Bank, ix1, ix2 *index.Index, opt Options) ([]hsp.HSP, step2Result, error) {
	// The unit of work: either an index into ix1.Codes (directory walk)
	// or a raw code (shuffled full sweep).
	domain := len(ix1.Codes)
	if opt.ShuffledSeedOrder {
		domain = seed.NumCodes(opt.W)
	}
	workers := workerCount(opt)
	numChunks := workers * 16
	if numChunks > domain {
		numChunks = domain
	}
	if numChunks == 0 {
		return nil, step2Result{}, ctx.Err()
	}
	chunkSize := (domain + numChunks - 1) / numChunks

	results := make([]step2Result, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			ext := hsp.Extender{
				W:        opt.W,
				Match:    int32(opt.Scoring.Match),
				Mismatch: int32(opt.Scoring.Mismatch),
				XDrop:    opt.UngappedXDrop,
				Ordered:  opt.OrderedRule,
			}
			if opt.Asymmetric {
				// The abort rule must only fire on seeds that the
				// half-word bank-1 index actually contains.
				ext.SampleStep = 2
			}
			r := &results[wid]
			d1, d2 := b1.Data, b2.Data

			// doCode runs the X1×X2 inner product for one seed code.
			// Both occurrence lists are contiguous CSR slice views with
			// precomputed bounds sidecars: flat sequential reads, no
			// pointer chasing and no per-hit Bank lookups.
			doCode := func(code seed.Code) {
				s1, e1 := ix1.OccRange(code)
				if s1 == e1 {
					return
				}
				s2, e2 := ix2.OccRange(code)
				if s2 == e2 {
					return
				}
				pos2 := ix2.Pos[s2:e2]
				lo2 := ix2.OccLo[s2:e2]
				hi2 := ix2.OccHi[s2:e2]
				for i1 := s1; i1 < e1; i1++ {
					p1 := ix1.Pos[i1]
					lo1, hi1 := ix1.OccLo[i1], ix1.OccHi[i1]
					for j, p2 := range pos2 {
						if opt.SkipSelfPairs && p2 <= p1 {
							continue
						}
						r.hitPairs++
						h, ok := ext.Extend(d1, d2, p1, p2, lo1, hi1, lo2[j], hi2[j], code, &r.stats)
						if ok && h.Score >= opt.MinUngappedScore {
							r.hsps = append(r.hsps, h)
						}
					}
				}
			}

			for {
				// A cancelled stream stops burning cores at the next
				// chunk claim, not at the end of the code space.
				if ctx.Err() != nil {
					return
				}
				chunk := int(next.Add(1)) - 1
				if chunk >= numChunks {
					return
				}
				lo := chunk * chunkSize
				hi := lo + chunkSize
				if hi > domain {
					hi = domain
				}
				if lo >= hi {
					continue
				}
				if opt.ShuffledSeedOrder {
					for c := lo; c < hi; c++ {
						// Fixed odd-multiplier permutation of the code
						// space (a bijection mod the power-of-two size):
						// same seeds, destroyed enumeration locality.
						doCode(seed.Code(uint32(c) * 0x9E3779B1 & uint32(domain-1)))
					}
				} else {
					for _, code := range ix1.Codes[lo:hi] {
						doCode(code)
					}
				}
			}
		}(wid)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, step2Result{}, err
	}

	var merged step2Result
	total := 0
	for i := range results {
		total += len(results[i].hsps)
	}
	merged.hsps = make([]hsp.HSP, 0, total)
	for i := range results {
		merged.hsps = append(merged.hsps, results[i].hsps...)
		merged.hitPairs += results[i].hitPairs
		merged.stats.Extensions += results[i].stats.Extensions
		merged.stats.Aborted += results[i].stats.Aborted
		merged.stats.Emitted += results[i].stats.Emitted
	}
	return merged.hsps, merged, nil
}

// step3Sequential is the reference step 3: walk diagonal-sorted HSPs,
// skip covered ones, gapped-extend the rest from their midpoints.
func step3Sequential(b1, b2 *bank.Bank, hsps []hsp.HSP, opt Options, met *Metrics) []align.Alignment {
	ext := gapped.NewExtender(gapped.FromScoring(opt.Scoring, opt.GappedXDrop))
	var ta align.TAlign
	extendBand(b1, b2, hsps, ext, &ta, met)
	return ta.All()
}

// step3Parallel splits the diagonal-sorted HSP list into contiguous
// bands handled by independent workers. Band-boundary effects can
// produce duplicate or contained alignments, which the step-4 dedup
// removes (DESIGN.md, "Parallel step 3").
func step3Parallel(b1, b2 *bank.Bank, hsps []hsp.HSP, opt Options, met *Metrics) []align.Alignment {
	workers := workerCount(opt)
	if len(hsps) < 4*workers {
		return step3Sequential(b1, b2, hsps, opt, met)
	}
	chunk := (len(hsps) + workers - 1) / workers
	tas := make([]align.TAlign, workers)
	mets := make([]Metrics, workers)
	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		lo := wid * chunk
		hi := lo + chunk
		if hi > len(hsps) {
			hi = len(hsps)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wid, lo, hi int) {
			defer wg.Done()
			ext := gapped.NewExtender(gapped.FromScoring(opt.Scoring, opt.GappedXDrop))
			extendBand(b1, b2, hsps[lo:hi], ext, &tas[wid], &mets[wid])
		}(wid, lo, hi)
	}
	wg.Wait()
	var all []align.Alignment
	for i := range tas {
		all = append(all, tas[i].All()...)
		met.GappedExtensions += mets[i].GappedExtensions
		met.SkippedCovered += mets[i].SkippedCovered
	}
	return all
}

// extendBand processes one diagonal-sorted HSP band against a TAlign.
// The two arms are run separately so the arm lengths yield the final
// alignment coordinates around the HSP midpoint.
func extendBand(b1, b2 *bank.Bank, hsps []hsp.HSP, ext *gapped.Extender, ta *align.TAlign, met *Metrics) {
	d1, d2 := b1.Data, b2.Data
	for _, h := range hsps {
		if ta.Covered(h) {
			met.SkippedCovered++
			continue
		}
		met.GappedExtensions++
		m1, m2 := h.Mid()
		s1 := b1.SeqAt(m1)
		s2 := b2.SeqAt(m2)
		lo1, hi1 := b1.SeqBounds(int(s1))
		lo2, hi2 := b2.SeqBounds(int(s2))
		la := ext.ExtendLeft(d1, d2, m1, lo1, m2, lo2)
		ra := ext.ExtendRight(d1, d2, m1, hi1, m2, hi2)
		r := la.Add(ra)
		if r.AlignLen() == 0 {
			continue
		}
		ta.Add(align.Alignment{
			Seq1: s1, Seq2: s2,
			S1: m1 - la.Len1, E1: m1 + ra.Len1,
			S2: m2 - la.Len2, E2: m2 + ra.Len2,
			Score:      r.Score,
			Matches:    r.Matches,
			Mismatches: r.Mismatches,
			GapOpens:   r.GapOpens,
			GapBases:   r.GapBases(),
			Length:     r.AlignLen(),
			Anchor1:    m1,
			Anchor2:    m2,
		})
	}
}
