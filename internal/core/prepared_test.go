package core

import (
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
)

// optionVariants covers every Options field that changes the derived
// index options, so the equivalence below exercises each derivation.
func optionVariants() map[string]Options {
	def := DefaultOptions()
	def.Workers = 1
	asym := def
	asym.W = 10
	asym.Asymmetric = true
	noDust := def
	noDust.Dust = false
	customDust := def
	customDust.DustWindow = 32
	customDust.DustThreshold = 3.0
	both := def
	both.Strand = BothStrands
	return map[string]Options{
		"default":     def,
		"asymmetric":  asym,
		"no-dust":     noDust,
		"custom-dust": customDust,
		"both-strand": both,
	}
}

// TestCompareWithIndexMatchesCompare pins the tentpole equivalence:
// preparing indexes up front and running CompareWithIndex yields
// exactly the alignments Compare produces, for every option shape that
// changes the index derivation.
func TestCompareWithIndexMatchesCompare(t *testing.T) {
	b1, b2 := testBanks(31, 6, 6, 4, 700)
	for name, opt := range optionVariants() {
		ref, err := Compare(b1, b2, opt)
		if err != nil {
			t.Fatalf("%s: Compare: %v", name, err)
		}
		p1, p2, err := Prepare(nil, b1, b2, opt)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", name, err)
		}
		got, err := CompareWithIndex(p1, p2, opt)
		if err != nil {
			t.Fatalf("%s: CompareWithIndex: %v", name, err)
		}
		if len(ref.Alignments) == 0 {
			t.Fatalf("%s: degenerate test, no alignments", name)
		}
		// Same execution strategy on identical indexes: every field,
		// anchors included, must agree.
		if len(got.Alignments) != len(ref.Alignments) {
			t.Fatalf("%s: %d alignments vs Compare's %d",
				name, len(got.Alignments), len(ref.Alignments))
		}
		for i := range ref.Alignments {
			if got.Alignments[i] != ref.Alignments[i] {
				t.Fatalf("%s: alignment %d differs:\n  with index: %+v\n  compare:    %+v",
					name, i, got.Alignments[i], ref.Alignments[i])
			}
		}
		m, r := got.Metrics, ref.Metrics
		if m.HitPairs != r.HitPairs || m.HSPs != r.HSPs ||
			m.IndexedBank1 != r.IndexedBank1 || m.IndexedBank2 != r.IndexedBank2 {
			t.Errorf("%s: work counters differ: %+v vs %+v", name, m, r)
		}
	}
}

// TestPreparedReuseAcrossPairs is the amortization contract on a
// multi-pair workload sharing one bank: one build per distinct
// (bank, options) key, identical output per pair.
func TestPreparedReuseAcrossPairs(t *testing.T) {
	db, q1 := testBanks(32, 6, 6, 4, 600)
	_, q2 := testBanks(33, 6, 6, 3, 600)
	opt := DefaultOptions()
	opt.Workers = 1

	cache := ixcache.New(8)
	for i, q := range []*bank.Bank{q1, q2, q1} {
		p1, p2, err := Prepare(cache, db, q, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := CompareWithIndex(p1, p2, opt)
		if err != nil {
			t.Fatal(err)
		}
		ref := mustCompare(t, db, q, opt)
		if !alignmentsEqual(ref.Alignments, got.Alignments) {
			t.Fatalf("pair %d: prepared output differs from Compare", i)
		}
	}
	// Three pairs, three distinct banks involved (db, q1, q2): exactly
	// three builds, never one per pair side.
	if got := cache.Builds(); got != 3 {
		t.Errorf("builds = %d, want 3 (db, q1, q2 once each)", got)
	}
	if got := cache.Lookups(); got != 6 {
		t.Errorf("lookups = %d, want 6", got)
	}
}

// TestPrepareSelfComparison: comparing a bank against itself needs one
// index, not two.
func TestPrepareSelfComparison(t *testing.T) {
	b, _ := testBanks(34, 4, 1, 0, 500)
	opt := DefaultOptions()
	opt.SkipSelfPairs = true
	p1, p2, err := Prepare(nil, b, b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("self-comparison should share one prepared index")
	}
	got, err := CompareWithIndex(p1, p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref := mustCompare(t, b, b, opt)
	if !alignmentsEqual(ref.Alignments, got.Alignments) {
		t.Error("self-comparison output differs from Compare")
	}
}

// TestCompareWithIndexRejectsMismatch pins the reuse-contract guard: an
// index is valid only for the exact (bank, Options) it was built from.
func TestCompareWithIndexRejectsMismatch(t *testing.T) {
	b1, b2 := testBanks(35, 3, 3, 2, 400)
	opt := DefaultOptions()
	p1, p2, err := Prepare(nil, b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]Options{}
	wrongW := opt
	wrongW.W = 12
	cases["wrong W"] = wrongW
	dustOff := opt
	dustOff.Dust = false
	cases["dust mismatch"] = dustOff
	dustParams := opt
	dustParams.DustWindow = 16
	cases["dust window mismatch"] = dustParams
	asym := opt
	asym.W = 11
	asym.Asymmetric = true
	cases["sampling mismatch"] = asym

	for name, bad := range cases {
		if _, err := CompareWithIndex(p1, p2, bad); err == nil {
			t.Errorf("%s: accepted a prepared index built for different options", name)
		}
	}

	// A hand-assembled Prepared whose index belongs to another bank
	// must be rejected even when the options line up.
	o1, _ := opt.IndexOptions()
	franken := &ixcache.Prepared{Bank: b1, Ix: index.Build(b2, o1)}
	if _, err := CompareWithIndex(franken, p2, opt); err == nil {
		t.Error("accepted an index built from a different bank")
	}
	if _, err := CompareWithIndex(nil, p2, opt); err == nil {
		t.Error("accepted a nil prepared bank")
	}
}
