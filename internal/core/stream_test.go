package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/align"
)

// streamVariants covers the option shapes whose engine bodies differ
// enough to threaten stream/buffered equivalence: strand handling, the
// parallel step-3 dedup path, and the ordered-rule-off HSP dedup.
func streamVariants() map[string]func(*Options) {
	return map[string]func(*Options){
		"default":     func(o *Options) {},
		"bothStrands": func(o *Options) { o.Strand = BothStrands },
		"parallel3":   func(o *Options) { o.ParallelStep3 = true; o.Workers = 4 },
		"unordered":   func(o *Options) { o.OrderedRule = false },
		"bothPar": func(o *Options) {
			o.Strand = BothStrands
			o.ParallelStep3 = true
			o.Workers = 4
		},
	}
}

func TestCompareStreamMatchesBuffered(t *testing.T) {
	b1, b2 := testBanks(21, 8, 8, 6, 400)
	for name, tweak := range streamVariants() {
		t.Run(name, func(t *testing.T) {
			opt := DefaultOptions()
			tweak(&opt)

			want, err := Compare(b1, b2, opt)
			if err != nil {
				t.Fatal(err)
			}

			var got []align.Alignment
			emits := 0
			lastSeq := -1
			res, err := CompareStream(context.Background(), b1, b2, opt,
				func(s int, g []align.Alignment) error {
					if s != lastSeq+1 {
						t.Fatalf("emit order: got seq %d after %d", s, lastSeq)
					}
					lastSeq = s
					emits++
					for i := range g {
						if int(g[i].Seq2) != s {
							t.Fatalf("group %d contains alignment for seq %d", s, g[i].Seq2)
						}
					}
					got = append(got, g...)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if emits != b2.NumSeqs() {
				t.Fatalf("emit called %d times, want %d (once per bank-2 seq)", emits, b2.NumSeqs())
			}
			if res.Alignments != nil {
				t.Error("stream Result.Alignments should be nil")
			}
			if len(want.Alignments) == 0 {
				t.Fatal("test banks produced no alignments; variant proves nothing")
			}
			if !reflect.DeepEqual(got, want.Alignments) {
				t.Fatalf("streamed concatenation differs from buffered result:\nstream %d alignments, buffered %d",
					len(got), len(want.Alignments))
			}
			if res.Metrics.Alignments != want.Metrics.Alignments ||
				res.Metrics.HSPs != want.Metrics.HSPs ||
				res.Metrics.HitPairs != want.Metrics.HitPairs {
				t.Errorf("metrics diverge: stream %+v buffered %+v", res.Metrics, want.Metrics)
			}
		})
	}
}

func TestCompareStreamCancelled(t *testing.T) {
	b1, b2 := testBanks(22, 6, 6, 4, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CompareStream(ctx, b1, b2, DefaultOptions(), func(int, []align.Alignment) error {
		t.Fatal("emit called after cancellation")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompareStreamCancelMidStream(t *testing.T) {
	b1, b2 := testBanks(23, 6, 6, 5, 400)
	ctx, cancel := context.WithCancel(context.Background())
	emits := 0
	_, err := CompareStream(ctx, b1, b2, DefaultOptions(), func(int, []align.Alignment) error {
		emits++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emits != 1 {
		t.Fatalf("emit called %d times after mid-stream cancel, want 1", emits)
	}
}

func TestCompareStreamEmitError(t *testing.T) {
	b1, b2 := testBanks(24, 6, 6, 5, 400)
	boom := errors.New("consumer gone")
	_, err := CompareStream(context.Background(), b1, b2, DefaultOptions(),
		func(int, []align.Alignment) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the emit error", err)
	}
}

func TestCompareStreamWithIndexMatchesCompareWithIndex(t *testing.T) {
	b1, b2 := testBanks(25, 8, 8, 6, 400)
	opt := DefaultOptions()
	p1, p2, err := Prepare(nil, b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CompareWithIndex(p1, p2, opt)
	if err != nil {
		t.Fatal(err)
	}
	var got []align.Alignment
	if _, err := CompareStreamWithIndex(context.Background(), p1, p2, opt,
		func(_ int, g []align.Alignment) error {
			got = append(got, g...)
			return nil
		}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Alignments) {
		t.Fatal("prepared-bank stream differs from CompareWithIndex")
	}

	// The reuse contract still holds on the stream path.
	bad := DefaultOptions()
	bad.W = opt.W + 2
	if _, err := CompareStreamWithIndex(context.Background(), p1, p2, bad,
		func(int, []align.Alignment) error { return nil }); err == nil {
		t.Fatal("mismatched prepared banks accepted")
	}
}
