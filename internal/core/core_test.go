package core

import (
	"math/rand"
	"testing"

	"repro/internal/align"
	"repro/internal/bank"
	"repro/internal/dna"
	"repro/internal/fasta"
)

func mkBank(name string, seqs ...string) *bank.Bank {
	recs := make([]*fasta.Record, len(seqs))
	for i, s := range seqs {
		recs[i] = &fasta.Record{ID: name + "_" + string(rune('a'+i)), Seq: []byte(s)}
	}
	return bank.New(name, recs)
}

func randSeq(rng *rand.Rand, n int) string {
	letters := []byte("ACGT")
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(4)]
	}
	return string(b)
}

// mutateIndel applies substitutions and indels.
func mutateIndel(rng *rand.Rand, s string, pSub, pIndel float64) string {
	letters := []byte("ACGT")
	var out []byte
	for i := 0; i < len(s); i++ {
		r := rng.Float64()
		switch {
		case r < pIndel/2: // deletion
		case r < pIndel: // insertion
			out = append(out, s[i], letters[rng.Intn(4)])
		case r < pIndel+pSub:
			out = append(out, letters[rng.Intn(4)])
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// testBanks builds a deterministic pair of related banks: nHomologous
// bank-2 sequences are mutated copies of bank-1 sequences; the rest are
// random background.
func testBanks(seedVal int64, n1, n2, nHom, seqLen int) (*bank.Bank, *bank.Bank) {
	rng := rand.New(rand.NewSource(seedVal))
	seqs1 := make([]string, n1)
	for i := range seqs1 {
		seqs1[i] = randSeq(rng, seqLen)
	}
	seqs2 := make([]string, 0, n2)
	for i := 0; i < nHom && i < n1; i++ {
		seqs2 = append(seqs2, mutateIndel(rng, seqs1[i], 0.04, 0.005))
	}
	for len(seqs2) < n2 {
		seqs2 = append(seqs2, randSeq(rng, seqLen))
	}
	return mkBank("b1", seqs1...), mkBank("b2", seqs2...)
}

func mustCompare(t *testing.T, b1, b2 *bank.Bank, opt Options) *Result {
	t.Helper()
	res, err := Compare(b1, b2, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompareFindsPlantedHomologies(t *testing.T) {
	b1, b2 := testBanks(1, 6, 6, 4, 800)
	opt := DefaultOptions()
	opt.Workers = 1
	res := mustCompare(t, b1, b2, opt)
	if len(res.Alignments) < 4 {
		t.Fatalf("found %d alignments, want ≥ 4 planted homologies", len(res.Alignments))
	}
	// The four homologous pairs (i,i) must each be hit.
	found := map[[2]int32]bool{}
	for _, a := range res.Alignments {
		found[[2]int32{a.Seq1, a.Seq2}] = true
	}
	for i := int32(0); i < 4; i++ {
		if !found[[2]int32{i, i}] {
			t.Errorf("planted homology pair (%d,%d) not found", i, i)
		}
	}
}

func TestCompareNoHomologyFindsNothing(t *testing.T) {
	// Independent random banks: expect no (or nearly no) alignments at
	// E ≤ 1e-3.
	b1, b2 := testBanks(2, 4, 4, 0, 600)
	res := mustCompare(t, b1, b2, DefaultOptions())
	if len(res.Alignments) > 1 {
		t.Errorf("found %d alignments between unrelated banks", len(res.Alignments))
	}
}

func TestAlignmentFieldsConsistent(t *testing.T) {
	b1, b2 := testBanks(3, 4, 4, 3, 700)
	res := mustCompare(t, b1, b2, DefaultOptions())
	if len(res.Alignments) == 0 {
		t.Fatal("no alignments")
	}
	for _, a := range res.Alignments {
		if a.Length != a.Matches+a.Mismatches+a.GapBases {
			t.Errorf("length inconsistency: %+v", a)
		}
		if a.E1 <= a.S1 || a.E2 <= a.S2 {
			t.Errorf("degenerate span: %+v", a)
		}
		if b1.SeqAt(a.S1) != a.Seq1 || b1.SeqAt(a.E1-1) != a.Seq1 {
			t.Errorf("alignment crosses bank1 record boundary: %+v", a)
		}
		if b2.SeqAt(a.S2) != a.Seq2 || b2.SeqAt(a.E2-1) != a.Seq2 {
			t.Errorf("alignment crosses bank2 record boundary: %+v", a)
		}
		if a.EValue > DefaultOptions().MaxEValue {
			t.Errorf("reported alignment above E-value cutoff: %+v", a)
		}
		if a.Identity() < 0.5 || a.Identity() > 1 {
			t.Errorf("suspicious identity %v: %+v", a.Identity(), a)
		}
	}
}

// alignmentsEqual compares the scientific content of two result lists.
// Anchor fields are auxiliary (they record which HSP midpoint seeded
// the extension) and may legitimately differ between execution
// strategies that produce the same alignments.
func alignmentsEqual(a, b []align.Alignment) bool {
	if len(a) != len(b) {
		return false
	}
	norm := func(x align.Alignment) align.Alignment {
		x.Anchor1, x.Anchor2 = 0, 0
		return x
	}
	for i := range a {
		if norm(a[i]) != norm(b[i]) {
			return false
		}
	}
	return true
}

func TestParallelStep2Deterministic(t *testing.T) {
	b1, b2 := testBanks(4, 8, 8, 5, 500)
	opt := DefaultOptions()
	opt.Workers = 1
	ref := mustCompare(t, b1, b2, opt)
	for _, workers := range []int{2, 4, 8} {
		opt.Workers = workers
		got := mustCompare(t, b1, b2, opt)
		if !alignmentsEqual(ref.Alignments, got.Alignments) {
			t.Fatalf("workers=%d: %d alignments differ from sequential %d",
				workers, len(got.Alignments), len(ref.Alignments))
		}
	}
}

func TestParallelStep3MatchesSequential(t *testing.T) {
	b1, b2 := testBanks(5, 8, 8, 6, 500)
	opt := DefaultOptions()
	opt.Workers = 1
	ref := mustCompare(t, b1, b2, opt)
	opt.Workers = 4
	opt.ParallelStep3 = true
	got := mustCompare(t, b1, b2, opt)
	// Band-boundary duplicates are removed by dedup; the surviving sets
	// must agree on (seq pair, coordinates) after dedup. Scores can
	// differ only if dedup kept a different representative, which
	// coordinates-equality rules out.
	if !alignmentsEqual(ref.Alignments, got.Alignments) {
		t.Fatalf("parallel step 3 output differs: %d vs %d alignments",
			len(got.Alignments), len(ref.Alignments))
	}
}

func TestOrderedRuleAblationSameAlignments(t *testing.T) {
	b1, b2 := testBanks(6, 5, 5, 3, 600)
	opt := DefaultOptions()
	opt.Workers = 1
	withRule := mustCompare(t, b1, b2, opt)
	opt.OrderedRule = false
	without := mustCompare(t, b1, b2, opt)
	if without.Metrics.DuplicateHSPs == 0 {
		t.Error("naive mode should have produced duplicate HSPs")
	}
	// The ordered rule may trim borderline HSP sets differently, but on
	// these clean banks final alignments must agree.
	if !alignmentsEqual(withRule.Alignments, without.Alignments) {
		t.Fatalf("ablation changed alignments: %d vs %d",
			len(withRule.Alignments), len(without.Alignments))
	}
}

func TestMetricsAccounting(t *testing.T) {
	b1, b2 := testBanks(7, 5, 5, 3, 600)
	opt := DefaultOptions()
	opt.Workers = 2
	res := mustCompare(t, b1, b2, opt)
	m := res.Metrics
	if m.HitPairs == 0 || m.Extensions == 0 {
		t.Errorf("no work recorded: %+v", m)
	}
	if m.Extensions != m.HitPairs {
		t.Errorf("every hit pair must be an extension attempt: %+v", m)
	}
	if m.HSPs == 0 || m.GappedExtensions == 0 {
		t.Errorf("no HSPs/gapped extensions: %+v", m)
	}
	if m.GappedExtensions+m.SkippedCovered != m.HSPs {
		t.Errorf("step-3 accounting: gapped %d + skipped %d != HSPs %d",
			m.GappedExtensions, m.SkippedCovered, m.HSPs)
	}
	if m.Alignments != len(res.Alignments) {
		t.Errorf("alignment count mismatch")
	}
	if m.IndexedBank1 == 0 || m.IndexedBank2 == 0 {
		t.Errorf("index metrics empty: %+v", m)
	}
}

func TestCoveredSkippingHappens(t *testing.T) {
	// A long, clean homology produces many HSP fragments on nearby
	// diagonals; most should be swallowed by the first alignment.
	b1, b2 := testBanks(8, 2, 2, 2, 3000)
	res := mustCompare(t, b1, b2, DefaultOptions())
	if res.Metrics.SkippedCovered == 0 {
		t.Error("no HSPs were skipped as covered; T_ALIGN test inert")
	}
}

func TestEValueThresholdMonotone(t *testing.T) {
	b1, b2 := testBanks(9, 5, 5, 3, 600)
	strict := DefaultOptions()
	strict.MaxEValue = 1e-30
	loose := DefaultOptions()
	loose.MaxEValue = 10
	rs := mustCompare(t, b1, b2, strict)
	rl := mustCompare(t, b1, b2, loose)
	if len(rs.Alignments) > len(rl.Alignments) {
		t.Errorf("stricter threshold found more alignments: %d > %d",
			len(rs.Alignments), len(rl.Alignments))
	}
	for _, a := range rs.Alignments {
		if a.EValue > 1e-30 {
			t.Errorf("alignment above strict threshold: %+v", a)
		}
	}
}

func TestBothStrandsFindsReverseComplementHomology(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := randSeq(rng, 800)
	rc := string(dna.Decode(dna.ReverseComplement(dna.Encode([]byte(s)))))
	b1 := mkBank("b1", s)
	b2 := mkBank("b2", rc)
	opt := DefaultOptions()

	plus := mustCompare(t, b1, b2, opt)
	if len(plus.Alignments) != 0 {
		t.Errorf("plus-only search should find nothing, got %d", len(plus.Alignments))
	}

	opt.Strand = BothStrands
	both := mustCompare(t, b1, b2, opt)
	if len(both.Alignments) == 0 {
		t.Fatal("both-strand search found nothing")
	}
	a := both.Alignments[0]
	if !a.Minus {
		t.Errorf("expected a minus-strand alignment: %+v", a)
	}
	if a.Length < 700 {
		t.Errorf("reverse-complement homology only partially found: %+v", a)
	}
	// Mapped-back coordinates must lie within the original sequence.
	lo, hi := b2.SeqBounds(0)
	if a.S2 < lo || a.E2 > hi {
		t.Errorf("minus-strand coordinates out of range: %+v (seq [%d,%d))", a, lo, hi)
	}
}

func TestAsymmetric10FindsSameHomologies(t *testing.T) {
	b1, b2 := testBanks(11, 4, 4, 3, 700)
	sym := DefaultOptions()
	res11 := mustCompare(t, b1, b2, sym)

	asym := DefaultOptions()
	asym.W = 10
	asym.Asymmetric = true
	res10 := mustCompare(t, b1, b2, asym)

	// §3.4: 10-nt asymmetric indexing detects all 11-nt anchored
	// alignments plus some extra 10-nt ones; pair coverage must be a
	// superset on these banks.
	pairs := func(r *Result) map[[2]int32]bool {
		m := map[[2]int32]bool{}
		for _, a := range r.Alignments {
			m[[2]int32{a.Seq1, a.Seq2}] = true
		}
		return m
	}
	p11, p10 := pairs(res11), pairs(res10)
	for k := range p11 {
		if !p10[k] {
			t.Errorf("pair %v found by W=11 but missed by asymmetric W=10", k)
		}
	}
	// And the asymmetric index must be roughly half the size.
	if res10.Metrics.IndexedBank1 > res11.Metrics.IndexedBank1*6/10 {
		t.Errorf("asymmetric bank1 index not halved: %d vs %d",
			res10.Metrics.IndexedBank1, res11.Metrics.IndexedBank1)
	}
}

// Regression test for the abort-rule/sampling interaction: with
// half-word indexing, aborting on an embedded lower seed that sits at
// an UNSAMPLED bank-1 position loses the HSP outright (that seed can
// never generate it). The fixed rule only aborts on sampled seeds, so
// asymmetric W=10 must find at least as many alignments as symmetric
// W=11 (§3.4: "this is a little bit more efficient than a 11-nt
// indexing").
func TestAsymmetricAtLeastAsSensitiveAsSymmetric(t *testing.T) {
	for seedVal := int64(50); seedVal < 54; seedVal++ {
		b1, b2 := testBanks(seedVal, 6, 6, 4, 700)
		sym := DefaultOptions()
		sym.Workers = 1
		rSym := mustCompare(t, b1, b2, sym)

		asym := DefaultOptions()
		asym.W = 10
		asym.Asymmetric = true
		asym.Workers = 1
		rAsym := mustCompare(t, b1, b2, asym)

		if len(rAsym.Alignments) < len(rSym.Alignments) {
			t.Errorf("seed %d: asymmetric found %d alignments < symmetric %d",
				seedVal, len(rAsym.Alignments), len(rSym.Alignments))
		}
		// Every symmetric alignment must be covered by an asymmetric one
		// (same pair, overlapping box).
		for _, sa := range rSym.Alignments {
			covered := false
			for _, aa := range rAsym.Alignments {
				if aa.Seq1 == sa.Seq1 && aa.Seq2 == sa.Seq2 &&
					aa.S1 < sa.E1 && sa.S1 < aa.E1 &&
					aa.S2 < sa.E2 && sa.S2 < aa.E2 {
					covered = true
					break
				}
			}
			if !covered {
				t.Errorf("seed %d: symmetric alignment %+v not covered asymmetrically", seedVal, sa)
			}
		}
	}
}

func TestDustOptionReducesRepeatAlignments(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	polyA := randSeq(rng, 200) + string(make40('A')) + randSeq(rng, 200)
	other := randSeq(rng, 200) + string(make40('A')) + randSeq(rng, 200)
	b1 := mkBank("b1", polyA)
	b2 := mkBank("b2", other)
	on := DefaultOptions()
	off := DefaultOptions()
	off.Dust = false
	rOn := mustCompare(t, b1, b2, on)
	rOff := mustCompare(t, b1, b2, off)
	if rOn.Metrics.MaskedSeeds == 0 {
		t.Error("dust masked nothing")
	}
	if len(rOn.Alignments) > len(rOff.Alignments) {
		t.Errorf("dust increased alignments: %d > %d", len(rOn.Alignments), len(rOff.Alignments))
	}
	if len(rOff.Alignments) == 0 {
		t.Error("unfiltered run should report the poly-A match")
	}
}

func make40(c byte) []byte {
	b := make([]byte, 40)
	for i := range b {
		b[i] = c
	}
	return b
}

func TestValidateRejectsBadOptions(t *testing.T) {
	b1, b2 := testBanks(13, 1, 1, 1, 100)
	bad := []func(*Options){
		func(o *Options) { o.W = 2 },
		func(o *Options) { o.W = 99 },
		func(o *Options) { o.Scoring.Match = 0 },
		func(o *Options) { o.UngappedXDrop = 0 },
		func(o *Options) { o.GappedXDrop = -1 },
		func(o *Options) { o.MaxEValue = 0 },
	}
	for i, f := range bad {
		opt := DefaultOptions()
		f(&opt)
		if _, err := Compare(b1, b2, opt); err == nil {
			t.Errorf("bad option set %d accepted", i)
		}
	}
}

func TestResultsSortedQueryMajor(t *testing.T) {
	b1, b2 := testBanks(14, 6, 6, 5, 500)
	res := mustCompare(t, b1, b2, DefaultOptions())
	for i := 1; i < len(res.Alignments); i++ {
		p, a := &res.Alignments[i-1], &res.Alignments[i]
		if a.Seq2 < p.Seq2 {
			t.Fatal("alignments not grouped by query sequence")
		}
		if a.Seq2 == p.Seq2 && a.EValue < p.EValue {
			t.Fatal("alignments within a query not sorted by E-value")
		}
	}
}

func BenchmarkCompareSmallBanks(b *testing.B) {
	b1, b2 := testBanks(20, 20, 20, 10, 400)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(b1, b2, opt); err != nil {
			b.Fatal(err)
		}
	}
}
