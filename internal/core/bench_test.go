package core

import (
	"context"
	"testing"

	"repro/internal/bank"
	"repro/internal/index"
	"repro/internal/ixcache"
	"repro/internal/simulate"
)

// benchBanks builds the BenchScale EST pair used by the step-2
// benchmarks (the same EST3×EST4 pair as the top-level engine bench).
func benchBanks(b *testing.B) (*simulate.DataSet, Options) {
	b.Helper()
	ds := simulate.NewDataSet(64)
	opt := DefaultOptions()
	opt.Workers = 1
	return ds, opt
}

// BenchmarkStep2_EndToEnd measures step 2 alone — index both banks once,
// then time the ordered hit-extension sweep over all 4^W seed codes.
// ns/op and allocs/op here are the headline numbers of the CSR refactor
// (CHANGES.md records before/after).
func BenchmarkStep2_EndToEnd(b *testing.B) {
	ds, opt := benchBanks(b)
	b1, b2 := ds.Get(simulate.EST3), ds.Get(simulate.EST4)
	ix1 := index.Build(b1, index.Options{W: opt.W})
	ix2 := index.Build(b2, index.Options{W: opt.W})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hsps, _, err := step2(context.Background(), b1, b2, ix1, ix2, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(hsps) == 0 {
			b.Fatal("no HSPs")
		}
	}
}

// BenchmarkCompare_EndToEnd measures the full four-step pipeline on the
// same pair, the denominator that bounds how much a step-2 win can move
// whole-run latency.
func BenchmarkCompare_EndToEnd(b *testing.B) {
	ds, opt := benchBanks(b)
	b1, b2 := ds.Get(simulate.EST3), ds.Get(simulate.EST4)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(b1, b2, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSharedWorkload is the multi-pair workload of the prepared-bank
// benchmarks below: one subject bank compared against three query
// banks — the EST-sweep shape where every row shares bank 1.
func benchSharedWorkload(b *testing.B) (*bank.Bank, []*bank.Bank, Options) {
	b.Helper()
	ds, opt := benchBanks(b)
	db := ds.Get(simulate.EST5)
	queries := []*bank.Bank{
		ds.Get(simulate.EST2), ds.Get(simulate.EST3), ds.Get(simulate.EST4),
	}
	return db, queries, opt
}

// BenchmarkCompare_Rebuilt is the rebuild-per-pair baseline the
// prepared-bank sessions exist to beat: every pair rebuilds both CSR
// indexes from scratch, which is what plain Compare does.
func BenchmarkCompare_Rebuilt(b *testing.B) {
	db, queries, opt := benchSharedWorkload(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := Compare(db, q, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompare_Reused runs the same workload through a prepared-
// bank cache: each (bank, options) index is built exactly once, on
// first use, and every comparison after that is steps 2–4 only — the
// amortization the ordered-index design front-loads its build for.
// Compare against BenchmarkCompare_Rebuilt.
func BenchmarkCompare_Reused(b *testing.B) {
	db, queries, opt := benchSharedWorkload(b)
	cache := ixcache.New(8)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			p1, p2, err := Prepare(cache, db, q, opt)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := CompareWithIndex(p1, p2, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCompare_Scale16 runs the same pair at the experiment-harness
// scale (divisor 16, banks ~4× the BenchScale size), where step 2
// dominates and the one-time index build cost is better amortized.
func BenchmarkCompare_Scale16(b *testing.B) {
	ds := simulate.NewDataSet(16)
	opt := DefaultOptions()
	opt.Workers = 1
	b1, b2 := ds.Get(simulate.EST3), ds.Get(simulate.EST4)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(b1, b2, opt); err != nil {
			b.Fatal(err)
		}
	}
}
