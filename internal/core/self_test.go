package core

import (
	"math/rand"
	"testing"
)

func TestShuffledSeedOrderSameAlignments(t *testing.T) {
	b1, b2 := testBanks(40, 6, 6, 4, 600)
	opt := DefaultOptions()
	opt.Workers = 1
	ref := mustCompare(t, b1, b2, opt)
	opt.ShuffledSeedOrder = true
	got := mustCompare(t, b1, b2, opt)
	// The A4 ablation changes enumeration order only: the ordered-seed
	// abort rule is anchor-local, so the HSP set and the final
	// alignments must be identical.
	if !alignmentsEqual(ref.Alignments, got.Alignments) {
		t.Fatalf("shuffled order changed output: %d vs %d alignments",
			len(got.Alignments), len(ref.Alignments))
	}
	if ref.Metrics.HitPairs != got.Metrics.HitPairs {
		t.Errorf("hit pairs differ: %d vs %d", ref.Metrics.HitPairs, got.Metrics.HitPairs)
	}
}

func TestSelfComparisonFindsInternalDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	segment := randSeq(rng, 300)
	// One sequence containing the segment twice, separated by random
	// spacers: the classic repeat a self-comparison must find.
	s := randSeq(rng, 400) + segment + randSeq(rng, 500) + segment + randSeq(rng, 400)
	b := mkBank("self", s)

	opt := DefaultOptions()
	opt.SkipSelfPairs = true
	res := mustCompare(t, b, b, opt)

	if len(res.Alignments) == 0 {
		t.Fatal("self comparison found no internal duplication")
	}
	// The duplication must be reported exactly once (upper triangle),
	// as an alignment of ~300 identical bases at different coordinates.
	dup := 0
	for _, a := range res.Alignments {
		if a.S1 == a.S2 {
			t.Errorf("trivial self-identity alignment reported: %+v", a)
		}
		if a.Length >= 250 && a.Identity() > 0.99 {
			dup++
			if a.S1 >= a.S2 {
				t.Errorf("alignment not in the upper triangle: %+v", a)
			}
		}
	}
	if dup != 1 {
		t.Errorf("duplication reported %d times, want exactly 1 (no mirror)", dup)
	}
}

func TestSelfComparisonWithoutSkipReportsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := mkBank("self", randSeq(rng, 600))
	res := mustCompare(t, b, b, DefaultOptions())
	// Without SkipSelfPairs the full-length self-identity alignment is
	// legitimately reported.
	found := false
	for _, a := range res.Alignments {
		if a.S1 == a.S2 && int(a.Length) == 600 {
			found = true
		}
	}
	if !found {
		t.Error("self-identity alignment missing without SkipSelfPairs")
	}
}

func TestSkipSelfPairsRejectsBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	b := mkBank("self", randSeq(rng, 300))
	opt := DefaultOptions()
	opt.SkipSelfPairs = true
	opt.Strand = BothStrands
	if _, err := Compare(b, b, opt); err == nil {
		t.Error("SkipSelfPairs + BothStrands accepted; the triangle restriction is undefined across banks")
	}
}

func TestSkipSelfHalvesHitPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	b := mkBank("self", randSeq(rng, 2000))
	full := mustCompare(t, b, b, DefaultOptions())
	opt := DefaultOptions()
	opt.SkipSelfPairs = true
	tri := mustCompare(t, b, b, opt)
	// p1<p2 keeps strictly less than half of all pairs (the diagonal
	// p1==p2 is dropped entirely).
	if tri.Metrics.HitPairs*2 >= full.Metrics.HitPairs {
		t.Errorf("triangle pairs %d not < half of full %d",
			tri.Metrics.HitPairs, full.Metrics.HitPairs)
	}
}
